//! Ablation benchmarks over the design choices DESIGN.md calls out:
//! packet size, adaptive bias, global-link degree, and VC capacity.
//!
//! Criterion measures the *simulator cost* of each choice; the
//! `ablations` binary reports the *simulated outcomes* (comm time, hops,
//! saturation) for the same grid.

use dfly_bench::{criterion_group, criterion_main, Criterion};
use dfly_core::config::{AppSelection, ExperimentConfig, RoutingPolicy};
use dfly_core::runner::run_experiment;
use dfly_placement::PlacementPolicy;
use std::hint::black_box;

fn base() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small_test();
    cfg.app = AppSelection::FillBoundary { ranks: 27 };
    cfg.placement = PlacementPolicy::RandomNode;
    cfg.routing = RoutingPolicy::Adaptive;
    cfg.msg_scale = 0.25;
    cfg
}

fn bench_packet_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_packet_size");
    g.sample_size(10);
    for kib in [1u32, 4, 8] {
        g.bench_function(format!("{kib}KiB"), |b| {
            let mut cfg = base();
            cfg.network.packet_size = kib * 1024;
            b.iter(|| black_box(run_experiment(&cfg)));
        });
    }
    g.finish();
}

fn bench_adaptive_bias(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_adaptive_bias");
    g.sample_size(10);
    for bias in [0u64, 4096, 32768] {
        g.bench_function(format!("bias_{bias}"), |b| {
            let mut cfg = base();
            cfg.network.adaptive_bias_bytes = bias;
            b.iter(|| black_box(run_experiment(&cfg)));
        });
    }
    g.finish();
}

fn bench_vc_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_vc_capacity");
    g.sample_size(10);
    for kib in [4u64, 8, 32] {
        g.bench_function(format!("{kib}KiB_local_vc"), |b| {
            let mut cfg = base();
            cfg.network.packet_size = 4096.min(kib as u32 * 1024);
            cfg.network.terminal_vc_bytes = kib * 1024;
            cfg.network.local_vc_bytes = kib * 1024;
            cfg.network.global_vc_bytes = 2 * kib * 1024;
            b.iter(|| black_box(run_experiment(&cfg)));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_packet_size,
    bench_adaptive_bias,
    bench_vc_capacity
);
criterion_main!(benches);
