//! Engine micro-benchmarks: event queue and RNG throughput — the
//! simulator's innermost loops.

use dfly_bench::{criterion_group, criterion_main, BatchSize, Criterion};
use dfly_engine::{EventQueue, Ns, Xoshiro256};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("schedule_pop_10k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..10_000u64 {
                    q.schedule(Ns((i * 7919) % 100_000), i);
                }
                let mut sum = 0u64;
                while let Some(e) = q.pop() {
                    sum = sum.wrapping_add(e.event);
                }
                black_box(sum)
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("cascading_events_10k", |b| {
        // The simulator's actual pattern: each popped event schedules a
        // couple of successors.
        b.iter(|| {
            let mut q = EventQueue::new();
            q.schedule(Ns(0), 0u32);
            let mut popped = 0u32;
            while let Some(e) = q.pop() {
                popped += 1;
                if popped >= 10_000 {
                    break;
                }
                if e.event < 5_000 {
                    q.schedule_after(Ns(3), e.event + 1);
                    q.schedule_after(Ns(11), e.event + 2);
                }
            }
            black_box(popped)
        });
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("next_u64_x1k", |b| {
        let mut rng = Xoshiro256::seed_from(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        });
    });
    g.bench_function("next_below_x1k", |b| {
        let mut rng = Xoshiro256::seed_from(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000 {
                acc += rng.next_below(863);
            }
            black_box(acc)
        });
    });
    g.bench_function("shuffle_3456", |b| {
        let mut rng = Xoshiro256::seed_from(3);
        let base: Vec<u32> = (0..3456).collect();
        b.iter_batched(
            || base.clone(),
            |mut v| {
                rng.shuffle(&mut v);
                black_box(v)
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_rng);
criterion_main!(benches);
