//! Miniature versions of the paper's experiment pipelines, so
//! `cargo bench` exercises every reproduction path end to end:
//!
//! * `fig3_cell` — one cell of the Figure 3 grid (one app, one config);
//! * `fig7_point` — one sensitivity point (scaled message load);
//! * `fig8_point` — one interference run (app + uniform background).
//!
//! These benchmark the *simulator*; the figures themselves are produced
//! by the `fig*` binaries.

use dfly_bench::{criterion_group, criterion_main, Criterion};
use dfly_core::config::{AppSelection, BackgroundConfig, ExperimentConfig, RoutingPolicy};
use dfly_core::runner::run_experiment;
use dfly_engine::Ns;
use dfly_placement::PlacementPolicy;
use dfly_workloads::BackgroundSpec;
use std::hint::black_box;

fn mini(app: AppSelection) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small_test();
    cfg.app = app;
    cfg.msg_scale = 0.25;
    cfg
}

fn bench_fig3_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_cell");
    g.sample_size(10);
    for (label, placement, routing) in [
        (
            "cont_min",
            PlacementPolicy::Contiguous,
            RoutingPolicy::Minimal,
        ),
        (
            "rand_adp",
            PlacementPolicy::RandomNode,
            RoutingPolicy::Adaptive,
        ),
    ] {
        g.bench_function(format!("cr24_{label}"), |b| {
            let mut cfg = mini(AppSelection::CrystalRouter { ranks: 24 });
            cfg.placement = placement;
            cfg.routing = routing;
            b.iter(|| black_box(run_experiment(&cfg)));
        });
    }
    g.finish();
}

fn bench_fig7_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_point");
    g.sample_size(10);
    for scale in [0.1f64, 1.0] {
        g.bench_function(format!("fb27_scale_{scale}"), |b| {
            let mut cfg = mini(AppSelection::FillBoundary { ranks: 27 });
            cfg.placement = PlacementPolicy::RandomNode;
            cfg.routing = RoutingPolicy::Adaptive;
            cfg.msg_scale = scale;
            b.iter(|| black_box(run_experiment(&cfg)));
        });
    }
    g.finish();
}

fn bench_fig8_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_point");
    g.sample_size(10);
    g.bench_function("amg8_uniform_bg", |b| {
        let mut cfg = mini(AppSelection::Amg { ranks: 8 });
        cfg.placement = PlacementPolicy::Contiguous;
        cfg.routing = RoutingPolicy::Minimal;
        cfg.background = Some(BackgroundConfig {
            spec: BackgroundSpec::uniform(16 * 1024, Ns::from_us(4), 0),
        });
        b.iter(|| black_box(run_experiment(&cfg)));
    });
    g.finish();
}

criterion_group!(benches, bench_fig3_cell, bench_fig7_point, bench_fig8_point);
criterion_main!(benches);
