//! Network model benchmarks: end-to-end packet throughput of the
//! simulator under both routing policies and under congestion.

use dfly_bench::{criterion_group, criterion_main, BatchSize, Criterion};
use dfly_engine::{Ns, Xoshiro256};
use dfly_network::routing::RouteComputer;
use dfly_network::{Network, NetworkParams, Routing};
use dfly_topology::{NodeId, Topology, TopologyConfig};
use std::hint::black_box;
use std::sync::Arc;

fn run_uniform(topo: &Arc<Topology>, routing: Routing, msgs: u64, bytes: u64) -> u64 {
    let mut net = Network::new(topo.clone(), NetworkParams::default(), routing, 11);
    let nodes = topo.config().total_nodes() as u64;
    let mut rng = Xoshiro256::seed_from(13);
    for i in 0..msgs {
        let s = NodeId(rng.next_below(nodes) as u32);
        let d = NodeId(rng.next_below(nodes) as u32);
        net.send(Ns(i * 20), s, d, bytes, i);
    }
    net.run_to_idle();
    net.events_processed()
}

fn bench_throughput(c: &mut Criterion) {
    let topo = Arc::new(Topology::build(TopologyConfig::small_test()));
    let mut g = c.benchmark_group("network_throughput");
    g.sample_size(20);
    g.bench_function("uniform_minimal_500msgs", |b| {
        b.iter(|| black_box(run_uniform(&topo, Routing::Minimal, 500, 16 * 1024)));
    });
    g.bench_function("uniform_adaptive_500msgs", |b| {
        b.iter(|| black_box(run_uniform(&topo, Routing::Adaptive, 500, 16 * 1024)));
    });
    g.bench_function("hotspot_contended_adaptive", |b| {
        // Everyone hammers one router's nodes: worst-case back-pressure.
        b.iter_batched(
            || {
                Network::new(
                    topo.clone(),
                    NetworkParams::default(),
                    Routing::Adaptive,
                    17,
                )
            },
            |mut net| {
                for src in 4..64u32 {
                    net.send(
                        Ns::ZERO,
                        NodeId(src),
                        NodeId(src % 4),
                        32 * 1024,
                        src as u64,
                    );
                }
                net.run_to_idle();
                black_box(net.events_processed())
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    // Route computation in isolation (no event loop): the per-packet cost
    // of `RouteComputer::compute` under each policy, with a synthetic
    // occupancy signal so adaptive scoring exercises its full path.
    let topo = Topology::build(TopologyConfig::small_test());
    let params = NetworkParams::default();
    let nodes = topo.config().total_nodes() as u64;
    let mut pairs = Vec::new();
    let mut rng = Xoshiro256::seed_from(5);
    for _ in 0..200 {
        let s = NodeId(rng.next_below(nodes) as u32);
        let d = NodeId(rng.next_below(nodes) as u32);
        pairs.push((s, d));
    }

    let mut g = c.benchmark_group("routing_compute");
    for (name, routing) in [
        ("minimal_200pairs", Routing::Minimal),
        ("adaptive_200pairs", Routing::Adaptive),
        ("valiant_200pairs", Routing::Valiant),
    ] {
        g.bench_function(name, |b| {
            let mut rc = RouteComputer::new(routing, Xoshiro256::seed_from(99));
            let mut out = Vec::new();
            b.iter(|| {
                let mut hops = 0usize;
                for &(s, d) in &pairs {
                    out.clear();
                    rc.compute(
                        &topo,
                        &params,
                        s,
                        d,
                        |ch| (ch.0 as u64 * 37) % 5000,
                        &mut out,
                    );
                    hops += out.len();
                }
                black_box(hops)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_throughput, bench_routing);
criterion_main!(benches);
