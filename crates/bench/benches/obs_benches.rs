//! Telemetry overhead benchmarks: the same end-to-end scenarios as
//! `network_benches`, run with the `dfly-obs` layer off and on.
//!
//! The obs-off numbers here vs the matching `network_benches` baselines
//! quantify the cost of carrying the (disabled) instrumentation hooks —
//! the ISSUE-5 acceptance bound is <2% — while the obs-on numbers show
//! the full price of profiling + periodic sampling when requested.

use dfly_bench::{criterion_group, criterion_main, Criterion};
use dfly_engine::{Ns, Xoshiro256};
use dfly_network::{Network, NetworkParams, Routing};
use dfly_topology::{NodeId, Topology, TopologyConfig};
use std::hint::black_box;
use std::sync::Arc;

fn run_uniform(
    topo: &Arc<Topology>,
    params: NetworkParams,
    routing: Routing,
    msgs: u64,
    bytes: u64,
) -> u64 {
    let mut net = Network::new(topo.clone(), params, routing, 11);
    let nodes = topo.config().total_nodes() as u64;
    let mut rng = Xoshiro256::seed_from(13);
    for i in 0..msgs {
        let s = NodeId(rng.next_below(nodes) as u32);
        let d = NodeId(rng.next_below(nodes) as u32);
        net.send(Ns(i * 20), s, d, bytes, i);
    }
    net.run_to_idle();
    net.events_processed()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let topo = Arc::new(Topology::build(TopologyConfig::small_test()));
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(20);
    for (name, obs) in [("obs_off", false), ("obs_on", true)] {
        for (policy_name, routing) in [
            ("minimal", Routing::Minimal),
            ("adaptive", Routing::Adaptive),
        ] {
            let params = NetworkParams {
                obs,
                ..NetworkParams::default()
            };
            g.bench_function(&format!("uniform_{policy_name}_500msgs_{name}"), |b| {
                b.iter(|| black_box(run_uniform(&topo, params.clone(), routing, 500, 16 * 1024)));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
