//! Placement-policy benchmarks at Theta scale: allocation cost of each
//! policy, and task-mapping arrangement cost.

use dfly_bench::{criterion_group, criterion_main, BatchSize, Criterion};
use dfly_engine::Xoshiro256;
use dfly_placement::{NodePool, PlacementPolicy, TaskMapping};
use dfly_topology::{Topology, TopologyConfig};
use std::hint::black_box;

fn bench_allocate(c: &mut Criterion) {
    let topo = Topology::build(TopologyConfig::theta());
    let mut g = c.benchmark_group("placement_allocate_1000_of_3456");
    for policy in PlacementPolicy::ALL {
        g.bench_function(policy.label(), |b| {
            let mut rng = Xoshiro256::seed_from(9);
            b.iter_batched(
                || NodePool::new(&topo),
                |mut pool| black_box(policy.allocate(&topo, &mut pool, 1000, &mut rng).unwrap()),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let topo = Topology::build(TopologyConfig::theta());
    let mut pool = NodePool::new(&topo);
    let mut rng = Xoshiro256::seed_from(9);
    let alloc = PlacementPolicy::RandomRouter
        .allocate(&topo, &mut pool, 1728, &mut rng)
        .unwrap();
    let mut g = c.benchmark_group("task_mapping_1728");
    for mapping in TaskMapping::ALL {
        g.bench_function(mapping.label(), |b| {
            let mut rng = Xoshiro256::seed_from(11);
            b.iter(|| black_box(mapping.arrange(&alloc, 4, &mut rng)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_allocate, bench_mapping);
criterion_main!(benches);
