//! Statistics-kernel benchmarks at the population sizes the reproduction
//! actually processes (tens of thousands of channels).

use dfly_bench::{criterion_group, criterion_main, Criterion};
use dfly_engine::Xoshiro256;
use dfly_stats::{gini, BoxStats, Cdf};
use std::hint::black_box;

fn samples(n: usize) -> Vec<f64> {
    let mut rng = Xoshiro256::seed_from(5);
    (0..n).map(|_| rng.next_f64() * 1e6).collect()
}

fn bench_kernels(c: &mut Criterion) {
    let data = samples(27_648); // Theta's directed-channel count
    let mut g = c.benchmark_group("stats_kernels_27648");
    g.bench_function("box_stats", |b| {
        b.iter(|| black_box(BoxStats::from_samples(&data)));
    });
    g.bench_function("cdf_build_and_query", |b| {
        b.iter(|| {
            let cdf = Cdf::from_samples(data.iter().copied());
            black_box((cdf.quantile(0.5), cdf.percent_at_or_below(5e5)))
        });
    });
    g.bench_function("gini", |b| {
        b.iter(|| black_box(gini(&data)));
    });
    g.bench_function("sampled_points_100", |b| {
        let cdf = Cdf::from_samples(data.iter().copied());
        b.iter(|| black_box(cdf.sampled_points(100).fold(0.0, |acc, (x, p)| acc + x + p)));
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
