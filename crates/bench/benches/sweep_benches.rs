//! Sweep-layer benchmarks: the cost of a 10-cell placement x routing
//! grid with a fresh topology per cell (the pre-refactor shape) versus
//! one shared `Arc<Topology>` prepared once. The delta is the topology
//! construction the shared path amortizes — on the Theta-scale machine
//! (864 routers, thousands of channels) that build dominates small
//! per-cell simulations.

use dfly_bench::{criterion_group, criterion_main, Criterion};
use dfly_core::config::AppSelection;
use dfly_core::report::ConfigLabel;
use dfly_core::runner::{execute_experiment, prepare_topology};
use dfly_core::{run_config_grid, ExperimentConfig};
use dfly_topology::Topology;
use dfly_workloads::AppKind;
use std::hint::black_box;
use std::sync::Arc;

/// Ten grid cells over `base`: tiny app + low message scale so topology
/// setup, not simulation, is the dominant term being compared.
fn grid_cells(base: &ExperimentConfig) -> Vec<ExperimentConfig> {
    ConfigLabel::all_ten()
        .into_iter()
        .map(|l| {
            let mut cfg = base.clone();
            cfg.placement = l.placement;
            cfg.routing = l.routing;
            cfg
        })
        .collect()
}

fn small_grid_base() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small_test();
    cfg.msg_scale = 0.05;
    cfg
}

fn theta_grid_base() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::theta(AppKind::Amg);
    cfg.app = AppSelection::Amg { ranks: 16 };
    cfg.msg_scale = 0.05;
    cfg
}

/// Pre-refactor per-cell path: build the topology anew for every cell.
fn run_fresh(cells: &[ExperimentConfig]) -> u64 {
    cells
        .iter()
        .map(|cfg| {
            let topo = Arc::new(Topology::build(cfg.topology.clone()));
            execute_experiment(cfg, topo).events
        })
        .sum()
}

/// Shared path: one prepare, ten executes.
fn run_shared(cells: &[ExperimentConfig]) -> u64 {
    let topo = prepare_topology(&cells[0]);
    cells
        .iter()
        .map(|cfg| execute_experiment(cfg, topo.clone()).events)
        .sum()
}

fn bench_small_grid(c: &mut Criterion) {
    let cells = grid_cells(&small_grid_base());
    let mut g = c.benchmark_group("sweep_grid_small");
    g.sample_size(10);
    g.bench_function("fresh_topology_per_cell", |b| {
        b.iter(|| black_box(run_fresh(&cells)));
    });
    g.bench_function("shared_topology", |b| {
        b.iter(|| black_box(run_shared(&cells)));
    });
    g.finish();
}

fn bench_theta_grid(c: &mut Criterion) {
    let base = theta_grid_base();
    let cells = grid_cells(&base);
    let mut g = c.benchmark_group("sweep_grid_theta");
    g.sample_size(10);
    g.bench_function("fresh_topology_per_cell", |b| {
        b.iter(|| black_box(run_fresh(&cells)));
    });
    g.bench_function("shared_topology", |b| {
        b.iter(|| black_box(run_shared(&cells)));
    });
    // The production entry point (shared build + scoped-thread workers),
    // for the end-to-end grid number.
    g.bench_function("run_config_grid_parallel", |b| {
        b.iter(|| black_box(run_config_grid(&base, &ConfigLabel::all_ten()).len()));
    });
    g.finish();
}

criterion_group!(benches, bench_small_grid, bench_theta_grid);
criterion_main!(benches);
