//! Topology benchmarks: machine construction and path computation (the
//! per-packet routing cost).

use dfly_bench::{criterion_group, criterion_main, Criterion};
use dfly_engine::Xoshiro256;
use dfly_topology::{paths, RouterId, Topology, TopologyConfig};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_build");
    g.bench_function("theta_3456_nodes", |b| {
        b.iter(|| black_box(Topology::build(TopologyConfig::theta())));
    });
    g.bench_function("small_64_nodes", |b| {
        b.iter(|| black_box(Topology::build(TopologyConfig::small_test())));
    });
    g.finish();
}

fn bench_paths(c: &mut Criterion) {
    let topo = Topology::build(TopologyConfig::theta());
    let n = topo.config().total_routers() as u64;
    let mut g = c.benchmark_group("paths");
    g.bench_function("minimal_x1k", |b| {
        let mut rng = Xoshiro256::seed_from(5);
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..1_000 {
                let s = RouterId(rng.next_below(n) as u32);
                let d = RouterId(rng.next_below(n) as u32);
                total += paths::minimal_path(&topo, s, d, &mut rng).hops();
            }
            black_box(total)
        });
    });
    g.bench_function("nonminimal_x1k", |b| {
        let mut rng = Xoshiro256::seed_from(6);
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..1_000 {
                let s = RouterId(rng.next_below(n) as u32);
                let d = RouterId(rng.next_below(n) as u32);
                let i = paths::random_intermediate(&topo, &mut rng);
                total += paths::nonminimal_path(&topo, s, i, d, &mut rng).hops();
            }
            black_box(total)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_paths);
criterion_main!(benches);
