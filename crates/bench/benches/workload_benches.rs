//! Workload generation benchmarks: trace synthesis at paper scale and
//! communication-matrix extraction.

use dfly_bench::{criterion_group, criterion_main, Criterion};
use dfly_workloads::{generate, AppKind, CommMatrix, WorkloadSpec};
use std::hint::black_box;

fn spec(kind: AppKind) -> WorkloadSpec {
    WorkloadSpec {
        kind,
        ranks: kind.paper_ranks(),
        msg_scale: 1.0,
        seed: 21,
    }
}

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_generation");
    g.sample_size(20);
    for kind in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
        g.bench_function(format!("{}_paper_scale", kind.label()), |b| {
            b.iter(|| black_box(generate(&spec(kind))));
        });
    }
    g.finish();
}

fn bench_matrix(c: &mut Criterion) {
    let trace = generate(&spec(AppKind::Amg));
    let mut g = c.benchmark_group("comm_matrix");
    g.sample_size(20);
    g.bench_function("amg_1728_ranks", |b| {
        b.iter(|| black_box(CommMatrix::from_trace(&trace)));
    });
    let m = CommMatrix::from_trace(&trace);
    g.bench_function("block_view_32", |b| {
        b.iter(|| black_box(m.block_view(32)));
    });
    g.finish();
}

criterion_group!(benches, bench_generation, bench_matrix);
criterion_main!(benches);
