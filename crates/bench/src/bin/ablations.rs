//! Ablations over the model's design choices (DESIGN.md section 8):
//! simulated outcomes (communication time, hops, saturation) as each
//! parameter varies, demonstrating which conclusions are robust to the
//! substitutions this reproduction makes.

use dfly_bench::parse_args;
use dfly_core::config::{ExperimentConfig, RoutingPolicy};
use dfly_core::runner::run_experiment;
use dfly_network::MetricsFilter;
use dfly_placement::PlacementPolicy;
use dfly_stats::AsciiTable;
use dfly_workloads::AppKind;

fn report(
    table: &mut AsciiTable,
    csv: &mut dfly_stats::CsvWriter<std::io::BufWriter<std::fs::File>>,
    param: &str,
    value: String,
    cfg: &ExperimentConfig,
) {
    let r = run_experiment(cfg);
    let sat: f64 = r
        .metrics
        .local_saturation_ms(&MetricsFilter::All)
        .iter()
        .sum();
    let median = r.comm_time_stats().median;
    table.row(vec![
        param.to_string(),
        value.clone(),
        format!("{median:.3}"),
        format!("{:.2}", r.mean_hops()),
        format!("{sat:.3}"),
    ]);
    csv.row(&[
        param.to_string(),
        value,
        format!("{median:.6}"),
        format!("{:.4}", r.mean_hops()),
        format!("{sat:.6}"),
    ])
    .expect("csv");
}

fn main() {
    let args = parse_args();
    println!("Design-choice ablations — mode: {}", args.mode_label());
    let mut base = args.base_config(AppKind::FillBoundary);
    base.placement = PlacementPolicy::RandomNode;
    base.routing = RoutingPolicy::Adaptive;
    if matches!(args.mode, dfly_bench::Mode::Full) {
        // Keep the ablation grid affordable at full scale.
        base.msg_scale = 0.5;
    }

    let mut table = AsciiTable::new(vec![
        "parameter",
        "value",
        "median comm (ms)",
        "mean hops",
        "local sat (ms)",
    ]);
    let mut csv = args.csv(
        "ablations.csv",
        &[
            "parameter",
            "value",
            "median_comm_ms",
            "mean_hops",
            "local_sat_ms",
        ],
    );

    for kib in [1u32, 2, 4, 8] {
        let mut cfg = base.clone();
        cfg.network.packet_size = kib * 1024;
        report(
            &mut table,
            &mut csv,
            "packet_size",
            format!("{kib}KiB"),
            &cfg,
        );
    }
    for bias in [0u64, 4096, 32768, 262144] {
        let mut cfg = base.clone();
        cfg.network.adaptive_bias_bytes = bias;
        report(
            &mut table,
            &mut csv,
            "adaptive_bias",
            format!("{bias}B"),
            &cfg,
        );
    }
    // Candidate degrees; each mode keeps those whose endpoint count
    // divides evenly among its peer groups.
    for glinks in [2u32, 4, 5, 8, 10, 15] {
        let mut cfg = base.clone();
        cfg.topology.global_links_per_router = glinks;
        if cfg.topology.validate().is_err() {
            continue;
        }
        report(
            &mut table,
            &mut csv,
            "global_links_per_router",
            glinks.to_string(),
            &cfg,
        );
    }
    for kib in [4u64, 8, 16, 32] {
        let mut cfg = base.clone();
        cfg.network.terminal_vc_bytes = kib * 1024;
        cfg.network.local_vc_bytes = kib * 1024;
        cfg.network.global_vc_bytes = 2 * kib * 1024;
        report(
            &mut table,
            &mut csv,
            "vc_capacity",
            format!("{kib}KiB"),
            &cfg,
        );
    }
    csv.finish().expect("csv");
    print!("{}", table.render());
    println!("\nWrote {}", args.out_dir.join("ablations.csv").display());
}
