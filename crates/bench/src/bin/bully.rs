//! Extension experiment: real multi-job co-runs (the "bully" study of the
//! paper's predecessor, Yang et al. SC'16, and the production scenario the
//! paper's Section IV-C approximates with synthetic traffic).
//!
//! Co-runs the communication-intensive CR with the latency-sensitive AMG
//! under each placement policy and reports each job's slowdown relative to
//! running alone — showing that CR bullies AMG, and that localized
//! placement contains the damage.

use dfly_bench::parse_args;
use dfly_core::config::{AppSelection, RoutingPolicy};
use dfly_core::multijob::{run_multijob, JobSpec, MultiJobConfig};
use dfly_placement::PlacementPolicy;
use dfly_stats::AsciiTable;
use dfly_workloads::AppKind;

fn main() {
    let args = parse_args();
    println!(
        "Multi-job co-run ('bully') study — mode: {}",
        args.mode_label()
    );
    let base = args.base_config(AppKind::CrystalRouter);
    // Keep the pair within the machine: CR + AMG at the quick/full sizes.
    let (cr_ranks, amg_ranks) = match args.mode {
        dfly_bench::Mode::Quick => (216, 343),
        dfly_bench::Mode::Full => (1000, 1728),
    };

    let mut csv = args.csv(
        "bully_corun.csv",
        &[
            "placement",
            "routing",
            "job",
            "solo_median_ms",
            "corun_median_ms",
            "slowdown_pct",
        ],
    );
    for routing in [RoutingPolicy::Minimal, RoutingPolicy::Adaptive] {
        let mut table = AsciiTable::new(vec![
            "placement",
            "CR solo (ms)",
            "CR co-run (ms)",
            "AMG solo (ms)",
            "AMG co-run (ms)",
            "AMG slowdown %",
        ]);
        for placement in PlacementPolicy::ALL {
            let cr = JobSpec {
                app: AppSelection::CrystalRouter { ranks: cr_ranks },
                placement,
                msg_scale: 1.0,
            };
            let amg = JobSpec {
                app: AppSelection::Amg { ranks: amg_ranks },
                placement,
                msg_scale: 1.0,
            };
            let mk = |jobs: Vec<JobSpec>| MultiJobConfig {
                topology: base.topology.clone(),
                network: base.network,
                routing,
                jobs,
                seed: base.seed,
            };
            let cr_solo = run_multijob(&mk(vec![cr]));
            let amg_solo = run_multijob(&mk(vec![amg]));
            let corun = run_multijob(&mk(vec![cr, amg]));

            let cr_solo_m = cr_solo.jobs[0].comm_time_stats().median;
            let amg_solo_m = amg_solo.jobs[0].comm_time_stats().median;
            let cr_co_m = corun.jobs[0].comm_time_stats().median;
            let amg_co_m = corun.jobs[1].comm_time_stats().median;
            let amg_slow = 100.0 * (amg_co_m / amg_solo_m - 1.0);
            table.row(vec![
                placement.label().to_string(),
                format!("{cr_solo_m:.3}"),
                format!("{cr_co_m:.3}"),
                format!("{amg_solo_m:.3}"),
                format!("{amg_co_m:.3}"),
                format!("{amg_slow:+.1}"),
            ]);
            for (job, solo, co) in [("CR", cr_solo_m, cr_co_m), ("AMG", amg_solo_m, amg_co_m)] {
                csv.row(&[
                    placement.label().to_string(),
                    routing.label().to_string(),
                    job.to_string(),
                    format!("{solo:.6}"),
                    format!("{co:.6}"),
                    format!("{:.2}", 100.0 * (co / solo - 1.0)),
                ])
                .expect("csv");
            }
        }
        println!("\n== CR + AMG co-run, {} routing ==", routing.label());
        print!("{}", table.render());
    }
    csv.finish().expect("csv");
    println!("\nWrote {}", args.out_dir.join("bully_corun.csv").display());
}
