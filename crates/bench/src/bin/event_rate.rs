//! Event-throughput gate: how much does `--obs` cost?
//!
//! Runs a fixed pair of quick fig3 cells (CrystalRouter at scale 0.25,
//! cont-min and rand-adp, seed 0x5EED) with telemetry off and on,
//! interleaved A/B so machine drift hits both sides equally, and reports
//! the median events/sec of each side. Two artifacts:
//!
//! * `obs_sampling_delta.csv` — one row per cell with the off/on medians
//!   and their ratio (the ISSUE 6 acceptance number: on/off <= 1.15x at
//!   the default stride).
//! * `BENCH_event_rate.json` — the same numbers in the machine-readable
//!   form CI archives per commit.
//!
//! `--gate RATIO` exits nonzero when any cell's obs-on slowdown exceeds
//! the ratio — the instrumented smoke job runs with `--gate 1.25`.
//!
//! Every obs-on run is also checked bit-identical to its obs-off twin
//! (same comm times), so the gate doubles as a determinism smoke test.

use dfly_bench::harness::{Mode, RunArgs};
use dfly_core::config::RoutingPolicy;
use dfly_core::report::ConfigLabel;
use dfly_core::runner::{execute_experiment_with_arena, prepare_topology};
use dfly_network::SimArena;
use dfly_placement::PlacementPolicy;
use dfly_workloads::AppKind;
use std::time::Instant;

/// The fixed workload: deliberately NOT configurable (except stride and
/// clock, the knobs under test) so the JSON is comparable across commits.
const SEED: u64 = 0x5EED;
const SCALE: f64 = 0.25;

struct Cli {
    args: RunArgs,
    trials: usize,
    gate: Option<f64>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        args: RunArgs::new(Mode::Quick, "results"),
        trials: 5,
        gate: None,
    };
    cli.args.scale = SCALE;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => {
                cli.args.out_dir = args.next().expect("--out needs a directory").into();
            }
            "--trials" => {
                let v = args.next().expect("--trials needs a count");
                cli.trials = v.parse().expect("--trials needs an integer");
                assert!(cli.trials >= 1, "--trials must be >= 1");
            }
            "--gate" => {
                let v = args.next().expect("--gate needs a ratio");
                let g: f64 = v.parse().expect("--gate needs a number");
                assert!(g > 0.0, "--gate must be positive");
                cli.gate = Some(g);
            }
            "--obs-stride" => {
                let v = args.next().expect("--obs-stride needs a count");
                cli.args.obs_stride = Some(v.parse().expect("--obs-stride needs an integer"));
                assert!(cli.args.obs_stride != Some(0), "--obs-stride must be >= 1");
            }
            "--obs-coarse" => cli.args.obs_coarse = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: [--out DIR] [--trials N] [--gate RATIO] [--obs-stride N] [--obs-coarse]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    cli
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

struct CellOutcome {
    label: String,
    off_evps: f64,
    on_evps: f64,
    events: u64,
}

impl CellOutcome {
    fn ratio(&self) -> f64 {
        self.off_evps / self.on_evps
    }
}

fn main() {
    let cli = parse_cli();
    let cells = [
        ConfigLabel {
            placement: PlacementPolicy::Contiguous,
            routing: RoutingPolicy::Minimal,
        },
        ConfigLabel {
            placement: PlacementPolicy::RandomNode,
            routing: RoutingPolicy::Adaptive,
        },
    ];

    let mut base = cli.args.base_config(AppKind::CrystalRouter);
    base.seed = SEED;
    let stride = {
        let mut probe = cli.args.clone();
        probe.obs = true;
        probe.base_config(AppKind::CrystalRouter).network.obs_stride
    };
    println!(
        "Event-rate A/B: CrystalRouter quick, scale {SCALE}, seed {SEED:#x}, \
         stride {stride}, coarse clock {}, {} trials/side",
        cli.args.obs_coarse, cli.trials
    );

    let topo = prepare_topology(&base);
    let mut arena = SimArena::new();
    let mut outcomes = Vec::new();
    for cell in cells {
        let mut off_cfg = base.clone();
        off_cfg.placement = cell.placement;
        off_cfg.routing = cell.routing;
        let mut on_cfg = off_cfg.clone();
        on_cfg.network.obs = true;
        if let Some(s) = cli.args.obs_stride {
            on_cfg.network.obs_stride = s;
        }
        on_cfg.network.obs_coarse_clock = cli.args.obs_coarse;

        // Warmup pair: populate the arena, fault in code and topology.
        let warm_off = execute_experiment_with_arena(&off_cfg, topo.clone(), &mut arena);
        let warm_on = execute_experiment_with_arena(&on_cfg, topo.clone(), &mut arena);
        assert_eq!(
            warm_off.rank_comm_times, warm_on.rank_comm_times,
            "obs-on run diverged from obs-off"
        );

        let mut off_rates = Vec::with_capacity(cli.trials);
        let mut on_rates = Vec::with_capacity(cli.trials);
        for _ in 0..cli.trials {
            let t0 = Instant::now();
            let off = execute_experiment_with_arena(&off_cfg, topo.clone(), &mut arena);
            off_rates.push(off.events as f64 / t0.elapsed().as_secs_f64());
            let t1 = Instant::now();
            let on = execute_experiment_with_arena(&on_cfg, topo.clone(), &mut arena);
            on_rates.push(on.events as f64 / t1.elapsed().as_secs_f64());
            assert_eq!(off.events, warm_off.events, "run not deterministic");
            assert_eq!(on.events, warm_off.events, "obs-on changed the event count");
        }
        let outcome = CellOutcome {
            label: cell.to_string(),
            off_evps: median(&mut off_rates),
            on_evps: median(&mut on_rates),
            events: warm_off.events,
        };
        println!(
            "{:>10}: obs-off {:.2} Mev/s, obs-on {:.2} Mev/s, on/off {:.3}x ({} events/run)",
            outcome.label,
            outcome.off_evps / 1e6,
            outcome.on_evps / 1e6,
            outcome.ratio(),
            outcome.events,
        );
        outcomes.push(outcome);
    }

    let mut csv = cli.args.csv(
        "obs_sampling_delta.csv",
        &[
            "scenario",
            "trials",
            "obs_off_median_evps",
            "obs_on_median_evps",
            "obs_on_over_off",
            "stride",
        ],
    );
    for o in &outcomes {
        csv.row(&[
            o.label.clone(),
            cli.trials.to_string(),
            format!("{:.0}", o.off_evps),
            format!("{:.0}", o.on_evps),
            format!("{:.4}", o.ratio()),
            stride.to_string(),
        ])
        .expect("csv write");
    }
    csv.finish().expect("csv flush");

    // Hand-formatted JSON: the workspace has no serde, and the schema is
    // three flat fields per scenario.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": \"crystalrouter quick scale {SCALE} seed {SEED:#x}\",\n"
    ));
    json.push_str(&format!("  \"stride\": {stride},\n"));
    json.push_str(&format!("  \"coarse_clock\": {},\n", cli.args.obs_coarse));
    json.push_str(&format!("  \"trials\": {},\n", cli.trials));
    json.push_str("  \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"events\": {}, \"obs_off_evps\": {:.0}, \
             \"obs_on_evps\": {:.0}, \"obs_on_over_off\": {:.4}}}{}\n",
            o.label,
            o.events,
            o.off_evps,
            o.on_evps,
            o.ratio(),
            if i + 1 < outcomes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let json_path = cli.args.out_dir.join("BENCH_event_rate.json");
    std::fs::write(&json_path, json).unwrap_or_else(|e| panic!("cannot write {json_path:?}: {e}"));
    println!(
        "Wrote {} and {}",
        cli.args.out_dir.join("obs_sampling_delta.csv").display(),
        json_path.display()
    );

    if let Some(gate) = cli.gate {
        let worst = outcomes
            .iter()
            .max_by(|a, b| a.ratio().partial_cmp(&b.ratio()).expect("finite"))
            .expect("at least one cell");
        if worst.ratio() > gate {
            eprintln!(
                "FAIL: {} obs-on slowdown {:.3}x exceeds the {:.2}x gate",
                worst.label,
                worst.ratio(),
                gate
            );
            std::process::exit(1);
        }
        println!(
            "gate {:.2}x: ok (worst cell {} at {:.3}x)",
            gate,
            worst.label,
            worst.ratio()
        );
    }
}
