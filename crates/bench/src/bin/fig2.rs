//! Figure 2: communication matrix and message load per rank for the three
//! applications — regenerated from the synthetic trace generators so the
//! structural match with the paper's DUMPI traces is inspectable.

use dfly_bench::parse_args;
use dfly_stats::sparkline;
use dfly_workloads::{generate, load_over_phases, AppKind, CommMatrix, WorkloadSpec};

fn main() {
    let args = parse_args();
    println!("Figure 2 reproduction — mode: {}", args.mode_label());
    let mut matrix_csv = args.csv(
        "fig2_comm_matrix.csv",
        &["app", "src_block", "dst_block", "bytes"],
    );
    let mut load_csv = args.csv("fig2_msg_load.csv", &["app", "phase", "avg_bytes_per_rank"]);

    for app in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
        let base = args.base_config(app);
        let spec = WorkloadSpec {
            kind: app,
            ranks: base.app.ranks(),
            msg_scale: 1.0,
            seed: 0xF16_2,
        };
        let trace = generate(&spec);
        let matrix = CommMatrix::from_trace(&trace);
        let loads = load_over_phases(&trace);

        // CSV: 32x32 block view of the full matrix.
        let k = 32;
        let blocks = matrix.block_view(k);
        for (s, row) in blocks.iter().enumerate() {
            for (d, &bytes) in row.iter().enumerate() {
                if bytes > 0 {
                    matrix_csv
                        .row(&[
                            app.label().to_string(),
                            s.to_string(),
                            d.to_string(),
                            bytes.to_string(),
                        ])
                        .expect("csv");
                }
            }
        }
        for (phase, &load) in loads.iter().enumerate() {
            load_csv
                .row(&[
                    app.label().to_string(),
                    phase.to_string(),
                    format!("{load:.1}"),
                ])
                .expect("csv");
        }

        println!("\n== Fig 2: {} ({} ranks) ==", app.label(), trace.ranks());
        println!(
            "matrix: {} nonzero pairs / {} total; neighborhood(+-2 ranks) share {:.1}%",
            matrix.nonzero_pairs(),
            trace.ranks() as u64 * trace.ranks() as u64,
            100.0 * matrix.neighborhood_fraction(2),
        );
        println!(
            "avg message load per rank: {:.1} KB over {} phases",
            trace.avg_load_per_rank() / 1024.0,
            trace.phase_count()
        );
        println!("load/phase (KB): {}", sparkline(&loads));
        let peak = loads.iter().cloned().fold(0.0, f64::max);
        let trough = loads.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "per-phase load: {:.1} KB .. {:.1} KB",
            trough / 1024.0,
            peak / 1024.0
        );
    }
    matrix_csv.finish().expect("csv");
    load_csv.finish().expect("csv");
    println!(
        "\nWrote {} and {}",
        args.out_dir.join("fig2_comm_matrix.csv").display(),
        args.out_dir.join("fig2_msg_load.csv").display()
    );
}
