//! Figure 3: communication-time distributions for CR, FB, and AMG under
//! all ten placement x routing configurations.
//!
//! Thin wrapper over [`dfly_bench::figures::fig3`], which the golden-run
//! regression suite (`tests/golden_figures.rs`) drives in-process. Pass
//! `--obs` to also emit the `obs_*.csv` telemetry ledgers per app.

use dfly_bench::{figures, parse_args};

fn main() {
    figures::fig3(&parse_args());
}
