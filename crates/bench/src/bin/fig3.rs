//! Figure 3: communication-time distributions for CR, FB, and AMG under
//! all ten placement x routing configurations.
//!
//! Paper's qualitative result: CR best near rand-min, FB best at
//! rand-adp, AMG best at cont-adp; cont-min is the worst for FB.

use dfly_bench::{label_of, parse_args, print_boxplot_table};
use dfly_core::report::ConfigLabel;
use dfly_core::sweep::run_config_grid;
use dfly_workloads::AppKind;

fn main() {
    let args = parse_args();
    println!("Figure 3 reproduction — mode: {}", args.mode_label());
    let mut csv = args.csv(
        "fig3_comm_time.csv",
        &[
            "app",
            "config",
            "min_ms",
            "q1_ms",
            "median_ms",
            "q3_ms",
            "max_ms",
            "mean_ms",
        ],
    );
    for app in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
        let base = args.base_config(app);
        let t0 = std::time::Instant::now();
        let grid = run_config_grid(&base, &ConfigLabel::all_ten());
        let rows: Vec<(String, dfly_stats::BoxStats)> = grid
            .iter()
            .map(|g| (label_of(&g.label), g.result.comm_time_stats()))
            .collect();
        for (label, s) in &rows {
            csv.row(&[
                app.label().to_string(),
                label.clone(),
                format!("{:.6}", s.min),
                format!("{:.6}", s.q1),
                format!("{:.6}", s.median),
                format!("{:.6}", s.q3),
                format!("{:.6}", s.max),
                format!("{:.6}", s.mean),
            ])
            .expect("csv");
        }
        print_boxplot_table(
            &format!("Fig 3: {} communication time (ms)", app.label()),
            &rows,
        );
        let best = rows
            .iter()
            .min_by(|a, b| a.1.median.partial_cmp(&b.1.median).unwrap())
            .unwrap();
        let worst = rows
            .iter()
            .max_by(|a, b| a.1.median.partial_cmp(&b.1.median).unwrap())
            .unwrap();
        println!(
            "{}: best {} ({:.3} ms), worst {} ({:.3} ms)  [{:.0}s wall]",
            app.label(),
            best.0,
            best.1.median,
            worst.0,
            worst.1.median,
            t0.elapsed().as_secs_f64()
        );
    }
    csv.finish().expect("csv");
    println!(
        "\nWrote {}",
        args.out_dir.join("fig3_comm_time.csv").display()
    );
}
