//! Figures 4, 5, 6: network-level metrics of the application study
//! (all three in one pass; see also the `fig4`, `fig5`, `fig6` aliases).

use dfly_bench::parse_args;
use dfly_workloads::AppKind;

fn main() {
    let args = parse_args();
    dfly_bench::figures::fig456(
        &args,
        &[AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg],
    );
}
