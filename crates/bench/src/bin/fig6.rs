//! Figure 6: network traffic and link saturation metrics (see
//! `dfly_bench::figures::fig456` for the shared implementation).

use dfly_bench::parse_args;
use dfly_workloads::AppKind;

fn main() {
    let args = parse_args();
    dfly_bench::figures::fig456(&args, &[AppKind::Amg]);
}
