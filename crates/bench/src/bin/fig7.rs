//! Figure 7: sensitivity of communication performance to message load
//! (max comm time relative to rand-adp, four extreme configurations).

use dfly_bench::parse_args;
use dfly_workloads::AppKind;

fn main() {
    let args = parse_args();
    dfly_bench::figures::fig7(
        &args,
        &[AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg],
    );
}
