//! Figure 9: Crystal Router under uniform-random and bursty background
//! traffic.

use dfly_bench::parse_args;
use dfly_workloads::AppKind;

fn main() {
    let args = parse_args();
    dfly_bench::figures::fig_interference(&args, AppKind::CrystalRouter, 9);
}
