//! Extension experiment (the paper's stated future work): task mapping.
//! For a fixed allocation, how should ranks be arranged on it? Runs each
//! app under contiguous and random-node placement with linear,
//! router-round-robin, and random rank mappings.

use dfly_bench::parse_args;
use dfly_core::runner::run_experiment;
use dfly_placement::{PlacementPolicy, TaskMapping};
use dfly_stats::AsciiTable;
use dfly_workloads::AppKind;

fn main() {
    let args = parse_args();
    println!("Task-mapping study — mode: {}", args.mode_label());
    let mut csv = args.csv(
        "mapping_study.csv",
        &["app", "placement", "mapping", "median_ms", "mean_hops"],
    );
    for app in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
        let mut table = AsciiTable::new(vec!["placement", "mapping", "median (ms)", "mean hops"]);
        for placement in [PlacementPolicy::Contiguous, PlacementPolicy::RandomNode] {
            for mapping in TaskMapping::ALL {
                let mut cfg = args.base_config(app);
                cfg.placement = placement;
                cfg.mapping = mapping;
                cfg.routing = dfly_core::config::RoutingPolicy::Adaptive;
                let r = run_experiment(&cfg);
                let median = r.comm_time_stats().median;
                table.row(vec![
                    placement.label().to_string(),
                    mapping.label().to_string(),
                    format!("{median:.3}"),
                    format!("{:.2}", r.mean_hops()),
                ]);
                csv.row(&[
                    app.label().to_string(),
                    placement.label().to_string(),
                    mapping.label().to_string(),
                    format!("{median:.6}"),
                    format!("{:.3}", r.mean_hops()),
                ])
                .expect("csv");
            }
        }
        println!("\n== {} ==", app.label());
        print!("{}", table.render());
    }
    csv.finish().expect("csv");
    println!(
        "\n(linear mapping preserves rank-neighborhood locality; rr-router \
         deliberately breaks it)\nWrote {}",
        args.out_dir.join("mapping_study.csv").display()
    );
}
