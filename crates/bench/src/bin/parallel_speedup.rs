//! Intra-run PDES speedup gate: serial loop vs group-sharded engine.
//!
//! Runs a fixed Theta-scale workload (CrystalRouter, 1000 ranks,
//! random-node placement, adaptive routing, scale 0.5, seed 0x5EED)
//! through the legacy serial loop and the sharded engine at each
//! requested worker count, interleaved A/B so machine drift hits every
//! side equally. Two artifacts:
//!
//! * `parallel_speedup.csv` — one row per execution mode with the median
//!   wall time and the speedup over serial.
//! * `BENCH_parallel_speedup.json` — the same numbers machine-readable,
//!   plus the gate verdict CI archives per commit.
//!
//! `--gate RATIO` exits nonzero when the highest shard count's speedup
//! falls short — but only when the host actually has enough cores to
//! host the workers (shards + 2, for the coordinator and slack);
//! otherwise the verdict is recorded as skipped. The ISSUE 7 acceptance
//! number is `--gate 1.8` at `--shards 1,4`.
//!
//! Sharded runs double as a determinism check: every shard count must
//! produce byte-identical rank communication times (the per-group
//! partition makes worker count irrelevant), and every mode must repeat
//! its own event count across trials.

use dfly_core::config::{Parallelism, RoutingPolicy};
use dfly_core::runner::{execute_experiment_with_arena, prepare_topology, ExperimentResult};
use dfly_core::ExperimentConfig;
use dfly_network::SimArena;
use dfly_placement::PlacementPolicy;
use dfly_stats::CsvWriter;
use dfly_workloads::AppKind;
use std::path::PathBuf;
use std::time::Instant;

const SEED: u64 = 0x5EED;
const SCALE: f64 = 0.5;

struct Cli {
    out_dir: PathBuf,
    trials: usize,
    shards: Vec<u32>,
    gate: Option<f64>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        out_dir: PathBuf::from("results"),
        trials: 3,
        shards: vec![1, 4],
        gate: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => cli.out_dir = args.next().expect("--out needs a directory").into(),
            "--trials" => {
                cli.trials = args
                    .next()
                    .expect("--trials needs a count")
                    .parse()
                    .expect("--trials needs an integer");
                assert!(cli.trials >= 1, "--trials must be >= 1");
            }
            "--shards" => {
                let v = args.next().expect("--shards needs a comma list");
                cli.shards = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("--shards needs integers"))
                    .collect();
                assert!(
                    !cli.shards.is_empty() && cli.shards.iter().all(|&n| n >= 1),
                    "--shards needs positive worker counts"
                );
            }
            "--gate" => {
                let g: f64 = args
                    .next()
                    .expect("--gate needs a ratio")
                    .parse()
                    .expect("--gate needs a number");
                assert!(g > 0.0, "--gate must be positive");
                cli.gate = Some(g);
            }
            "--help" | "-h" => {
                eprintln!("usage: [--out DIR] [--trials N] [--shards 1,4] [--gate RATIO]");
                std::process::exit(0);
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    cli
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

struct ModeOutcome {
    label: String,
    shards: u32, // 0 = serial
    events: u64,
    wall_s: f64,
}

fn main() {
    let cli = parse_cli();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut base = ExperimentConfig::theta(AppKind::CrystalRouter);
    base.placement = PlacementPolicy::RandomNode;
    base.routing = RoutingPolicy::Adaptive;
    base.msg_scale = SCALE;
    base.seed = SEED;
    let modes: Vec<(String, Parallelism)> =
        std::iter::once(("serial".to_string(), Parallelism::Serial))
            .chain(
                cli.shards
                    .iter()
                    .map(|&n| (format!("pdes{n}"), Parallelism::IntraRun(n))),
            )
            .collect();
    println!(
        "Parallel-speedup A/B: CrystalRouter Theta, scale {SCALE}, seed {SEED:#x}, \
         modes {:?}, {} trials/side, {cores} cores",
        modes.iter().map(|(l, _)| l.as_str()).collect::<Vec<_>>(),
        cli.trials
    );

    let topo = prepare_topology(&base);
    let mut arena = SimArena::new();
    let mut run_mode = |p: Parallelism| -> (ExperimentResult, f64) {
        let mut cfg = base.clone();
        cfg.parallelism = p;
        let t0 = Instant::now();
        let r = execute_experiment_with_arena(&cfg, topo.clone(), &mut arena);
        (r, t0.elapsed().as_secs_f64())
    };

    // Warmup sweep: fault in code paths, grow arenas, pin reference runs.
    let refs: Vec<ExperimentResult> = modes.iter().map(|&(_, p)| run_mode(p).0).collect();
    for (i, r) in refs.iter().enumerate().skip(2) {
        assert_eq!(
            refs[1].rank_comm_times, r.rank_comm_times,
            "worker count changed the sharded schedule ({})",
            modes[i].0
        );
    }
    let serial_end = refs[0].job_end.as_nanos() as f64;
    let pdes_end = refs
        .get(1)
        .map_or(serial_end, |r| r.job_end.as_nanos() as f64);
    let schedule_delta = (pdes_end - serial_end).abs() / serial_end.max(1.0);
    println!(
        "serial job_end {} vs sharded {} ({:+.2}% schedule deviation)",
        refs[0].job_end,
        refs.get(1).map_or(refs[0].job_end, |r| r.job_end),
        100.0 * (pdes_end - serial_end) / serial_end.max(1.0),
    );
    assert!(
        schedule_delta < 0.25,
        "sharded schedule diverged {:.1}% from serial — modeling bug, not jitter",
        schedule_delta * 100.0
    );

    // Interleaved trials.
    let mut walls: Vec<Vec<f64>> = modes.iter().map(|_| Vec::new()).collect();
    for _ in 0..cli.trials {
        for (i, &(ref label, p)) in modes.iter().enumerate() {
            let (r, wall) = run_mode(p);
            assert_eq!(r.events, refs[i].events, "{label} run not deterministic");
            walls[i].push(wall);
        }
    }
    let outcomes: Vec<ModeOutcome> = modes
        .iter()
        .zip(&mut walls)
        .zip(&refs)
        .map(|(((label, p), w), r)| ModeOutcome {
            label: label.clone(),
            shards: match p {
                Parallelism::Serial => 0,
                Parallelism::IntraRun(n) => *n,
            },
            events: r.events,
            wall_s: median(w),
        })
        .collect();

    let serial_wall = outcomes[0].wall_s;
    for o in &outcomes {
        println!(
            "{:>8}: {:.1}M events, median {:.2}s, speedup {:.2}x",
            o.label,
            o.events as f64 / 1e6,
            o.wall_s,
            serial_wall / o.wall_s
        );
    }

    std::fs::create_dir_all(&cli.out_dir).expect("create out dir");
    let csv_path = cli.out_dir.join("parallel_speedup.csv");
    let mut csv = CsvWriter::create(
        &csv_path,
        &[
            "mode",
            "shards",
            "trials",
            "events",
            "median_wall_s",
            "speedup_vs_serial",
        ],
    )
    .expect("open csv");
    for o in &outcomes {
        csv.row(&[
            o.label.clone(),
            o.shards.to_string(),
            cli.trials.to_string(),
            o.events.to_string(),
            format!("{:.4}", o.wall_s),
            format!("{:.4}", serial_wall / o.wall_s),
        ])
        .expect("csv write");
    }
    csv.finish().expect("csv flush");

    // Gate verdict: measured against the highest shard count, but only
    // meaningful when the host can actually run the workers in parallel.
    let best = outcomes[1..]
        .iter()
        .max_by_key(|o| o.shards)
        .expect("at least one sharded mode");
    let speedup = serial_wall / best.wall_s;
    let runnable = cores >= best.shards as usize + 2;
    let verdict = match cli.gate {
        None => "unchecked".to_string(),
        Some(_) if !runnable => format!("skipped ({cores} cores < {} needed)", best.shards + 2),
        Some(g) if speedup >= g => "pass".to_string(),
        Some(_) => "fail".to_string(),
    };

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": \"crystalrouter theta scale {SCALE} seed {SEED:#x}\",\n"
    ));
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"trials\": {},\n", cli.trials));
    json.push_str(&format!(
        "  \"schedule_deviation\": {:.4},\n",
        schedule_delta
    ));
    json.push_str("  \"scenarios\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"shards\": {}, \"events\": {}, \
             \"median_wall_s\": {:.4}, \"speedup_vs_serial\": {:.4}}}{}\n",
            o.label,
            o.shards,
            o.events,
            o.wall_s,
            serial_wall / o.wall_s,
            if i + 1 < outcomes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"gate\": {{\"threshold\": {}, \"mode\": \"{}\", \"speedup\": {:.4}, \
         \"status\": \"{verdict}\"}}\n",
        cli.gate.map_or("null".to_string(), |g| format!("{g:.2}")),
        best.label,
        speedup
    ));
    json.push_str("}\n");
    let json_path = cli.out_dir.join("BENCH_parallel_speedup.json");
    std::fs::write(&json_path, json).unwrap_or_else(|e| panic!("cannot write {json_path:?}: {e}"));
    println!("Wrote {} and {}", csv_path.display(), json_path.display());

    if let Some(g) = cli.gate {
        if verdict == "fail" {
            eprintln!(
                "FAIL: {} speedup {speedup:.2}x below the {g:.2}x gate",
                best.label
            );
            std::process::exit(1);
        }
        println!("gate {g:.2}x: {verdict} ({} at {speedup:.2}x)", best.label);
    }
}
