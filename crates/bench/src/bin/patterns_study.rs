//! Extension experiment: synthetic-pattern study in the style of the
//! related work (Jain et al. SC'14) — every classic traffic pattern under
//! the four extreme placement x routing configurations, reporting
//! completion time and the Gini imbalance of global-channel traffic.

use dfly_bench::parse_args;
use dfly_core::config::RoutingPolicy;
use dfly_core::mpi::MpiDriver;
use dfly_engine::Xoshiro256;
use dfly_network::{MetricsFilter, Network};
use dfly_placement::{NodePool, PlacementPolicy};
use dfly_stats::{gini, AsciiTable};
use dfly_topology::Topology;
use dfly_workloads::{generate_pattern, Pattern, PatternSpec};
use std::sync::Arc;

fn main() {
    let args = parse_args();
    println!("Synthetic-pattern study — mode: {}", args.mode_label());
    let base = args.base_config(dfly_workloads::AppKind::CrystalRouter);
    let topo = Arc::new(Topology::build(base.topology.clone()));
    let ranks = base.app.ranks();

    let mut csv = args.csv(
        "patterns_study.csv",
        &[
            "pattern",
            "config",
            "job_end_ms",
            "global_traffic_gini",
            "local_traffic_gini",
        ],
    );
    for pattern in Pattern::ALL {
        let spec = PatternSpec {
            pattern,
            ranks,
            bytes_per_phase: 256 * 1024,
            phases: 4,
            seed: 0xBEEF,
        };
        let trace = generate_pattern(&spec);
        let mut table =
            AsciiTable::new(vec!["config", "job end (ms)", "global gini", "local gini"]);
        for (placement, routing) in [
            (PlacementPolicy::Contiguous, RoutingPolicy::Minimal),
            (PlacementPolicy::RandomNode, RoutingPolicy::Minimal),
            (PlacementPolicy::Contiguous, RoutingPolicy::Adaptive),
            (PlacementPolicy::RandomNode, RoutingPolicy::Adaptive),
        ] {
            let mut pool = NodePool::new(&topo);
            let mut rng = Xoshiro256::seed_from(0x9A77);
            let nodes = placement
                .allocate(&topo, &mut pool, ranks, &mut rng)
                .expect("fits");
            let mut net = Network::new(topo.clone(), base.network, routing, 0x50D);
            let result = MpiDriver::new(&mut net, &trace, &nodes, None).run();
            let metrics = net.metrics();
            let g_gini = gini(&metrics.global_traffic(&MetricsFilter::All));
            let l_gini = gini(&metrics.local_traffic(&MetricsFilter::All));
            let label = format!("{}-{}", placement.label(), routing.label());
            table.row(vec![
                label.clone(),
                format!("{:.3}", result.job_end.as_ms_f64()),
                format!("{g_gini:.3}"),
                format!("{l_gini:.3}"),
            ]);
            csv.row(&[
                pattern.label().to_string(),
                label,
                format!("{:.6}", result.job_end.as_ms_f64()),
                format!("{g_gini:.4}"),
                format!("{l_gini:.4}"),
            ])
            .expect("csv");
        }
        println!("\n== pattern: {} ==", pattern.label());
        print!("{}", table.render());
    }
    csv.finish().expect("csv");
    println!(
        "\n(gini: 0 = perfectly balanced channel traffic, 1 = all on one channel)\nWrote {}",
        args.out_dir.join("patterns_study.csv").display()
    );
}
