//! Performance probe: one full-scale CR run per routing policy, timing the
//! simulator. Not a paper figure — a development tool for sizing the
//! reproduction binaries' budgets.

use dfly_bench::parse_args;
use dfly_core::config::RoutingPolicy;
use dfly_core::runner::run_experiment;
use dfly_placement::PlacementPolicy;
use dfly_workloads::AppKind;

fn main() {
    let args = parse_args();
    for app in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
        let mut cfg = args.base_config(app);
        cfg.placement = PlacementPolicy::RandomNode;
        cfg.routing = RoutingPolicy::Adaptive;
        let t0 = std::time::Instant::now();
        let r = run_experiment(&cfg);
        let wall = t0.elapsed();
        println!(
            "{}: ranks={} sim_end={} events={:.1}M wall={:.2}s ({:.2}M ev/s)",
            app.label(),
            cfg.app.ranks(),
            r.job_end,
            r.events as f64 / 1e6,
            wall.as_secs_f64(),
            r.events as f64 / 1e6 / wall.as_secs_f64().max(1e-9),
        );
    }
}
