//! Routing-policy comparison: min / adp / val / ugalg / par on one
//! machine for CR and FB, audits and telemetry forced on.
//!
//! Thin wrapper over [`dfly_bench::routing_comparison`]. Accepts the
//! standard harness flags, including `--topo` and `--arrangement`.

use dfly_bench::{parse_args, routing_comparison};

fn main() {
    routing_comparison::routing_comparison(&parse_args());
}
