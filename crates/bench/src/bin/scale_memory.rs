//! Memory/scale regression bench: can a run past Theta's size keep its
//! metric structures bounded?
//!
//! Runs one fixed fig3-style cell (CrystalRouter, contiguous placement,
//! adaptive routing, seed 0x5CA1E) on a ≥64-group canonic dragonfly in
//! both metric modes, streaming first so its `VmHWM` reading is not
//! polluted by the dense side (the kernel high-water mark only grows):
//!
//! * `--quick` (the CI smoke): 65 groups of 8 routers, 4 nodes/router =
//!   2,080 nodes — past the paper's 12-group Theta in group count.
//! * `--full`: 257 groups of 32 routers, 16 nodes/router = 131,584
//!   nodes — the 100k-node target. Serial event loop: per-group PDES
//!   replicas would multiply channel state 257-fold.
//!
//! Artifacts:
//!
//! * `scale_memory.csv` — one row per mode with events, wall time,
//!   per-subsystem metric bytes (telemetry series + link digest, figure
//!   CDFs), peak RSS, and traffic-CDF quantiles for the dense-vs-
//!   streaming accuracy comparison.
//! * `BENCH_scale_memory.json` — the same numbers machine-readable, the
//!   form CI archives per commit.
//!
//! `--gate BYTES` exits nonzero when the streaming side's metric bytes
//! (telemetry + CDFs) exceed the budget — the CI smoke runs with
//! `--gate 2000000`. The dense side is reported but never gated: its
//! growth with machine size is exactly what streaming mode is for.

use dfly_bench::harness::scaled_ranks;
use dfly_core::config::{AppSelection, ExperimentConfig, RoutingPolicy};
use dfly_core::runner::{execute_experiment, prepare_topology};
use dfly_network::{MetricsFilter, MetricsMode};
use dfly_placement::PlacementPolicy;
use dfly_stats::Cdf;
use dfly_topology::TopologyConfig;
use dfly_workloads::AppKind;
use std::path::PathBuf;
use std::time::Instant;

/// Fixed workload identity — deliberately not configurable so the JSON
/// is comparable across commits.
const SEED: u64 = 0x5CA1E;
/// Rank ceiling: the app is the probe, the machine is the subject, so
/// the workload stays fixed-size while the topology scales.
const MAX_RANKS: u32 = 512;

struct Cli {
    full: bool,
    out_dir: PathBuf,
    gate: Option<usize>,
    reservoir_k: u32,
    scale: f64,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        full: false,
        out_dir: PathBuf::from("results"),
        gate: None,
        reservoir_k: dfly_stats::DEFAULT_RESERVOIR_K,
        scale: 0.25,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => cli.full = false,
            "--full" => cli.full = true,
            "--out" => cli.out_dir = args.next().expect("--out needs a directory").into(),
            "--gate" => {
                let v = args.next().expect("--gate needs a byte budget");
                cli.gate = Some(v.parse().expect("--gate needs an integer"));
            }
            "--reservoir-k" => {
                let v = args.next().expect("--reservoir-k needs a size");
                cli.reservoir_k = v.parse().expect("--reservoir-k needs an integer");
                assert!(cli.reservoir_k >= 2, "--reservoir-k must be >= 2");
            }
            "--scale" => {
                let v = args.next().expect("--scale needs a factor");
                cli.scale = v.parse().expect("--scale needs a number");
                assert!(cli.scale > 0.0, "--scale must be positive");
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: [--quick|--full] [--out DIR] [--gate BYTES] [--reservoir-k K] [--scale X]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    cli
}

/// Peak resident set (`VmHWM`) in KiB from `/proc/self/status`, or 0
/// where procfs is unavailable. Monotone over the process lifetime —
/// callers must order measurements smallest-expected-first.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

struct ModeOutcome {
    mode: MetricsMode,
    events: u64,
    job_end_ms: f64,
    wall_s: f64,
    /// Telemetry bytes: sample series + link digest.
    obs_bytes: usize,
    obs_samples: usize,
    /// Figure-pipeline bytes: retained samples of the four channel CDFs.
    cdf_bytes: usize,
    peak_rss_kb: u64,
    local_cdf: Cdf,
    global_cdf: Cdf,
}

impl ModeOutcome {
    fn metric_bytes(&self) -> usize {
        self.obs_bytes + self.cdf_bytes
    }
}

fn run_mode(cfg: &ExperimentConfig) -> ModeOutcome {
    let topo = prepare_topology(cfg);
    let t0 = Instant::now();
    let r = execute_experiment(cfg, topo);
    let wall_s = t0.elapsed().as_secs_f64();
    let obs = r.obs.as_ref().expect("obs on");
    let all = MetricsFilter::All;
    let cdfs = [
        r.local_traffic_mb_cdf(&all),
        r.global_traffic_mb_cdf(&all),
        r.local_saturation_ms_cdf(&all),
        r.global_saturation_ms_cdf(&all),
    ];
    let cdf_bytes = cdfs
        .iter()
        .map(|c| c.len() * std::mem::size_of::<f64>())
        .sum();
    let [local_cdf, global_cdf, _, _] = cdfs;
    ModeOutcome {
        mode: cfg.network.metrics,
        events: r.events,
        job_end_ms: r.job_end.as_ms_f64(),
        wall_s,
        obs_bytes: obs.approx_metric_bytes(),
        obs_samples: obs.series.samples().len(),
        cdf_bytes,
        peak_rss_kb: peak_rss_kb(),
        local_cdf,
        global_cdf,
    }
}

fn quantiles(c: &Cdf) -> [f64; 3] {
    if c.is_empty() {
        return [0.0; 3];
    }
    [c.quantile(0.5), c.quantile(0.9), c.quantile(0.99)]
}

fn main() {
    let cli = parse_cli();
    let topo_cfg = if cli.full {
        // 257 groups x 32 routers x 16 nodes = 131,584 nodes; a*h = 512
        // global ports per group comfortably wire 256 peers.
        TopologyConfig::canonical(16, 32, 16, 257)
    } else {
        // 65 groups x 8 routers x 4 nodes = 2,080 nodes; a*h = 64 ports
        // wire the other 64 groups exactly once (fully connected).
        TopologyConfig::canonical(4, 8, 8, 65)
    };
    topo_cfg.validate().expect("canonic machine invalid");
    let nodes = topo_cfg.total_nodes();
    let ranks = scaled_ranks(AppKind::CrystalRouter, nodes).min(MAX_RANKS);

    let mut base = ExperimentConfig::quick(AppKind::CrystalRouter);
    base.topology = topo_cfg.clone();
    base.app = AppSelection::CrystalRouter { ranks };
    base.placement = PlacementPolicy::Contiguous;
    base.routing = RoutingPolicy::Adaptive;
    base.msg_scale *= cli.scale;
    base.seed = SEED;
    base.network.obs = true;
    base.network.audit = false;
    base.validate().expect("invalid scale config");

    println!(
        "Scale/memory A/B: CrystalRouter x{ranks}, canonic {}g x {}r x {}n = {} nodes, \
         scale {}, seed {SEED:#x}, K={}",
        topo_cfg.groups,
        topo_cfg.routers_per_group(),
        topo_cfg.nodes_per_router,
        nodes,
        cli.scale,
        cli.reservoir_k,
    );

    // Streaming first: VmHWM only ever grows, so the bounded side must
    // be measured before dense inflates the high-water mark.
    let mut stream_cfg = base.clone();
    stream_cfg.network.metrics = MetricsMode::Streaming {
        reservoir_k: cli.reservoir_k,
    };
    let streaming = run_mode(&stream_cfg);
    let dense = run_mode(&base);
    assert_eq!(
        streaming.events, dense.events,
        "metrics mode changed the event count"
    );
    assert_eq!(
        streaming.job_end_ms, dense.job_end_ms,
        "metrics mode changed the simulation"
    );

    let outcomes = [&streaming, &dense];
    for o in outcomes {
        println!(
            "{:>14}: {} events in {:.1}s, telemetry {} B ({} samples), CDFs {} B, peak RSS {} MiB",
            o.mode.label(),
            o.events,
            o.wall_s,
            o.obs_bytes,
            o.obs_samples,
            o.cdf_bytes,
            o.peak_rss_kb / 1024,
        );
    }
    let dl = quantiles(&dense.local_cdf);
    let sl = quantiles(&streaming.local_cdf);
    let dg = quantiles(&dense.global_cdf);
    let sg = quantiles(&streaming.global_cdf);
    println!(
        "local traffic MB p50/p90/p99: dense {:.3}/{:.3}/{:.3} vs streaming {:.3}/{:.3}/{:.3}",
        dl[0], dl[1], dl[2], sl[0], sl[1], sl[2]
    );
    println!(
        "global traffic MB p50/p90/p99: dense {:.3}/{:.3}/{:.3} vs streaming {:.3}/{:.3}/{:.3}",
        dg[0], dg[1], dg[2], sg[0], sg[1], sg[2]
    );

    std::fs::create_dir_all(&cli.out_dir).expect("create out dir");
    let csv_path = cli.out_dir.join("scale_memory.csv");
    let mut csv = dfly_stats::CsvWriter::create(
        &csv_path,
        &[
            "mode",
            "groups",
            "nodes",
            "ranks",
            "events",
            "job_end_ms",
            "wall_s",
            "obs_metric_bytes",
            "obs_samples",
            "cdf_bytes",
            "metric_bytes_total",
            "peak_rss_kb",
            "local_mb_p50",
            "local_mb_p90",
            "local_mb_p99",
            "global_mb_p50",
            "global_mb_p90",
            "global_mb_p99",
        ],
    )
    .unwrap_or_else(|e| panic!("cannot create {csv_path:?}: {e}"));
    for o in outcomes {
        let l = quantiles(&o.local_cdf);
        let g = quantiles(&o.global_cdf);
        csv.row(&[
            o.mode.label(),
            topo_cfg.groups.to_string(),
            nodes.to_string(),
            ranks.to_string(),
            o.events.to_string(),
            format!("{:.3}", o.job_end_ms),
            format!("{:.2}", o.wall_s),
            o.obs_bytes.to_string(),
            o.obs_samples.to_string(),
            o.cdf_bytes.to_string(),
            o.metric_bytes().to_string(),
            o.peak_rss_kb.to_string(),
            format!("{:.6}", l[0]),
            format!("{:.6}", l[1]),
            format!("{:.6}", l[2]),
            format!("{:.6}", g[0]),
            format!("{:.6}", g[1]),
            format!("{:.6}", g[2]),
        ])
        .expect("csv write");
    }
    csv.finish().expect("csv flush");

    // Hand-formatted JSON (no serde in the workspace): flat fields per
    // mode plus the machine identity and the gate verdict.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"machine\": \"canonic {}g x {}r x {}n = {} nodes\",\n",
        topo_cfg.groups,
        topo_cfg.routers_per_group(),
        topo_cfg.nodes_per_router,
        nodes
    ));
    json.push_str(&format!(
        "  \"workload\": \"crystalrouter x{ranks} scale {} seed {SEED:#x}\",\n",
        cli.scale
    ));
    json.push_str(&format!("  \"reservoir_k\": {},\n", cli.reservoir_k));
    json.push_str("  \"modes\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let l = quantiles(&o.local_cdf);
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"events\": {}, \"wall_s\": {:.2}, \
             \"obs_metric_bytes\": {}, \"obs_samples\": {}, \"cdf_bytes\": {}, \
             \"metric_bytes_total\": {}, \"peak_rss_kb\": {}, \
             \"local_mb_p50\": {:.6}, \"local_mb_p90\": {:.6}, \"local_mb_p99\": {:.6}}}{}\n",
            o.mode.label(),
            o.events,
            o.wall_s,
            o.obs_bytes,
            o.obs_samples,
            o.cdf_bytes,
            o.metric_bytes(),
            o.peak_rss_kb,
            l[0],
            l[1],
            l[2],
            if i + 1 < outcomes.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"gate_bytes\": {},\n",
        cli.gate.map_or("null".to_string(), |g| g.to_string())
    ));
    json.push_str(&format!(
        "  \"streaming_metric_bytes\": {}\n}}\n",
        streaming.metric_bytes()
    ));
    let json_path = cli.out_dir.join("BENCH_scale_memory.json");
    std::fs::write(&json_path, json).unwrap_or_else(|e| panic!("cannot write {json_path:?}: {e}"));
    println!("Wrote {} and {}", csv_path.display(), json_path.display());

    if let Some(gate) = cli.gate {
        let got = streaming.metric_bytes();
        if got > gate {
            eprintln!("FAIL: streaming metric bytes {got} exceed the {gate}-byte gate");
            std::process::exit(1);
        }
        println!("gate {gate} B: ok (streaming metric bytes {got})");
    }
}
