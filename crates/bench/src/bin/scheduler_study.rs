//! Extension experiment: the batch-scheduling loop the paper's
//! introduction motivates. A stream of mixed jobs (CR / FB / AMG) arrives
//! over time; each placement policy changes both the queueing behaviour
//! and the interference between co-running jobs. Reports per-policy
//! makespan, mean wait, and mean runtime inflation.

use dfly_bench::parse_args;
use dfly_core::config::{AppSelection, RoutingPolicy};
use dfly_core::multijob::JobSpec;
use dfly_core::scheduler::{run_schedule, SchedulerConfig, Submission};
use dfly_engine::Ns;
use dfly_placement::PlacementPolicy;
use dfly_stats::AsciiTable;
use dfly_workloads::AppKind;

fn main() {
    let args = parse_args();
    println!("Batch-scheduler study — mode: {}", args.mode_label());
    let base = args.base_config(AppKind::CrystalRouter);
    let total_nodes = base.topology.total_nodes();
    // A stream of eight mixed jobs, each ~1/4 of the machine, arriving
    // every 100 us: enough overlap that placement matters for queueing
    // *and* interference.
    let quarter = total_nodes / 4;
    let apps = [
        AppSelection::CrystalRouter { ranks: quarter },
        AppSelection::Amg { ranks: quarter },
        AppSelection::FillBoundary { ranks: quarter },
        AppSelection::Amg { ranks: quarter },
        AppSelection::CrystalRouter { ranks: quarter },
        AppSelection::Amg { ranks: quarter },
        AppSelection::FillBoundary { ranks: quarter },
        AppSelection::Amg { ranks: quarter },
    ];

    let mut csv = args.csv(
        "scheduler_study.csv",
        &[
            "placement",
            "job_index",
            "app",
            "arrival_us",
            "wait_us",
            "runtime_us",
        ],
    );
    let mut table = AsciiTable::new(vec![
        "placement",
        "makespan (ms)",
        "mean wait (us)",
        "mean runtime (us)",
        "AMG mean runtime (us)",
    ]);
    for placement in PlacementPolicy::ALL {
        let submissions: Vec<Submission> = apps
            .iter()
            .enumerate()
            .map(|(i, &app)| Submission {
                job: JobSpec {
                    app,
                    placement,
                    msg_scale: 1.0,
                },
                arrival: Ns::from_us(100 * i as u64),
            })
            .collect();
        let cfg = SchedulerConfig {
            topology: base.topology.clone(),
            network: base.network,
            routing: RoutingPolicy::Adaptive,
            submissions,
            seed: base.seed,
            parallelism: base.parallelism,
        };
        let r = run_schedule(&cfg);
        let n = r.jobs.len() as f64;
        let mean_wait = r.jobs.iter().map(|j| j.wait.as_us_f64()).sum::<f64>() / n;
        let mean_rt = r.jobs.iter().map(|j| j.runtime.as_us_f64()).sum::<f64>() / n;
        let amg: Vec<f64> = r
            .jobs
            .iter()
            .filter(|j| matches!(j.submission.job.app, AppSelection::Amg { .. }))
            .map(|j| j.runtime.as_us_f64())
            .collect();
        let amg_mean = amg.iter().sum::<f64>() / amg.len() as f64;
        table.row(vec![
            placement.label().to_string(),
            format!("{:.3}", r.makespan.as_ms_f64()),
            format!("{mean_wait:.1}"),
            format!("{mean_rt:.1}"),
            format!("{amg_mean:.1}"),
        ]);
        for (i, j) in r.jobs.iter().enumerate() {
            csv.row(&[
                placement.label().to_string(),
                i.to_string(),
                j.submission.job.app.kind().label().to_string(),
                format!("{:.2}", j.submission.arrival.as_us_f64()),
                format!("{:.2}", j.wait.as_us_f64()),
                format!("{:.2}", j.runtime.as_us_f64()),
            ])
            .expect("csv");
        }
    }
    csv.finish().expect("csv");
    print!("{}", table.render());
    println!(
        "\n(FCFS queue, jobs arrive every 100 us; runtime inflation under \
         random placements is the interference cost the paper's intro \
         ties to poor scheduling)\nWrote {}",
        args.out_dir.join("scheduler_study.csv").display()
    );
}
