//! Continuous multi-tenant service simulation — the operator's view of
//! the trade-off study. A Poisson (or trace-driven, `--arrivals`) stream
//! of mixed CR / FB / AMG / background jobs flows through an admission
//! policy (`--policy fcfs|easy|congestion[:BYTES]`) onto the packet-level
//! network; each job's placement is chosen at admission time by
//! `dfly_core::recommend` from its measured communication intensity and
//! the live machine state (co-runners, queued-byte congestion). Reports
//! per-tenant SLO metrics: p50/p99 queueing delay, bounded slowdown, and
//! interference blast radius.
//!
//! Standing invariants are enforced in-binary (nonzero exit on failure):
//! the whole stream runs twice and must be byte-identical, and both runs
//! carry the conservation audit, which must come back clean.
//!
//! Artifacts: `service_jobs.csv` (one row per job), `service_tenant_slo.csv`
//! (one row per tenant), `BENCH_service.json` (machine-readable summary).

use dfly_bench::harness::{parse_arrangement, Mode, RunArgs, TopoSpec};
use dfly_core::config::{Parallelism, RoutingPolicy};
use dfly_core::service::{
    run_service, tenant_slos, AdmissionPolicy, ServiceConfig, ServiceJob, ServiceResult,
    ServiceSubmission, BOUNDED_SLOWDOWN_TAU,
};
use dfly_engine::Ns;
use dfly_network::NetworkParams;
use dfly_stats::AsciiTable;
use dfly_workloads::{parse_arrivals, poisson_arrivals, tenant_label, Arrival, ArrivalPlan};
use std::time::Instant;

struct Cli {
    args: RunArgs,
    policy: AdmissionPolicy,
    /// Mean arrival rate, jobs per simulated millisecond.
    arrival_rate: Option<f64>,
    /// Stream window in simulated milliseconds.
    duration_ms: Option<f64>,
    min_jobs: Option<u32>,
    bg_share: f64,
    arrivals_file: Option<String>,
    seed: u64,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        args: RunArgs::new(Mode::Quick, "results"),
        policy: AdmissionPolicy::EasyBackfill,
        arrival_rate: None,
        duration_ms: None,
        min_jobs: None,
        bg_share: 0.25,
        arrivals_file: None,
        seed: 0x5E21,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => cli.args.mode = Mode::Quick,
            "--full" => cli.args.mode = Mode::Full,
            "--out" => {
                cli.args.out_dir = args.next().expect("--out needs a directory").into();
            }
            "--obs" => cli.args.obs = true,
            "--shards" => {
                let v = args.next().expect("--shards needs a worker count");
                cli.args.shards = v.parse().expect("--shards needs an integer");
            }
            "--topo" => {
                let v = args.next().expect("--topo needs a machine spec");
                let spec = TopoSpec::parse(&v).unwrap_or_else(|e| panic!("{e}"));
                spec.config()
                    .validate()
                    .unwrap_or_else(|e| panic!("--topo {v}: {e}"));
                cli.args.topo = Some(spec);
            }
            "--arrangement" => {
                let v = args.next().expect("--arrangement needs a wiring spec");
                cli.args.arrangement =
                    Some(parse_arrangement(&v).unwrap_or_else(|e| panic!("{e}")));
            }
            "--policy" => {
                let v = args.next().expect("--policy needs a name");
                cli.policy = AdmissionPolicy::parse(&v).unwrap_or_else(|e| panic!("{e}"));
            }
            "--arrival-rate" => {
                let v = args.next().expect("--arrival-rate needs jobs/ms");
                let r: f64 = v.parse().expect("--arrival-rate needs a number");
                assert!(r > 0.0, "--arrival-rate must be positive");
                cli.arrival_rate = Some(r);
            }
            "--duration" => {
                let v = args.next().expect("--duration needs simulated ms");
                let d: f64 = v.parse().expect("--duration needs a number");
                assert!(d > 0.0, "--duration must be positive");
                cli.duration_ms = Some(d);
            }
            "--min-jobs" => {
                let v = args.next().expect("--min-jobs needs a count");
                cli.min_jobs = Some(v.parse().expect("--min-jobs needs an integer"));
            }
            "--bg-share" => {
                let v = args.next().expect("--bg-share needs a fraction");
                cli.bg_share = v.parse().expect("--bg-share needs a number");
            }
            "--arrivals" => {
                cli.arrivals_file = Some(args.next().expect("--arrivals needs a file path"));
            }
            "--seed" => {
                let v = args.next().expect("--seed needs an integer");
                cli.seed = if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).expect("--seed: bad hex")
                } else {
                    v.parse().expect("--seed needs an integer")
                };
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: [--quick|--full] [--out DIR] [--obs] [--shards N] \
                     [--topo theta|quick|small|P,A,H,G] [--arrangement rr|consec|palm|random:SEED] \
                     [--policy fcfs|easy|congestion[:BYTES]] [--arrival-rate JOBS_PER_MS] \
                     [--duration MS] [--min-jobs N] [--bg-share F] [--arrivals FILE] [--seed S]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    cli
}

fn main() {
    let cli = parse_cli();
    // Mode defaults, each overridable by its flag: quick runs a >=200-job
    // stream on the 768-node machine; full a >=400-job stream on Theta.
    let (topology, rate, duration_ms, min_jobs, msg_scale) = match cli.args.mode {
        Mode::Quick => (
            dfly_topology::TopologyConfig::quick(),
            100.0,
            2.0,
            200,
            0.25,
        ),
        Mode::Full => (dfly_topology::TopologyConfig::theta(), 50.0, 10.0, 400, 1.0),
    };
    let mut topology = match cli.args.topo {
        Some(spec) => spec.config(),
        None => topology,
    };
    if let Some(arr) = cli.args.arrangement {
        topology.arrangement = arr;
    }
    let nodes = topology.total_nodes();
    let rate = cli.arrival_rate.unwrap_or(rate);
    let duration = Ns((1_000_000.0 * cli.duration_ms.unwrap_or(duration_ms)) as u64);
    let min_jobs = cli.min_jobs.unwrap_or(min_jobs);

    let arrivals: Vec<Arrival> = match &cli.arrivals_file {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read --arrivals {path}: {e}"));
            parse_arrivals(&text).unwrap_or_else(|e| panic!("--arrivals {path}: {e}"))
        }
        None => poisson_arrivals(&ArrivalPlan {
            rate_per_ms: rate,
            duration,
            min_jobs,
            background_share: cli.bg_share,
            min_ranks: 4,
            max_ranks: (nodes / 3).clamp(4, 512),
            msg_scale,
            seed: cli.seed,
        }),
    };
    let submissions: Vec<ServiceSubmission> = arrivals
        .iter()
        .map(|a| ServiceSubmission {
            job: ServiceJob::from_arrival(a),
            arrival: a.at,
        })
        .collect();

    let mut network = NetworkParams::default();
    network.audit = true; // standing invariant, enforced below
    network.obs = cli.args.obs;
    let config = ServiceConfig {
        topology,
        network,
        routing: RoutingPolicy::Adaptive,
        admission: cli.policy,
        submissions,
        seed: cli.seed,
        parallelism: match cli.args.shards {
            0 => Parallelism::Serial,
            n => Parallelism::IntraRun(n),
        },
    };
    println!(
        "Service stream: {} jobs ({} arrive within the {:.1} ms window), \
         {} nodes, policy {}, recommend-placed, seed {:#x}",
        config.submissions.len(),
        arrivals.iter().filter(|a| a.at <= duration).count(),
        duration.as_ms_f64(),
        nodes,
        cli.policy.label(),
        cli.seed,
    );

    let t0 = Instant::now();
    let first = run_service(&config);
    let wall = t0.elapsed().as_secs_f64();
    let second = run_service(&config);
    // Standing invariants: two-run byte-identity and a clean audit.
    assert_eq!(
        first.outcomes, second.outcomes,
        "two runs of the same stream diverged"
    );
    assert_eq!(first.makespan, second.makespan);
    assert_eq!(first.events, second.events);
    assert_eq!(first.job_slots, second.job_slots);
    let audit = first.audit.as_ref().expect("audit always on");
    assert!(audit.is_clean(), "conservation audit violated: {audit:?}");
    println!(
        "two-run byte-identity: ok; audit: clean; {} events in {:.2} s \
         ({:.2} Mev/s); makespan {:.2} ms; peak {} concurrent jobs in {} slots{}",
        first.events,
        wall,
        first.events as f64 / wall / 1e6,
        first.makespan.as_ms_f64(),
        first.peak_active_jobs,
        first.job_slots,
        if first.obs.is_some() {
            "; obs report collected"
        } else {
            ""
        },
    );

    write_jobs_csv(&cli, &config, &first);
    let slos = tenant_slos(&first.outcomes);
    let mut table = AsciiTable::new(vec![
        "tenant",
        "jobs",
        "mean wait (us)",
        "p99 wait (us)",
        "p50 slowdown",
        "p99 slowdown",
        "mean blast",
        "max blast",
    ]);
    let mut csv = cli.args.csv(
        "service_tenant_slo.csv",
        &[
            "policy",
            "tenant",
            "jobs",
            "mean_wait_us",
            "p50_wait_us",
            "p99_wait_us",
            "p50_slowdown",
            "p99_slowdown",
            "mean_runtime_us",
            "mean_blast_radius",
            "max_blast_radius",
        ],
    );
    for s in &slos {
        table.row(vec![
            tenant_label(s.tenant).to_string(),
            s.jobs.to_string(),
            format!("{:.1}", s.mean_wait_us),
            format!("{:.1}", s.p99_wait_us),
            format!("{:.2}", s.p50_slowdown),
            format!("{:.2}", s.p99_slowdown),
            format!("{:.2}", s.mean_blast_radius),
            s.max_blast_radius.to_string(),
        ]);
        csv.row(&[
            cli.policy.label().to_string(),
            tenant_label(s.tenant).to_string(),
            s.jobs.to_string(),
            format!("{:.2}", s.mean_wait_us),
            format!("{:.2}", s.p50_wait_us),
            format!("{:.2}", s.p99_wait_us),
            format!("{:.4}", s.p50_slowdown),
            format!("{:.4}", s.p99_slowdown),
            format!("{:.2}", s.mean_runtime_us),
            format!("{:.3}", s.mean_blast_radius),
            s.max_blast_radius.to_string(),
        ])
        .expect("csv write");
    }
    csv.finish().expect("csv flush");
    print!("{}", table.render());
    println!(
        "(bounded slowdown tau = {} us; blast radius = distinct co-resident \
         jobs sharing a dragonfly group)",
        BOUNDED_SLOWDOWN_TAU.as_us_f64()
    );

    write_bench_json(&cli, &config, &first, &slos, wall);
    println!(
        "Wrote {}, {} and {}",
        cli.args.out_dir.join("service_jobs.csv").display(),
        cli.args.out_dir.join("service_tenant_slo.csv").display(),
        cli.args.out_dir.join("BENCH_service.json").display(),
    );
}

fn write_jobs_csv(cli: &Cli, config: &ServiceConfig, result: &ServiceResult) {
    let mut csv = cli.args.csv(
        "service_jobs.csv",
        &[
            "policy",
            "uid",
            "tenant",
            "app",
            "ranks",
            "arrival_us",
            "wait_us",
            "runtime_us",
            "placement",
            "groups",
            "blast_radius",
        ],
    );
    let _ = config;
    for o in &result.outcomes {
        csv.row(&[
            cli.policy.label().to_string(),
            o.uid.to_string(),
            tenant_label(o.tenant).to_string(),
            o.label.to_string(),
            o.ranks.to_string(),
            format!("{:.2}", o.arrival.as_us_f64()),
            format!("{:.2}", o.wait.as_us_f64()),
            format!("{:.2}", o.runtime.as_us_f64()),
            o.placement.label().to_string(),
            o.groups.to_string(),
            o.blast_radius.to_string(),
        ])
        .expect("csv write");
    }
    csv.finish().expect("csv flush");
}

fn write_bench_json(
    cli: &Cli,
    config: &ServiceConfig,
    result: &ServiceResult,
    slos: &[dfly_core::service::TenantSlo],
    wall_s: f64,
) {
    // Hand-formatted JSON — the workspace has no serde.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": \"poisson service stream, {} jobs, seed {:#x}\",\n",
        config.submissions.len(),
        cli.seed
    ));
    json.push_str(&format!("  \"policy\": \"{}\",\n", cli.policy.label()));
    json.push_str(&format!(
        "  \"nodes\": {},\n  \"jobs\": {},\n  \"makespan_ms\": {:.3},\n",
        config.topology.total_nodes(),
        result.outcomes.len(),
        result.makespan.as_ms_f64()
    ));
    json.push_str(&format!(
        "  \"peak_active_jobs\": {},\n  \"job_slots\": {},\n  \"events\": {},\n",
        result.peak_active_jobs, result.job_slots, result.events
    ));
    json.push_str(&format!(
        "  \"wall_s\": {:.3},\n  \"events_per_sec\": {:.0},\n",
        wall_s,
        result.events as f64 / wall_s
    ));
    json.push_str("  \"audit_clean\": true,\n  \"two_run_identical\": true,\n");
    json.push_str("  \"tenants\": [\n");
    for (i, s) in slos.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tenant\": \"{}\", \"jobs\": {}, \"mean_wait_us\": {:.2}, \
             \"p99_wait_us\": {:.2}, \"p50_slowdown\": {:.4}, \"p99_slowdown\": {:.4}, \
             \"mean_blast_radius\": {:.3}, \"max_blast_radius\": {}}}{}\n",
            tenant_label(s.tenant),
            s.jobs,
            s.mean_wait_us,
            s.p99_wait_us,
            s.p50_slowdown,
            s.p99_slowdown,
            s.mean_blast_radius,
            s.max_blast_radius,
            if i + 1 < slos.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = cli.args.out_dir.join("BENCH_service.json");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
}
