//! Adversarial audit fuzzer: random small experiments with the packet
//! engine's conservation audits enabled (see `dfly_bench::stress`).
//!
//! ```text
//! stress [--quick] [--cases N] [--seed S]
//! ```
//!
//! * `--quick` — 25 scenarios (the CI budget).
//! * `--cases N` — explicit scenario count (default 100).
//! * `--seed S` — master seed, decimal or `0x`-hex.
//!
//! Exits 1 with the shrunk minimal failing scenario if any run violates
//! a conservation invariant.

use dfly_bench::stress::run_stress;
use std::process::exit;

fn parse_seed(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

fn main() {
    let mut cases: u32 = 100;
    let mut seed: u64 = 0x5712_E55_5EED;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => cases = 25,
            "--cases" => {
                let v = args.next().unwrap_or_default();
                cases = v.parse().unwrap_or_else(|_| {
                    eprintln!("--cases needs a number, got {v:?}");
                    exit(2);
                });
            }
            "--seed" => {
                let v = args.next().unwrap_or_default();
                seed = parse_seed(&v).unwrap_or_else(|| {
                    eprintln!("--seed needs a decimal or 0x-hex number, got {v:?}");
                    exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?} (try --quick, --cases N, --seed S)");
                exit(2);
            }
        }
    }
    println!("stress: running {cases} audited scenarios (seed {seed:#x})");
    match run_stress(cases, seed) {
        Ok(s) => println!(
            "stress: OK — {} scenarios clean, {} simulator events audited",
            s.cases, s.events
        ),
        Err(f) => {
            eprintln!("stress: FAILED — {f}");
            exit(1);
        }
    }
}
