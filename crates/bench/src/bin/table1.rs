//! Table I: nomenclature of placement and routing configurations.

fn main() {
    dfly_bench::figures::table1();
}
