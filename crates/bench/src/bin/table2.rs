//! Table II: peak background traffic load on the network.

use dfly_bench::parse_args;

fn main() {
    let args = parse_args();
    dfly_bench::figures::table2(&args);
}
