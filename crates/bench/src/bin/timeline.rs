//! Extension experiment: instantaneous network load over time — the
//! queued-bytes gauge sampled through the run, showing how bursty
//! background traffic floods the buffers while uniform-random traffic
//! keeps a steady floor (the mechanism behind Figures 9–10).

use dfly_bench::parse_args;
use dfly_core::config::RoutingPolicy;
use dfly_core::mpi::{BackgroundRunner, MultiDriver};
use dfly_engine::{Ns, Xoshiro256};
use dfly_network::Network;
use dfly_placement::{NodePool, PlacementPolicy};
use dfly_stats::sparkline;
use dfly_topology::Topology;
use dfly_workloads::{generate, AppKind, BackgroundSpec, BackgroundTraffic};
use std::sync::Arc;

fn main() {
    let args = parse_args();
    println!("Network-load timeline — mode: {}", args.mode_label());
    let base = args.base_config(AppKind::CrystalRouter);
    let topo = Arc::new(Topology::build(base.topology.clone()));
    let trace = generate(&base.app.spec(1.0, 0x71E));

    let mut csv = args.csv(
        "timeline_load.csv",
        &["scenario", "t_us", "queued_bytes", "packets_in_flight"],
    );
    for (scenario, bg_spec) in [
        ("solo", None),
        (
            "uniform-bg",
            Some(BackgroundSpec::uniform(16 * 1024, Ns::from_us(12), 3)),
        ),
        (
            "bursty-bg",
            Some(BackgroundSpec::bursty(96 * 1024, Ns::from_us(180), 8, 3)),
        ),
    ] {
        let mut pool = NodePool::new(&topo);
        let mut rng = Xoshiro256::seed_from(0x11E);
        let placement = PlacementPolicy::RandomNode
            .allocate(&topo, &mut pool, trace.ranks(), &mut rng)
            .expect("fits");
        let background = bg_spec.map(|spec| {
            let nodes = pool.free_nodes();
            BackgroundRunner::new(BackgroundTraffic::new(spec, nodes.len() as u32), nodes)
        });
        let mut net = Network::new(topo.clone(), base.network, RoutingPolicy::Adaptive, 0x3E);
        net.enable_traffic_timeline(Ns::from_us(8));
        let (results, series) = MultiDriver::new(&mut net, &[(&trace, &placement)], background)
            .with_sampler(Ns::from_us(4))
            .run_with_series();
        for ((t, q), p) in series
            .times
            .iter()
            .zip(&series.queued_bytes)
            .zip(&series.packets_in_flight)
        {
            csv.row(&[
                scenario.to_string(),
                format!("{:.2}", t.as_us_f64()),
                q.to_string(),
                p.to_string(),
            ])
            .expect("csv");
        }
        println!(
            "\n{scenario:<11} CR end {:>10}  peak queued {:>6.1} MB  load: {}",
            results[0].job_end.to_string(),
            series.peak_queued() as f64 / 1e6,
            sparkline(&series.queued_f64()),
        );
        if let Some(tl) = net.traffic_timeline() {
            let to_f = |v: &[u64]| v.iter().map(|&b| b as f64).collect::<Vec<_>>();
            println!(
                "            local  traffic/8us: {}",
                sparkline(&to_f(&tl.local_series()))
            );
            println!(
                "            global traffic/8us: {}",
                sparkline(&to_f(tl.series(dfly_topology::ChannelClass::Global)))
            );
        }
    }
    csv.finish().expect("csv");
    println!(
        "\nWrote {}",
        args.out_dir.join("timeline_load.csv").display()
    );
}
