//! Development tool: run the four extreme configurations for each app and
//! print the median communication times, to tune latency/bias parameters
//! against the paper's qualitative orderings. Not a paper figure.

use dfly_bench::parse_args;
use dfly_core::report::ConfigLabel;
use dfly_core::sweep::run_config_grid;
use dfly_engine::Ns;
use dfly_workloads::AppKind;

fn main() {
    let args = parse_args();
    // Allow overriding parameters through env vars for fast sweeps.
    let glat = std::env::var("TUNE_GLOBAL_LAT_NS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    let bias = std::env::var("TUNE_ADAPTIVE_BIAS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    for app in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
        let mut base = args.base_config(app);
        if let Some(g) = glat {
            base.topology.global_latency = Ns(g);
        }
        if let Some(b) = bias {
            base.network.adaptive_bias_bytes = b;
        }
        let grid = run_config_grid(&base, &ConfigLabel::extremes());
        print!("{:>4}:", app.label());
        for g in &grid {
            print!("  {} {:.3}ms", g.label, g.result.comm_time_stats().median);
        }
        println!();
    }
}
