//! Model validation report, mirroring the CODES-vs-Theta validation the
//! paper cites (ping-pong and bisection pairing, <8% error): compares
//! the simulator against closed-form expectations on an idle network.

use dfly_bench::parse_args;
use dfly_core::validate::{run_bisection, run_pingpong};
use dfly_network::{NetworkParams, Routing};
use dfly_stats::AsciiTable;

fn main() {
    let args = parse_args();
    let cfg = match args.mode {
        dfly_bench::Mode::Quick => dfly_topology::TopologyConfig::quick(),
        dfly_bench::Mode::Full => dfly_topology::TopologyConfig::theta(),
    };
    println!("Model validation — mode: {}", args.mode_label());

    println!("\n== Ping-pong vs closed form (same-row pair, minimal routing) ==");
    let mut table = AsciiTable::new(vec!["message", "measured RTT", "expected RTT", "error %"]);
    let mut csv = args.csv(
        "validate_pingpong.csv",
        &["bytes", "measured_ns", "expected_ns", "error_pct"],
    );
    for bytes in [1u64 << 10, 4 << 10, 64 << 10, 190 << 10, 1 << 20, 8 << 20] {
        let r = run_pingpong(&cfg, NetworkParams::default(), bytes);
        table.row(vec![
            format!("{} KiB", bytes >> 10),
            r.measured_rtt.to_string(),
            r.expected_rtt.to_string(),
            format!("{:.2}", 100.0 * r.relative_error),
        ]);
        csv.row(&[
            bytes.to_string(),
            r.measured_rtt.as_nanos().to_string(),
            r.expected_rtt.as_nanos().to_string(),
            format!("{:.4}", 100.0 * r.relative_error),
        ])
        .expect("csv");
    }
    csv.finish().expect("csv");
    print!("{}", table.render());
    println!("(the CODES-vs-Theta validation bar the paper cites is 8%)");

    println!("\n== Bisection pairing (group g <-> g + G/2) ==");
    let mut table = AsciiTable::new(vec![
        "routing",
        "makespan",
        "capacity bound",
        "efficiency",
        "achieved GiB/s",
    ]);
    for routing in [Routing::Minimal, Routing::Adaptive] {
        let r = run_bisection(&cfg, NetworkParams::default(), 1 << 20, routing);
        table.row(vec![
            routing.label().to_string(),
            r.makespan.to_string(),
            r.capacity_bound.to_string(),
            format!("{:.3}", r.efficiency),
            format!("{:.1}", r.achieved_gib_per_sec),
        ]);
    }
    print!("{}", table.render());
    println!(
        "(efficiency = capacity-bound / makespan; 1.0 = wire speed on the direct global links)"
    );
}
