//! Extension experiment: run-to-run variability — the statistic that
//! motivates the whole paper (its ref [5] reports 15%+, up to 100%, on
//! production Cray XC systems).
//!
//! Measures each placement policy's variability across seeds, solo and
//! under uniform-random background traffic, for the AMG application (the
//! paper's interference-sensitive case).

use dfly_bench::{figures, parse_args};
use dfly_core::config::RoutingPolicy;
use dfly_core::variability::measure_variability;
use dfly_placement::PlacementPolicy;
use dfly_stats::AsciiTable;
use dfly_workloads::{AppKind, BackgroundKind};

fn main() {
    let args = parse_args();
    println!("Run-to-run variability study — mode: {}", args.mode_label());
    let runs = 5;
    let mut csv = args.csv(
        "variability_study.csv",
        &[
            "scenario",
            "placement",
            "mean_median_ms",
            "variability_pct",
            "cv_pct",
        ],
    );
    for (scenario, with_bg) in [("solo", false), ("uniform-bg", true)] {
        let mut table = AsciiTable::new(vec![
            "placement",
            "mean median (ms)",
            "run-to-run variability %",
            "CV %",
        ]);
        for placement in PlacementPolicy::ALL {
            let mut cfg = args.base_config(AppKind::Amg);
            cfg.placement = placement;
            cfg.routing = RoutingPolicy::Adaptive;
            if with_bg {
                // Calibrate the background off a single solo run, as the
                // interference figures do.
                let solo = dfly_core::runner::run_experiment(&cfg);
                cfg.background = Some(dfly_core::config::BackgroundConfig {
                    spec: figures::background_for(
                        AppKind::Amg,
                        BackgroundKind::UniformRandom,
                        solo.job_end,
                    ),
                });
            }
            let report = measure_variability(&cfg, runs);
            table.row(vec![
                placement.label().to_string(),
                format!("{:.3}", report.median_stats.mean),
                format!("{:.1}", report.variability_percent),
                format!("{:.1}", report.cv_percent),
            ]);
            csv.row(&[
                scenario.to_string(),
                placement.label().to_string(),
                format!("{:.6}", report.median_stats.mean),
                format!("{:.2}", report.variability_percent),
                format!("{:.2}", report.cv_percent),
            ])
            .expect("csv");
        }
        println!("\n== AMG, {scenario} ({runs} seeds per config) ==");
        print!("{}", table.render());
    }
    csv.finish().expect("csv");
    println!(
        "\n(the paper's motivating statistic: production run-to-run \
         variability of 15%+, up to 100%, caused by network sharing)\nWrote {}",
        args.out_dir.join("variability_study.csv").display()
    );
}
