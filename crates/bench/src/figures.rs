//! Figures 4, 5, 6: network-level metrics of the application study.
//!
//! * Fig 4 (CR): average-hops CDF over ranks, local channel traffic CDF,
//!   local and global link saturation CDFs.
//! * Fig 5 (FB): local/global channel traffic + link saturation CDFs.
//! * Fig 6 (AMG): local/global channel traffic + link saturation CDFs.
//!
//! Shared implementation used by the `fig456`, `fig4`, `fig5` and
//! `fig6` binaries.

use crate::harness::{emit_cdf_family, emit_obs_family, label_of, RunArgs};
use dfly_core::report::ConfigLabel;
use dfly_core::sweep::run_config_grid;
use dfly_engine::ToKv;
use dfly_network::MetricsFilter;
use dfly_obs::ObsReport;
use dfly_stats::Cdf;
use dfly_workloads::AppKind;

/// Collect the telemetry reports of a configuration grid for
/// [`emit_obs_family`]. Empty unless the runs were made with
/// `--obs` (i.e. `NetworkParams::obs` set on the base config).
fn grid_obs_reports(grid: &[dfly_core::sweep::GridResult]) -> Vec<(String, &ObsReport)> {
    grid.iter()
        .filter_map(|g| g.result.obs.as_ref().map(|o| (label_of(&g.label), o)))
        .collect()
}

/// Figure 3: communication-time distributions for CR, FB, and AMG under
/// all ten placement x routing configurations.
///
/// Paper's qualitative result: CR best near rand-min, FB best at
/// rand-adp, AMG best at cont-adp; cont-min is the worst for FB.
/// Shared implementation of the `fig3` binary and the golden-run
/// regression suite (`tests/golden_figures.rs`).
pub fn fig3(args: &RunArgs) {
    println!("Figure 3 reproduction — mode: {}", args.mode_label());
    let mut csv = args.csv(
        "fig3_comm_time.csv",
        &[
            "app",
            "config",
            "min_ms",
            "q1_ms",
            "median_ms",
            "q3_ms",
            "max_ms",
            "mean_ms",
        ],
    );
    for app in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
        let base = args.base_config(app);
        let t0 = std::time::Instant::now();
        let grid = run_config_grid(&base, &ConfigLabel::all_ten());
        let rows: Vec<(String, dfly_stats::BoxStats)> = grid
            .iter()
            .map(|g| (label_of(&g.label), g.result.comm_time_stats()))
            .collect();
        for (label, s) in &rows {
            csv.row(&[
                app.label().to_string(),
                label.clone(),
                format!("{:.6}", s.min),
                format!("{:.6}", s.q1),
                format!("{:.6}", s.median),
                format!("{:.6}", s.q3),
                format!("{:.6}", s.max),
                format!("{:.6}", s.mean),
            ])
            .expect("csv");
        }
        print_boxplot_table(
            &format!("Fig 3: {} communication time (ms)", app.label()),
            &rows,
        );
        emit_obs_family(
            args,
            &format!("fig3_{}", app.label().to_lowercase()),
            &grid_obs_reports(&grid),
        );
        let best = rows
            .iter()
            .min_by(|a, b| a.1.median.partial_cmp(&b.1.median).unwrap())
            .unwrap();
        let worst = rows
            .iter()
            .max_by(|a, b| a.1.median.partial_cmp(&b.1.median).unwrap())
            .unwrap();
        println!(
            "{}: best {} ({:.3} ms), worst {} ({:.3} ms)  [{:.0}s wall]",
            app.label(),
            best.0,
            best.1.median,
            worst.0,
            worst.1.median,
            t0.elapsed().as_secs_f64()
        );
    }
    csv.finish().expect("csv");
    println!(
        "\nWrote {}",
        args.out_dir.join("fig3_comm_time.csv").display()
    );
}

/// Shared implementation for fig4/fig5/fig6 binaries.
pub fn fig456(args: &RunArgs, apps: &[AppKind]) {
    println!("Figures 4-6 reproduction — mode: {}", args.mode_label());
    for &app in apps {
        let fig = match app {
            AppKind::CrystalRouter => 4,
            AppKind::FillBoundary => 5,
            AppKind::Amg => 6,
        };
        let base = args.base_config(app);
        println!("\n-- fig{fig} base config --\n{}", base.kv_echo());
        let grid = run_config_grid(&base, &ConfigLabel::all_ten());
        let all = MetricsFilter::All;

        if app == AppKind::CrystalRouter {
            // Fig 4(a): average hops CDF over ranks.
            let series: Vec<(String, Cdf)> = grid
                .iter()
                .map(|g| (label_of(&g.label), g.result.hops_cdf()))
                .collect();
            emit_cdf_family(
                args,
                &format!("fig{fig}a_avg_hops.csv"),
                &format!(
                    "Fig {fig}(a): {} average hops CDF (percent of ranks)",
                    app.label()
                ),
                "avg_hops",
                &series,
            );
        }

        let local_traffic: Vec<(String, Cdf)> = grid
            .iter()
            .map(|g| (label_of(&g.label), g.result.local_traffic_mb_cdf(&all)))
            .collect();
        emit_cdf_family(
            args,
            &format!("fig{fig}_local_traffic.csv"),
            &format!("Fig {fig}: {} local channel traffic (MB)", app.label()),
            "traffic_mb",
            &local_traffic,
        );

        let global_traffic: Vec<(String, Cdf)> = grid
            .iter()
            .map(|g| (label_of(&g.label), g.result.global_traffic_mb_cdf(&all)))
            .collect();
        emit_cdf_family(
            args,
            &format!("fig{fig}_global_traffic.csv"),
            &format!("Fig {fig}: {} global channel traffic (MB)", app.label()),
            "traffic_mb",
            &global_traffic,
        );

        let local_sat: Vec<(String, Cdf)> = grid
            .iter()
            .map(|g| (label_of(&g.label), g.result.local_saturation_ms_cdf(&all)))
            .collect();
        emit_cdf_family(
            args,
            &format!("fig{fig}_local_saturation.csv"),
            &format!("Fig {fig}: {} local link saturation time (ms)", app.label()),
            "saturated_ms",
            &local_sat,
        );

        let global_sat: Vec<(String, Cdf)> = grid
            .iter()
            .map(|g| (label_of(&g.label), g.result.global_saturation_ms_cdf(&all)))
            .collect();
        emit_cdf_family(
            args,
            &format!("fig{fig}_global_saturation.csv"),
            &format!(
                "Fig {fig}: {} global link saturation time (ms)",
                app.label()
            ),
            "saturated_ms",
            &global_sat,
        );

        // Headline check: contiguous has fewer hops but more local
        // saturation than random-node (the paper's core trade-off).
        let find = |placement, routing| {
            grid.iter()
                .find(|g| g.label.placement == placement && g.label.routing == routing)
                .unwrap()
        };
        use dfly_core::config::RoutingPolicy;
        use dfly_placement::PlacementPolicy;
        let cont = find(PlacementPolicy::Contiguous, RoutingPolicy::Minimal);
        let rand = find(PlacementPolicy::RandomNode, RoutingPolicy::Minimal);
        println!(
            "{}: mean hops cont-min {:.2} vs rand-min {:.2}; total local saturation cont-min {:.3} ms vs rand-min {:.3} ms",
            app.label(),
            cont.result.mean_hops(),
            rand.result.mean_hops(),
            cont.result
                .metrics
                .local_saturation_ms(&all)
                .iter()
                .sum::<f64>(),
            rand.result
                .metrics
                .local_saturation_ms(&all)
                .iter()
                .sum::<f64>(),
        );
    }
}

// ---------------------------------------------------------------------------
// Figure 7: sensitivity to communication intensity
// ---------------------------------------------------------------------------

use crate::harness::print_boxplot_table;
use dfly_core::config::{BackgroundConfig, RoutingPolicy};
use dfly_core::runner::run_experiment;
use dfly_core::sweep::run_many;
use dfly_engine::Ns;
use dfly_placement::PlacementPolicy;
use dfly_stats::relative_percent;
use dfly_stats::AsciiTable;
use dfly_workloads::{BackgroundKind, BackgroundSpec};

/// The message-scale grid for an app (paper Section IV-B: CR/FB swept
/// from 1% to 2x the original size, AMG from 50% to 20x).
pub fn scale_grid(app: AppKind) -> Vec<f64> {
    match app {
        AppKind::CrystalRouter | AppKind::FillBoundary => {
            vec![0.01, 0.1, 0.3, 0.5, 1.0, 1.5, 2.0]
        }
        AppKind::Amg => vec![0.5, 1.0, 2.0, 5.0, 10.0, 20.0],
    }
}

/// Figure 7: maximum communication time across ranks, relative to the
/// rand-adp baseline, under the four extreme configurations and varying
/// message loads.
pub fn fig7(args: &RunArgs, apps: &[AppKind]) {
    println!("Figure 7 reproduction — mode: {}", args.mode_label());
    let mut csv = args.csv(
        "fig7_sensitivity.csv",
        &[
            "app",
            "config",
            "msg_scale",
            "max_comm_ms",
            "relative_to_rand_adp_pct",
        ],
    );
    for &app in apps {
        let scales = scale_grid(app);
        let extremes = ConfigLabel::extremes();
        // One flat batch: |extremes| x |scales| runs.
        let mut configs = Vec::new();
        for label in &extremes {
            for &s in &scales {
                let mut cfg = args.base_config(app);
                cfg.placement = label.placement;
                cfg.routing = label.routing;
                cfg.msg_scale = s;
                configs.push(cfg);
            }
        }
        let results = run_many(&configs);
        // Baseline series: rand-adp (last extreme) per scale.
        let base_idx = extremes
            .iter()
            .position(|l| *l == ConfigLabel::baseline())
            .expect("rand-adp in extremes");
        let baseline: Vec<f64> = (0..scales.len())
            .map(|si| {
                results[base_idx * scales.len() + si]
                    .max_comm_time()
                    .as_ms_f64()
            })
            .collect();

        println!(
            "\n== Fig 7: {} max comm time relative to rand-adp (%) ==",
            app.label()
        );
        let mut header: Vec<String> = vec!["config".into()];
        header.extend(scales.iter().map(|s| format!("x{s}")));
        let mut table = AsciiTable::new(header);
        for (li, label) in extremes.iter().enumerate() {
            let mut row = vec![label.to_string()];
            for (si, &scale) in scales.iter().enumerate() {
                let v = results[li * scales.len() + si].max_comm_time().as_ms_f64();
                let rel = relative_percent(v, baseline[si]);
                row.push(format!("{rel:.1}"));
                csv.row(&[
                    app.label().to_string(),
                    label.to_string(),
                    format!("{scale}"),
                    format!("{v:.6}"),
                    format!("{rel:.2}"),
                ])
                .expect("csv");
            }
            table.row(row);
        }
        print!("{}", table.render());
    }
    csv.finish().expect("csv");
    println!(
        "\nWrote {}",
        args.out_dir.join("fig7_sensitivity.csv").display()
    );
}

// ---------------------------------------------------------------------------
// Tables I & II and the external-traffic study (Figures 8-10)
// ---------------------------------------------------------------------------

/// Table I: the nomenclature of placement x routing configurations.
pub fn table1() {
    println!("Table I: Nomenclature of Different Placement and Routing Configurations\n");
    let mut table = AsciiTable::new(vec![
        "Placement Policy",
        "Minimal Routing",
        "Adaptive Routing",
    ]);
    for p in PlacementPolicy::ALL {
        table.row(vec![
            p.name().to_string(),
            format!("{}-min", p.label()),
            format!("{}-adp", p.label()),
        ]);
    }
    print!("{}", table.render());
}

/// Background-traffic parameters for an app under a mode.
///
/// The paper's Table II peak loads (38.38/38.38/27 MB uniform; 92/5.75/
/// 2.85 GB bursty) are defined against app runtimes of 20-500 ms. Our
/// traces compress time (compute stripped, dependency-only), so intervals
/// are expressed relative to the app's solo runtime `d`, and the bursty
/// per-burst volume is reduced with the same factor while preserving the
/// instantaneous overload character (see DESIGN.md / EXPERIMENTS.md).
pub fn background_for(app: AppKind, kind: BackgroundKind, solo_runtime: Ns) -> BackgroundSpec {
    let d = solo_runtime.as_nanos().max(100_000);
    match kind {
        // Small messages, short interval: balanced external load spanning
        // the app's whole runtime. The paper picks per-app intervals
        // within 0.002-1 ms; we do the same relative to the (compressed)
        // app runtime: the communication-intensive CR/FB see a moderate
        // uniform load, while latency-bound AMG sees a dense one — the
        // same Table II regime (38.38 vs 27 MB peaks, app-tuned ticks).
        BackgroundKind::UniformRandom => {
            let interval = match app {
                AppKind::CrystalRouter | AppKind::FillBoundary => d / 40,
                AppKind::Amg => d / 200,
            };
            BackgroundSpec::uniform(16 * 1024, Ns(interval), 0)
        }
        // Huge synchronized bursts at a long interval. AMG's bursty load
        // in Table II is ~2x smaller relative to uniform than CR's; keep
        // the same ordering CR > FB > AMG.
        BackgroundKind::Bursty => {
            let per_dest: u64 = match app {
                AppKind::CrystalRouter => 96 * 1024,
                AppKind::FillBoundary => 48 * 1024,
                AppKind::Amg => 32 * 1024,
            };
            BackgroundSpec::bursty(per_dest, Ns(d / 3 + 1), 8, 0)
        }
    }
}

/// Table II: peak background traffic load on the network.
pub fn table2(args: &RunArgs) {
    println!(
        "Table II: Peak Background Traffic Load — mode: {}",
        args.mode_label()
    );
    println!("(solo app runtimes measured with rand-adp; loads follow from the\n background specs used in Figures 8-10)\n");
    let mut table = AsciiTable::new(vec!["Application", "Uniform Random (MB)", "Bursty (MB)"]);
    let mut csv = args.csv(
        "table2_background_load.csv",
        &["app", "uniform_mb", "bursty_mb"],
    );
    for app in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
        let mut cfg = args.base_config(app);
        cfg.placement = PlacementPolicy::RandomNode;
        cfg.routing = RoutingPolicy::Adaptive;
        let solo = run_experiment(&cfg);
        // Under `--obs` the solo calibration runs double as the full
        // per-app telemetry dumps (only three tags, so the complete
        // time-series sinks stay manageable here).
        if let Some(obs) = &solo.obs {
            let files = obs
                .write_csvs(
                    &args.out_dir,
                    &format!("table2_{}", app.label().to_lowercase()),
                )
                .expect("obs csv");
            println!("{}", obs.render_summary());
            for f in files {
                println!("wrote {}", f.display());
            }
        }
        let bg_nodes = cfg.topology.total_nodes() - cfg.app.ranks();
        let uni = background_for(app, BackgroundKind::UniformRandom, solo.job_end)
            .peak_load_bytes(bg_nodes) as f64
            / 1e6;
        let burst = background_for(app, BackgroundKind::Bursty, solo.job_end)
            .peak_load_bytes(bg_nodes) as f64
            / 1e6;
        table.row(vec![
            app.label().to_string(),
            format!("{uni:.2}"),
            format!("{burst:.2}"),
        ]);
        csv.row(&[
            app.label().to_string(),
            format!("{uni:.3}"),
            format!("{burst:.3}"),
        ])
        .expect("csv");
    }
    csv.finish().expect("csv");
    print!("{}", table.render());
}

/// Shared implementation of Figures 8, 9, 10: the target app under
/// background traffic.
///
/// * Fig 8 (AMG): uniform-random boxes + local/global channel-traffic CDFs
///   over the app's routers.
/// * Fig 9 (CR) / Fig 10 (FB): uniform + bursty boxes + bursty local
///   channel-traffic CDF over the app's routers.
pub fn fig_interference(args: &RunArgs, app: AppKind, fig: u32) {
    println!(
        "Figure {fig} reproduction ({} with background traffic) — mode: {}",
        app.label(),
        args.mode_label()
    );
    // Solo runtime calibrates the background intervals.
    let mut solo_cfg = args.base_config(app);
    solo_cfg.placement = PlacementPolicy::RandomNode;
    solo_cfg.routing = RoutingPolicy::Adaptive;
    let solo = run_experiment(&solo_cfg);
    println!(
        "solo rand-adp runtime: {} (median comm {:.3} ms)",
        solo.job_end,
        solo.comm_time_stats().median
    );

    let kinds: &[BackgroundKind] = match app {
        AppKind::Amg => &[BackgroundKind::UniformRandom],
        _ => &[BackgroundKind::UniformRandom, BackgroundKind::Bursty],
    };
    let mut csv = args.csv(
        &format!("fig{fig}_comm_time.csv"),
        &[
            "app",
            "background",
            "config",
            "min_ms",
            "q1_ms",
            "median_ms",
            "q3_ms",
            "max_ms",
        ],
    );
    for &kind in kinds {
        let spec = background_for(app, kind, solo.job_end);
        let mut base = args.base_config(app);
        base.background = Some(BackgroundConfig { spec });
        let grid = run_config_grid(&base, &ConfigLabel::all_ten());
        let rows: Vec<(String, dfly_stats::BoxStats)> = grid
            .iter()
            .map(|g| (label_of(&g.label), g.result.comm_time_stats()))
            .collect();
        for (label, s) in &rows {
            csv.row(&[
                app.label().to_string(),
                kind.label().to_string(),
                label.clone(),
                format!("{:.6}", s.min),
                format!("{:.6}", s.q1),
                format!("{:.6}", s.median),
                format!("{:.6}", s.q3),
                format!("{:.6}", s.max),
            ])
            .expect("csv");
        }
        print_boxplot_table(
            &format!(
                "Fig {fig}: {} comm time with {} background (ms)",
                app.label(),
                kind.label()
            ),
            &rows,
        );

        // Channel-traffic CDFs over the routers serving the app.
        let suffix = match kind {
            BackgroundKind::UniformRandom => "uniform",
            BackgroundKind::Bursty => "bursty",
        };
        let local: Vec<(String, Cdf)> = grid
            .iter()
            .map(|g| {
                let filter = g.result.app_filter();
                (label_of(&g.label), g.result.local_traffic_mb_cdf(&filter))
            })
            .collect();
        emit_cdf_family(
            args,
            &format!("fig{fig}_local_traffic_{suffix}.csv"),
            &format!(
                "Fig {fig}: {} local channel traffic on app routers, {} bg (MB)",
                app.label(),
                kind.label()
            ),
            "traffic_mb",
            &local,
        );
        if app == AppKind::Amg {
            let global: Vec<(String, Cdf)> = grid
                .iter()
                .map(|g| {
                    let filter = g.result.app_filter();
                    (label_of(&g.label), g.result.global_traffic_mb_cdf(&filter))
                })
                .collect();
            emit_cdf_family(
                args,
                &format!("fig{fig}_global_traffic_{suffix}.csv"),
                &format!(
                    "Fig {fig}: {} global channel traffic on app routers, {} bg (MB)",
                    app.label(),
                    kind.label()
                ),
                "traffic_mb",
                &global,
            );
        }
        // Degradation headline vs the solo baseline.
        let best = rows
            .iter()
            .min_by(|a, b| a.1.median.partial_cmp(&b.1.median).unwrap())
            .unwrap();
        println!(
            "{} + {} bg: least-degraded config {} ({:.3} ms median, {:+.0}% vs solo rand-adp)",
            app.label(),
            kind.label(),
            best.0,
            best.1.median,
            100.0 * (best.1.median / solo.comm_time_stats().median - 1.0),
        );
    }
    csv.finish().expect("csv");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{Mode, RunArgs};
    use dfly_engine::Ns;

    #[test]
    fn scale_grids_match_paper_ranges() {
        let cr = scale_grid(AppKind::CrystalRouter);
        assert_eq!(cr.first().copied(), Some(0.01)); // 1% of original
        assert_eq!(cr.last().copied(), Some(2.0)); // 2x
        let amg = scale_grid(AppKind::Amg);
        assert_eq!(amg.first().copied(), Some(0.5)); // 50%
        assert_eq!(amg.last().copied(), Some(20.0)); // 20x
        assert_eq!(scale_grid(AppKind::FillBoundary), cr);
    }

    #[test]
    fn background_specs_scale_with_solo_runtime() {
        let short = background_for(
            AppKind::Amg,
            BackgroundKind::UniformRandom,
            Ns::from_us(200),
        );
        let long = background_for(
            AppKind::Amg,
            BackgroundKind::UniformRandom,
            Ns::from_us(2000),
        );
        assert!(long.interval > short.interval);
        assert_eq!(short.message_bytes, long.message_bytes);
    }

    #[test]
    fn bursty_loads_ordered_cr_fb_amg() {
        // Table II's ordering: CR > FB > AMG bursty volume.
        let d = Ns::from_ms(1);
        let cr = background_for(AppKind::CrystalRouter, BackgroundKind::Bursty, d);
        let fb = background_for(AppKind::FillBoundary, BackgroundKind::Bursty, d);
        let amg = background_for(AppKind::Amg, BackgroundKind::Bursty, d);
        let nodes = 100;
        assert!(cr.peak_load_bytes(nodes) > fb.peak_load_bytes(nodes));
        assert!(fb.peak_load_bytes(nodes) > amg.peak_load_bytes(nodes));
        // Bursty dwarfs uniform, as in the paper (GB vs MB).
        let uni = background_for(AppKind::CrystalRouter, BackgroundKind::UniformRandom, d);
        assert!(cr.peak_load_bytes(nodes) > 10 * uni.peak_load_bytes(nodes));
    }

    #[test]
    fn background_specs_validate() {
        for app in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
            for kind in [BackgroundKind::UniformRandom, BackgroundKind::Bursty] {
                background_for(app, kind, Ns::from_us(500))
                    .validate()
                    .unwrap();
                // Degenerate solo runtime still yields a valid spec.
                background_for(app, kind, Ns::ZERO).validate().unwrap();
            }
        }
    }

    #[test]
    fn mode_base_configs_validate() {
        for mode in [Mode::Quick, Mode::Full] {
            let args = RunArgs::new(mode, "/tmp");
            for app in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
                args.base_config(app).validate().unwrap();
            }
            assert!(!args.mode_label().is_empty());
        }
    }
}
