//! Shared plumbing for the reproduction binaries.

use dfly_core::config::ExperimentConfig;
use dfly_core::report::ConfigLabel;
use dfly_core::runner::ExperimentResult;
use dfly_stats::{render_boxplot_row, AsciiTable, BoxStats, Cdf, CsvWriter};
use dfly_workloads::AppKind;
use std::path::PathBuf;

/// Reproduction fidelity mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// 768-node machine, proportionally scaled apps (default).
    Quick,
    /// The paper's 3,456-node Theta machine and app sizes.
    Full,
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Fidelity mode.
    pub mode: Mode,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
}

impl RunArgs {
    /// Base experiment config for an app under this mode.
    pub fn base_config(&self, app: AppKind) -> ExperimentConfig {
        match self.mode {
            Mode::Quick => ExperimentConfig::quick(app),
            Mode::Full => ExperimentConfig::theta(app),
        }
    }

    /// Mode label for report headers.
    pub fn mode_label(&self) -> &'static str {
        match self.mode {
            Mode::Quick => "quick (768-node machine, scaled apps)",
            Mode::Full => "full (Theta: 3456 nodes, paper app sizes)",
        }
    }

    /// Open a CSV in the output directory.
    pub fn csv(&self, name: &str, header: &[&str]) -> CsvWriter<std::io::BufWriter<std::fs::File>> {
        let path = self.out_dir.join(name);
        CsvWriter::create(&path, header).unwrap_or_else(|e| panic!("cannot create {path:?}: {e}"))
    }
}

/// Parse `--quick` / `--full` / `--out DIR` from `std::env::args`.
pub fn parse_args() -> RunArgs {
    let mut mode = Mode::Quick;
    let mut out_dir = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => mode = Mode::Quick,
            "--full" => mode = Mode::Full,
            "--out" => {
                out_dir = PathBuf::from(args.next().expect("--out needs a directory"));
            }
            "--help" | "-h" => {
                eprintln!("usage: [--quick|--full] [--out DIR]");
                std::process::exit(0);
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    RunArgs { mode, out_dir }
}

/// Print a box-plot table (one row per configuration) with an ASCII
/// rendering scaled over the common axis — the terminal form of the
/// paper's communication-time figures.
pub fn print_boxplot_table(title: &str, rows: &[(String, BoxStats)]) {
    println!("\n== {title} ==");
    let lo = rows
        .iter()
        .map(|(_, s)| s.min)
        .fold(f64::INFINITY, f64::min);
    let hi = rows.iter().map(|(_, s)| s.max).fold(0.0f64, f64::max);
    let axis_hi = if hi > lo { hi } else { lo + 1.0 };
    let mut table = AsciiTable::new(vec![
        "config", "min", "q1", "median", "q3", "max", "boxplot",
    ]);
    for (label, s) in rows {
        table.row(vec![
            label.clone(),
            format!("{:.3}", s.min),
            format!("{:.3}", s.q1),
            format!("{:.3}", s.median),
            format!("{:.3}", s.q3),
            format!("{:.3}", s.max),
            render_boxplot_row(s, lo, axis_hi, 44),
        ]);
    }
    print!("{}", table.render());
    println!("(communication time in ms; axis {lo:.3}..{axis_hi:.3})");
}

/// Print a CDF family as a table of sampled points and write the full
/// series to CSV: one `(config, x, percent)` row per step.
pub fn emit_cdf_family(
    args: &RunArgs,
    csv_name: &str,
    title: &str,
    x_label: &str,
    series: &[(String, Cdf)],
) {
    let mut csv = args.csv(csv_name, &["config", x_label, "percent_of_channels"]);
    for (label, cdf) in series {
        for (x, pct) in cdf.steps() {
            csv.row(&[label.clone(), format!("{x:.6}"), format!("{pct:.4}")])
                .expect("csv write");
        }
    }
    csv.finish().expect("csv flush");

    println!("\n== {title} ==");
    let mut table = AsciiTable::new(vec!["config", "p50", "p90", "p99", "max"]);
    for (label, cdf) in series {
        if cdf.is_empty() {
            table.row(vec![
                label.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        table.row(vec![
            label.clone(),
            format!("{:.4}", cdf.quantile(0.50)),
            format!("{:.4}", cdf.quantile(0.90)),
            format!("{:.4}", cdf.quantile(0.99)),
            format!("{:.4}", cdf.max().unwrap()),
        ]);
    }
    print!("{}", table.render());
    println!("({x_label}; full series in {csv_name})");
}

/// Format a grid result row label.
pub fn label_of(label: &ConfigLabel) -> String {
    label.to_string()
}

/// Summarize one experiment on stdout (used by several binaries).
pub fn print_run_summary(label: &str, r: &ExperimentResult) {
    let s = r.comm_time_stats();
    println!(
        "{label:>10}: comm time median {:.3} ms (min {:.3}, max {:.3}), mean hops {:.2}, events {:.1}M",
        s.median,
        s.min,
        s.max,
        r.mean_hops(),
        r.events as f64 / 1e6,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxplot_table_prints_all_configs() {
        let rows = vec![
            (
                "cont-min".to_string(),
                BoxStats::from_samples(&[1.0, 2.0, 3.0]).unwrap(),
            ),
            (
                "rand-adp".to_string(),
                BoxStats::from_samples(&[0.5, 1.0, 1.5]).unwrap(),
            ),
        ];
        // Smoke: must not panic on a normal and on a degenerate axis.
        print_boxplot_table("test", &rows);
        let flat = vec![(
            "x".to_string(),
            BoxStats::from_samples(&[2.0, 2.0]).unwrap(),
        )];
        print_boxplot_table("flat", &flat);
    }

    #[test]
    fn emit_cdf_family_writes_full_series() {
        let dir = std::env::temp_dir().join("dfly_bench_harness_test");
        let _ = std::fs::remove_dir_all(&dir);
        let args = RunArgs {
            mode: Mode::Quick,
            out_dir: dir.clone(),
        };
        let series = vec![
            ("a".to_string(), Cdf::from_samples([1.0, 2.0, 3.0])),
            ("b".to_string(), Cdf::from_samples([])),
        ];
        emit_cdf_family(&args, "t.csv", "title", "x", &series);
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines[0], "config,x,percent_of_channels");
        assert_eq!(lines.len(), 4); // header + 3 points of series a
        assert!(lines[3].starts_with("a,3.000000,100"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_args_csv_creates_nested_dirs() {
        let dir = std::env::temp_dir().join("dfly_bench_csv_test/nested");
        let _ = std::fs::remove_dir_all(&dir);
        let args = RunArgs {
            mode: Mode::Full,
            out_dir: dir.clone(),
        };
        let mut w = args.csv("file.csv", &["a"]);
        w.row(&["1"]).unwrap();
        w.finish().unwrap();
        assert!(dir.join("file.csv").exists());
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }
}
