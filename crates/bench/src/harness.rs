//! Shared plumbing for the reproduction binaries.

use dfly_core::config::{AppSelection, ExperimentConfig, Parallelism};
use dfly_core::report::ConfigLabel;
use dfly_core::runner::ExperimentResult;
use dfly_obs::{EventKind, MetricsMode, ObsReport};
use dfly_stats::{render_boxplot_row, sparkline, AsciiTable, BoxStats, Cdf, CsvWriter};
use dfly_topology::{GlobalArrangement, TopologyConfig};
use dfly_workloads::AppKind;
use std::path::PathBuf;

/// Reproduction fidelity mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// 768-node machine, proportionally scaled apps (default).
    Quick,
    /// The paper's 3,456-node Theta machine and app sizes.
    Full,
}

/// Machine override from `--topo` (named preset or canonic `p,a,h,g`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoSpec {
    /// The paper's Theta machine (`--topo theta`).
    Theta,
    /// The 768-node quick machine (`--topo quick`).
    Quick,
    /// The 64-node test machine (`--topo small`).
    Small,
    /// A canonic dragonfly (`--topo P,A,H,G`).
    Canonical {
        /// Nodes per router.
        p: u32,
        /// Routers per group.
        a: u32,
        /// Global links per router.
        h: u32,
        /// Groups.
        g: u32,
    },
}

impl TopoSpec {
    /// Parse a `--topo` argument.
    pub fn parse(s: &str) -> Result<TopoSpec, String> {
        match s {
            "theta" => Ok(TopoSpec::Theta),
            "quick" => Ok(TopoSpec::Quick),
            "small" => Ok(TopoSpec::Small),
            _ => {
                let parts: Vec<&str> = s.split(',').collect();
                if parts.len() != 4 {
                    return Err(format!(
                        "--topo wants theta|quick|small or P,A,H,G (got {s:?})"
                    ));
                }
                let mut v = [0u32; 4];
                for (i, part) in parts.iter().enumerate() {
                    v[i] = part
                        .trim()
                        .parse()
                        .map_err(|_| format!("--topo {s:?}: {part:?} is not an integer"))?;
                }
                Ok(TopoSpec::Canonical {
                    p: v[0],
                    a: v[1],
                    h: v[2],
                    g: v[3],
                })
            }
        }
    }

    /// The machine this spec names.
    pub fn config(&self) -> TopologyConfig {
        match *self {
            TopoSpec::Theta => TopologyConfig::theta(),
            TopoSpec::Quick => TopologyConfig::quick(),
            TopoSpec::Small => TopologyConfig::small_test(),
            TopoSpec::Canonical { p, a, h, g } => TopologyConfig::canonical(p, a, h, g),
        }
    }
}

/// Parse a `--arrangement` argument: `rr` (round-robin, the default),
/// `consec`/`consecutive`, `palm`/`palm-tree`, or `random:SEED` (decimal
/// or `0x` hex seed).
pub fn parse_arrangement(s: &str) -> Result<GlobalArrangement, String> {
    match s {
        "rr" | "round-robin" => Ok(GlobalArrangement::RoundRobin),
        "consec" | "consecutive" => Ok(GlobalArrangement::Consecutive),
        "palm" | "palm-tree" => Ok(GlobalArrangement::PalmTree),
        _ => {
            let seed_str = s
                .strip_prefix("random:")
                .or_else(|| s.strip_prefix("rand:"))
                .ok_or_else(|| {
                    format!("--arrangement wants rr|consec|palm|random:SEED (got {s:?})")
                })?;
            let seed = if let Some(hex) = seed_str.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                seed_str.parse()
            }
            .map_err(|_| format!("--arrangement random: bad seed {seed_str:?}"))?;
            Ok(GlobalArrangement::Random { seed })
        }
    }
}

/// Scale an app's rank count to a machine, preserving the paper's
/// app-size : machine-size ratio (ranks/3456) and the apps' cubic domain
/// decomposition: the largest `k^3` that fits the scaled budget.
pub fn scaled_ranks(app: AppKind, nodes: u32) -> u32 {
    let paper = AppSelection::paper(app).ranks() as u64;
    let paper_nodes = TopologyConfig::theta().total_nodes() as u64;
    let budget = nodes as u64 * paper / paper_nodes;
    let mut k = 1u64;
    while (k + 1) * (k + 1) * (k + 1) <= budget {
        k += 1;
    }
    (k * k * k) as u32
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Fidelity mode.
    pub mode: Mode,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Enable the telemetry layer (`--obs`): every run collects an
    /// [`ObsReport`] and the binary writes `obs_*.csv` sinks.
    pub obs: bool,
    /// Extra message-size multiplier on top of the mode's workload
    /// (`--scale X`). 1.0 reproduces the mode unchanged; the golden
    /// regression suite runs the figure pipelines at a small fraction.
    pub scale: f64,
    /// Profiling stride under `--obs` (`--obs-stride N`): every event is
    /// counted, every Nth per kind is wall-clock timed. `None` keeps the
    /// [`NetworkParams`](dfly_core::config::ExperimentConfig) default.
    pub obs_stride: Option<u32>,
    /// Use the coarse monotonic clock for handler timing
    /// (`--obs-coarse`): ~4x cheaper reads, millisecond granularity.
    pub obs_coarse: bool,
    /// Intra-run PDES worker threads (`--shards N`); 0 keeps the legacy
    /// serial event loop, the byte-stable default the goldens pin.
    pub shards: u32,
    /// Machine override (`--topo theta|quick|small|P,A,H,G`). App ranks
    /// are rescaled to the override via [`scaled_ranks`]. `None` keeps
    /// the mode's machine and app sizes — the golden-pinned default.
    pub topo: Option<TopoSpec>,
    /// Global-link arrangement override (`--arrangement ...`). `None`
    /// keeps the default round-robin wiring the goldens pin.
    pub arrangement: Option<GlobalArrangement>,
    /// Metric-storage override (`--metrics dense|streaming[:K]`). `None`
    /// keeps the dense default the goldens pin; streaming bounds metric
    /// memory at `O(links * K)` for scale runs without touching any
    /// simulation output.
    pub metrics: Option<MetricsMode>,
}

impl RunArgs {
    /// Arguments for a mode and output directory, telemetry off, scale 1.
    pub fn new(mode: Mode, out_dir: impl Into<PathBuf>) -> RunArgs {
        RunArgs {
            mode,
            out_dir: out_dir.into(),
            obs: false,
            scale: 1.0,
            obs_stride: None,
            obs_coarse: false,
            shards: 0,
            topo: None,
            arrangement: None,
            metrics: None,
        }
    }

    /// Base experiment config for an app under this mode, with the
    /// `--obs` and `--scale` overrides applied.
    pub fn base_config(&self, app: AppKind) -> ExperimentConfig {
        let mut cfg = match self.mode {
            Mode::Quick => ExperimentConfig::quick(app),
            Mode::Full => ExperimentConfig::theta(app),
        };
        cfg.network.obs = self.obs;
        if let Some(stride) = self.obs_stride {
            cfg.network.obs_stride = stride;
        }
        cfg.network.obs_coarse_clock = self.obs_coarse;
        cfg.msg_scale *= self.scale;
        cfg.parallelism = match self.shards {
            0 => Parallelism::Serial,
            n => Parallelism::IntraRun(n),
        };
        if let Some(topo) = self.topo {
            cfg.topology = topo.config();
            let ranks = scaled_ranks(app, cfg.topology.total_nodes());
            cfg.app = match app {
                AppKind::CrystalRouter => AppSelection::CrystalRouter { ranks },
                AppKind::FillBoundary => AppSelection::FillBoundary { ranks },
                AppKind::Amg => AppSelection::Amg { ranks },
            };
        }
        if let Some(arr) = self.arrangement {
            cfg.topology.arrangement = arr;
        }
        if let Some(metrics) = self.metrics {
            cfg.network.metrics = metrics;
        }
        cfg
    }

    /// Mode label for report headers.
    pub fn mode_label(&self) -> &'static str {
        match self.mode {
            Mode::Quick => "quick (768-node machine, scaled apps)",
            Mode::Full => "full (Theta: 3456 nodes, paper app sizes)",
        }
    }

    /// Open a CSV in the output directory.
    pub fn csv(&self, name: &str, header: &[&str]) -> CsvWriter<std::io::BufWriter<std::fs::File>> {
        let path = self.out_dir.join(name);
        CsvWriter::create(&path, header).unwrap_or_else(|e| panic!("cannot create {path:?}: {e}"))
    }
}

/// Parse `--quick` / `--full` / `--out DIR` / `--obs` / `--scale X` /
/// `--obs-stride N` / `--obs-coarse` / `--shards N` / `--topo SPEC` /
/// `--arrangement SPEC` from `std::env::args`.
pub fn parse_args() -> RunArgs {
    let mut parsed = RunArgs::new(Mode::Quick, "results");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => parsed.mode = Mode::Quick,
            "--full" => parsed.mode = Mode::Full,
            "--out" => {
                parsed.out_dir = PathBuf::from(args.next().expect("--out needs a directory"));
            }
            "--obs" => parsed.obs = true,
            "--obs-stride" => {
                let v = args.next().expect("--obs-stride needs a count");
                parsed.obs_stride = Some(v.parse().expect("--obs-stride needs an integer"));
                assert!(parsed.obs_stride != Some(0), "--obs-stride must be >= 1");
            }
            "--obs-coarse" => parsed.obs_coarse = true,
            "--shards" => {
                let v = args.next().expect("--shards needs a worker count");
                parsed.shards = v.parse().expect("--shards needs an integer");
            }
            "--scale" => {
                let v = args.next().expect("--scale needs a factor");
                parsed.scale = v.parse().expect("--scale needs a number");
                assert!(parsed.scale > 0.0, "--scale must be positive");
            }
            "--topo" => {
                let v = args.next().expect("--topo needs a machine spec");
                let spec = TopoSpec::parse(&v).unwrap_or_else(|e| panic!("{e}"));
                spec.config()
                    .validate()
                    .unwrap_or_else(|e| panic!("--topo {v}: {e}"));
                parsed.topo = Some(spec);
            }
            "--arrangement" => {
                let v = args.next().expect("--arrangement needs a wiring spec");
                parsed.arrangement = Some(parse_arrangement(&v).unwrap_or_else(|e| panic!("{e}")));
            }
            "--metrics" => {
                let v = args.next().expect("--metrics needs dense|streaming[:K]");
                parsed.metrics = Some(MetricsMode::parse(&v).unwrap_or_else(|e| panic!("{e}")));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: [--quick|--full] [--out DIR] [--obs] [--obs-stride N] [--obs-coarse] [--scale X] [--shards N] [--topo theta|quick|small|P,A,H,G] [--arrangement rr|consec|palm|random:SEED] [--metrics dense|streaming[:K]]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    parsed
}

/// Print a box-plot table (one row per configuration) with an ASCII
/// rendering scaled over the common axis — the terminal form of the
/// paper's communication-time figures.
pub fn print_boxplot_table(title: &str, rows: &[(String, BoxStats)]) {
    println!("\n== {title} ==");
    let lo = rows
        .iter()
        .map(|(_, s)| s.min)
        .fold(f64::INFINITY, f64::min);
    let hi = rows.iter().map(|(_, s)| s.max).fold(0.0f64, f64::max);
    let axis_hi = if hi > lo { hi } else { lo + 1.0 };
    let mut table = AsciiTable::new(vec![
        "config", "min", "q1", "median", "q3", "max", "boxplot",
    ]);
    for (label, s) in rows {
        table.row(vec![
            label.clone(),
            format!("{:.3}", s.min),
            format!("{:.3}", s.q1),
            format!("{:.3}", s.median),
            format!("{:.3}", s.q3),
            format!("{:.3}", s.max),
            render_boxplot_row(s, lo, axis_hi, 44),
        ]);
    }
    print!("{}", table.render());
    println!("(communication time in ms; axis {lo:.3}..{axis_hi:.3})");
}

/// Print a CDF family as a table of sampled points and write the full
/// series to CSV: one `(config, x, percent)` row per step.
pub fn emit_cdf_family(
    args: &RunArgs,
    csv_name: &str,
    title: &str,
    x_label: &str,
    series: &[(String, Cdf)],
) {
    let mut csv = args.csv(csv_name, &["config", x_label, "percent_of_channels"]);
    for (label, cdf) in series {
        for (x, pct) in cdf.steps() {
            csv.row(&[label.clone(), format!("{x:.6}"), format!("{pct:.4}")])
                .expect("csv write");
        }
    }
    csv.finish().expect("csv flush");

    println!("\n== {title} ==");
    let mut table = AsciiTable::new(vec!["config", "p50", "p90", "p99", "max"]);
    for (label, cdf) in series {
        if cdf.is_empty() {
            table.row(vec![
                label.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        table.row(vec![
            label.clone(),
            format!("{:.4}", cdf.quantile(0.50)),
            format!("{:.4}", cdf.quantile(0.90)),
            format!("{:.4}", cdf.quantile(0.99)),
            format!("{:.4}", cdf.max().unwrap()),
        ]);
    }
    print!("{}", table.render());
    println!("({x_label}; full series in {csv_name})");
}

/// Emit the aggregate telemetry sinks for a family of runs (one grid of
/// configurations under a common `tag`, e.g. `fig3_cr`): a UGAL routing
/// ledger CSV, an event-loop profile CSV, and a one-line-per-config
/// stdout summary with a sparkline of global-link utilization over time.
///
/// Does nothing when `reports` is empty, so callers can pass the
/// (filtered) grid results unconditionally and let `--obs` decide.
pub fn emit_obs_family(args: &RunArgs, tag: &str, reports: &[(String, &ObsReport)]) {
    if reports.is_empty() {
        return;
    }

    let mut ugal = args.csv(
        &format!("obs_ugal_{tag}.csv"),
        &[
            "config",
            "minimal_taken",
            "nonminimal_taken",
            "nonminimal_fraction",
            "mean_margin",
        ],
    );
    for (label, r) in reports {
        ugal.row(&[
            label.clone(),
            r.route.minimal_taken.to_string(),
            r.route.nonminimal_taken.to_string(),
            format!("{:.6}", r.route.nonminimal_fraction()),
            format!("{:.2}", r.route.mean_margin()),
        ])
        .expect("csv write");
    }
    ugal.finish().expect("csv flush");

    let mut prof = args.csv(
        &format!("obs_profile_{tag}.csv"),
        &[
            "config",
            "inject",
            "tx_done",
            "arrive",
            "wakeup",
            "events_per_sec",
            "queue_high_water",
        ],
    );
    for (label, r) in reports {
        let p = &r.profile;
        prof.row(&[
            label.clone(),
            p.counts[EventKind::Inject.index()].to_string(),
            p.counts[EventKind::TxDone.index()].to_string(),
            p.counts[EventKind::Arrive.index()].to_string(),
            p.counts[EventKind::Wakeup.index()].to_string(),
            format!("{:.0}", p.events_per_sec()),
            p.queue_high_water.to_string(),
        ])
        .expect("csv write");
    }
    prof.finish().expect("csv flush");

    // Streaming runs carry a per-link-class digest; surface it as one
    // row per (config, class) so figure sweeps keep the bounded summary
    // on disk. Dense runs have no digest and no file.
    if reports.iter().any(|(_, r)| r.link_digest.is_some()) {
        let mut dig = args.csv(
            &format!("obs_link_digest_{tag}.csv"),
            &[
                "config",
                "class",
                "channels",
                "traffic_mb_mean",
                "traffic_mb_p50",
                "traffic_mb_p99",
                "sat_ms_mean",
                "sat_ms_max",
                "reservoir_len",
            ],
        );
        for (label, r) in reports {
            let digest = r
                .link_digest
                .as_ref()
                .expect("metrics mode varies within one figure grid");
            for (i, &(_, class)) in dfly_obs::OBS_CLASSES.iter().enumerate() {
                let d = digest.class(i);
                let (p50, p99) = if d.traffic_mb.is_empty() {
                    (0.0, 0.0)
                } else {
                    let cdf = d.traffic_mb.to_cdf();
                    (cdf.quantile(0.5), cdf.quantile(0.99))
                };
                dig.row(&[
                    label.clone(),
                    class.to_string(),
                    digest.channels(i).to_string(),
                    format!("{:.4}", d.traffic_bytes.mean() / 1.0e6),
                    format!("{p50:.4}"),
                    format!("{p99:.4}"),
                    format!("{:.4}", d.saturated_ms.mean()),
                    format!("{:.4}", d.saturated_ms.max().unwrap_or(0.0)),
                    d.traffic_mb.len().to_string(),
                ])
                .expect("csv write");
            }
        }
        dig.finish().expect("csv flush");
    }

    println!("\n== telemetry: {tag} ==");
    let global = dfly_obs::OBS_CLASSES.len() - 1; // Global is the last class
    for (label, r) in reports {
        let util = r.series.util_series(global);
        println!(
            "{label:>10}: {:>5.1}% nonminimal, {:>4.1} Mev/s, queue peak {:>6}, global util {}",
            r.route.nonminimal_fraction() * 100.0,
            r.profile.events_per_sec() / 1e6,
            r.profile.queue_high_water,
            sparkline(&util),
        );
    }
    println!("(full per-config ledgers in obs_ugal_{tag}.csv / obs_profile_{tag}.csv)");
}

/// Format a grid result row label.
pub fn label_of(label: &ConfigLabel) -> String {
    label.to_string()
}

/// Summarize one experiment on stdout (used by several binaries).
pub fn print_run_summary(label: &str, r: &ExperimentResult) {
    let s = r.comm_time_stats();
    println!(
        "{label:>10}: comm time median {:.3} ms (min {:.3}, max {:.3}), mean hops {:.2}, events {:.1}M",
        s.median,
        s.min,
        s.max,
        r.mean_hops(),
        r.events as f64 / 1e6,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxplot_table_prints_all_configs() {
        let rows = vec![
            (
                "cont-min".to_string(),
                BoxStats::from_samples(&[1.0, 2.0, 3.0]).unwrap(),
            ),
            (
                "rand-adp".to_string(),
                BoxStats::from_samples(&[0.5, 1.0, 1.5]).unwrap(),
            ),
        ];
        // Smoke: must not panic on a normal and on a degenerate axis.
        print_boxplot_table("test", &rows);
        let flat = vec![(
            "x".to_string(),
            BoxStats::from_samples(&[2.0, 2.0]).unwrap(),
        )];
        print_boxplot_table("flat", &flat);
    }

    #[test]
    fn emit_cdf_family_writes_full_series() {
        let dir = std::env::temp_dir().join("dfly_bench_harness_test");
        let _ = std::fs::remove_dir_all(&dir);
        let args = RunArgs::new(Mode::Quick, dir.clone());
        let series = vec![
            ("a".to_string(), Cdf::from_samples([1.0, 2.0, 3.0])),
            ("b".to_string(), Cdf::from_samples([])),
        ];
        emit_cdf_family(&args, "t.csv", "title", "x", &series);
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines[0], "config,x,percent_of_channels");
        assert_eq!(lines.len(), 4); // header + 3 points of series a
        assert!(lines[3].starts_with("a,3.000000,100"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn base_config_applies_obs_and_scale() {
        let mut args = RunArgs::new(Mode::Quick, "unused");
        let base = args.base_config(AppKind::CrystalRouter);
        assert!(!base.network.obs);
        args.obs = true;
        args.scale = 0.25;
        let cfg = args.base_config(AppKind::CrystalRouter);
        assert!(cfg.network.obs);
        assert!((cfg.msg_scale - base.msg_scale * 0.25).abs() < 1e-12);
        // No override: the NetworkParams defaults stand.
        assert_eq!(cfg.network.obs_stride, base.network.obs_stride);
        assert!(!cfg.network.obs_coarse_clock);
        cfg.validate().unwrap();

        args.obs_stride = Some(16);
        args.obs_coarse = true;
        let cfg = args.base_config(AppKind::CrystalRouter);
        assert_eq!(cfg.network.obs_stride, 16);
        assert!(cfg.network.obs_coarse_clock);
        cfg.validate().unwrap();

        assert_eq!(cfg.parallelism, Parallelism::Serial);
        args.shards = 4;
        let cfg = args.base_config(AppKind::CrystalRouter);
        assert_eq!(cfg.parallelism, Parallelism::IntraRun(4));
        cfg.validate().unwrap();

        // No --metrics: the golden-pinned dense default stands.
        assert_eq!(cfg.network.metrics, MetricsMode::Dense);
        args.metrics = Some(MetricsMode::parse("streaming:128").unwrap());
        let cfg = args.base_config(AppKind::CrystalRouter);
        assert_eq!(
            cfg.network.metrics,
            MetricsMode::Streaming { reservoir_k: 128 }
        );
        cfg.validate().unwrap();
    }

    #[test]
    fn emit_obs_family_writes_both_sinks() {
        let dir = std::env::temp_dir().join("dfly_bench_obs_family_test");
        let _ = std::fs::remove_dir_all(&dir);
        let args = RunArgs::new(Mode::Quick, dir.clone());

        // Empty family: no files at all.
        emit_obs_family(&args, "empty", &[]);
        assert!(!dir.exists());

        use dfly_obs::{EventLoopProfile, OccupancyHistogram, RouteStats, SampleSeries};
        let mut report = ObsReport {
            profile: EventLoopProfile::new(),
            series: SampleSeries::new(dfly_engine::Ns(1_000)),
            vc_occupancy: OccupancyHistogram::new(),
            route: RouteStats::new(),
            link_digest: None,
            coarse_unavailable: false,
        };
        report.route.record(false, 0);
        report.route.record(true, 64);
        report.profile.counts[EventKind::Arrive.index()] = 2;
        emit_obs_family(&args, "t", &[("cont-min".to_string(), &report)]);

        let ugal = std::fs::read_to_string(dir.join("obs_ugal_t.csv")).unwrap();
        assert!(ugal.starts_with("config,minimal_taken,nonminimal_taken"));
        assert!(ugal.contains("cont-min,1,1,0.500000"));
        let prof = std::fs::read_to_string(dir.join("obs_profile_t.csv")).unwrap();
        assert!(prof.contains("cont-min,0,0,2,0,"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn topo_and_arrangement_specs_parse() {
        assert_eq!(TopoSpec::parse("theta"), Ok(TopoSpec::Theta));
        assert_eq!(TopoSpec::parse("quick"), Ok(TopoSpec::Quick));
        assert_eq!(TopoSpec::parse("small"), Ok(TopoSpec::Small));
        assert_eq!(
            TopoSpec::parse("2,8,4,17"),
            Ok(TopoSpec::Canonical {
                p: 2,
                a: 8,
                h: 4,
                g: 17
            })
        );
        assert!(TopoSpec::parse("2,8,4").is_err());
        assert!(TopoSpec::parse("2,8,x,17").is_err());

        assert_eq!(parse_arrangement("rr"), Ok(GlobalArrangement::RoundRobin));
        assert_eq!(
            parse_arrangement("consecutive"),
            Ok(GlobalArrangement::Consecutive)
        );
        assert_eq!(
            parse_arrangement("palm-tree"),
            Ok(GlobalArrangement::PalmTree)
        );
        assert_eq!(
            parse_arrangement("random:0xBEEF"),
            Ok(GlobalArrangement::Random { seed: 0xBEEF })
        );
        assert_eq!(
            parse_arrangement("rand:12"),
            Ok(GlobalArrangement::Random { seed: 12 })
        );
        assert!(parse_arrangement("spiral").is_err());
        assert!(parse_arrangement("random:zz").is_err());
    }

    #[test]
    fn topo_override_rescales_ranks_and_sets_arrangement() {
        // The canonic 272-node machine keeps the paper's app:machine
        // ratio: 272 * 1000/3456 = 78 -> 4^3 ranks for CR/FB, and
        // 272 * 1728/3456 = 136 -> 5^3 for AMG.
        assert_eq!(scaled_ranks(AppKind::CrystalRouter, 272), 64);
        assert_eq!(scaled_ranks(AppKind::Amg, 272), 125);
        // Identity on the paper machine.
        assert_eq!(scaled_ranks(AppKind::CrystalRouter, 3456), 1000);
        assert_eq!(scaled_ranks(AppKind::Amg, 3456), 1728);

        let mut args = RunArgs::new(Mode::Quick, "unused");
        args.topo = Some(TopoSpec::parse("2,8,4,17").unwrap());
        args.arrangement = Some(GlobalArrangement::PalmTree);
        let cfg = args.base_config(AppKind::CrystalRouter);
        assert_eq!(cfg.topology.total_nodes(), 272);
        assert_eq!(cfg.app.ranks(), 64);
        assert_eq!(cfg.topology.arrangement, GlobalArrangement::PalmTree);
        cfg.validate().unwrap();

        // Arrangement alone composes with the mode's machine.
        let mut args = RunArgs::new(Mode::Quick, "unused");
        args.arrangement = Some(GlobalArrangement::Random { seed: 3 });
        let cfg = args.base_config(AppKind::CrystalRouter);
        assert_eq!(
            cfg.topology.arrangement,
            GlobalArrangement::Random { seed: 3 }
        );
        assert_eq!(cfg.app.ranks(), 216); // quick-mode ranks untouched
        cfg.validate().unwrap();
    }

    #[test]
    fn run_args_csv_creates_nested_dirs() {
        let dir = std::env::temp_dir().join("dfly_bench_csv_test/nested");
        let _ = std::fs::remove_dir_all(&dir);
        let args = RunArgs::new(Mode::Full, dir.clone());
        let mut w = args.csv("file.csv", &["a"]);
        w.row(&["1"]).unwrap();
        w.finish().unwrap();
        assert!(dir.join("file.csv").exists());
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }
}
