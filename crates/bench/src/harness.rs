//! Shared plumbing for the reproduction binaries.

use dfly_core::config::{ExperimentConfig, Parallelism};
use dfly_core::report::ConfigLabel;
use dfly_core::runner::ExperimentResult;
use dfly_obs::{EventKind, ObsReport};
use dfly_stats::{render_boxplot_row, sparkline, AsciiTable, BoxStats, Cdf, CsvWriter};
use dfly_workloads::AppKind;
use std::path::PathBuf;

/// Reproduction fidelity mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// 768-node machine, proportionally scaled apps (default).
    Quick,
    /// The paper's 3,456-node Theta machine and app sizes.
    Full,
}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Fidelity mode.
    pub mode: Mode,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Enable the telemetry layer (`--obs`): every run collects an
    /// [`ObsReport`] and the binary writes `obs_*.csv` sinks.
    pub obs: bool,
    /// Extra message-size multiplier on top of the mode's workload
    /// (`--scale X`). 1.0 reproduces the mode unchanged; the golden
    /// regression suite runs the figure pipelines at a small fraction.
    pub scale: f64,
    /// Profiling stride under `--obs` (`--obs-stride N`): every event is
    /// counted, every Nth per kind is wall-clock timed. `None` keeps the
    /// [`NetworkParams`](dfly_core::config::ExperimentConfig) default.
    pub obs_stride: Option<u32>,
    /// Use the coarse monotonic clock for handler timing
    /// (`--obs-coarse`): ~4x cheaper reads, millisecond granularity.
    pub obs_coarse: bool,
    /// Intra-run PDES worker threads (`--shards N`); 0 keeps the legacy
    /// serial event loop, the byte-stable default the goldens pin.
    pub shards: u32,
}

impl RunArgs {
    /// Arguments for a mode and output directory, telemetry off, scale 1.
    pub fn new(mode: Mode, out_dir: impl Into<PathBuf>) -> RunArgs {
        RunArgs {
            mode,
            out_dir: out_dir.into(),
            obs: false,
            scale: 1.0,
            obs_stride: None,
            obs_coarse: false,
            shards: 0,
        }
    }

    /// Base experiment config for an app under this mode, with the
    /// `--obs` and `--scale` overrides applied.
    pub fn base_config(&self, app: AppKind) -> ExperimentConfig {
        let mut cfg = match self.mode {
            Mode::Quick => ExperimentConfig::quick(app),
            Mode::Full => ExperimentConfig::theta(app),
        };
        cfg.network.obs = self.obs;
        if let Some(stride) = self.obs_stride {
            cfg.network.obs_stride = stride;
        }
        cfg.network.obs_coarse_clock = self.obs_coarse;
        cfg.msg_scale *= self.scale;
        cfg.parallelism = match self.shards {
            0 => Parallelism::Serial,
            n => Parallelism::IntraRun(n),
        };
        cfg
    }

    /// Mode label for report headers.
    pub fn mode_label(&self) -> &'static str {
        match self.mode {
            Mode::Quick => "quick (768-node machine, scaled apps)",
            Mode::Full => "full (Theta: 3456 nodes, paper app sizes)",
        }
    }

    /// Open a CSV in the output directory.
    pub fn csv(&self, name: &str, header: &[&str]) -> CsvWriter<std::io::BufWriter<std::fs::File>> {
        let path = self.out_dir.join(name);
        CsvWriter::create(&path, header).unwrap_or_else(|e| panic!("cannot create {path:?}: {e}"))
    }
}

/// Parse `--quick` / `--full` / `--out DIR` / `--obs` / `--scale X` /
/// `--obs-stride N` / `--obs-coarse` / `--shards N` from
/// `std::env::args`.
pub fn parse_args() -> RunArgs {
    let mut parsed = RunArgs::new(Mode::Quick, "results");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => parsed.mode = Mode::Quick,
            "--full" => parsed.mode = Mode::Full,
            "--out" => {
                parsed.out_dir = PathBuf::from(args.next().expect("--out needs a directory"));
            }
            "--obs" => parsed.obs = true,
            "--obs-stride" => {
                let v = args.next().expect("--obs-stride needs a count");
                parsed.obs_stride = Some(v.parse().expect("--obs-stride needs an integer"));
                assert!(parsed.obs_stride != Some(0), "--obs-stride must be >= 1");
            }
            "--obs-coarse" => parsed.obs_coarse = true,
            "--shards" => {
                let v = args.next().expect("--shards needs a worker count");
                parsed.shards = v.parse().expect("--shards needs an integer");
            }
            "--scale" => {
                let v = args.next().expect("--scale needs a factor");
                parsed.scale = v.parse().expect("--scale needs a number");
                assert!(parsed.scale > 0.0, "--scale must be positive");
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: [--quick|--full] [--out DIR] [--obs] [--obs-stride N] [--obs-coarse] [--scale X] [--shards N]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    parsed
}

/// Print a box-plot table (one row per configuration) with an ASCII
/// rendering scaled over the common axis — the terminal form of the
/// paper's communication-time figures.
pub fn print_boxplot_table(title: &str, rows: &[(String, BoxStats)]) {
    println!("\n== {title} ==");
    let lo = rows
        .iter()
        .map(|(_, s)| s.min)
        .fold(f64::INFINITY, f64::min);
    let hi = rows.iter().map(|(_, s)| s.max).fold(0.0f64, f64::max);
    let axis_hi = if hi > lo { hi } else { lo + 1.0 };
    let mut table = AsciiTable::new(vec![
        "config", "min", "q1", "median", "q3", "max", "boxplot",
    ]);
    for (label, s) in rows {
        table.row(vec![
            label.clone(),
            format!("{:.3}", s.min),
            format!("{:.3}", s.q1),
            format!("{:.3}", s.median),
            format!("{:.3}", s.q3),
            format!("{:.3}", s.max),
            render_boxplot_row(s, lo, axis_hi, 44),
        ]);
    }
    print!("{}", table.render());
    println!("(communication time in ms; axis {lo:.3}..{axis_hi:.3})");
}

/// Print a CDF family as a table of sampled points and write the full
/// series to CSV: one `(config, x, percent)` row per step.
pub fn emit_cdf_family(
    args: &RunArgs,
    csv_name: &str,
    title: &str,
    x_label: &str,
    series: &[(String, Cdf)],
) {
    let mut csv = args.csv(csv_name, &["config", x_label, "percent_of_channels"]);
    for (label, cdf) in series {
        for (x, pct) in cdf.steps() {
            csv.row(&[label.clone(), format!("{x:.6}"), format!("{pct:.4}")])
                .expect("csv write");
        }
    }
    csv.finish().expect("csv flush");

    println!("\n== {title} ==");
    let mut table = AsciiTable::new(vec!["config", "p50", "p90", "p99", "max"]);
    for (label, cdf) in series {
        if cdf.is_empty() {
            table.row(vec![
                label.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        table.row(vec![
            label.clone(),
            format!("{:.4}", cdf.quantile(0.50)),
            format!("{:.4}", cdf.quantile(0.90)),
            format!("{:.4}", cdf.quantile(0.99)),
            format!("{:.4}", cdf.max().unwrap()),
        ]);
    }
    print!("{}", table.render());
    println!("({x_label}; full series in {csv_name})");
}

/// Emit the aggregate telemetry sinks for a family of runs (one grid of
/// configurations under a common `tag`, e.g. `fig3_cr`): a UGAL routing
/// ledger CSV, an event-loop profile CSV, and a one-line-per-config
/// stdout summary with a sparkline of global-link utilization over time.
///
/// Does nothing when `reports` is empty, so callers can pass the
/// (filtered) grid results unconditionally and let `--obs` decide.
pub fn emit_obs_family(args: &RunArgs, tag: &str, reports: &[(String, &ObsReport)]) {
    if reports.is_empty() {
        return;
    }

    let mut ugal = args.csv(
        &format!("obs_ugal_{tag}.csv"),
        &[
            "config",
            "minimal_taken",
            "nonminimal_taken",
            "nonminimal_fraction",
            "mean_margin",
        ],
    );
    for (label, r) in reports {
        ugal.row(&[
            label.clone(),
            r.route.minimal_taken.to_string(),
            r.route.nonminimal_taken.to_string(),
            format!("{:.6}", r.route.nonminimal_fraction()),
            format!("{:.2}", r.route.mean_margin()),
        ])
        .expect("csv write");
    }
    ugal.finish().expect("csv flush");

    let mut prof = args.csv(
        &format!("obs_profile_{tag}.csv"),
        &[
            "config",
            "inject",
            "tx_done",
            "arrive",
            "wakeup",
            "events_per_sec",
            "queue_high_water",
        ],
    );
    for (label, r) in reports {
        let p = &r.profile;
        prof.row(&[
            label.clone(),
            p.counts[EventKind::Inject.index()].to_string(),
            p.counts[EventKind::TxDone.index()].to_string(),
            p.counts[EventKind::Arrive.index()].to_string(),
            p.counts[EventKind::Wakeup.index()].to_string(),
            format!("{:.0}", p.events_per_sec()),
            p.queue_high_water.to_string(),
        ])
        .expect("csv write");
    }
    prof.finish().expect("csv flush");

    println!("\n== telemetry: {tag} ==");
    let global = dfly_obs::OBS_CLASSES.len() - 1; // Global is the last class
    for (label, r) in reports {
        let util = r.series.util_series(global);
        println!(
            "{label:>10}: {:>5.1}% nonminimal, {:>4.1} Mev/s, queue peak {:>6}, global util {}",
            r.route.nonminimal_fraction() * 100.0,
            r.profile.events_per_sec() / 1e6,
            r.profile.queue_high_water,
            sparkline(&util),
        );
    }
    println!("(full per-config ledgers in obs_ugal_{tag}.csv / obs_profile_{tag}.csv)");
}

/// Format a grid result row label.
pub fn label_of(label: &ConfigLabel) -> String {
    label.to_string()
}

/// Summarize one experiment on stdout (used by several binaries).
pub fn print_run_summary(label: &str, r: &ExperimentResult) {
    let s = r.comm_time_stats();
    println!(
        "{label:>10}: comm time median {:.3} ms (min {:.3}, max {:.3}), mean hops {:.2}, events {:.1}M",
        s.median,
        s.min,
        s.max,
        r.mean_hops(),
        r.events as f64 / 1e6,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxplot_table_prints_all_configs() {
        let rows = vec![
            (
                "cont-min".to_string(),
                BoxStats::from_samples(&[1.0, 2.0, 3.0]).unwrap(),
            ),
            (
                "rand-adp".to_string(),
                BoxStats::from_samples(&[0.5, 1.0, 1.5]).unwrap(),
            ),
        ];
        // Smoke: must not panic on a normal and on a degenerate axis.
        print_boxplot_table("test", &rows);
        let flat = vec![(
            "x".to_string(),
            BoxStats::from_samples(&[2.0, 2.0]).unwrap(),
        )];
        print_boxplot_table("flat", &flat);
    }

    #[test]
    fn emit_cdf_family_writes_full_series() {
        let dir = std::env::temp_dir().join("dfly_bench_harness_test");
        let _ = std::fs::remove_dir_all(&dir);
        let args = RunArgs::new(Mode::Quick, dir.clone());
        let series = vec![
            ("a".to_string(), Cdf::from_samples([1.0, 2.0, 3.0])),
            ("b".to_string(), Cdf::from_samples([])),
        ];
        emit_cdf_family(&args, "t.csv", "title", "x", &series);
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines[0], "config,x,percent_of_channels");
        assert_eq!(lines.len(), 4); // header + 3 points of series a
        assert!(lines[3].starts_with("a,3.000000,100"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn base_config_applies_obs_and_scale() {
        let mut args = RunArgs::new(Mode::Quick, "unused");
        let base = args.base_config(AppKind::CrystalRouter);
        assert!(!base.network.obs);
        args.obs = true;
        args.scale = 0.25;
        let cfg = args.base_config(AppKind::CrystalRouter);
        assert!(cfg.network.obs);
        assert!((cfg.msg_scale - base.msg_scale * 0.25).abs() < 1e-12);
        // No override: the NetworkParams defaults stand.
        assert_eq!(cfg.network.obs_stride, base.network.obs_stride);
        assert!(!cfg.network.obs_coarse_clock);
        cfg.validate().unwrap();

        args.obs_stride = Some(16);
        args.obs_coarse = true;
        let cfg = args.base_config(AppKind::CrystalRouter);
        assert_eq!(cfg.network.obs_stride, 16);
        assert!(cfg.network.obs_coarse_clock);
        cfg.validate().unwrap();

        assert_eq!(cfg.parallelism, Parallelism::Serial);
        args.shards = 4;
        let cfg = args.base_config(AppKind::CrystalRouter);
        assert_eq!(cfg.parallelism, Parallelism::IntraRun(4));
        cfg.validate().unwrap();
    }

    #[test]
    fn emit_obs_family_writes_both_sinks() {
        let dir = std::env::temp_dir().join("dfly_bench_obs_family_test");
        let _ = std::fs::remove_dir_all(&dir);
        let args = RunArgs::new(Mode::Quick, dir.clone());

        // Empty family: no files at all.
        emit_obs_family(&args, "empty", &[]);
        assert!(!dir.exists());

        use dfly_obs::{EventLoopProfile, OccupancyHistogram, RouteStats, SampleSeries};
        let mut report = ObsReport {
            profile: EventLoopProfile::new(),
            series: SampleSeries::new(dfly_engine::Ns(1_000)),
            vc_occupancy: OccupancyHistogram::new(),
            route: RouteStats::new(),
            coarse_unavailable: false,
        };
        report.route.record(false, 0);
        report.route.record(true, 64);
        report.profile.counts[EventKind::Arrive.index()] = 2;
        emit_obs_family(&args, "t", &[("cont-min".to_string(), &report)]);

        let ugal = std::fs::read_to_string(dir.join("obs_ugal_t.csv")).unwrap();
        assert!(ugal.starts_with("config,minimal_taken,nonminimal_taken"));
        assert!(ugal.contains("cont-min,1,1,0.500000"));
        let prof = std::fs::read_to_string(dir.join("obs_profile_t.csv")).unwrap();
        assert!(prof.contains("cont-min,0,0,2,0,"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_args_csv_creates_nested_dirs() {
        let dir = std::env::temp_dir().join("dfly_bench_csv_test/nested");
        let _ = std::fs::remove_dir_all(&dir);
        let args = RunArgs::new(Mode::Full, dir.clone());
        let mut w = args.csv("file.csv", &["a"]);
        w.row(&["1"]).unwrap();
        w.finish().unwrap();
        assert!(dir.join("file.csv").exists());
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }
}
