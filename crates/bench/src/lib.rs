//! # dfly-bench
//!
//! The reproduction harness: one binary per table/figure of the paper
//! (see `DESIGN.md` section 6 for the full index) plus benchmarks over
//! every subsystem, run by the in-tree [`microbench`] harness (no
//! Criterion — the workspace builds with zero external dependencies).
//!
//! Every binary accepts:
//!
//! * `--quick` (default) — the 768-node machine with proportionally scaled
//!   apps; minutes of wall-clock, same qualitative shapes.
//! * `--full` — the paper's 3,456-node Theta machine and app sizes.
//! * `--out DIR` — where CSV artifacts go (default `results/`).
//! * `--obs` — collect telemetry (`dfly-obs`) and emit `obs_*.csv` sinks.
//! * `--scale X` — extra message-size multiplier (golden tests use it).
//!
//! The shared plumbing lives here; the binaries are thin.

pub mod harness;
pub mod microbench;
pub mod routing_comparison;
pub mod stress;

pub mod figures;
pub use harness::{
    emit_cdf_family, emit_obs_family, label_of, parse_args, parse_arrangement, print_boxplot_table,
    print_run_summary, scaled_ranks, Mode, RunArgs, TopoSpec,
};
pub use microbench::{BatchSize, Bencher, BenchmarkGroup, Criterion};
