//! A minimal in-tree benchmark harness — the zero-dependency replacement
//! for Criterion, in the same spirit as `dfly_engine::rng` replacing
//! `rand` and `dfly_engine::proptest` replacing `proptest`.
//!
//! Deliberately tiny: per benchmark it runs a short warmup, calibrates an
//! iterations-per-sample count so one sample is long enough to time
//! reliably, then takes N timed samples and reports the median / p10 /
//! p90 per-iteration time to stdout plus one row in
//! `results/microbench_<target>.csv`. No statistics beyond percentiles,
//! no outlier analysis, no HTML — the reproduction only needs stable
//! relative numbers, offline.
//!
//! The public surface intentionally mirrors the subset of Criterion's API
//! the eight bench targets already used (`Criterion`, `benchmark_group`,
//! `sample_size`, `bench_function`, `iter`, `iter_batched`, `BatchSize`,
//! `criterion_group!`, `criterion_main!`), so a bench file only swaps its
//! `use criterion::...` line for `use dfly_bench::...`.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup. Kept for API compatibility; this
/// harness times every routine invocation individually, so the variants
/// behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; batch freely.
    SmallInput,
    /// Setup output is large; keep batches small.
    LargeInput,
    /// One setup per timed invocation.
    PerIteration,
}

/// One finished benchmark's timings, in nanoseconds per iteration.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    name: String,
    iters_per_sample: u64,
    samples: usize,
    median_ns: f64,
    p10_ns: f64,
    p90_ns: f64,
}

/// Top-level harness state: CLI filter and accumulated results.
pub struct Criterion {
    target: String,
    filter: Option<String>,
    records: Vec<Record>,
}

impl Criterion {
    /// Build from `cargo bench` CLI args: flags (`--bench`, `--quiet`,
    /// ...) are ignored, the first bare argument is a substring filter on
    /// `group/name`.
    pub fn from_args(target: &str) -> Criterion {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            target: target.to_string(),
            filter,
            records: Vec::new(),
        }
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 30,
        }
    }

    /// Write the CSV artifact and a closing line. Called by
    /// [`criterion_main!`] after all groups ran.
    pub fn finalize(&self, results_dir: &str) {
        if self.records.is_empty() {
            println!("no benchmarks matched the filter");
            return;
        }
        let dir = std::path::Path::new(results_dir);
        let path = dir.join(format!("microbench_{}.csv", self.target));
        let mut csv = String::from("group,name,iters_per_sample,samples,median_ns,p10_ns,p90_ns\n");
        for r in &self.records {
            csv.push_str(&format!(
                "{},{},{},{},{:.1},{:.1},{:.1}\n",
                r.group, r.name, r.iters_per_sample, r.samples, r.median_ns, r.p10_ns, r.p90_ns
            ));
        }
        match std::fs::create_dir_all(dir).and_then(|()| {
            std::fs::File::create(&path).and_then(|mut f| f.write_all(csv.as_bytes()))
        }) {
            Ok(()) => println!("\n{} benchmarks -> {}", self.records.len(), path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (default 30).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark. `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] or [`Bencher::iter_batched`] exactly once.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        let (iters_per_sample, mut per_iter_ns) = b
            .result
            .unwrap_or_else(|| panic!("benchmark {full} never called iter()/iter_batched()"));
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| -> f64 {
            let idx = ((per_iter_ns.len() - 1) as f64 * p).round() as usize;
            per_iter_ns[idx]
        };
        let record = Record {
            group: self.name.clone(),
            name: id,
            iters_per_sample,
            samples: per_iter_ns.len(),
            median_ns: pct(0.50),
            p10_ns: pct(0.10),
            p90_ns: pct(0.90),
        };
        println!(
            "{full:<50} median {:>12} (p10 {}, p90 {}; {} samples x {} iters)",
            fmt_ns(record.median_ns),
            fmt_ns(record.p10_ns),
            fmt_ns(record.p90_ns),
            record.samples,
            record.iters_per_sample,
        );
        self.criterion.records.push(record);
        self
    }

    /// No-op (results are recorded as each benchmark finishes); kept so
    /// existing `g.finish()` calls compile.
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Warmup budget: keep running until this much time or this many calls.
const WARMUP_TIME: Duration = Duration::from_millis(30);
const WARMUP_MIN_CALLS: u32 = 3;
/// Target wall-clock duration of one timed sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(2);
/// Cap on iterations batched into one sample (bounds calibration error
/// for extremely fast routines).
const MAX_ITERS_PER_SAMPLE: u64 = 1 << 20;

/// Runs the measured closure: warmup, calibration, timed samples.
pub struct Bencher {
    sample_size: usize,
    /// `(iters_per_sample, per-iteration nanoseconds of each sample)`.
    result: Option<(u64, Vec<f64>)>,
}

impl Bencher {
    /// Benchmark `f` including everything it does (Criterion's `iter`).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warmup + per-call estimate.
        let warm_start = Instant::now();
        let mut calls = 0u32;
        while calls < WARMUP_MIN_CALLS || warm_start.elapsed() < WARMUP_TIME {
            std::hint::black_box(f());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls as f64;
        let iters = iters_per_sample(per_call);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.result = Some((iters, samples));
    }

    /// Benchmark `routine` on fresh `setup` output, excluding setup time
    /// (Criterion's `iter_batched`). Every invocation is timed
    /// individually, so `_size` only exists for API compatibility.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        let mut calls = 0u32;
        let mut routine_time = Duration::ZERO;
        while calls < WARMUP_MIN_CALLS || warm_start.elapsed() < WARMUP_TIME {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            routine_time += t.elapsed();
            calls += 1;
        }
        let per_call = routine_time.as_secs_f64() / calls as f64;
        let iters = iters_per_sample(per_call);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                elapsed += t.elapsed();
            }
            samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
        self.result = Some((iters, samples));
    }
}

/// Iterations per sample so one sample lasts ~[`TARGET_SAMPLE_TIME`].
fn iters_per_sample(per_call_secs: f64) -> u64 {
    if per_call_secs <= 0.0 {
        return MAX_ITERS_PER_SAMPLE;
    }
    ((TARGET_SAMPLE_TIME.as_secs_f64() / per_call_secs).ceil() as u64)
        .clamp(1, MAX_ITERS_PER_SAMPLE)
}

/// Bundle benchmark functions (each `fn(&mut Criterion)`) into one group
/// runner, mirroring Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($fun(c);)+
        }
    };
}

/// Generate `main` for a bench target: run every group, then write the
/// CSV artifact into the workspace `results/` directory.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args(env!("CARGO_CRATE_NAME"));
            $($group(&mut c);)+
            c.finalize(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_targets_sample_time() {
        // 1 µs per call -> ~2000 iterations to fill a 2 ms sample.
        let iters = iters_per_sample(1e-6);
        assert!((1000..=4000).contains(&iters), "iters {iters}");
        // Very slow calls run once per sample.
        assert_eq!(iters_per_sample(1.0), 1);
        // Degenerate estimates clamp instead of dividing by zero.
        assert_eq!(iters_per_sample(0.0), MAX_ITERS_PER_SAMPLE);
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            sample_size: 7,
            result: None,
        };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(5)));
        let (iters, samples) = b.result.expect("iter ran");
        assert_eq!(samples.len(), 7);
        assert!(iters >= 1);
        assert!(samples.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            sample_size: 5,
            result: None,
        };
        // Setup is much slower than the routine; per-iter time must stay
        // well under the setup cost if setup is excluded.
        b.iter_batched(
            || {
                std::thread::sleep(Duration::from_millis(1));
                42u64
            },
            |v| std::hint::black_box(v.wrapping_mul(3)),
            BatchSize::SmallInput,
        );
        let (_, samples) = b.result.expect("ran");
        let median = samples[samples.len() / 2];
        assert!(median < 500_000.0, "setup leaked into timing: {median} ns");
    }

    #[test]
    fn records_and_percentiles() {
        let mut c = Criterion {
            target: "test".into(),
            filter: None,
            records: Vec::new(),
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(5).bench_function("fast", |b| {
            b.iter(|| std::hint::black_box(1u32 + 1));
        });
        g.finish();
        assert_eq!(c.records.len(), 1);
        let r = &c.records[0];
        assert_eq!(r.group, "grp");
        assert_eq!(r.name, "fast");
        assert!(r.p10_ns <= r.median_ns && r.median_ns <= r.p90_ns);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            target: "test".into(),
            filter: Some("nomatch".into()),
            records: Vec::new(),
        };
        let mut g = c.benchmark_group("grp");
        g.bench_function("fast", |b| b.iter(|| 1u32));
        assert!(c.records.is_empty());
    }
}
