//! The routing-policy comparison study: every policy in the zoo — min /
//! adp (UGAL-L) / val / ugalg (UGAL-G) / par — on one machine, for the
//! two communication-heavy apps (CR and FB).
//!
//! Every run forces the conservation audits *and* telemetry on, so the
//! emitted CSV carries both the communication-time distribution and the
//! UGAL-ledger diversion rate per policy, with an explicit `audit_clean`
//! column. Shared implementation of the `routing_comparison` binary.

use crate::harness::{emit_obs_family, print_boxplot_table, RunArgs};
use dfly_core::run_experiment;
use dfly_obs::ObsReport;
use dfly_workloads::AppKind;

/// Run the comparison and write `routing_comparison.csv` into the output
/// directory. Panics if any run fails its conservation audit (after
/// recording the failure in the CSV), so CI cannot ship a dirty table.
pub fn routing_comparison(args: &RunArgs) {
    println!("Routing comparison — mode: {}", args.mode_label());
    let mut csv = args.csv(
        "routing_comparison.csv",
        &[
            "app",
            "routing",
            "min_ms",
            "q1_ms",
            "median_ms",
            "q3_ms",
            "max_ms",
            "mean_ms",
            "mean_hops",
            "nonminimal_fraction",
            "mean_margin",
            "audit_clean",
        ],
    );
    let mut dirty = Vec::new();
    for app in [AppKind::CrystalRouter, AppKind::FillBoundary] {
        let mut rows = Vec::new();
        let mut reports: Vec<(String, ObsReport)> = Vec::new();
        for routing in dfly_core::config::RoutingPolicy::ALL {
            let mut cfg = args.base_config(app);
            cfg.routing = routing;
            cfg.network.audit = true;
            cfg.network.obs = true;
            let t0 = std::time::Instant::now();
            let r = run_experiment(&cfg);
            let clean = r.audit.as_ref().is_some_and(|a| a.is_clean());
            if !clean {
                dirty.push(format!("{}/{}", app.label(), routing.label()));
            }
            let s = r.comm_time_stats();
            let obs = r.obs.as_ref().expect("obs forced on");
            csv.row(&[
                app.label().to_string(),
                routing.label().to_string(),
                format!("{:.6}", s.min),
                format!("{:.6}", s.q1),
                format!("{:.6}", s.median),
                format!("{:.6}", s.q3),
                format!("{:.6}", s.max),
                format!("{:.6}", s.mean),
                format!("{:.4}", r.mean_hops()),
                format!("{:.6}", obs.route.nonminimal_fraction()),
                format!("{:.2}", obs.route.mean_margin()),
                clean.to_string(),
            ])
            .expect("csv");
            println!(
                "{:>3}/{:<6}: median {:.3} ms, mean hops {:.2}, nonminimal {:.1}%, audit {} [{:.0}s]",
                app.label(),
                routing.label(),
                s.median,
                r.mean_hops(),
                obs.route.nonminimal_fraction() * 100.0,
                if clean { "clean" } else { "DIRTY" },
                t0.elapsed().as_secs_f64(),
            );
            rows.push((routing.label().to_string(), s));
            reports.push((routing.label().to_string(), obs.clone()));
        }
        print_boxplot_table(
            &format!(
                "Routing comparison: {} communication time (ms)",
                app.label()
            ),
            &rows,
        );
        let borrowed: Vec<(String, &ObsReport)> =
            reports.iter().map(|(l, r)| (l.clone(), r)).collect();
        emit_obs_family(
            args,
            &format!("routing_{}", app.label().to_lowercase()),
            &borrowed,
        );
    }
    csv.finish().expect("csv");
    println!(
        "\nWrote {}",
        args.out_dir.join("routing_comparison.csv").display()
    );
    assert!(
        dirty.is_empty(),
        "conservation audit failed for: {}",
        dirty.join(", ")
    );
}
