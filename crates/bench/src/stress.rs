//! Adversarial stress fuzzer for the packet engine's conservation audits.
//!
//! Drives randomized small experiments — topology shape x routing x
//! placement x mapping x app x optional background traffic — with the
//! [`dfly_network::audit`] shadow accounting enabled, and fails (with a
//! shrunk minimal scenario, courtesy of the in-tree
//! [`dfly_engine::proptest`] harness) if any run violates a conservation
//! invariant or produces a nonsensical result.
//!
//! The `stress` binary is the CLI entry point (`--quick` for the CI
//! budget); `tests/stress_smoke.rs` runs a handful of seeds in the normal
//! test suite.

use dfly_core::config::{
    AppSelection, BackgroundConfig, ExperimentConfig, Parallelism, RoutingPolicy,
};
use dfly_core::run_experiment;
use dfly_engine::proptest::{run_with_shrink, Config as PropConfig, Failure};
use dfly_engine::{Ns, Xoshiro256};
use dfly_network::NetworkParams;
use dfly_placement::{PlacementPolicy, TaskMapping};
use dfly_topology::{GlobalArrangement, TopologyConfig};
use dfly_workloads::{AppKind, BackgroundKind, BackgroundSpec};
use std::cell::Cell;

/// The machine shapes the fuzzer draws from: the standard test machine
/// plus three deliberately awkward-but-valid small dragonflies (minimum
/// group count, single-row groups, odd node counts). All validate.
pub fn topologies() -> Vec<TopologyConfig> {
    let base = TopologyConfig::small_test();
    vec![
        // 4 groups x (2x4) x 2 nodes = 64 nodes.
        base.clone(),
        // Smallest interesting machine: 2 groups x (2x2) x 2 = 16 nodes.
        TopologyConfig {
            groups: 2,
            rows: 2,
            cols: 2,
            nodes_per_router: 2,
            global_links_per_router: 1,
            chassis_per_cabinet: 2,
            ..base.clone()
        },
        // Single-row groups: 3 groups x (1x4) x 2 = 24 nodes.
        TopologyConfig {
            groups: 3,
            rows: 1,
            cols: 4,
            nodes_per_router: 2,
            global_links_per_router: 1,
            chassis_per_cabinet: 1,
            ..base.clone()
        },
        // Odd node count: 5 groups x (2x2) x 3 = 60 nodes.
        TopologyConfig {
            groups: 5,
            rows: 2,
            cols: 2,
            nodes_per_router: 3,
            global_links_per_router: 1,
            chassis_per_cabinet: 2,
            ..base
        },
        // Canonic (p,a,h,g) dragonfly: 2 x 4 routers x 5 groups = 40
        // nodes, single-row all-to-all groups, 2 globals per router.
        TopologyConfig::canonical(2, 4, 2, 5),
    ]
}

/// The global-link arrangements the fuzzer draws from. Round-robin first,
/// so shrinking toward index 0 lands on the default wiring.
pub fn arrangements() -> [GlobalArrangement; 4] {
    [
        GlobalArrangement::RoundRobin,
        GlobalArrangement::Consecutive,
        GlobalArrangement::PalmTree,
        GlobalArrangement::Random { seed: 0xD1CE },
    ]
}

/// Background traffic of a stress scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StressBackground {
    /// Uniform-random or bursty.
    pub kind: BackgroundKind,
    /// Burst width (1 for uniform).
    pub fanout: u32,
}

/// One randomly generated experiment for the fuzzer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressScenario {
    /// Index into [`topologies`].
    pub topo_idx: usize,
    /// Index into [`arrangements`] (0 = default round-robin wiring).
    pub arrangement_idx: usize,
    /// Routing policy.
    pub routing: RoutingPolicy,
    /// Placement policy.
    pub placement: PlacementPolicy,
    /// Rank-to-node mapping.
    pub mapping: TaskMapping,
    /// Application kind.
    pub app: AppKind,
    /// Application ranks.
    pub ranks: u32,
    /// Message scale in percent (the fuzzer stays small: 2–20%).
    pub msg_scale_pct: u32,
    /// Optional interfering background job on the free nodes.
    pub background: Option<StressBackground>,
    /// Intra-run PDES worker threads (0 = legacy serial loop), so the
    /// fuzzer also hammers the sharded engine's conservation ledgers.
    pub shards: u32,
    /// Experiment master seed.
    pub seed: u64,
}

impl StressScenario {
    /// The experiment this scenario describes, with audits force-enabled.
    pub fn config(&self) -> ExperimentConfig {
        let network = NetworkParams {
            audit: true,
            ..NetworkParams::default()
        };
        let app = match self.app {
            AppKind::CrystalRouter => AppSelection::CrystalRouter { ranks: self.ranks },
            AppKind::FillBoundary => AppSelection::FillBoundary { ranks: self.ranks },
            AppKind::Amg => AppSelection::Amg { ranks: self.ranks },
        };
        let background = self.background.map(|bg| BackgroundConfig {
            spec: match bg.kind {
                BackgroundKind::UniformRandom => {
                    BackgroundSpec::uniform(16 * 1024, Ns::from_us(2), 0)
                }
                BackgroundKind::Bursty => {
                    BackgroundSpec::bursty(128 * 1024, Ns::from_us(60), bg.fanout, 0)
                }
            },
        });
        let mut topology = topologies()[self.topo_idx].clone();
        topology.arrangement = arrangements()[self.arrangement_idx];
        ExperimentConfig {
            topology,
            network,
            app,
            placement: self.placement,
            mapping: self.mapping,
            routing: self.routing,
            msg_scale: self.msg_scale_pct as f64 / 100.0,
            background,
            seed: self.seed,
            parallelism: match self.shards {
                0 => Parallelism::Serial,
                n => Parallelism::IntraRun(n),
            },
        }
    }
}

/// Draw a random (always-valid) scenario.
pub fn generate(rng: &mut Xoshiro256) -> StressScenario {
    let topos = topologies();
    let topo_idx = rng.index(topos.len());
    let nodes = topos[topo_idx].total_nodes();
    // Keep at least half the machine free so every background spec the
    // generator can produce passes the fanout-vs-free-nodes validation.
    let ranks = 4 + rng.next_below((nodes / 2 - 4 + 1) as u64) as u32;
    let free = nodes - ranks;
    let arrangement_idx = rng.index(arrangements().len());
    let routing = RoutingPolicy::ALL[rng.index(RoutingPolicy::ALL.len())];
    let placement = PlacementPolicy::ALL[rng.index(PlacementPolicy::ALL.len())];
    let mapping = TaskMapping::ALL[rng.index(TaskMapping::ALL.len())];
    let app = [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg][rng.index(3)];
    let msg_scale_pct = 2 + rng.next_below(19) as u32;
    let background = if rng.chance(0.6) {
        let kind = if rng.chance(0.5) {
            BackgroundKind::UniformRandom
        } else {
            BackgroundKind::Bursty
        };
        let fanout = match kind {
            BackgroundKind::UniformRandom => 1,
            BackgroundKind::Bursty => 2 + rng.next_below(6.min(free as u64 - 1) - 1) as u32,
        };
        Some(StressBackground { kind, fanout })
    } else {
        None
    };
    // ~40% of scenarios run sharded (1, 2, or 4 workers) — worker count
    // must never matter, so any failure there is a real engine bug.
    let shards = if rng.chance(0.4) {
        1 << rng.index(3)
    } else {
        0
    };
    StressScenario {
        topo_idx,
        arrangement_idx,
        routing,
        placement,
        mapping,
        app,
        ranks,
        msg_scale_pct,
        background,
        shards,
        seed: rng.next_u64(),
    }
}

/// Shrink candidates, simplest-first: the greedy shrinker walks toward
/// no-background, minimal routing, contiguous placement, the default
/// machine, and the smallest app that still fails.
pub fn shrink_candidates(s: &StressScenario) -> Vec<StressScenario> {
    let mut out = Vec::new();
    let mut push = |c: StressScenario| {
        if c != *s {
            out.push(c);
        }
    };
    push(StressScenario {
        background: None,
        ..*s
    });
    push(StressScenario { shards: 0, ..*s });
    push(StressScenario { ranks: 4, ..*s });
    push(StressScenario {
        msg_scale_pct: 2,
        ..*s
    });
    push(StressScenario {
        routing: RoutingPolicy::Minimal,
        ..*s
    });
    push(StressScenario {
        placement: PlacementPolicy::Contiguous,
        ..*s
    });
    push(StressScenario {
        mapping: TaskMapping::Linear,
        ..*s
    });
    push(StressScenario {
        app: AppKind::CrystalRouter,
        ..*s
    });
    push(StressScenario {
        arrangement_idx: 0,
        ..*s
    });
    push(StressScenario { topo_idx: 0, ..*s });
    out
}

/// Run one scenario with audits on. Returns the number of simulator
/// events on success; a structured error message on any audit violation
/// or sanity failure.
pub fn run_scenario(s: &StressScenario) -> Result<u64, String> {
    let cfg = s.config();
    cfg.validate()
        .map_err(|e| format!("generator produced an invalid config: {e}"))?;
    let r = run_experiment(&cfg);
    let report = r
        .audit
        .ok_or("network dropped the audit report despite audit=true")?;
    if !report.is_clean() {
        return Err(format!("conservation audit failed:\n{report}"));
    }
    if report.events_audited == 0 {
        return Err("audit observed zero events".into());
    }
    if r.job_end == Ns::ZERO || r.events == 0 {
        return Err(format!(
            "degenerate run: job_end {:?}, {} events",
            r.job_end, r.events
        ));
    }
    if r.rank_comm_times.len() != s.ranks as usize {
        return Err(format!(
            "expected {} rank times, got {}",
            s.ranks,
            r.rank_comm_times.len()
        ));
    }
    Ok(r.events)
}

/// What a clean stress run covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StressSummary {
    /// Scenarios executed (all clean).
    pub cases: u32,
    /// Total simulator events across all scenarios, every one audited.
    pub events: u64,
}

/// Run `cases` random audited scenarios from `seed`. On failure the
/// returned [`Failure`] carries the shrunk minimal scenario and the seed
/// to reproduce it.
pub fn run_stress(cases: u32, seed: u64) -> Result<StressSummary, Failure> {
    let events = Cell::new(0u64);
    let ran = Cell::new(0u32);
    let cfg = PropConfig {
        cases,
        seed,
        max_shrink_steps: 200,
    };
    run_with_shrink(&cfg, generate, shrink_candidates, |s| {
        let e = run_scenario(s)?;
        events.set(events.get() + e);
        ran.set(ran.get() + 1);
        Ok(())
    })?;
    Ok(StressSummary {
        cases: ran.get(),
        events: events.get(),
    })
}
