//! Experiment configuration.

use dfly_engine::kv::{kv, nest, ToKv};
use dfly_network::NetworkParams;
use dfly_placement::{PlacementPolicy, TaskMapping};
use dfly_topology::TopologyConfig;
use dfly_workloads::{AppKind, BackgroundSpec, WorkloadSpec};

/// Routing mechanism — re-exported network type under the study's name.
pub type RoutingPolicy = dfly_network::Routing;

/// The application under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppSelection {
    /// Crystal Router miniapp.
    CrystalRouter {
        /// MPI ranks (paper: 1000).
        ranks: u32,
    },
    /// Fill Boundary miniapp.
    FillBoundary {
        /// MPI ranks (paper: 1000).
        ranks: u32,
    },
    /// Algebraic MultiGrid solver.
    Amg {
        /// MPI ranks (paper: 1728).
        ranks: u32,
    },
}

impl AppSelection {
    /// The app at the paper's rank count.
    pub fn paper(kind: AppKind) -> AppSelection {
        match kind {
            AppKind::CrystalRouter => AppSelection::CrystalRouter { ranks: 1000 },
            AppKind::FillBoundary => AppSelection::FillBoundary { ranks: 1000 },
            AppKind::Amg => AppSelection::Amg { ranks: 1728 },
        }
    }

    /// The underlying workload kind.
    pub fn kind(&self) -> AppKind {
        match self {
            AppSelection::CrystalRouter { .. } => AppKind::CrystalRouter,
            AppSelection::FillBoundary { .. } => AppKind::FillBoundary,
            AppSelection::Amg { .. } => AppKind::Amg,
        }
    }

    /// Rank count.
    pub fn ranks(&self) -> u32 {
        match *self {
            AppSelection::CrystalRouter { ranks }
            | AppSelection::FillBoundary { ranks }
            | AppSelection::Amg { ranks } => ranks,
        }
    }

    /// Workload spec at a message scale.
    pub fn spec(&self, msg_scale: f64, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            kind: self.kind(),
            ranks: self.ranks(),
            msg_scale,
            seed,
        }
    }
}

/// How a single experiment executes.
///
/// [`Parallelism::Serial`] (the default) is the legacy single-thread event
/// loop and stays byte-identical run to run — the golden-figure contract.
/// [`Parallelism::IntraRun`] shards the network per dragonfly group under
/// conservative time-window PDES on the given number of worker threads;
/// its results are byte-identical *across worker counts* (the partition is
/// per group, not per worker) but are a distinct deterministic schedule
/// from the serial loop (cross-group credit becomes landing queues).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-thread event loop (the golden-run reference path).
    #[default]
    Serial,
    /// Per-group PDES sharding on `n >= 1` worker threads. `IntraRun(1)`
    /// exercises the sharded engine single-threaded — same bytes as any
    /// other count, useful for debugging.
    IntraRun(u32),
}

impl Parallelism {
    /// Stable label for CSV/report output.
    pub fn label(&self) -> String {
        match self {
            Parallelism::Serial => "serial".into(),
            Parallelism::IntraRun(n) => format!("intra-run:{n}"),
        }
    }
}

/// Background (external interference) traffic configuration. The synthetic
/// job always occupies **all** nodes not assigned to the target app, as in
/// the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackgroundConfig {
    /// Traffic pattern and load.
    pub spec: BackgroundSpec,
}

/// A complete experiment: one application run (optionally with background
/// traffic) on one machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Machine shape and link parameters.
    pub topology: TopologyConfig,
    /// Packet / buffer / adaptive-bias parameters.
    pub network: NetworkParams,
    /// The application under test.
    pub app: AppSelection,
    /// Job placement policy.
    pub placement: PlacementPolicy,
    /// Rank-to-node arrangement within the allocation (the paper's
    /// future-work axis; `Linear` reproduces the paper).
    pub mapping: TaskMapping,
    /// Routing mechanism.
    pub routing: RoutingPolicy,
    /// Message-size multiplier (Figure 7's x-axis; 1.0 = original).
    pub msg_scale: f64,
    /// Optional background traffic (Figures 8–10).
    pub background: Option<BackgroundConfig>,
    /// Master seed; placement, routing, workload jitter, and background
    /// destinations each derive an independent stream from it.
    pub seed: u64,
    /// Execution mode of the single run (does not affect sweep-level
    /// worker fan-out, which is a separate axis).
    pub parallelism: Parallelism,
}

impl ExperimentConfig {
    /// The paper's configuration: Theta topology, paper-size app, original
    /// message loads.
    pub fn theta(app: AppKind) -> ExperimentConfig {
        ExperimentConfig {
            topology: TopologyConfig::theta(),
            network: NetworkParams::default(),
            app: AppSelection::paper(app),
            placement: PlacementPolicy::Contiguous,
            mapping: TaskMapping::Linear,
            routing: RoutingPolicy::Minimal,
            msg_scale: 1.0,
            background: None,
            seed: 0x5EED,
            parallelism: Parallelism::Serial,
        }
    }

    /// A miniature configuration for tests and doctests: the small 64-node
    /// machine with a 16-rank app.
    pub fn small_test() -> ExperimentConfig {
        ExperimentConfig {
            topology: TopologyConfig::small_test(),
            network: NetworkParams::default(),
            app: AppSelection::CrystalRouter { ranks: 16 },
            placement: PlacementPolicy::Contiguous,
            mapping: TaskMapping::Linear,
            routing: RoutingPolicy::Minimal,
            msg_scale: 1.0,
            background: None,
            seed: 0x5EED,
            parallelism: Parallelism::Serial,
        }
    }

    /// The `--quick` reproduction configuration: the 768-node machine with
    /// the app scaled to ~1/4.5 of its paper rank count, preserving the
    /// app-size : machine-size ratio of the paper.
    pub fn quick(app: AppKind) -> ExperimentConfig {
        let ranks = match app {
            AppKind::CrystalRouter | AppKind::FillBoundary => 216, // 6x6x6
            AppKind::Amg => 343,                                   // 7x7x7
        };
        let app = match app {
            AppKind::CrystalRouter => AppSelection::CrystalRouter { ranks },
            AppKind::FillBoundary => AppSelection::FillBoundary { ranks },
            AppKind::Amg => AppSelection::Amg { ranks },
        };
        ExperimentConfig {
            topology: TopologyConfig::quick(),
            app,
            ..ExperimentConfig::theta(AppKind::CrystalRouter)
        }
    }

    /// Validate the whole configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.topology.validate()?;
        self.network.validate()?;
        if self.msg_scale <= 0.0 {
            return Err("msg_scale must be positive".into());
        }
        if self.parallelism == Parallelism::IntraRun(0) {
            return Err("intra-run parallelism needs at least one worker".into());
        }
        let nodes = self.topology.total_nodes();
        if self.app.ranks() > nodes {
            return Err(format!(
                "app needs {} ranks but the machine has {} nodes",
                self.app.ranks(),
                nodes
            ));
        }
        if let Some(bg) = &self.background {
            bg.spec.validate()?;
            let free = nodes - self.app.ranks();
            if free < 2 {
                return Err("background job needs at least 2 free nodes".into());
            }
            if bg.spec.fanout >= free {
                return Err(format!(
                    "background fanout {} needs that many distinct peers but only {} \
                     nodes are free for the background job",
                    bg.spec.fanout, free
                ));
            }
        }
        Ok(())
    }
}

impl ToKv for ExperimentConfig {
    fn to_kv(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        kv(&mut out, "app", self.app.kind().label());
        kv(&mut out, "ranks", self.app.ranks());
        kv(&mut out, "placement", self.placement.label());
        kv(&mut out, "mapping", self.mapping.label());
        kv(&mut out, "routing", self.routing.label());
        kv(&mut out, "msg_scale", self.msg_scale);
        kv(&mut out, "seed", format_args!("{:#x}", self.seed));
        // Emitted only when non-default so serial echoes (and the golden
        // CSVs embedding them) keep their exact bytes.
        if self.parallelism != Parallelism::Serial {
            kv(&mut out, "parallelism", self.parallelism.label());
        }
        match &self.background {
            None => kv(&mut out, "background", "none"),
            Some(bg) => {
                kv(&mut out, "background", bg.spec.kind.label());
                kv(&mut out, "background.message_bytes", bg.spec.message_bytes);
                kv(&mut out, "background.interval", bg.spec.interval);
                kv(&mut out, "background.fanout", bg.spec.fanout);
                kv(
                    &mut out,
                    "background.seed",
                    format_args!("{:#x}", bg.spec.seed),
                );
            }
        }
        nest(&mut out, "topology", &self.topology);
        nest(&mut out, "network", &self.network);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_app_sizes() {
        assert_eq!(AppSelection::paper(AppKind::CrystalRouter).ranks(), 1000);
        assert_eq!(AppSelection::paper(AppKind::FillBoundary).ranks(), 1000);
        assert_eq!(AppSelection::paper(AppKind::Amg).ranks(), 1728);
    }

    #[test]
    fn selection_kind_roundtrip() {
        for kind in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
            assert_eq!(AppSelection::paper(kind).kind(), kind);
        }
    }

    #[test]
    fn spec_carries_scale_and_seed() {
        let s = AppSelection::Amg { ranks: 100 }.spec(2.5, 42);
        assert_eq!(s.kind, AppKind::Amg);
        assert_eq!(s.ranks, 100);
        assert_eq!(s.msg_scale, 2.5);
        assert_eq!(s.seed, 42);
    }

    #[test]
    fn theta_and_small_and_quick_validate() {
        for kind in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
            ExperimentConfig::theta(kind).validate().unwrap();
            ExperimentConfig::quick(kind).validate().unwrap();
        }
        ExperimentConfig::small_test().validate().unwrap();
    }

    #[test]
    fn validate_catches_oversized_app() {
        let mut cfg = ExperimentConfig::small_test();
        cfg.app = AppSelection::CrystalRouter { ranks: 100 };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_intra_run_workers() {
        let mut cfg = ExperimentConfig::small_test();
        cfg.parallelism = Parallelism::IntraRun(0);
        assert!(cfg.validate().unwrap_err().contains("at least one worker"));
        cfg.parallelism = Parallelism::IntraRun(1);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn parallelism_key_only_echoed_when_non_default() {
        let mut cfg = ExperimentConfig::small_test();
        assert!(!cfg.kv_echo().contains("parallelism"));
        cfg.parallelism = Parallelism::IntraRun(4);
        assert!(cfg.kv_echo().contains("parallelism = intra-run:4"));
    }

    #[test]
    fn validate_catches_bad_scale() {
        let mut cfg = ExperimentConfig::small_test();
        cfg.msg_scale = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn config_echo_is_deterministic_and_distinguishes_configs() {
        let a = ExperimentConfig::small_test();
        assert_eq!(a.kv_echo(), ExperimentConfig::small_test().kv_echo());
        let mut b = a.clone();
        b.placement = PlacementPolicy::RandomNode;
        assert_ne!(a.kv_echo(), b.kv_echo());
        // Nested topology/network keys are prefixed and present.
        let keys: Vec<String> = a.to_kv().into_iter().map(|(k, _)| k).collect();
        assert!(keys.contains(&"topology.groups".to_string()));
        assert!(keys.contains(&"network.packet_size".to_string()));
        assert!(keys.contains(&"placement".to_string()));
    }

    #[test]
    fn config_echo_includes_background_when_set() {
        use dfly_engine::Ns;
        let mut cfg = ExperimentConfig::small_test();
        cfg.app = AppSelection::CrystalRouter { ranks: 32 };
        cfg.background = Some(BackgroundConfig {
            spec: BackgroundSpec::uniform(1024, Ns::from_us(10), 1),
        });
        let echo = cfg.kv_echo();
        assert!(echo.contains("background = uniform-random"));
        assert!(echo.contains("background.message_bytes = 1024"));
    }

    #[test]
    fn validate_background_node_budget() {
        use dfly_engine::Ns;
        let mut cfg = ExperimentConfig::small_test();
        cfg.app = AppSelection::CrystalRouter { ranks: 63 };
        cfg.background = Some(BackgroundConfig {
            spec: BackgroundSpec::uniform(1024, Ns::from_us(10), 1),
        });
        assert!(cfg.validate().is_err());
        cfg.app = AppSelection::CrystalRouter { ranks: 32 };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_background_fanout_budget() {
        use dfly_engine::Ns;
        let mut cfg = ExperimentConfig::small_test();
        cfg.app = AppSelection::CrystalRouter { ranks: 60 };
        // 4 free nodes: a burst to 4 distinct peers is impossible.
        cfg.background = Some(BackgroundConfig {
            spec: BackgroundSpec::bursty(1024, Ns::from_us(10), 4, 0),
        });
        assert!(cfg.validate().unwrap_err().contains("fanout"));
        cfg.background = Some(BackgroundConfig {
            spec: BackgroundSpec::bursty(1024, Ns::from_us(10), 3, 0),
        });
        assert!(cfg.validate().is_ok());
    }
}
