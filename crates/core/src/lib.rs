//! # dfly-core
//!
//! The experiment framework of the trade-off study: everything above the
//! raw network model and below the per-figure reproduction binaries.
//!
//! * [`config`] — experiment configuration: topology, app, placement,
//!   routing, message scale, background traffic, seeds.
//! * [`mpi`] — the MPI-like rank execution engine: replays a
//!   [`dfly_workloads::JobTrace`] over the network with per-rank
//!   dependency-chained phases (the role DUMPI replay plays in CODES).
//! * [`runner`] — runs one experiment end to end and collects the paper's
//!   metrics (per-rank communication time, average hops, channel traffic,
//!   link saturation).
//! * [`service`] — the continuous multi-tenant service loop: an
//!   incremental [`ServiceSim`] driver with mid-run job injection,
//!   backfill/congestion-aware admission, recommend-fed placement and
//!   per-tenant SLO metrics.
//! * [`sweep`] — runs placement x routing grids and message-scale sweeps,
//!   parallelizing across simulations with scoped threads.
//! * [`report`] — config labels (`cont-min` ... `rand-adp`) and result
//!   summaries in the paper's terms.

#![warn(missing_docs)]

pub mod config;
pub mod mpi;
pub mod multijob;
pub mod recommend;
pub mod report;
pub mod runner;
pub mod scheduler;
pub mod service;
pub mod sweep;
pub mod validate;
pub mod variability;

pub use config::{AppSelection, BackgroundConfig, ExperimentConfig, RoutingPolicy};
pub use mpi::{JobResult, LoadSeries, MpiDriver, MultiDriver};
pub use multijob::{run_multijob, JobSpec, MultiJobConfig, MultiJobResult};
pub use recommend::{recommend, CommIntensity, Recommendation};
pub use report::ConfigLabel;
pub use runner::{execute_experiment, prepare_topology, run_experiment, ExperimentResult};
pub use scheduler::{run_schedule, ScheduleResult, SchedulerConfig, Submission};
pub use service::{
    run_service, tenant_slos, AdmissionPolicy, PlacementChoice, ServiceConfig, ServiceJob,
    ServiceResult, ServiceSim, ServiceSubmission, ServiceWorkload, TenantSlo,
};
pub use sweep::{run_config_grid, GridResult};
pub use variability::{measure_variability, VariabilityReport};
