//! The MPI-like rank execution engine.
//!
//! Replays one or more [`JobTrace`]s over the network: each rank walks its
//! phases in order, entering phase `p+1` only when (a) every send it
//! issued in phase `p` has been delivered and (b) every message addressed
//! to it in phase `p` has arrived. This reproduces the dependency
//! structure of DUMPI trace replay with computation delays stripped
//! (paper Section III-A).
//!
//! The per-rank **communication time** — the paper's headline metric — is
//! the time at which the rank's last phase completes, since every rank
//! starts at t=0 and compute time is ignored.
//!
//! Two kinds of co-runners are supported:
//!
//! * full traced jobs, via [`MultiDriver`] (the multi-job production
//!   scenario the paper motivates; its predecessor study calls the
//!   resulting interference the "bully" effect);
//! * open-loop synthetic background traffic ([`BackgroundRunner`]),
//!   injected incrementally through network wakeups, window by window, so
//!   interference runs never materialize millions of future messages.

use dfly_engine::{Bytes, Ns};
use dfly_network::{Delivery, MessageId, Network, NetworkEvent, ShardedNetwork};
use dfly_topology::NodeId;
use dfly_workloads::{BackgroundTraffic, JobTrace};

/// The network surface the rank engine drives. Implemented by the serial
/// [`Network`] and the sharded PDES [`ShardedNetwork`]; the drivers are
/// generic so a run switches execution modes without touching replay
/// logic.
pub trait DriverNet {
    /// Queue a message for injection at (or after) `at`.
    fn send(&mut self, at: Ns, src: NodeId, dst: NodeId, bytes: Bytes, tag: u64) -> MessageId;
    /// Advance to the next delivery or wakeup; `None` when drained.
    fn poll(&mut self) -> Option<NetworkEvent>;
    /// Current driver-visible simulated time.
    fn now(&self) -> Ns;
    /// Request a [`NetworkEvent::Wakeup`] at absolute time `at`.
    fn schedule_wakeup(&mut self, at: Ns);
    /// Packets a message of `bytes` segments into.
    fn packets_for(&self, bytes: Bytes) -> u64;
    /// Nodes in the machine.
    fn total_nodes(&self) -> u32;
    /// Bytes currently queued in channel buffers.
    fn total_queued_bytes(&self) -> Bytes;
    /// Packets injected but not yet delivered.
    fn packets_in_flight(&self) -> usize;
}

impl DriverNet for Network {
    fn send(&mut self, at: Ns, src: NodeId, dst: NodeId, bytes: Bytes, tag: u64) -> MessageId {
        Network::send(self, at, src, dst, bytes, tag)
    }
    fn poll(&mut self) -> Option<NetworkEvent> {
        Network::poll(self)
    }
    fn now(&self) -> Ns {
        Network::now(self)
    }
    fn schedule_wakeup(&mut self, at: Ns) {
        Network::schedule_wakeup(self, at)
    }
    fn packets_for(&self, bytes: Bytes) -> u64 {
        self.params().packets_for(bytes)
    }
    fn total_nodes(&self) -> u32 {
        self.topology().config().total_nodes()
    }
    fn total_queued_bytes(&self) -> Bytes {
        Network::total_queued_bytes(self)
    }
    fn packets_in_flight(&self) -> usize {
        Network::packets_in_flight(self)
    }
}

impl DriverNet for ShardedNetwork {
    fn send(&mut self, at: Ns, src: NodeId, dst: NodeId, bytes: Bytes, tag: u64) -> MessageId {
        ShardedNetwork::send(self, at, src, dst, bytes, tag)
    }
    fn poll(&mut self) -> Option<NetworkEvent> {
        ShardedNetwork::poll(self)
    }
    fn now(&self) -> Ns {
        ShardedNetwork::now(self)
    }
    fn schedule_wakeup(&mut self, at: Ns) {
        ShardedNetwork::schedule_wakeup(self, at)
    }
    fn packets_for(&self, bytes: Bytes) -> u64 {
        self.params().packets_for(bytes)
    }
    fn total_nodes(&self) -> u32 {
        self.topology().config().total_nodes()
    }
    fn total_queued_bytes(&self) -> Bytes {
        ShardedNetwork::total_queued_bytes(self)
    }
    fn packets_in_flight(&self) -> usize {
        ShardedNetwork::packets_in_flight(self)
    }
}

/// Tag bit marking background messages.
const BG_FLAG: u64 = 1 << 63;
/// Tag layout for app messages: [62:48] job, [47:24] phase, [23:0] rank.
const JOB_SHIFT: u32 = 48;
const PHASE_SHIFT: u32 = 24;
const RANK_MASK: u64 = (1 << PHASE_SHIFT) - 1;
const PHASE_MASK: u64 = (1 << (JOB_SHIFT - PHASE_SHIFT)) - 1;

/// Outcome of one job in a run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Per-rank communication time (completion of the rank's last phase).
    pub rank_comm_time: Vec<Ns>,
    /// Per-rank average packet hops (router-to-router traversals),
    /// averaged over all packets the rank sent.
    pub rank_avg_hops: Vec<f64>,
    /// Time the job finished.
    pub job_end: Ns,
    /// Background messages injected during the run (whole-run total,
    /// reported on every job of the run).
    pub background_messages: u64,
}

impl JobResult {
    /// The slowest rank's communication time (Figure 7's metric).
    pub fn max_comm_time(&self) -> Ns {
        self.rank_comm_time
            .iter()
            .copied()
            .max()
            .unwrap_or(Ns::ZERO)
    }

    /// Per-rank communication times in fractional milliseconds.
    pub fn comm_times_ms(&self) -> Vec<f64> {
        self.rank_comm_time.iter().map(|t| t.as_ms_f64()).collect()
    }
}

struct RankState {
    phase: usize,
    outstanding_sends: u32,
    recvs_got: Vec<u32>,
    finished_at: Option<Ns>,
    hops_weighted: f64,
    packets_sent: u64,
}

struct JobContext<'a> {
    trace: &'a JobTrace,
    placement: &'a [NodeId],
    expected_recvs: Vec<Vec<u32>>,
    ranks: Vec<RankState>,
    unfinished: usize,
}

/// Background injection state: a synthetic job occupying a node set.
pub struct BackgroundRunner {
    traffic: BackgroundTraffic,
    nodes: Vec<NodeId>,
    injected_until: Ns,
    window: Ns,
    messages: u64,
}

impl BackgroundRunner {
    /// Background traffic over the given (non-empty) node set.
    pub fn new(traffic: BackgroundTraffic, nodes: Vec<NodeId>) -> BackgroundRunner {
        assert!(nodes.len() >= 2, "background job needs >= 2 nodes");
        let window = traffic.spec().interval.max(Ns::from_us(200));
        BackgroundRunner {
            traffic,
            nodes,
            injected_until: Ns::ZERO,
            window,
            messages: 0,
        }
    }

    /// Inject the next window of messages; returns the time of the next
    /// refill.
    fn refill<N: DriverNet>(
        &mut self,
        net: &mut N,
        scratch: &mut Vec<dfly_workloads::BgMessage>,
    ) -> Ns {
        let from = self.injected_until;
        let to = from + self.window;
        scratch.clear();
        self.traffic.batch(from, to, scratch);
        for m in scratch.iter() {
            net.send(
                m.at,
                self.nodes[m.src_index as usize],
                self.nodes[m.dst_index as usize],
                m.bytes,
                BG_FLAG | self.messages,
            );
            self.messages += 1;
        }
        self.injected_until = to;
        to
    }
}

/// A sampled time series of instantaneous network load, recorded through
/// periodic wakeups (see [`MultiDriver::with_sampler`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadSeries {
    /// Sample timestamps.
    pub times: Vec<Ns>,
    /// Bytes queued in channel buffers at each sample.
    pub queued_bytes: Vec<u64>,
    /// Packets alive (injected, not yet delivered) at each sample.
    pub packets_in_flight: Vec<u64>,
}

impl LoadSeries {
    /// Peak queued bytes over the run.
    pub fn peak_queued(&self) -> u64 {
        self.queued_bytes.iter().copied().max().unwrap_or(0)
    }

    /// The queued-bytes series as f64 (for sparklines/CSV).
    pub fn queued_f64(&self) -> Vec<f64> {
        self.queued_bytes.iter().map(|&b| b as f64).collect()
    }
}

struct Sampler {
    interval: Ns,
    next: Ns,
    series: LoadSeries,
}

/// Drives any number of traced jobs (plus optional open-loop background
/// traffic) to completion on one shared network.
pub struct MultiDriver<'a, N: DriverNet = Network> {
    net: &'a mut N,
    jobs: Vec<JobContext<'a>>,
    /// node -> (job, rank), dense over the machine.
    node_owner: Vec<(u32, u32)>,
    background: Option<BackgroundRunner>,
    bg_scratch: Vec<dfly_workloads::BgMessage>,
    sampler: Option<Sampler>,
}

const NO_OWNER: (u32, u32) = (u32::MAX, u32::MAX);

impl<'a, N: DriverNet> MultiDriver<'a, N> {
    /// Set up a driver over `jobs`: each entry is a trace plus the node
    /// each of its ranks runs on. Node sets must be disjoint.
    pub fn new(
        net: &'a mut N,
        jobs: &[(&'a JobTrace, &'a [NodeId])],
        background: Option<BackgroundRunner>,
    ) -> MultiDriver<'a, N> {
        assert!(!jobs.is_empty(), "need at least one job");
        assert!(
            jobs.len() < (1 << (63 - JOB_SHIFT)) as usize,
            "too many jobs for the tag encoding"
        );
        let total_nodes = net.total_nodes() as usize;
        let mut node_owner = vec![NO_OWNER; total_nodes];
        let mut contexts = Vec::with_capacity(jobs.len());
        for (job_idx, (trace, placement)) in jobs.iter().enumerate() {
            assert_eq!(
                trace.ranks() as usize,
                placement.len(),
                "job {job_idx}: placement size must equal rank count"
            );
            trace.validate().expect("invalid trace");
            assert!(
                (trace.ranks() as u64) <= RANK_MASK && (trace.phase_count() as u64) <= PHASE_MASK,
                "job {job_idx} exceeds tag encoding limits"
            );
            for (rank, &node) in placement.iter().enumerate() {
                assert_eq!(
                    node_owner[node.index()],
                    NO_OWNER,
                    "node {node} assigned twice"
                );
                node_owner[node.index()] = (job_idx as u32, rank as u32);
            }
            let phases = trace.phase_count();
            let expected_recvs = trace.recv_counts();
            let ranks = (0..trace.ranks())
                .map(|_| RankState {
                    phase: 0,
                    outstanding_sends: 0,
                    recvs_got: vec![0; phases],
                    finished_at: None,
                    hops_weighted: 0.0,
                    packets_sent: 0,
                })
                .collect();
            contexts.push(JobContext {
                trace,
                placement,
                expected_recvs,
                ranks,
                unfinished: trace.ranks() as usize,
            });
        }
        MultiDriver {
            net,
            jobs: contexts,
            node_owner,
            background,
            bg_scratch: Vec::new(),
            sampler: None,
        }
    }

    /// Record a [`LoadSeries`] sample of the network every `interval`
    /// while the run progresses. Retrieve it with
    /// [`MultiDriver::run_with_series`].
    pub fn with_sampler(mut self, interval: Ns) -> Self {
        assert!(interval > Ns::ZERO, "sampling interval must be positive");
        self.sampler = Some(Sampler {
            interval,
            next: Ns::ZERO,
            series: LoadSeries::default(),
        });
        self
    }

    /// Run all jobs to completion; results in job order.
    pub fn run(self) -> Vec<JobResult> {
        self.run_with_series().0
    }

    /// Run all jobs to completion, also returning the sampled load series
    /// (empty unless [`MultiDriver::with_sampler`] was used).
    pub fn run_with_series(mut self) -> (Vec<JobResult>, LoadSeries) {
        for job in 0..self.jobs.len() as u32 {
            for rank in 0..self.jobs[job as usize].trace.ranks() {
                self.issue_phase_sends(job, rank, Ns::ZERO);
            }
        }
        for job in 0..self.jobs.len() as u32 {
            for rank in 0..self.jobs[job as usize].trace.ranks() {
                self.advance_if_complete(job, rank, Ns::ZERO);
            }
        }
        if self.background.is_some() {
            self.refill_background();
        }
        if let Some(s) = &self.sampler {
            self.net.schedule_wakeup(s.next);
        }

        while self.jobs.iter().any(|j| j.unfinished > 0) {
            match self.net.poll() {
                Some(NetworkEvent::Delivery(d)) => self.on_delivery(d),
                Some(NetworkEvent::Wakeup) => self.on_wakeup(),
                None => {
                    panic!("network drained with unfinished ranks — dependency deadlock in trace")
                }
            }
        }

        let bg_messages = self.background.as_ref().map_or(0, |b| b.messages);
        let series = self.sampler.map(|s| s.series).unwrap_or_default();
        let results: Vec<JobResult> = self
            .jobs
            .iter()
            .map(|job| {
                let job_end = job
                    .ranks
                    .iter()
                    .filter_map(|r| r.finished_at)
                    .max()
                    .unwrap_or(Ns::ZERO);
                JobResult {
                    rank_comm_time: job
                        .ranks
                        .iter()
                        .map(|r| r.finished_at.expect("all ranks finished"))
                        .collect(),
                    rank_avg_hops: job
                        .ranks
                        .iter()
                        .map(|r| {
                            if r.packets_sent == 0 {
                                0.0
                            } else {
                                r.hops_weighted / r.packets_sent as f64
                            }
                        })
                        .collect(),
                    job_end,
                    background_messages: bg_messages,
                }
            })
            .collect();
        (results, series)
    }

    /// Background refills and load samples share the wakeup channel; each
    /// fires only when its own deadline has passed (wakeups meant for the
    /// other are harmless no-ops).
    fn on_wakeup(&mut self) {
        let now = self.net.now();
        if self
            .background
            .as_ref()
            .is_some_and(|bg| now >= bg.injected_until)
        {
            self.refill_background();
        }
        let due = self.sampler.as_ref().is_some_and(|s| now >= s.next);
        if due {
            let queued = self.net.total_queued_bytes();
            let in_flight = self.net.packets_in_flight() as u64;
            let s = self.sampler.as_mut().expect("sampler checked above");
            s.series.times.push(now);
            s.series.queued_bytes.push(queued);
            s.series.packets_in_flight.push(in_flight);
            s.next = now + s.interval;
            self.net.schedule_wakeup(s.next);
        }
    }

    fn refill_background(&mut self) {
        let Some(bg) = self.background.as_mut() else {
            return;
        };
        let next = bg.refill(self.net, &mut self.bg_scratch);
        self.net.schedule_wakeup(next);
    }

    fn issue_phase_sends(&mut self, job: u32, rank: u32, now: Ns) {
        let job = job as usize;
        let ctx = &mut self.jobs[job];
        let phase = ctx.ranks[rank as usize].phase;
        let Some(ph) = ctx.trace.programs[rank as usize].phases.get(phase) else {
            return;
        };
        ctx.ranks[rank as usize].outstanding_sends = ph.sends.len() as u32;
        let src_node = ctx.placement[rank as usize];
        let tag = ((job as u64) << JOB_SHIFT) | ((phase as u64) << PHASE_SHIFT) | rank as u64;
        for s in &ph.sends {
            self.net
                .send(now, src_node, ctx.placement[s.peer as usize], s.bytes, tag);
        }
    }

    /// Advance the rank through any phases that are already complete.
    fn advance_if_complete(&mut self, job: u32, rank: u32, now: Ns) {
        loop {
            let ctx = &self.jobs[job as usize];
            let state = &ctx.ranks[rank as usize];
            if state.finished_at.is_some() {
                return;
            }
            let phase = state.phase;
            let total_phases = ctx.trace.programs[rank as usize].phases.len();
            if phase >= total_phases {
                // Empty program.
                let ctx = &mut self.jobs[job as usize];
                ctx.ranks[rank as usize].finished_at = Some(now);
                ctx.unfinished -= 1;
                return;
            }
            let expected = ctx.expected_recvs[rank as usize]
                .get(phase)
                .copied()
                .unwrap_or(0);
            if state.outstanding_sends > 0 || state.recvs_got[phase] < expected {
                return;
            }
            // Phase complete: move on.
            let next = phase + 1;
            let ctx = &mut self.jobs[job as usize];
            ctx.ranks[rank as usize].phase = next;
            if next >= total_phases {
                ctx.ranks[rank as usize].finished_at = Some(now);
                ctx.unfinished -= 1;
                return;
            }
            self.issue_phase_sends(job, rank, now);
        }
    }

    fn on_delivery(&mut self, d: Delivery) {
        if d.tag & BG_FLAG != 0 {
            return; // background message: nobody waits on it
        }
        let now = self.net.now();
        let job = (d.tag >> JOB_SHIFT) as u32;
        let phase = ((d.tag >> PHASE_SHIFT) & PHASE_MASK) as usize;
        let src_rank = (d.tag & RANK_MASK) as u32;
        let (dst_job, dst_rank) = self.node_owner[d.dst.index()];
        debug_assert_eq!(dst_job, job, "app delivery crossed job boundaries");

        // Sender side: hops accounting + outstanding-send bookkeeping.
        {
            let packets = self.net.packets_for(d.bytes);
            let s = &mut self.jobs[job as usize].ranks[src_rank as usize];
            s.hops_weighted += d.avg_hops * packets as f64;
            s.packets_sent += packets;
            debug_assert_eq!(s.phase, phase, "send completed outside its phase");
            s.outstanding_sends -= 1;
        }
        // Receiver side: count the arrival against the sender's phase.
        self.jobs[job as usize].ranks[dst_rank as usize].recvs_got[phase] += 1;

        self.advance_if_complete(job, src_rank, now);
        if dst_rank != src_rank {
            self.advance_if_complete(job, dst_rank, now);
        }
    }
}

/// Drives a single job — thin wrapper over [`MultiDriver`] kept for the
/// common case.
pub struct MpiDriver<'a, N: DriverNet = Network> {
    inner: MultiDriver<'a, N>,
}

impl<'a, N: DriverNet> MpiDriver<'a, N> {
    /// Set up a driver. `placement[rank]` is the node rank runs on.
    pub fn new(
        net: &'a mut N,
        trace: &'a JobTrace,
        placement: &'a [NodeId],
        background: Option<BackgroundRunner>,
    ) -> MpiDriver<'a, N> {
        MpiDriver {
            inner: MultiDriver::new(net, &[(trace, placement)], background),
        }
    }

    /// Run the job to completion.
    pub fn run(self) -> JobResult {
        self.inner
            .run()
            .into_iter()
            .next()
            .expect("exactly one job")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfly_network::{NetworkParams, Routing};
    use dfly_topology::{Topology, TopologyConfig};
    use dfly_workloads::{
        generate, AppKind, BackgroundSpec, Phase, RankProgram, SendOp, WorkloadSpec,
    };
    use std::sync::Arc;

    fn network(routing: Routing) -> Network {
        let topo = Arc::new(Topology::build(TopologyConfig::small_test()));
        Network::new(topo, NetworkParams::default(), routing, 99)
    }

    fn contiguous(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn two_rank_pingpong() {
        let trace = JobTrace {
            programs: vec![
                RankProgram {
                    phases: vec![
                        Phase {
                            sends: vec![SendOp {
                                peer: 1,
                                bytes: 4096,
                            }],
                        },
                        Phase { sends: vec![] }, // waits for the reply
                    ],
                },
                RankProgram {
                    phases: vec![
                        Phase { sends: vec![] }, // waits for rank 0's message
                        Phase {
                            sends: vec![SendOp {
                                peer: 0,
                                bytes: 4096,
                            }],
                        },
                    ],
                },
            ],
        };
        let mut net = network(Routing::Minimal);
        let placement = contiguous(2);
        let result = MpiDriver::new(&mut net, &trace, &placement, None).run();
        assert_eq!(result.rank_comm_time.len(), 2);
        assert!(result.rank_comm_time[0] >= result.rank_comm_time[1]);
        assert!(result.job_end > Ns::ZERO);
        assert_eq!(result.background_messages, 0);
    }

    #[test]
    fn dependency_serializes_phases() {
        // One rank sends a chain through 3 peers; each phase must wait for
        // the previous, so total time ~3x one-hop time.
        let chain = JobTrace {
            programs: vec![
                RankProgram {
                    phases: vec![Phase {
                        sends: vec![SendOp {
                            peer: 1,
                            bytes: 100_000,
                        }],
                    }],
                },
                RankProgram {
                    phases: vec![
                        Phase { sends: vec![] },
                        Phase {
                            sends: vec![SendOp {
                                peer: 2,
                                bytes: 100_000,
                            }],
                        },
                    ],
                },
                RankProgram {
                    phases: vec![Phase { sends: vec![] }, Phase { sends: vec![] }],
                },
            ],
        };
        let single = JobTrace {
            programs: vec![
                RankProgram {
                    phases: vec![Phase {
                        sends: vec![SendOp {
                            peer: 1,
                            bytes: 100_000,
                        }],
                    }],
                },
                RankProgram {
                    phases: vec![Phase { sends: vec![] }],
                },
                RankProgram { phases: vec![] },
            ],
        };
        let mut net = network(Routing::Minimal);
        let p = contiguous(3);
        let chained = MpiDriver::new(&mut net, &chain, &p, None).run();
        let mut net2 = network(Routing::Minimal);
        let one = MpiDriver::new(&mut net2, &single, &p, None).run();
        assert!(
            chained.job_end.as_nanos() > (one.job_end.as_nanos() * 3) / 2,
            "chain {} vs single {}",
            chained.job_end,
            one.job_end
        );
    }

    #[test]
    fn empty_programs_finish_at_zero() {
        let trace = JobTrace {
            programs: vec![RankProgram::default(), RankProgram::default()],
        };
        let mut net = network(Routing::Minimal);
        let p = contiguous(2);
        let r = MpiDriver::new(&mut net, &trace, &p, None).run();
        assert_eq!(r.rank_comm_time, vec![Ns::ZERO, Ns::ZERO]);
        assert_eq!(r.job_end, Ns::ZERO);
    }

    #[test]
    fn full_cr_app_runs_on_small_machine() {
        let trace = generate(&WorkloadSpec {
            kind: AppKind::CrystalRouter,
            ranks: 32,
            msg_scale: 0.1,
            seed: 5,
        });
        let mut net = network(Routing::Adaptive);
        let p = contiguous(32);
        let r = MpiDriver::new(&mut net, &trace, &p, None).run();
        assert!(r.job_end > Ns::ZERO);
        assert_eq!(r.rank_comm_time.len(), 32);
        assert!(r.rank_comm_time.iter().all(|&t| t > Ns::ZERO));
        assert!(r.rank_avg_hops.iter().all(|&h| (0.0..=10.0).contains(&h)));
        assert!(r.rank_avg_hops.iter().any(|&h| h > 0.0));
    }

    #[test]
    fn all_three_apps_complete() {
        for kind in [AppKind::CrystalRouter, AppKind::FillBoundary, AppKind::Amg] {
            let trace = generate(&WorkloadSpec {
                kind,
                ranks: 27,
                msg_scale: 0.05,
                seed: 6,
            });
            let mut net = network(Routing::Minimal);
            let p = contiguous(27);
            let r = MpiDriver::new(&mut net, &trace, &p, None).run();
            assert!(r.job_end > Ns::ZERO, "{kind:?}");
        }
    }

    #[test]
    fn placement_affects_comm_time() {
        let trace = generate(&WorkloadSpec {
            kind: AppKind::Amg,
            ranks: 27,
            msg_scale: 1.0,
            seed: 8,
        });
        let run = |placement: Vec<NodeId>| {
            let mut net = network(Routing::Minimal);
            MpiDriver::new(&mut net, &trace, &placement, None).run()
        };
        let cont = run(contiguous(27));
        let spread: Vec<NodeId> = (0..27).map(|i| NodeId(i * 2)).collect();
        let scattered = run(spread);
        assert_ne!(cont.job_end, scattered.job_end);
    }

    #[test]
    fn background_traffic_slows_the_app() {
        let trace = generate(&WorkloadSpec {
            kind: AppKind::Amg,
            ranks: 8,
            msg_scale: 1.0,
            seed: 4,
        });
        let placement = contiguous(8);
        let mut quiet_net = network(Routing::Adaptive);
        let quiet = MpiDriver::new(&mut quiet_net, &trace, &placement, None).run();

        let mut noisy_net = network(Routing::Adaptive);
        let bg_nodes: Vec<NodeId> = (8..64).map(NodeId).collect();
        let bg = BackgroundRunner::new(
            BackgroundTraffic::new(
                BackgroundSpec::uniform(64 * 1024, Ns::from_us(2), 77),
                bg_nodes.len() as u32,
            ),
            bg_nodes,
        );
        let noisy = MpiDriver::new(&mut noisy_net, &trace, &placement, Some(bg)).run();
        assert!(noisy.background_messages > 0);
        assert!(
            noisy.job_end > quiet.job_end,
            "background should slow the app: {} vs {}",
            noisy.job_end,
            quiet.job_end
        );
    }

    #[test]
    fn deterministic_end_to_end() {
        let trace = generate(&WorkloadSpec {
            kind: AppKind::FillBoundary,
            ranks: 27,
            msg_scale: 0.2,
            seed: 12,
        });
        let run = || {
            let mut net = network(Routing::Adaptive);
            let p = contiguous(27);
            MpiDriver::new(&mut net, &trace, &p, None).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "placement size")]
    fn placement_arity_checked() {
        let trace = JobTrace {
            programs: vec![RankProgram::default(); 3],
        };
        let mut net = network(Routing::Minimal);
        let p = contiguous(2);
        let _ = MpiDriver::new(&mut net, &trace, &p, None);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_node_rejected() {
        let trace = JobTrace {
            programs: vec![RankProgram::default(); 2],
        };
        let mut net = network(Routing::Minimal);
        let p = vec![NodeId(0), NodeId(0)];
        let _ = MpiDriver::new(&mut net, &trace, &p, None);
    }

    // ----- multi-job -------------------------------------------------------

    #[test]
    fn two_jobs_run_concurrently_and_interfere() {
        let cr = generate(&WorkloadSpec {
            kind: AppKind::CrystalRouter,
            ranks: 16,
            msg_scale: 0.5,
            seed: 31,
        });
        let amg = generate(&WorkloadSpec {
            kind: AppKind::Amg,
            ranks: 16,
            msg_scale: 1.0,
            seed: 32,
        });
        // Interleave the two jobs on even/odd nodes so they genuinely
        // share routers and links (contiguous separate groups would be
        // perfectly isolated and show no interference at all).
        let p_cr: Vec<NodeId> = (0..16).map(|i| NodeId(i * 2)).collect();
        let p_amg: Vec<NodeId> = (0..16).map(|i| NodeId(i * 2 + 1)).collect();

        // Isolated AMG baseline.
        let mut solo_net = network(Routing::Adaptive);
        let solo = MpiDriver::new(&mut solo_net, &amg, &p_amg, None).run();

        // Co-run with CR.
        let mut net = network(Routing::Adaptive);
        let results = MultiDriver::new(&mut net, &[(&cr, &p_cr), (&amg, &p_amg)], None).run();
        assert_eq!(results.len(), 2);
        assert!(results[0].job_end > Ns::ZERO);
        assert!(results[1].job_end > Ns::ZERO);
        // The communication-heavy CR bullies AMG: co-run AMG is slower
        // than isolated AMG.
        assert!(
            results[1].job_end > solo.job_end,
            "co-run AMG {} should exceed solo {}",
            results[1].job_end,
            solo.job_end
        );
    }

    #[test]
    fn multi_job_results_independent_of_listing_order_for_disjoint_apps() {
        // Two identical jobs on disjoint far-apart node sets still share
        // the network; results must be deterministic and per-job.
        let t1 = generate(&WorkloadSpec {
            kind: AppKind::Amg,
            ranks: 8,
            msg_scale: 0.5,
            seed: 41,
        });
        let p1 = contiguous(8);
        let p2: Vec<NodeId> = (32..40).map(NodeId).collect();
        let mut net = network(Routing::Minimal);
        let r = MultiDriver::new(&mut net, &[(&t1, &p1), (&t1, &p2)], None).run();
        assert_eq!(r[0].rank_comm_time.len(), 8);
        assert_eq!(r[1].rank_comm_time.len(), 8);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn multi_job_overlapping_placements_rejected() {
        let t = JobTrace {
            programs: vec![RankProgram::default(); 2],
        };
        let mut net = network(Routing::Minimal);
        let p1 = vec![NodeId(0), NodeId(1)];
        let p2 = vec![NodeId(1), NodeId(2)];
        let _ = MultiDriver::new(&mut net, &[(&t, &p1), (&t, &p2)], None);
    }

    #[test]
    fn sampler_records_load_series() {
        let trace = generate(&WorkloadSpec {
            kind: AppKind::FillBoundary,
            ranks: 16,
            msg_scale: 0.5,
            seed: 71,
        });
        let p = contiguous(16);
        let mut net = network(Routing::Minimal);
        let (results, series) = MultiDriver::new(&mut net, &[(&trace, &p)], None)
            .with_sampler(Ns::from_us(5))
            .run_with_series();
        assert_eq!(results.len(), 1);
        assert!(
            series.times.len() >= 2,
            "too few samples: {}",
            series.times.len()
        );
        // Timestamps are strictly increasing and spaced by >= interval.
        for w in series.times.windows(2) {
            assert!(w[1] >= w[0] + Ns::from_us(5));
        }
        // Load was actually observed.
        assert!(series.peak_queued() > 0);
        assert_eq!(series.times.len(), series.queued_bytes.len());
        assert_eq!(series.times.len(), series.packets_in_flight.len());
    }

    #[test]
    fn run_without_sampler_returns_empty_series() {
        let trace = JobTrace {
            programs: vec![RankProgram::default(); 2],
        };
        let p = contiguous(2);
        let mut net = network(Routing::Minimal);
        let (_, series) = MultiDriver::new(&mut net, &[(&trace, &p)], None).run_with_series();
        assert!(series.times.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn multi_job_needs_jobs() {
        let mut net = network(Routing::Minimal);
        let _ = MultiDriver::new(&mut net, &[], None);
    }
}
