//! Multi-job co-run experiments.
//!
//! The paper simulates the multi-job production environment with
//! *synthetic* background traffic (Section IV-C); its predecessor study
//! (Yang et al., SC'16 — the "bully" paper) co-runs real applications.
//! This module supports both full co-runs of traced applications and the
//! paper's app-plus-synthetic setup, with per-job metrics, extending the
//! reproduction toward the "diversified workloads" future work the paper
//! announces.

use crate::config::{AppSelection, RoutingPolicy};
use crate::mpi::{JobResult, MultiDriver};
use dfly_engine::{Ns, Xoshiro256};
use dfly_network::{MetricsFilter, Network, NetworkMetrics, NetworkParams};
use dfly_placement::{NodePool, PlacementPolicy};
use dfly_stats::BoxStats;
use dfly_topology::{NodeId, RouterId, Topology, TopologyConfig};
use dfly_workloads::generate;
use std::collections::HashSet;
use std::sync::Arc;

/// One job of a co-run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// The application.
    pub app: AppSelection,
    /// Placement policy for this job.
    pub placement: PlacementPolicy,
    /// Message-size multiplier.
    pub msg_scale: f64,
}

impl JobSpec {
    /// A job at the paper's size with original loads.
    pub fn new(app: AppSelection, placement: PlacementPolicy) -> JobSpec {
        JobSpec {
            app,
            placement,
            msg_scale: 1.0,
        }
    }
}

/// A whole co-run configuration. Jobs are allocated in order from one
/// shared node pool, so earlier jobs get first pick — exactly how a batch
/// scheduler fills a machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiJobConfig {
    /// Machine shape.
    pub topology: TopologyConfig,
    /// Network parameters.
    pub network: NetworkParams,
    /// System-wide routing mechanism.
    pub routing: RoutingPolicy,
    /// The co-running jobs.
    pub jobs: Vec<JobSpec>,
    /// Master seed.
    pub seed: u64,
}

impl MultiJobConfig {
    /// Validate the whole configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.topology.validate()?;
        self.network.validate()?;
        if self.jobs.is_empty() {
            return Err("need at least one job".into());
        }
        let total: u64 = self.jobs.iter().map(|j| j.app.ranks() as u64).sum();
        if total > self.topology.total_nodes() as u64 {
            return Err(format!(
                "jobs need {total} nodes but the machine has {}",
                self.topology.total_nodes()
            ));
        }
        for (i, j) in self.jobs.iter().enumerate() {
            if j.msg_scale <= 0.0 {
                return Err(format!("job {i}: msg_scale must be positive"));
            }
        }
        Ok(())
    }
}

/// Per-job outcome of a co-run.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The spec this outcome belongs to.
    pub spec: JobSpec,
    /// Nodes the job ran on.
    pub placement: Vec<NodeId>,
    /// Raw per-rank results.
    pub result: JobResult,
    /// Routers serving this job.
    pub routers: HashSet<RouterId>,
}

impl JobOutcome {
    /// Box statistics of this job's per-rank communication time (ms).
    pub fn comm_time_stats(&self) -> BoxStats {
        BoxStats::from_samples(&self.result.comm_times_ms()).expect("at least one rank")
    }

    /// Metrics filter restricted to this job's routers (borrows the set).
    pub fn filter(&self) -> MetricsFilter<'_> {
        MetricsFilter::Routers(&self.routers)
    }
}

/// Outcome of a whole co-run.
#[derive(Debug, Clone)]
pub struct MultiJobResult {
    /// Per-job outcomes, in config order.
    pub jobs: Vec<JobOutcome>,
    /// Network metrics at the end of the run.
    pub metrics: NetworkMetrics,
    /// Completion time of the last job.
    pub makespan: Ns,
}

/// Run a co-run configuration.
pub fn run_multijob(config: &MultiJobConfig) -> MultiJobResult {
    config.validate().expect("invalid multi-job config");
    let topo = Arc::new(Topology::build(config.topology.clone()));

    let mut master = Xoshiro256::seed_from(config.seed);
    let mut placement_rng = master.split(1);
    let workload_seed = master.split(2).next_u64();
    let routing_seed = master.split(3).next_u64();

    // Allocate all jobs from one pool, in order.
    let mut pool = NodePool::new(&topo);
    let mut placements = Vec::with_capacity(config.jobs.len());
    for job in &config.jobs {
        let nodes = job
            .placement
            .allocate(&topo, &mut pool, job.app.ranks(), &mut placement_rng)
            .expect("validated config cannot over-allocate");
        placements.push(nodes);
    }
    let traces: Vec<_> = config
        .jobs
        .iter()
        .enumerate()
        .map(|(i, job)| {
            generate(
                &job.app
                    .spec(job.msg_scale, workload_seed ^ (i as u64) << 32),
            )
        })
        .collect();

    let mut net = Network::new(topo.clone(), config.network, config.routing, routing_seed);
    let job_refs: Vec<(&dfly_workloads::JobTrace, &[NodeId])> = traces
        .iter()
        .zip(&placements)
        .map(|(t, p)| (t, p.as_slice()))
        .collect();
    let results = MultiDriver::new(&mut net, &job_refs, None).run();
    let metrics = net.metrics();

    let jobs: Vec<JobOutcome> = config
        .jobs
        .iter()
        .zip(placements)
        .zip(results)
        .map(|((spec, placement), result)| {
            let routers = placement.iter().map(|&n| topo.node_router(n)).collect();
            JobOutcome {
                spec: *spec,
                placement,
                result,
                routers,
            }
        })
        .collect();
    let makespan = jobs
        .iter()
        .map(|j| j.result.job_end)
        .max()
        .unwrap_or(Ns::ZERO);
    MultiJobResult {
        jobs,
        metrics,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(jobs: Vec<JobSpec>) -> MultiJobConfig {
        MultiJobConfig {
            topology: TopologyConfig::small_test(),
            network: NetworkParams::default(),
            routing: RoutingPolicy::Adaptive,
            jobs,
            seed: 0xC0DE,
        }
    }

    #[test]
    fn single_job_co_run_matches_shape() {
        let r = run_multijob(&cfg(vec![JobSpec {
            app: AppSelection::Amg { ranks: 27 },
            placement: PlacementPolicy::Contiguous,
            msg_scale: 0.5,
        }]));
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(r.jobs[0].result.rank_comm_time.len(), 27);
        assert_eq!(r.makespan, r.jobs[0].result.job_end);
        assert!(!r.jobs[0].routers.is_empty());
    }

    #[test]
    fn corun_bully_effect() {
        // AMG alone vs AMG next to a heavy CR: the co-run must be slower.
        let amg = JobSpec {
            app: AppSelection::Amg { ranks: 16 },
            placement: PlacementPolicy::RandomNode,
            msg_scale: 1.0,
        };
        let cr = JobSpec {
            app: AppSelection::CrystalRouter { ranks: 32 },
            placement: PlacementPolicy::RandomNode,
            msg_scale: 1.0,
        };
        let solo = run_multijob(&cfg(vec![amg]));
        let corun = run_multijob(&cfg(vec![amg, cr]));
        let solo_med = solo.jobs[0].comm_time_stats().median;
        let corun_med = corun.jobs[0].comm_time_stats().median;
        assert!(
            corun_med > solo_med,
            "bully effect missing: solo {solo_med:.3} vs co-run {corun_med:.3}"
        );
    }

    #[test]
    fn jobs_allocated_disjoint_in_order() {
        let r = run_multijob(&cfg(vec![
            JobSpec {
                app: AppSelection::CrystalRouter { ranks: 16 },
                placement: PlacementPolicy::Contiguous,
                msg_scale: 0.1,
            },
            JobSpec {
                app: AppSelection::Amg { ranks: 16 },
                placement: PlacementPolicy::Contiguous,
                msg_scale: 0.1,
            },
        ]));
        let a: HashSet<_> = r.jobs[0].placement.iter().collect();
        assert!(r.jobs[1].placement.iter().all(|n| !a.contains(n)));
        // First contiguous job gets the lowest nodes.
        assert_eq!(r.jobs[0].placement[0], NodeId(0));
        assert_eq!(r.jobs[1].placement[0], NodeId(16));
    }

    #[test]
    fn validate_rejects_overcommit() {
        let c = cfg(vec![
            JobSpec {
                app: AppSelection::CrystalRouter { ranks: 40 },
                placement: PlacementPolicy::RandomNode,
                msg_scale: 1.0,
            },
            JobSpec {
                app: AppSelection::Amg { ranks: 40 },
                placement: PlacementPolicy::RandomNode,
                msg_scale: 1.0,
            },
        ]);
        assert!(c.validate().is_err());
        assert!(cfg(vec![]).validate().is_err());
    }

    #[test]
    fn deterministic() {
        let c = cfg(vec![
            JobSpec {
                app: AppSelection::FillBoundary { ranks: 16 },
                placement: PlacementPolicy::RandomRouter,
                msg_scale: 0.2,
            },
            JobSpec {
                app: AppSelection::Amg { ranks: 16 },
                placement: PlacementPolicy::RandomNode,
                msg_scale: 0.5,
            },
        ]);
        let a = run_multijob(&c);
        let b = run_multijob(&c);
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.result, y.result);
            assert_eq!(x.placement, y.placement);
        }
    }
}
