//! The study's findings as an actionable API.
//!
//! The paper's conclusion (Section VI) — and the hybrid-placement
//! methodology its predecessor study proposes — in one function:
//! applications with low message load or low exchange frequency benefit
//! from localized communication; applications with high load or high
//! frequency benefit from balanced network traffic; and under external
//! interference, localized placement with minimal routing shields a job.

use crate::config::RoutingPolicy;
use dfly_placement::PlacementPolicy;
use dfly_workloads::JobTrace;

/// How much communication a trace does, in the paper's two dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommIntensity {
    /// Average bytes sent per rank over the whole trace (the paper's
    /// "message load" axis).
    pub avg_load_per_rank: f64,
    /// Average sends per rank per phase (the paper's "message exchange
    /// frequency" axis).
    pub sends_per_rank_per_phase: f64,
}

impl CommIntensity {
    /// Measure a trace.
    pub fn of(trace: &JobTrace) -> CommIntensity {
        let ranks = trace.ranks().max(1) as f64;
        let phases = trace.phase_count().max(1) as f64;
        CommIntensity {
            avg_load_per_rank: trace.avg_load_per_rank(),
            sends_per_rank_per_phase: trace.total_sends() as f64 / ranks / phases,
        }
    }
}

/// A placement + routing recommendation with its reasoning.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Recommended placement policy.
    pub placement: PlacementPolicy,
    /// Recommended routing mechanism.
    pub routing: RoutingPolicy,
    /// Which finding drove the choice.
    pub rationale: String,
}

/// The paper's intensity threshold, calibrated on its three applications:
/// AMG (~0.7 MB/rank in this reproduction's traces) benefits from
/// locality, CR (~2.9 MB/rank) and FB (~5.5 MB/rank) from balance.
/// Figure 7 puts the AMG crossover near 10x its original load, i.e.
/// single-digit MB/rank.
pub const LOAD_THRESHOLD_BYTES_PER_RANK: f64 = 2.0 * 1024.0 * 1024.0;

/// Recommend a configuration for a job, per the paper's key findings.
///
/// * `shared_network` — whether other jobs share the machine. Under
///   interference, localized placement (with minimal routing) reduces
///   performance variation for *every* studied application, so sharing
///   shifts the recommendation toward locality (Section IV-C).
pub fn recommend(intensity: CommIntensity, shared_network: bool) -> Recommendation {
    let intensive = intensity.avg_load_per_rank > LOAD_THRESHOLD_BYTES_PER_RANK;
    match (intensive, shared_network) {
        (false, _) => Recommendation {
            placement: PlacementPolicy::Contiguous,
            routing: RoutingPolicy::Adaptive,
            rationale: format!(
                "low message load ({:.2} MB/rank <= {:.0} MB/rank): localized \
                 communication cuts hops; adaptive routing relieves the \
                 residual local congestion (paper Fig. 3(c))",
                intensity.avg_load_per_rank / 1e6,
                LOAD_THRESHOLD_BYTES_PER_RANK / 1e6
            ),
        },
        (true, false) => Recommendation {
            placement: PlacementPolicy::RandomNode,
            routing: RoutingPolicy::Adaptive,
            rationale: format!(
                "high message load ({:.2} MB/rank) on a dedicated machine: \
                 balanced network traffic reduces link saturation \
                 (paper Figs. 3(a,b), 7)",
                intensity.avg_load_per_rank / 1e6
            ),
        },
        (true, true) => Recommendation {
            placement: PlacementPolicy::RandomCabinet,
            routing: RoutingPolicy::Minimal,
            rationale: "communication-intensive job on a shared machine: \
                        cabinet-level locality with minimal routing creates a \
                        relatively isolated region, trading some balance for \
                        much lower interference variability (paper Figs. 9-10)"
                .to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfly_workloads::{generate, AppKind, WorkloadSpec};

    fn intensity_of(kind: AppKind) -> CommIntensity {
        let trace = generate(&WorkloadSpec {
            kind,
            ranks: kind.paper_ranks(),
            msg_scale: 1.0,
            seed: 1,
        });
        CommIntensity::of(&trace)
    }

    #[test]
    fn amg_recommended_localized() {
        let r = recommend(intensity_of(AppKind::Amg), false);
        assert_eq!(r.placement, PlacementPolicy::Contiguous);
        assert_eq!(r.routing, RoutingPolicy::Adaptive);
        assert!(r.rationale.contains("low message load"));
    }

    #[test]
    fn cr_and_fb_recommended_balanced_on_dedicated_machine() {
        for kind in [AppKind::CrystalRouter, AppKind::FillBoundary] {
            let r = recommend(intensity_of(kind), false);
            assert_eq!(r.placement, PlacementPolicy::RandomNode, "{kind:?}");
            assert_eq!(r.routing, RoutingPolicy::Adaptive);
        }
    }

    #[test]
    fn sharing_shifts_intensive_apps_toward_locality() {
        let r = recommend(intensity_of(AppKind::CrystalRouter), true);
        assert_eq!(r.placement, PlacementPolicy::RandomCabinet);
        assert_eq!(r.routing, RoutingPolicy::Minimal);
    }

    #[test]
    fn sharing_keeps_amg_localized() {
        let r = recommend(intensity_of(AppKind::Amg), true);
        assert_eq!(r.placement, PlacementPolicy::Contiguous);
    }

    #[test]
    fn intensity_measures_are_sane() {
        let amg = intensity_of(AppKind::Amg);
        let fb = intensity_of(AppKind::FillBoundary);
        assert!(amg.avg_load_per_rank < fb.avg_load_per_rank);
        assert!(amg.sends_per_rank_per_phase > 0.0);
        // Scaling a trace scales only the load axis.
        let base = generate(&WorkloadSpec {
            kind: AppKind::Amg,
            ranks: 64,
            msg_scale: 1.0,
            seed: 2,
        });
        let heavy = base.scaled(20.0);
        let a = CommIntensity::of(&base);
        let b = CommIntensity::of(&heavy);
        assert!((b.avg_load_per_rank / a.avg_load_per_rank - 20.0).abs() < 0.2);
        assert_eq!(a.sends_per_rank_per_phase, b.sends_per_rank_per_phase);
    }

    #[test]
    fn threshold_crossover_matches_fig7_direction() {
        // AMG at 20x its load crosses the threshold and flips to balance,
        // mirroring Figure 7(c).
        let trace = generate(&WorkloadSpec {
            kind: AppKind::Amg,
            ranks: 512,
            msg_scale: 20.0,
            seed: 3,
        });
        let r = recommend(CommIntensity::of(&trace), false);
        assert_eq!(r.placement, PlacementPolicy::RandomNode);
    }

    #[test]
    fn empty_trace_counts_as_light() {
        let trace = JobTrace { programs: vec![] };
        let i = CommIntensity::of(&trace);
        assert_eq!(i.avg_load_per_rank, 0.0);
        let r = recommend(i, false);
        assert_eq!(r.placement, PlacementPolicy::Contiguous);
    }
}
