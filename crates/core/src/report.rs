//! Config labels and result summaries in the paper's terms.

use crate::config::RoutingPolicy;
use dfly_placement::PlacementPolicy;
use std::fmt;

/// A placement x routing combination, labelled as in the paper's Table I
/// (`cont-min`, `cab-adp`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConfigLabel {
    /// Placement policy.
    pub placement: PlacementPolicy,
    /// Routing mechanism.
    pub routing: RoutingPolicy,
}

impl ConfigLabel {
    /// The ten combinations of Table I, minimal column first:
    /// cont-min, cab-min, chas-min, rotr-min, rand-min,
    /// cont-adp, cab-adp, chas-adp, rotr-adp, rand-adp.
    pub fn all_ten() -> Vec<ConfigLabel> {
        let mut out = Vec::with_capacity(10);
        for routing in [RoutingPolicy::Minimal, RoutingPolicy::Adaptive] {
            for placement in PlacementPolicy::ALL {
                out.push(ConfigLabel { placement, routing });
            }
        }
        out
    }

    /// The four "extreme" combinations of the sensitivity study
    /// (Section IV-B): cont-min, rand-min, cont-adp, rand-adp.
    pub fn extremes() -> Vec<ConfigLabel> {
        [
            (PlacementPolicy::Contiguous, RoutingPolicy::Minimal),
            (PlacementPolicy::RandomNode, RoutingPolicy::Minimal),
            (PlacementPolicy::Contiguous, RoutingPolicy::Adaptive),
            (PlacementPolicy::RandomNode, RoutingPolicy::Adaptive),
        ]
        .into_iter()
        .map(|(placement, routing)| ConfigLabel { placement, routing })
        .collect()
    }

    /// The paper's baseline configuration for relative plots: `rand-adp`.
    pub fn baseline() -> ConfigLabel {
        ConfigLabel {
            placement: PlacementPolicy::RandomNode,
            routing: RoutingPolicy::Adaptive,
        }
    }
}

impl fmt::Display for ConfigLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.placement.label(), self.routing.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_matches_table_i() {
        let labels: Vec<String> = ConfigLabel::all_ten()
            .iter()
            .map(|l| l.to_string())
            .collect();
        assert_eq!(
            labels,
            vec![
                "cont-min", "cab-min", "chas-min", "rotr-min", "rand-min", "cont-adp", "cab-adp",
                "chas-adp", "rotr-adp", "rand-adp"
            ]
        );
    }

    #[test]
    fn extremes_are_four() {
        let e = ConfigLabel::extremes();
        assert_eq!(e.len(), 4);
        assert_eq!(e[0].to_string(), "cont-min");
        assert_eq!(e[3].to_string(), "rand-adp");
    }

    #[test]
    fn baseline_is_rand_adp() {
        assert_eq!(ConfigLabel::baseline().to_string(), "rand-adp");
    }

    #[test]
    fn labels_unique_and_hashable() {
        let set: std::collections::HashSet<_> = ConfigLabel::all_ten().into_iter().collect();
        assert_eq!(set.len(), 10);
    }
}
