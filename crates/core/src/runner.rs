//! End-to-end experiment execution.

use crate::config::{ExperimentConfig, Parallelism};
use crate::mpi::{BackgroundRunner, MpiDriver};
use dfly_engine::{Ns, Xoshiro256};
use dfly_network::{AuditReport, MetricsFilter, Network, NetworkMetrics, ShardedNetwork, SimArena};
use dfly_obs::ObsReport;
use dfly_placement::NodePool;
use dfly_stats::{BoxStats, Cdf, ReservoirCdf};
use dfly_topology::{NodeId, RouterId, Topology};
use dfly_workloads::{generate, BackgroundTraffic};
use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::Arc;

thread_local! {
    /// Per-group arena pool for sharded runs, one pool per (sweep) worker
    /// thread — mirrors the per-worker `SimArena` the serial path gets
    /// passed explicitly.
    static SHARD_ARENAS: RefCell<Vec<SimArena>> = const { RefCell::new(Vec::new()) };
}

/// Everything one experiment produced.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// Node each rank ran on.
    pub placement: Vec<NodeId>,
    /// Per-rank communication time.
    pub rank_comm_times: Vec<Ns>,
    /// Per-rank average packet hops.
    pub rank_avg_hops: Vec<f64>,
    /// Channel traffic / saturation snapshot at job completion.
    pub metrics: NetworkMetrics,
    /// Routers serving the application's nodes (the Figures 8–10 filter).
    pub app_routers: HashSet<RouterId>,
    /// Job completion time.
    pub job_end: Ns,
    /// Simulator events processed (throughput metric).
    pub events: u64,
    /// Background messages injected (0 without background).
    pub background_messages: u64,
    /// Conservation-audit report, when the network ran with
    /// [`NetworkParams::audit`](dfly_network::NetworkParams) enabled
    /// (`None` with audits off). A non-clean report means the packet
    /// engine corrupted its own invariants — see [`dfly_network::audit`].
    pub audit: Option<AuditReport>,
    /// Telemetry report, when the network ran with
    /// [`NetworkParams::obs`](dfly_network::NetworkParams) enabled
    /// (`None` with telemetry off): event-loop profile, per-class
    /// utilization samples, VC occupancy, UGAL decision counters.
    pub obs: Option<ObsReport>,
}

impl ExperimentResult {
    /// Per-rank communication times in milliseconds.
    pub fn comm_times_ms(&self) -> Vec<f64> {
        self.rank_comm_times.iter().map(|t| t.as_ms_f64()).collect()
    }

    /// Box-plot statistics of communication time (ms) — one box of
    /// Figure 3 / 8(a) / 9(a–b) / 10(a–b).
    pub fn comm_time_stats(&self) -> BoxStats {
        BoxStats::from_samples(&self.comm_times_ms()).expect("at least one rank")
    }

    /// The slowest rank's communication time.
    pub fn max_comm_time(&self) -> Ns {
        self.rank_comm_times
            .iter()
            .copied()
            .max()
            .unwrap_or(Ns::ZERO)
    }

    /// Build a figure CDF from a sample stream, honoring the run's
    /// metrics mode: dense keeps every sample (exact, historical
    /// behavior); streaming feeds them through a seeded [`ReservoirCdf`]
    /// so the retained set — and thus figure-pipeline memory — is capped
    /// at K samples per CDF no matter how many channels the topology has.
    /// Each caller passes a distinct `tag` so every CDF draws from its
    /// own reproducible tag stream; tags start at 0x51 to stay clear of
    /// the runner's placement/workload/routing/background streams (1–4 on
    /// the same master).
    fn cdf_of(&self, tag: u64, samples: impl Iterator<Item = f64>) -> Cdf {
        match self.config.network.metrics.reservoir_k() {
            None => Cdf::from_samples(samples),
            Some(k) => {
                let seed = Xoshiro256::seed_from(self.config.seed)
                    .split(tag)
                    .next_u64();
                let mut res = ReservoirCdf::new(k as usize, seed);
                res.extend(samples);
                res.to_cdf()
            }
        }
    }

    /// CDF of per-rank average hops — Figure 4(a).
    pub fn hops_cdf(&self) -> Cdf {
        self.cdf_of(0x51, self.rank_avg_hops.iter().copied())
    }

    /// Mean of the per-rank average hops.
    pub fn mean_hops(&self) -> f64 {
        if self.rank_avg_hops.is_empty() {
            return 0.0;
        }
        self.rank_avg_hops.iter().sum::<f64>() / self.rank_avg_hops.len() as f64
    }

    /// The metrics filter restricted to the app's routers (Figures 8–10).
    /// Borrows the result's router set — constructing one is free.
    pub fn app_filter(&self) -> MetricsFilter<'_> {
        MetricsFilter::Routers(&self.app_routers)
    }

    /// CDF of local-channel traffic in MB.
    pub fn local_traffic_mb_cdf(&self, filter: &MetricsFilter) -> Cdf {
        self.cdf_of(
            0x52,
            self.metrics
                .local_traffic(filter)
                .into_iter()
                .map(|b| b / 1e6),
        )
    }

    /// CDF of global-channel traffic in MB.
    pub fn global_traffic_mb_cdf(&self, filter: &MetricsFilter) -> Cdf {
        self.cdf_of(
            0x53,
            self.metrics
                .global_traffic(filter)
                .into_iter()
                .map(|b| b / 1e6),
        )
    }

    /// CDF of local-link saturation time in ms.
    pub fn local_saturation_ms_cdf(&self, filter: &MetricsFilter) -> Cdf {
        self.cdf_of(0x54, self.metrics.local_saturation_ms(filter).into_iter())
    }

    /// CDF of global-link saturation time in ms.
    pub fn global_saturation_ms_cdf(&self, filter: &MetricsFilter) -> Cdf {
        self.cdf_of(0x55, self.metrics.global_saturation_ms(filter).into_iter())
    }
}

/// Validate a configuration and build its topology, ready for
/// [`execute_experiment`].
///
/// Building the Theta-scale topology (864 routers, thousands of channels)
/// dominates the setup cost of small experiments; sweeps call this once
/// per *distinct* [`TopologyConfig`](dfly_topology::TopologyConfig) and
/// share the `Arc` across every grid cell and worker thread.
pub fn prepare_topology(config: &ExperimentConfig) -> Arc<Topology> {
    config.validate().expect("invalid experiment config");
    Arc::new(Topology::build(config.topology.clone()))
}

/// Run one experiment end to end (see [`run_experiment`]).
///
/// `topo` must have been built from `config.topology` — sharing a
/// prebuilt topology across cells must not change any result, and the
/// equivalence test in `tests/refactor_equivalence.rs` holds this path to
/// bit-identical output against a fresh per-cell build.
pub fn execute_experiment(config: &ExperimentConfig, topo: Arc<Topology>) -> ExperimentResult {
    execute_experiment_with_arena(config, topo, &mut SimArena::new())
}

/// [`execute_experiment`] with buffer recycling: the network is built
/// over `arena`'s warm allocations and donates them back when the run
/// finishes. Sweeps keep one arena per worker thread so consecutive grid
/// cells skip re-growing packet/message/telemetry buffers from zero.
///
/// Recycling is capacity-only, so results are bit-identical to the
/// fresh-arena path (`tests/determinism.rs` covers both).
pub fn execute_experiment_with_arena(
    config: &ExperimentConfig,
    topo: Arc<Topology>,
    arena: &mut SimArena,
) -> ExperimentResult {
    config.validate().expect("invalid experiment config");
    assert_eq!(
        topo.config(),
        &config.topology,
        "topology was built from a different TopologyConfig"
    );

    let mut master = Xoshiro256::seed_from(config.seed);
    let mut placement_rng = master.split(1);
    let workload_seed = master.split(2).next_u64();
    let routing_seed = master.split(3).next_u64();
    let background_seed = master.split(4).next_u64();

    // Placement, then the rank-to-node arrangement within it.
    let mut pool = NodePool::new(&topo);
    let allocation = config
        .placement
        .allocate(&topo, &mut pool, config.app.ranks(), &mut placement_rng)
        .expect("validated config cannot over-allocate");
    let placement = config.mapping.arrange(
        &allocation,
        config.topology.nodes_per_router,
        &mut placement_rng,
    );

    // Workload.
    let trace = generate(&config.app.spec(config.msg_scale, workload_seed));

    // Background job on the complement nodes.
    let background = config.background.as_ref().map(|bg| {
        let mut spec = bg.spec;
        spec.seed = background_seed;
        let bg_nodes = pool.free_nodes();
        BackgroundRunner::new(
            BackgroundTraffic::new(spec, bg_nodes.len() as u32),
            bg_nodes,
        )
    });

    // A single-group machine has no cross-group cut to shard on; run it
    // on the serial loop whatever the config says.
    let workers = match config.parallelism {
        Parallelism::IntraRun(n) if config.topology.groups >= 2 => Some(n as usize),
        _ => None,
    };
    let (result, metrics, audit, obs, events) = match workers {
        None => {
            // The legacy serial event loop, over the arena's recycled
            // buffers (cold on the first run) — the golden-run reference
            // path, byte-identical to earlier single-thread releases.
            let mut net = Network::with_arena(
                topo.clone(),
                config.network,
                config.routing,
                routing_seed,
                arena,
            );
            let result = MpiDriver::new(&mut net, &trace, &placement, background).run();
            let metrics = net.metrics();
            let audit = net.audit_report();
            let obs = net.obs_report();
            let events = net.events_processed();
            net.recycle(arena);
            (result, metrics, audit, obs, events)
        }
        Some(n) => {
            // Per-group PDES sharding. Each worker thread of the *sweep*
            // keeps its own pool of per-group arenas (capacity-only, so
            // recycling cannot change results).
            SHARD_ARENAS.with(|pool| {
                let pool = &mut *pool.borrow_mut();
                let mut net = ShardedNetwork::with_arenas(
                    topo.clone(),
                    config.network,
                    config.routing,
                    routing_seed,
                    n,
                    pool,
                );
                let result = MpiDriver::new(&mut net, &trace, &placement, background).run();
                let mut parts = net.finish();
                let metrics = parts.metrics();
                let audit = parts.audit_report();
                let obs = parts.obs_report();
                let events = parts.events();
                parts.recycle(pool);
                (result, metrics, audit, obs, events)
            })
        }
    };
    let app_routers: HashSet<RouterId> = placement.iter().map(|&n| topo.node_router(n)).collect();

    ExperimentResult {
        config: config.clone(),
        placement,
        rank_comm_times: result.rank_comm_time,
        rank_avg_hops: result.rank_avg_hops,
        metrics,
        app_routers,
        job_end: result.job_end,
        events,
        background_messages: result.background_messages,
        audit,
        obs,
    }
}

/// Run one experiment end to end: [`prepare_topology`] +
/// [`execute_experiment`]. The convenience path for a single run; sweeps
/// prepare once and execute many times.
///
/// Seeding: placement, workload jitter, routing decisions, and background
/// destinations each get an independent RNG stream derived from
/// `config.seed`, so e.g. changing the routing policy never perturbs the
/// placement.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentResult {
    let topo = prepare_topology(config);
    execute_experiment(config, topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AppSelection, BackgroundConfig};
    use dfly_placement::PlacementPolicy;
    use dfly_workloads::BackgroundSpec;

    fn small(
        placement: PlacementPolicy,
        routing: crate::config::RoutingPolicy,
    ) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small_test();
        cfg.placement = placement;
        cfg.routing = routing;
        cfg.msg_scale = 0.1;
        cfg
    }

    #[test]
    fn basic_run_produces_complete_result() {
        let cfg = small(
            PlacementPolicy::Contiguous,
            crate::config::RoutingPolicy::Minimal,
        );
        let r = run_experiment(&cfg);
        assert_eq!(r.rank_comm_times.len(), 16);
        assert_eq!(r.placement.len(), 16);
        assert!(r.job_end > Ns::ZERO);
        assert!(r.events > 0);
        assert!(r.max_comm_time() >= r.rank_comm_times[0]);
        assert!(!r.app_routers.is_empty());
        let stats = r.comm_time_stats();
        assert!(stats.max >= stats.median && stats.median >= stats.min);
        // Audits default on in debug builds (off in release); when they
        // ran, the engine must have kept every conservation invariant.
        assert_eq!(r.audit.is_some(), cfg!(debug_assertions));
        if let Some(rep) = &r.audit {
            assert!(rep.is_clean(), "audit violations:\n{rep}");
            assert!(rep.events_audited > 0);
        }
    }

    #[test]
    fn obs_report_surfaces_through_result() {
        let mut cfg = small(
            PlacementPolicy::Contiguous,
            crate::config::RoutingPolicy::Adaptive,
        );
        assert!(!cfg.network.obs, "telemetry must be opt-in");
        cfg.network.obs = true;
        let r = run_experiment(&cfg);
        let obs = r.obs.as_ref().expect("obs on");
        assert_eq!(obs.profile.total_events(), r.events);
        assert!(!obs.series.samples().is_empty());
        assert!(obs.route.total() > 0, "adaptive run records decisions");

        let off = run_experiment(&small(
            PlacementPolicy::Contiguous,
            crate::config::RoutingPolicy::Adaptive,
        ));
        assert!(off.obs.is_none(), "no report without opt-in");
    }

    #[test]
    fn contiguous_fewer_hops_than_random() {
        let cont = run_experiment(&small(
            PlacementPolicy::Contiguous,
            crate::config::RoutingPolicy::Minimal,
        ));
        let rand = run_experiment(&small(
            PlacementPolicy::RandomNode,
            crate::config::RoutingPolicy::Minimal,
        ));
        assert!(
            cont.mean_hops() < rand.mean_hops(),
            "cont {} vs rand {}",
            cont.mean_hops(),
            rand.mean_hops()
        );
    }

    #[test]
    fn adaptive_more_hops_than_minimal() {
        let min = run_experiment(&small(
            PlacementPolicy::Contiguous,
            crate::config::RoutingPolicy::Minimal,
        ));
        let adp = run_experiment(&small(
            PlacementPolicy::Contiguous,
            crate::config::RoutingPolicy::Adaptive,
        ));
        assert!(adp.mean_hops() >= min.mean_hops());
    }

    #[test]
    fn cdfs_cover_channel_population() {
        let r = run_experiment(&small(
            PlacementPolicy::RandomNode,
            crate::config::RoutingPolicy::Adaptive,
        ));
        let all = MetricsFilter::All;
        let local = r.local_traffic_mb_cdf(&all);
        let global = r.global_traffic_mb_cdf(&all);
        // Small machine: 8 routers/group x 4 groups; local channels =
        // 32*(3+1) = 128; global = 2*6 pairs*8 = 96.
        assert_eq!(local.len(), 128);
        assert_eq!(global.len(), 96);
        let app = r.app_filter();
        assert!(r.local_traffic_mb_cdf(&app).len() <= local.len());
    }

    #[test]
    fn streaming_mode_bounds_cdfs_without_perturbing_simulation() {
        use dfly_network::MetricsMode;
        let dense_cfg = small(
            PlacementPolicy::RandomNode,
            crate::config::RoutingPolicy::Adaptive,
        );
        let mut stream_cfg = dense_cfg.clone();
        stream_cfg.network.metrics = MetricsMode::Streaming { reservoir_k: 32 };
        stream_cfg.network.obs = true;

        let d = run_experiment(&dense_cfg);
        let s = run_experiment(&stream_cfg);
        // Simulation outputs are mode-independent (metric storage only).
        assert_eq!(d.rank_comm_times, s.rank_comm_times);
        assert_eq!(d.placement, s.placement);
        assert_eq!(d.job_end, s.job_end);

        // Streaming CDFs retain at most K samples; the population (128
        // local channels on the small machine) exceeds K here.
        let all = MetricsFilter::All;
        assert_eq!(d.local_traffic_mb_cdf(&all).len(), 128);
        let sc = s.local_traffic_mb_cdf(&all);
        assert_eq!(sc.len(), 32);
        // A uniform subsample's median sits within the dense population's
        // central range.
        let dc = d.local_traffic_mb_cdf(&all);
        assert!(sc.quantile(0.5) >= dc.quantile(0.05));
        assert!(sc.quantile(0.5) <= dc.quantile(0.95));
        // And the same run reproduces the same reservoir exactly.
        let s2 = run_experiment(&stream_cfg);
        assert_eq!(
            sc.sampled_points(32).collect::<Vec<_>>(),
            s2.local_traffic_mb_cdf(&all)
                .sampled_points(32)
                .collect::<Vec<_>>()
        );

        // The streaming telemetry report carries the link digest.
        let obs = s.obs.as_ref().expect("obs on");
        let digest = obs.link_digest.as_ref().expect("streaming digest");
        assert_eq!(
            (0..5).map(|c| digest.channels(c)).sum::<u64>(),
            s.metrics.channels().count() as u64
        );
    }

    #[test]
    fn results_deterministic_per_seed() {
        let cfg = small(
            PlacementPolicy::RandomChassis,
            crate::config::RoutingPolicy::Adaptive,
        );
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.rank_comm_times, b.rank_comm_times);
        assert_eq!(a.placement, b.placement);
        let mut cfg2 = cfg.clone();
        cfg2.seed ^= 1;
        let c = run_experiment(&cfg2);
        assert_ne!(a.placement, c.placement);
    }

    #[test]
    fn background_run_degrades_app() {
        let mut quiet = small(
            PlacementPolicy::RandomNode,
            crate::config::RoutingPolicy::Adaptive,
        );
        quiet.app = AppSelection::Amg { ranks: 8 };
        quiet.msg_scale = 1.0;
        let mut noisy = quiet.clone();
        noisy.background = Some(BackgroundConfig {
            spec: BackgroundSpec::uniform(64 * 1024, Ns::from_us(2), 0),
        });
        let q = run_experiment(&quiet);
        let n = run_experiment(&noisy);
        assert!(n.background_messages > 0);
        assert!(
            n.max_comm_time() > q.max_comm_time(),
            "noisy {} vs quiet {}",
            n.max_comm_time(),
            q.max_comm_time()
        );
    }

    #[test]
    fn intra_run_is_worker_count_invariant_and_audit_clean() {
        let mut base = small(
            PlacementPolicy::RandomNode,
            crate::config::RoutingPolicy::Adaptive,
        );
        base.network.audit = true;
        let mut runs = Vec::new();
        for n in [1u32, 2, 8] {
            let mut cfg = base.clone();
            cfg.parallelism = Parallelism::IntraRun(n);
            let r = run_experiment(&cfg);
            let audit = r.audit.as_ref().expect("audit on");
            assert!(audit.is_clean(), "workers={n}:\n{audit}");
            runs.push(r);
        }
        for r in &runs[1..] {
            assert_eq!(runs[0].rank_comm_times, r.rank_comm_times);
            assert_eq!(runs[0].rank_avg_hops, r.rank_avg_hops);
            assert_eq!(runs[0].job_end, r.job_end);
            assert_eq!(runs[0].events, r.events);
        }
        // Placement and hops structure match the serial path exactly
        // (same seed streams); only the packet schedule differs.
        let serial = run_experiment(&base);
        assert_eq!(serial.placement, runs[0].placement);
    }

    #[test]
    fn intra_run_obs_report_merges_across_shards() {
        let mut cfg = small(
            PlacementPolicy::RandomNode,
            crate::config::RoutingPolicy::Adaptive,
        );
        cfg.network.obs = true;
        cfg.parallelism = Parallelism::IntraRun(3);
        let r = run_experiment(&cfg);
        let obs = r.obs.as_ref().expect("obs on");
        assert_eq!(obs.profile.total_events(), r.events);
        assert!(!obs.series.samples().is_empty());
        assert!(obs.route.total() > 0);
    }

    #[test]
    fn intra_run_background_traffic_runs_clean() {
        let mut cfg = small(
            PlacementPolicy::RandomNode,
            crate::config::RoutingPolicy::Adaptive,
        );
        cfg.app = AppSelection::Amg { ranks: 8 };
        cfg.msg_scale = 1.0;
        cfg.network.audit = true;
        cfg.background = Some(BackgroundConfig {
            spec: BackgroundSpec::uniform(64 * 1024, Ns::from_us(2), 0),
        });
        cfg.parallelism = Parallelism::IntraRun(4);
        let r = run_experiment(&cfg);
        assert!(r.background_messages > 0);
        let audit = r.audit.as_ref().expect("audit on");
        assert!(audit.is_clean(), "{audit}");
    }

    #[test]
    fn routing_change_does_not_change_placement() {
        let a = run_experiment(&small(
            PlacementPolicy::RandomNode,
            crate::config::RoutingPolicy::Minimal,
        ));
        let b = run_experiment(&small(
            PlacementPolicy::RandomNode,
            crate::config::RoutingPolicy::Adaptive,
        ));
        assert_eq!(a.placement, b.placement);
    }
}
