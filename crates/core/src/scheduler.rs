//! A batch-scheduler substrate: jobs arrive over time, wait in an FCFS
//! queue, get placed by a policy when enough nodes are free, run under
//! network interference from their co-runners, and release their nodes on
//! completion.
//!
//! The paper motivates its study with exactly this loop: interference
//! makes runtimes unpredictable, which makes batch scheduling decisions
//! poor (its refs [6], [7]). This module closes the loop — it measures
//! queueing delay *and* interference slowdown per job under each placement
//! policy, on the same packet-level network as every other experiment.
//!
//! The execution engine lives in [`crate::service`]; `run_schedule` is the
//! batch FCFS front-end over [`run_service`]. That migration fixed three
//! bugs of the original standalone loop: finished jobs are retired into
//! compact records with their job slots recycled (state is bounded by
//! concurrency, not stream length), rank/phase/job-id tag widths are
//! validated instead of silently aliasing, and
//! [`SchedulerConfig::parallelism`] is honoured instead of hardwiring the
//! serial engine.

use crate::config::{Parallelism, RoutingPolicy};
use crate::multijob::JobSpec;
use crate::service::{
    run_service, AdmissionPolicy, PlacementChoice, ServiceConfig, ServiceJob, ServiceSubmission,
    ServiceWorkload, JOB_SLOTS, MAX_RANKS, RANK_BITS,
};
use dfly_engine::Ns;
use dfly_network::NetworkParams;
use dfly_topology::TopologyConfig;

/// A job submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Submission {
    /// What to run and how to place it.
    pub job: JobSpec,
    /// When the job enters the queue.
    pub arrival: Ns,
}

/// Scheduler experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// Machine shape.
    pub topology: TopologyConfig,
    /// Network parameters.
    pub network: NetworkParams,
    /// System-wide routing.
    pub routing: RoutingPolicy,
    /// The submission stream (any order; sorted by arrival internally).
    pub submissions: Vec<Submission>,
    /// Master seed.
    pub seed: u64,
    /// Execution engine: serial loop or group-sharded PDES.
    pub parallelism: Parallelism,
}

impl SchedulerConfig {
    /// Validate, naming the offending field. Beyond machine fit, every
    /// quantity that lands in an event tag is checked against its bit
    /// width: rank counts against the 24-bit rank field and the stream
    /// length against the 16-bit job-id field (longer open-ended streams
    /// belong to service mode, which recycles slots explicitly).
    pub fn validate(&self) -> Result<(), String> {
        self.topology.validate()?;
        self.network.validate()?;
        if self.submissions.is_empty() {
            return Err("submissions: need at least one".into());
        }
        if self.submissions.len() > JOB_SLOTS {
            return Err(format!(
                "submissions: {} jobs exceed the {JOB_SLOTS} job-id tag slots; \
                 use run_service for longer streams",
                self.submissions.len()
            ));
        }
        if self.parallelism == Parallelism::IntraRun(0) {
            return Err("parallelism: intra-run needs at least one worker".into());
        }
        for (i, s) in self.submissions.iter().enumerate() {
            let ranks = s.job.app.ranks();
            if ranks == 0 {
                return Err(format!("submissions[{i}]: job needs at least one rank"));
            }
            if ranks > self.topology.total_nodes() {
                return Err(format!(
                    "submissions[{i}]: {ranks} ranks exceed the {}-node machine",
                    self.topology.total_nodes()
                ));
            }
            if ranks > MAX_RANKS {
                return Err(format!(
                    "submissions[{i}]: {ranks} ranks exceed the {RANK_BITS}-bit rank tag field"
                ));
            }
            if s.job.msg_scale <= 0.0 {
                return Err(format!("submissions[{i}]: msg_scale must be positive"));
            }
        }
        Ok(())
    }
}

/// Per-job outcome of a scheduler run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledJob {
    /// The submission this outcome belongs to.
    pub submission: Submission,
    /// When the job started (allocation succeeded).
    pub started_at: Ns,
    /// When the job's last rank finished.
    pub finished_at: Ns,
    /// Queueing delay (`started_at - arrival`).
    pub wait: Ns,
    /// Communication runtime (`finished_at - started_at`).
    pub runtime: Ns,
}

/// Outcome of a whole scheduler run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// Jobs in completion order.
    pub jobs: Vec<ScheduledJob>,
    /// Total makespan (last completion).
    pub makespan: Ns,
    /// Most jobs ever running at once.
    pub peak_active_jobs: usize,
    /// Job slots the run materialized — bounded by peak concurrency, not
    /// by `jobs.len()`, because finished jobs retire and recycle.
    pub job_slots: usize,
}

/// Run a scheduler experiment: the submission stream under strict FCFS
/// admission on the engine selected by `config.parallelism`.
pub fn run_schedule(config: &SchedulerConfig) -> ScheduleResult {
    config.validate().expect("invalid scheduler config");
    let mut sorted = config.submissions.clone();
    sorted.sort_by_key(|s| s.arrival);
    let service = ServiceConfig {
        topology: config.topology.clone(),
        network: config.network,
        routing: config.routing,
        admission: AdmissionPolicy::Fcfs,
        submissions: sorted
            .iter()
            .map(|s| ServiceSubmission {
                job: ServiceJob {
                    workload: ServiceWorkload::App(s.job.app),
                    placement: PlacementChoice::Fixed(s.job.placement),
                    msg_scale: s.job.msg_scale,
                    tenant: 0,
                    estimate: Ns::ZERO,
                },
                arrival: s.arrival,
            })
            .collect(),
        seed: config.seed,
        parallelism: config.parallelism,
    };
    let result = run_service(&service);
    // Outcome uids are submission indices in arrival order — exactly the
    // indices of `sorted`.
    let jobs = result
        .outcomes
        .iter()
        .map(|o| ScheduledJob {
            submission: sorted[o.uid as usize],
            started_at: o.started_at,
            finished_at: o.finished_at,
            wait: o.wait,
            runtime: o.runtime,
        })
        .collect();
    ScheduleResult {
        jobs,
        makespan: result.makespan,
        peak_active_jobs: result.peak_active_jobs,
        job_slots: result.job_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AppSelection;
    use dfly_placement::PlacementPolicy;

    fn job(app: AppSelection, placement: PlacementPolicy) -> JobSpec {
        JobSpec {
            app,
            placement,
            msg_scale: 0.3,
        }
    }

    fn cfg(submissions: Vec<Submission>) -> SchedulerConfig {
        SchedulerConfig {
            topology: TopologyConfig::small_test(),
            network: NetworkParams::default(),
            routing: RoutingPolicy::Adaptive,
            submissions,
            seed: 0xF1F0,
            parallelism: Parallelism::Serial,
        }
    }

    #[test]
    fn single_job_runs_immediately() {
        let r = run_schedule(&cfg(vec![Submission {
            job: job(AppSelection::Amg { ranks: 27 }, PlacementPolicy::Contiguous),
            arrival: Ns::ZERO,
        }]));
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(r.jobs[0].wait, Ns::ZERO);
        assert!(r.jobs[0].runtime > Ns::ZERO);
        assert_eq!(r.makespan, r.jobs[0].finished_at);
    }

    #[test]
    fn arrival_time_delays_start() {
        let arrival = Ns::from_us(500);
        let r = run_schedule(&cfg(vec![Submission {
            job: job(AppSelection::Amg { ranks: 16 }, PlacementPolicy::Contiguous),
            arrival,
        }]));
        assert_eq!(r.jobs[0].started_at, arrival);
        assert_eq!(r.jobs[0].wait, Ns::ZERO);
    }

    #[test]
    fn oversubscribed_machine_queues_fcfs() {
        // Two 40-node jobs on a 64-node machine: the second must wait for
        // the first to finish.
        let a = Submission {
            job: job(
                AppSelection::CrystalRouter { ranks: 40 },
                PlacementPolicy::Contiguous,
            ),
            arrival: Ns::ZERO,
        };
        let b = Submission {
            job: job(
                AppSelection::FillBoundary { ranks: 40 },
                PlacementPolicy::Contiguous,
            ),
            arrival: Ns(1),
        };
        let r = run_schedule(&cfg(vec![a, b]));
        assert_eq!(r.jobs.len(), 2);
        let first = &r.jobs[0];
        let second = &r.jobs[1];
        assert_eq!(first.submission.arrival, Ns::ZERO);
        assert_eq!(second.started_at, first.finished_at);
        assert!(second.wait > Ns::ZERO);
    }

    #[test]
    fn concurrent_jobs_share_and_interfere() {
        // Two 16-node jobs fit together; the second's runtime exceeds its
        // solo runtime because they share the network.
        let solo = run_schedule(&cfg(vec![Submission {
            job: job(AppSelection::Amg { ranks: 16 }, PlacementPolicy::RandomNode),
            arrival: Ns::ZERO,
        }]));
        let both = run_schedule(&cfg(vec![
            Submission {
                job: job(
                    AppSelection::CrystalRouter { ranks: 32 },
                    PlacementPolicy::RandomNode,
                ),
                arrival: Ns::ZERO,
            },
            Submission {
                job: job(AppSelection::Amg { ranks: 16 }, PlacementPolicy::RandomNode),
                arrival: Ns::ZERO,
            },
        ]));
        let amg_solo = solo.jobs[0].runtime;
        let amg_corun = both
            .jobs
            .iter()
            .find(|j| j.submission.job.app.ranks() == 16)
            .unwrap()
            .runtime;
        assert!(
            amg_corun > amg_solo,
            "co-scheduled AMG {amg_corun} should exceed solo {amg_solo}"
        );
    }

    #[test]
    fn nodes_are_reusable_across_jobs() {
        // Three sequential full-machine jobs: each reuses all 64 nodes.
        let subs: Vec<Submission> = (0..3)
            .map(|i| Submission {
                job: job(AppSelection::Amg { ranks: 64 }, PlacementPolicy::Contiguous),
                arrival: Ns(i),
            })
            .collect();
        let r = run_schedule(&cfg(subs));
        assert_eq!(r.jobs.len(), 3);
        for w in r.jobs.windows(2) {
            assert!(w[1].started_at >= w[0].finished_at);
        }
        // Strictly sequential jobs reuse one recycled slot.
        assert_eq!(r.peak_active_jobs, 1);
        assert_eq!(r.job_slots, 1);
    }

    #[test]
    fn deterministic() {
        let subs = vec![
            Submission {
                job: job(
                    AppSelection::CrystalRouter { ranks: 24 },
                    PlacementPolicy::RandomNode,
                ),
                arrival: Ns::ZERO,
            },
            Submission {
                job: job(
                    AppSelection::Amg { ranks: 27 },
                    PlacementPolicy::RandomChassis,
                ),
                arrival: Ns::from_us(50),
            },
        ];
        let a = run_schedule(&cfg(subs.clone()));
        let b = run_schedule(&cfg(subs));
        assert_eq!(a, b);
    }

    #[test]
    fn validate_rejects_bad_submissions() {
        assert!(cfg(vec![]).validate().is_err());
        let too_big = cfg(vec![Submission {
            job: job(
                AppSelection::CrystalRouter { ranks: 100 },
                PlacementPolicy::Contiguous,
            ),
            arrival: Ns::ZERO,
        }]);
        assert!(too_big.validate().is_err());
        let mut zero_workers = cfg(vec![Submission {
            job: job(AppSelection::Amg { ranks: 16 }, PlacementPolicy::Contiguous),
            arrival: Ns::ZERO,
        }]);
        zero_workers.parallelism = Parallelism::IntraRun(0);
        let err = zero_workers.validate().unwrap_err();
        assert!(err.contains("parallelism"), "{err}");
    }

    #[test]
    fn validate_rejects_job_id_tag_overflow_at_boundary() {
        // The job-id tag field is 16 bits: 65536 submissions are the most
        // a batch config may carry. The pre-fix scheduler accepted any
        // count and silently aliased job 65536 onto job 0's tag space.
        let one = Submission {
            job: job(AppSelection::Amg { ranks: 1 }, PlacementPolicy::Contiguous),
            arrival: Ns::ZERO,
        };
        let at_limit = cfg(vec![one; JOB_SLOTS]);
        assert!(at_limit.validate().is_ok());
        let over = cfg(vec![one; JOB_SLOTS + 1]);
        let err = over.validate().unwrap_err();
        assert!(err.contains("job-id tag slots"), "{err}");
    }

    #[test]
    fn validate_rejects_rank_tag_overflow() {
        // A machine bigger than the 24-bit rank field (1024*64*257 ≈ 16.8M
        // nodes) lets a fitting job still overflow the tag; the width
        // check must fire where the old machine-size check would pass.
        let mut c = cfg(vec![Submission {
            job: job(
                AppSelection::Amg {
                    ranks: MAX_RANKS + 1,
                },
                PlacementPolicy::Contiguous,
            ),
            arrival: Ns::ZERO,
        }]);
        c.topology = TopologyConfig::canonical(1024, 64, 4, 257);
        assert!(c.topology.total_nodes() > MAX_RANKS);
        let err = c.validate().unwrap_err();
        assert!(err.contains("rank tag field"), "{err}");
    }

    #[test]
    fn many_short_jobs_recycle_slots() {
        // 100 quick jobs, mostly sequential: the pre-fix scheduler kept
        // all 100 RunningJob traces alive; the service substrate retires
        // them, so the slot high-water mark tracks peak concurrency.
        let subs: Vec<Submission> = (0..100)
            .map(|i| Submission {
                job: job(AppSelection::Amg { ranks: 27 }, PlacementPolicy::Contiguous),
                arrival: Ns(i * 500),
            })
            .collect();
        let r = run_schedule(&cfg(subs));
        assert_eq!(r.jobs.len(), 100);
        assert!(
            r.job_slots <= 2,
            "at most two 27-rank jobs fit a 64-node machine, yet {} slots materialized",
            r.job_slots
        );
        assert_eq!(r.job_slots, r.peak_active_jobs);
    }

    #[test]
    fn intra_run_parallelism_is_honored_and_deterministic() {
        // The pre-fix scheduler silently ran serial regardless of the
        // config. Now the sharded engine drives the same stream; results
        // are deterministic and complete.
        let subs = vec![
            Submission {
                job: job(
                    AppSelection::CrystalRouter { ranks: 24 },
                    PlacementPolicy::RandomNode,
                ),
                arrival: Ns::ZERO,
            },
            Submission {
                job: job(AppSelection::Amg { ranks: 16 }, PlacementPolicy::Contiguous),
                arrival: Ns::from_us(20),
            },
        ];
        let mut c = cfg(subs);
        c.parallelism = Parallelism::IntraRun(2);
        let a = run_schedule(&c);
        let b = run_schedule(&c);
        assert_eq!(a, b);
        assert_eq!(a.jobs.len(), 2);
    }
}
