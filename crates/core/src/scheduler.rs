//! A batch-scheduler substrate: jobs arrive over time, wait in an FCFS
//! queue, get placed by a policy when enough nodes are free, run under
//! network interference from their co-runners, and release their nodes on
//! completion.
//!
//! The paper motivates its study with exactly this loop: interference
//! makes runtimes unpredictable, which makes batch scheduling decisions
//! poor (its refs [6], [7]). This module closes the loop — it measures
//! queueing delay *and* interference slowdown per job under each placement
//! policy, on the same packet-level network as every other experiment.

use crate::config::RoutingPolicy;
use crate::multijob::JobSpec;
use dfly_engine::{Ns, Xoshiro256};
use dfly_network::{Network, NetworkEvent, NetworkParams};
use dfly_placement::NodePool;
use dfly_topology::{NodeId, Topology, TopologyConfig};
use dfly_workloads::{generate, JobTrace};
use std::sync::Arc;

/// A job submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Submission {
    /// What to run and how to place it.
    pub job: JobSpec,
    /// When the job enters the queue.
    pub arrival: Ns,
}

/// Scheduler experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// Machine shape.
    pub topology: TopologyConfig,
    /// Network parameters.
    pub network: NetworkParams,
    /// System-wide routing.
    pub routing: RoutingPolicy,
    /// The submission stream (any order; sorted by arrival internally).
    pub submissions: Vec<Submission>,
    /// Master seed.
    pub seed: u64,
}

impl SchedulerConfig {
    /// Validate: every job must individually fit the machine.
    pub fn validate(&self) -> Result<(), String> {
        self.topology.validate()?;
        self.network.validate()?;
        if self.submissions.is_empty() {
            return Err("need at least one submission".into());
        }
        for (i, s) in self.submissions.iter().enumerate() {
            if s.job.app.ranks() > self.topology.total_nodes() {
                return Err(format!("submission {i} larger than the machine"));
            }
            if s.job.msg_scale <= 0.0 {
                return Err(format!("submission {i}: msg_scale must be positive"));
            }
        }
        Ok(())
    }
}

/// Per-job outcome of a scheduler run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledJob {
    /// The submission this outcome belongs to.
    pub submission: Submission,
    /// When the job started (allocation succeeded).
    pub started_at: Ns,
    /// When the job's last rank finished.
    pub finished_at: Ns,
    /// Queueing delay (`started_at - arrival`).
    pub wait: Ns,
    /// Communication runtime (`finished_at - started_at`).
    pub runtime: Ns,
}

/// Outcome of a whole scheduler run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// Jobs in completion order.
    pub jobs: Vec<ScheduledJob>,
    /// Total makespan (last completion).
    pub makespan: Ns,
}

// --- internal per-job execution state (same phase semantics as mpi.rs) ---

struct RankState {
    phase: usize,
    outstanding_sends: u32,
    recvs_got: Vec<u32>,
    finished_at: Option<Ns>,
}

struct RunningJob {
    submission: Submission,
    trace: JobTrace,
    placement: Vec<NodeId>,
    expected_recvs: Vec<Vec<u32>>,
    ranks: Vec<RankState>,
    unfinished: usize,
    started_at: Ns,
}

const RANK_BITS: u32 = 24;
const PHASE_SHIFT: u32 = RANK_BITS;
const JOB_SHIFT: u32 = 48;

/// Run a scheduler experiment.
pub fn run_schedule(config: &SchedulerConfig) -> ScheduleResult {
    config.validate().expect("invalid scheduler config");
    let topo = Arc::new(Topology::build(config.topology.clone()));
    let mut master = Xoshiro256::seed_from(config.seed);
    let mut placement_rng = master.split(1);
    let workload_seed = master.split(2).next_u64();
    let routing_seed = master.split(3).next_u64();

    let mut submissions = config.submissions.clone();
    submissions.sort_by_key(|s| s.arrival);

    let mut net = Network::new(topo.clone(), config.network, config.routing, routing_seed);
    let mut pool = NodePool::new(&topo);
    let mut queue: std::collections::VecDeque<(usize, Submission)> =
        submissions.iter().copied().enumerate().collect();
    let mut running: Vec<RunningJob> = Vec::new();
    let mut node_owner: Vec<(u32, u32)> =
        vec![(u32::MAX, u32::MAX); topo.config().total_nodes() as usize];
    let mut done: Vec<ScheduledJob> = Vec::new();

    // Wake at each arrival so admission happens at the right time.
    for s in &submissions {
        net.schedule_wakeup(s.arrival);
    }

    // FCFS admission: take queued jobs in order while the head fits and
    // has arrived.
    let admit = |net: &mut Network,
                 pool: &mut NodePool,
                 queue: &mut std::collections::VecDeque<(usize, Submission)>,
                 running: &mut Vec<RunningJob>,
                 node_owner: &mut Vec<(u32, u32)>,
                 placement_rng: &mut Xoshiro256,
                 topo: &Topology| {
        loop {
            let now = net.now();
            let Some(&(idx, sub)) = queue.front() else {
                return;
            };
            if sub.arrival > now || sub.job.app.ranks() > pool.free_count() {
                return;
            }
            queue.pop_front();
            let placement = sub
                .job
                .placement
                .allocate(topo, pool, sub.job.app.ranks(), placement_rng)
                .expect("checked free count");
            let trace = generate(
                &sub.job
                    .app
                    .spec(sub.job.msg_scale, workload_seed ^ (idx as u64) << 32),
            );
            let job_id = running.len() as u32;
            for (rank, &node) in placement.iter().enumerate() {
                node_owner[node.index()] = (job_id, rank as u32);
            }
            let phases = trace.phase_count();
            let expected_recvs = trace.recv_counts();
            let ranks: Vec<RankState> = (0..trace.ranks())
                .map(|_| RankState {
                    phase: 0,
                    outstanding_sends: 0,
                    recvs_got: vec![0; phases],
                    finished_at: None,
                })
                .collect();
            let unfinished = trace.ranks() as usize;
            running.push(RunningJob {
                submission: sub,
                trace,
                placement,
                expected_recvs,
                ranks,
                unfinished,
                started_at: now,
            });
            // Issue phase 0 (and resolve empty phases) for every rank.
            let job = running.last_mut().expect("just pushed");
            for rank in 0..job.trace.ranks() {
                issue_phase(net, job, job_id, rank, now);
            }
            for rank in 0..job.trace.ranks() {
                advance(net, job, job_id, rank, now);
            }
        }
    };

    admit(
        &mut net,
        &mut pool,
        &mut queue,
        &mut running,
        &mut node_owner,
        &mut placement_rng,
        &topo,
    );

    let total = submissions.len();
    while done.len() < total {
        match net.poll() {
            Some(NetworkEvent::Wakeup) => {}
            Some(NetworkEvent::Delivery(d)) => {
                let now = net.now();
                let job_id = (d.tag >> JOB_SHIFT) as u32;
                let phase =
                    ((d.tag >> PHASE_SHIFT) & ((1 << (JOB_SHIFT - PHASE_SHIFT)) - 1)) as usize;
                let src_rank = (d.tag & ((1 << RANK_BITS) - 1)) as u32;
                let (dst_job, dst_rank) = node_owner[d.dst.index()];
                debug_assert_eq!(dst_job, job_id);
                let job = &mut running[job_id as usize];
                {
                    let s = &mut job.ranks[src_rank as usize];
                    debug_assert_eq!(s.phase, phase);
                    s.outstanding_sends -= 1;
                }
                job.ranks[dst_rank as usize].recvs_got[phase] += 1;
                advance(&mut net, job, job_id, src_rank, now);
                if dst_rank != src_rank {
                    advance(&mut net, job, job_id, dst_rank, now);
                }
                if job.unfinished == 0 && job.placement.first().is_some() {
                    // Job complete: release its nodes and record it.
                    let placement = std::mem::take(&mut job.placement);
                    for &n in &placement {
                        node_owner[n.index()] = (u32::MAX, u32::MAX);
                    }
                    pool.release(&placement);
                    done.push(ScheduledJob {
                        submission: job.submission,
                        started_at: job.started_at,
                        finished_at: now,
                        wait: job.started_at - job.submission.arrival,
                        runtime: now - job.started_at,
                    });
                }
            }
            None => {
                // Network idle: if jobs remain queued, jump to the next
                // arrival (the wakeups guarantee there is one).
                if done.len() < total
                    && queue.is_empty()
                    && running.iter().all(|j| j.unfinished == 0)
                {
                    panic!("scheduler stalled with jobs unaccounted for");
                }
            }
        }
        admit(
            &mut net,
            &mut pool,
            &mut queue,
            &mut running,
            &mut node_owner,
            &mut placement_rng,
            &topo,
        );
    }

    let makespan = done.iter().map(|j| j.finished_at).max().unwrap_or(Ns::ZERO);
    ScheduleResult {
        jobs: done,
        makespan,
    }
}

fn issue_phase(net: &mut Network, job: &mut RunningJob, job_id: u32, rank: u32, now: Ns) {
    let phase = job.ranks[rank as usize].phase;
    let Some(ph) = job.trace.programs[rank as usize].phases.get(phase) else {
        return;
    };
    job.ranks[rank as usize].outstanding_sends = ph.sends.len() as u32;
    let src = job.placement[rank as usize];
    let tag = ((job_id as u64) << JOB_SHIFT) | ((phase as u64) << PHASE_SHIFT) | rank as u64;
    for s in &ph.sends {
        net.send(now, src, job.placement[s.peer as usize], s.bytes, tag);
    }
}

fn advance(net: &mut Network, job: &mut RunningJob, job_id: u32, rank: u32, now: Ns) {
    loop {
        let state = &job.ranks[rank as usize];
        if state.finished_at.is_some() {
            return;
        }
        let phase = state.phase;
        let total = job.trace.programs[rank as usize].phases.len();
        if phase >= total {
            job.ranks[rank as usize].finished_at = Some(now);
            job.unfinished -= 1;
            return;
        }
        let expected = job.expected_recvs[rank as usize]
            .get(phase)
            .copied()
            .unwrap_or(0);
        if state.outstanding_sends > 0 || state.recvs_got[phase] < expected {
            return;
        }
        let next = phase + 1;
        job.ranks[rank as usize].phase = next;
        if next >= total {
            job.ranks[rank as usize].finished_at = Some(now);
            job.unfinished -= 1;
            return;
        }
        issue_phase(net, job, job_id, rank, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AppSelection;
    use dfly_placement::PlacementPolicy;

    fn job(app: AppSelection, placement: PlacementPolicy) -> JobSpec {
        JobSpec {
            app,
            placement,
            msg_scale: 0.3,
        }
    }

    fn cfg(submissions: Vec<Submission>) -> SchedulerConfig {
        SchedulerConfig {
            topology: TopologyConfig::small_test(),
            network: NetworkParams::default(),
            routing: RoutingPolicy::Adaptive,
            submissions,
            seed: 0xF1F0,
        }
    }

    #[test]
    fn single_job_runs_immediately() {
        let r = run_schedule(&cfg(vec![Submission {
            job: job(AppSelection::Amg { ranks: 27 }, PlacementPolicy::Contiguous),
            arrival: Ns::ZERO,
        }]));
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(r.jobs[0].wait, Ns::ZERO);
        assert!(r.jobs[0].runtime > Ns::ZERO);
        assert_eq!(r.makespan, r.jobs[0].finished_at);
    }

    #[test]
    fn arrival_time_delays_start() {
        let arrival = Ns::from_us(500);
        let r = run_schedule(&cfg(vec![Submission {
            job: job(AppSelection::Amg { ranks: 16 }, PlacementPolicy::Contiguous),
            arrival,
        }]));
        assert_eq!(r.jobs[0].started_at, arrival);
        assert_eq!(r.jobs[0].wait, Ns::ZERO);
    }

    #[test]
    fn oversubscribed_machine_queues_fcfs() {
        // Two 40-node jobs on a 64-node machine: the second must wait for
        // the first to finish.
        let a = Submission {
            job: job(
                AppSelection::CrystalRouter { ranks: 40 },
                PlacementPolicy::Contiguous,
            ),
            arrival: Ns::ZERO,
        };
        let b = Submission {
            job: job(
                AppSelection::FillBoundary { ranks: 40 },
                PlacementPolicy::Contiguous,
            ),
            arrival: Ns(1),
        };
        let r = run_schedule(&cfg(vec![a, b]));
        assert_eq!(r.jobs.len(), 2);
        let first = &r.jobs[0];
        let second = &r.jobs[1];
        assert_eq!(first.submission.arrival, Ns::ZERO);
        assert_eq!(second.started_at, first.finished_at);
        assert!(second.wait > Ns::ZERO);
    }

    #[test]
    fn concurrent_jobs_share_and_interfere() {
        // Two 16-node jobs fit together; the second's runtime exceeds its
        // solo runtime because they share the network.
        let solo = run_schedule(&cfg(vec![Submission {
            job: job(AppSelection::Amg { ranks: 16 }, PlacementPolicy::RandomNode),
            arrival: Ns::ZERO,
        }]));
        let both = run_schedule(&cfg(vec![
            Submission {
                job: job(
                    AppSelection::CrystalRouter { ranks: 32 },
                    PlacementPolicy::RandomNode,
                ),
                arrival: Ns::ZERO,
            },
            Submission {
                job: job(AppSelection::Amg { ranks: 16 }, PlacementPolicy::RandomNode),
                arrival: Ns::ZERO,
            },
        ]));
        let amg_solo = solo.jobs[0].runtime;
        let amg_corun = both
            .jobs
            .iter()
            .find(|j| j.submission.job.app.ranks() == 16)
            .unwrap()
            .runtime;
        assert!(
            amg_corun > amg_solo,
            "co-scheduled AMG {amg_corun} should exceed solo {amg_solo}"
        );
    }

    #[test]
    fn nodes_are_reusable_across_jobs() {
        // Three sequential full-machine jobs: each reuses all 64 nodes.
        let subs: Vec<Submission> = (0..3)
            .map(|i| Submission {
                job: job(AppSelection::Amg { ranks: 64 }, PlacementPolicy::Contiguous),
                arrival: Ns(i),
            })
            .collect();
        let r = run_schedule(&cfg(subs));
        assert_eq!(r.jobs.len(), 3);
        for w in r.jobs.windows(2) {
            assert!(w[1].started_at >= w[0].finished_at);
        }
    }

    #[test]
    fn deterministic() {
        let subs = vec![
            Submission {
                job: job(
                    AppSelection::CrystalRouter { ranks: 24 },
                    PlacementPolicy::RandomNode,
                ),
                arrival: Ns::ZERO,
            },
            Submission {
                job: job(
                    AppSelection::Amg { ranks: 27 },
                    PlacementPolicy::RandomChassis,
                ),
                arrival: Ns::from_us(50),
            },
        ];
        let a = run_schedule(&cfg(subs.clone()));
        let b = run_schedule(&cfg(subs));
        assert_eq!(a, b);
    }

    #[test]
    fn validate_rejects_bad_submissions() {
        assert!(cfg(vec![]).validate().is_err());
        let too_big = cfg(vec![Submission {
            job: job(
                AppSelection::CrystalRouter { ranks: 100 },
                PlacementPolicy::Contiguous,
            ),
            arrival: Ns::ZERO,
        }]);
        assert!(too_big.validate().is_err());
    }
}
