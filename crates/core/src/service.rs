//! Service mode: a continuous multi-tenant scheduler driven incrementally.
//!
//! Where [`crate::scheduler`] answers "run this batch to completion", this
//! module is the datacenter-operator loop the paper motivates (and ROADMAP
//! item 4 asks for): an open stream of jobs arrives over hours of simulated
//! time, an admission policy decides *when* each starts, a placement policy
//! — optionally [`crate::recommend`] fed live congestion telemetry —
//! decides *where*, and per-tenant SLO statistics fall out the other end.
//!
//! The core is [`ServiceSim`], an incremental front-end over the
//! [`DriverNet`] surface (serial [`Network`] or the sharded PDES engine):
//! `step_until` advances simulated time in bounded increments and `submit`
//! injects jobs mid-run, so a driver can interleave simulation with
//! decision-making instead of committing to a fixed script up front. The
//! batch entry point [`run_service`] (and the legacy
//! [`crate::scheduler::run_schedule`], now a thin wrapper) is itself a
//! client of that incremental API: it steps to each arrival and injects.
//!
//! Fixes over the old one-shot scheduler ride along:
//! * finished jobs retire into compact [`ServiceOutcome`] records and
//!   their job slots are recycled, so memory is bounded by *concurrent*
//!   jobs, not stream length;
//! * event tags are validated against their bit widths at submission and
//!   admission — slot ids are bounded by [`JOB_SLOTS`], rank counts by
//!   [`MAX_RANKS`] — instead of silently aliasing;
//! * `Parallelism::IntraRun` is honoured through the generic driver.

use crate::config::{AppSelection, Parallelism, RoutingPolicy};
use crate::mpi::DriverNet;
use crate::recommend::{recommend, CommIntensity};
use dfly_engine::{Bytes, Ns, Xoshiro256};
use dfly_network::{AuditReport, Network, NetworkEvent, NetworkParams, ObsReport, ShardedNetwork};
use dfly_placement::{NodePool, PlacementPolicy};
use dfly_stats::percentile;
use dfly_topology::{GroupId, NodeId, Topology, TopologyConfig};
use dfly_workloads::{
    generate, generate_pattern, Arrival, ArrivalKind, JobTrace, Pattern, PatternSpec,
};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// Rank field width of an app-message tag (bits `[23:0]`).
pub const RANK_BITS: u32 = 24;
/// Phase field shift (bits `[47:24]`).
pub const PHASE_SHIFT: u32 = RANK_BITS;
/// Job-slot field shift (bits `[63:48]`).
pub const JOB_SHIFT: u32 = 48;
/// Largest rank count a job may have (24-bit rank field).
pub const MAX_RANKS: u32 = (1 << RANK_BITS) - 1;
/// Largest phase count a trace may have (24-bit phase field).
pub const MAX_PHASES: usize = (1 << (JOB_SHIFT - PHASE_SHIFT)) - 1;
/// Concurrent job-slot budget (16-bit job field). Slots are recycled on
/// completion, so this bounds *simultaneously running* jobs — a stream may
/// be arbitrarily long.
pub const JOB_SLOTS: usize = 1 << (u64::BITS - JOB_SHIFT);

const RANK_MASK: u64 = (1 << RANK_BITS) - 1;
const PHASE_MASK: u64 = (1 << (JOB_SHIFT - PHASE_SHIFT)) - 1;
const NO_OWNER: (u32, u32) = (u32::MAX, u32::MAX);

/// What a service job runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceWorkload {
    /// A traced miniapp.
    App(AppSelection),
    /// A synthetic-pattern job (background tenants in the service mix).
    Pattern {
        /// The pattern.
        pattern: Pattern,
        /// Rank count (>= 2).
        ranks: u32,
        /// Bytes each rank sends per phase before `msg_scale`.
        bytes_per_phase: Bytes,
        /// Phase count.
        phases: u32,
    },
}

impl ServiceWorkload {
    /// Rank count.
    pub fn ranks(&self) -> u32 {
        match *self {
            ServiceWorkload::App(app) => app.ranks(),
            ServiceWorkload::Pattern { ranks, .. } => ranks,
        }
    }

    /// Stable label for CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            ServiceWorkload::App(app) => app.kind().label(),
            ServiceWorkload::Pattern { pattern, .. } => pattern.label(),
        }
    }

    /// Generate the trace.
    fn trace(&self, msg_scale: f64, seed: u64) -> JobTrace {
        match *self {
            ServiceWorkload::App(app) => generate(&app.spec(msg_scale, seed)),
            ServiceWorkload::Pattern {
                pattern,
                ranks,
                bytes_per_phase,
                phases,
            } => generate_pattern(&PatternSpec {
                pattern,
                ranks,
                bytes_per_phase: ((bytes_per_phase as f64 * msg_scale) as Bytes).max(1),
                phases,
                seed,
            }),
        }
    }
}

/// How a service job is placed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementChoice {
    /// Always this policy.
    Fixed(PlacementPolicy),
    /// Ask [`crate::recommend`] at admission time, feeding it the job's
    /// measured [`CommIntensity`] and the live machine state (co-running
    /// jobs and queued-byte congestion seen through the driver surface).
    Recommend,
}

/// One job of the service stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceJob {
    /// What to run.
    pub workload: ServiceWorkload,
    /// How to place it.
    pub placement: PlacementChoice,
    /// Message-size multiplier.
    pub msg_scale: f64,
    /// Tenant the job bills to (groups SLO statistics).
    pub tenant: u32,
    /// User-style runtime estimate (EASY-backfill reservations; jobs are
    /// never killed for exceeding it).
    pub estimate: Ns,
}

impl ServiceJob {
    /// Build a recommend-placed service job from a workload-stream
    /// [`Arrival`].
    pub fn from_arrival(a: &Arrival) -> ServiceJob {
        let workload = match a.kind {
            ArrivalKind::App(kind) => ServiceWorkload::App(match kind {
                dfly_workloads::AppKind::CrystalRouter => {
                    AppSelection::CrystalRouter { ranks: a.ranks }
                }
                dfly_workloads::AppKind::FillBoundary => {
                    AppSelection::FillBoundary { ranks: a.ranks }
                }
                dfly_workloads::AppKind::Amg => AppSelection::Amg { ranks: a.ranks },
            }),
            ArrivalKind::Background(pattern) => ServiceWorkload::Pattern {
                pattern,
                ranks: a.ranks,
                bytes_per_phase: 32 * 1024,
                phases: 4,
            },
        };
        ServiceJob {
            workload,
            placement: PlacementChoice::Recommend,
            msg_scale: a.msg_scale,
            tenant: a.kind.tenant(),
            estimate: a.estimate,
        }
    }
}

/// A job plus its arrival time (the service analogue of
/// [`crate::scheduler::Submission`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceSubmission {
    /// The job.
    pub job: ServiceJob,
    /// When it enters the queue.
    pub arrival: Ns,
}

/// When a queued job is allowed to start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Strict first-come-first-served: a blocked head blocks everyone.
    Fcfs,
    /// EASY backfill: the head gets a reservation at its projected start
    /// (from runtime estimates); later arrivals may jump ahead if they fit
    /// now and don't push that reservation back.
    EasyBackfill,
    /// EASY backfill plus a congestion gate: no admission while the
    /// network holds more than `max_queued_bytes` in channel buffers (live
    /// telemetry via [`DriverNet::total_queued_bytes`]), so a saturated
    /// fabric drains before new tenants pile on.
    CongestionAware {
        /// Queued-byte threshold above which admission pauses.
        max_queued_bytes: Bytes,
    },
}

impl AdmissionPolicy {
    /// Stable label for CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::Fcfs => "fcfs",
            AdmissionPolicy::EasyBackfill => "easy",
            AdmissionPolicy::CongestionAware { .. } => "congestion",
        }
    }

    /// Parse a `--policy` argument (`fcfs`, `easy`, `congestion` or
    /// `congestion:BYTES`).
    pub fn parse(s: &str) -> Result<AdmissionPolicy, String> {
        match s {
            "fcfs" => Ok(AdmissionPolicy::Fcfs),
            "easy" => Ok(AdmissionPolicy::EasyBackfill),
            "congestion" => Ok(AdmissionPolicy::CongestionAware {
                max_queued_bytes: DEFAULT_CONGESTION_LIMIT,
            }),
            _ => {
                let bytes = s
                    .strip_prefix("congestion:")
                    .ok_or_else(|| {
                        format!("--policy wants fcfs|easy|congestion[:BYTES] (got {s:?})")
                    })?
                    .parse()
                    .map_err(|_| format!("--policy congestion: bad byte limit in {s:?}"))?;
                Ok(AdmissionPolicy::CongestionAware {
                    max_queued_bytes: bytes,
                })
            }
        }
    }
}

/// Default queued-byte gate for [`AdmissionPolicy::CongestionAware`]:
/// 2 MiB ~ a few hundred full channel buffers backed up.
pub const DEFAULT_CONGESTION_LIMIT: Bytes = 2 * 1024 * 1024;

/// Compact record of a finished job — all that outlives completion.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOutcome {
    /// Monotonic job id (submission order).
    pub uid: u64,
    /// Tenant it billed to.
    pub tenant: u32,
    /// Workload label.
    pub label: &'static str,
    /// Rank count.
    pub ranks: u32,
    /// Queue-entry time.
    pub arrival: Ns,
    /// Admission time.
    pub started_at: Ns,
    /// Completion time.
    pub finished_at: Ns,
    /// Queueing delay (`started_at - arrival`).
    pub wait: Ns,
    /// Communication runtime (`finished_at - started_at`).
    pub runtime: Ns,
    /// Placement policy actually used (resolved when
    /// [`PlacementChoice::Recommend`]).
    pub placement: PlacementPolicy,
    /// Distinct dragonfly groups the job's nodes spanned.
    pub groups: u32,
    /// Interference blast radius: distinct co-resident jobs that shared at
    /// least one dragonfly group with this job at any point of its run.
    pub blast_radius: u32,
}

impl ServiceOutcome {
    /// Bounded slowdown `(wait + runtime) / max(runtime, tau)` — the
    /// standard scheduling SLO metric; `tau` keeps very short jobs from
    /// dominating.
    pub fn bounded_slowdown(&self, tau: Ns) -> f64 {
        (self.wait + self.runtime).0 as f64 / self.runtime.max(tau).0.max(1) as f64
    }
}

/// Bounded-slowdown threshold used by [`tenant_slos`] (10 µs — the service
/// streams' runtimes are tens of µs to ms, mirroring the classic 10 s
/// threshold at second-scale runtimes).
pub const BOUNDED_SLOWDOWN_TAU: Ns = Ns(10_000);

// --- internal per-job execution state (phase semantics of mpi.rs) ---

struct RankState {
    phase: usize,
    outstanding_sends: u32,
    recvs_got: Vec<u32>,
    finished: bool,
}

struct ActiveJob {
    uid: u64,
    tenant: u32,
    label: &'static str,
    arrival: Ns,
    started_at: Ns,
    estimate: Ns,
    trace: JobTrace,
    placement: Vec<NodeId>,
    policy: PlacementPolicy,
    expected_recvs: Vec<Vec<u32>>,
    ranks: Vec<RankState>,
    unfinished: usize,
    groups: Vec<GroupId>,
    interferers: HashSet<u64>,
}

struct QueuedJob {
    uid: u64,
    job: ServiceJob,
    arrival: Ns,
}

/// The incremental service driver: a multi-tenant scheduler front-end over
/// any [`DriverNet`]. Borrow a network, [`submit`](ServiceSim::submit)
/// jobs (before or during the run), and alternate
/// [`step_until`](ServiceSim::step_until) with your own decision logic —
/// or call [`run_to_idle`](ServiceSim::run_to_idle) to drain everything.
pub struct ServiceSim<'a, N: DriverNet> {
    net: &'a mut N,
    topo: Arc<Topology>,
    pool: NodePool,
    admission: AdmissionPolicy,
    placement_rng: Xoshiro256,
    workload_seed: u64,
    queue: VecDeque<QueuedJob>,
    slots: Vec<Option<ActiveJob>>,
    free_slots: Vec<u32>,
    node_owner: Vec<(u32, u32)>,
    completed: Vec<ServiceOutcome>,
    active: usize,
    peak_active: usize,
    next_uid: u64,
}

impl<'a, N: DriverNet> ServiceSim<'a, N> {
    /// A service driver over `net` (already built for `topo`). Placement
    /// and workload-jitter streams derive from `seed` exactly as the batch
    /// runners derive theirs (`split(1)` / `split(2)`), so a wrapper that
    /// also derives its routing seed via `split(3)` reproduces the legacy
    /// scheduler's seeding.
    pub fn new(
        net: &'a mut N,
        topo: Arc<Topology>,
        admission: AdmissionPolicy,
        seed: u64,
    ) -> ServiceSim<'a, N> {
        let mut master = Xoshiro256::seed_from(seed);
        let placement_rng = master.split(1);
        let workload_seed = master.split(2).next_u64();
        let nodes = topo.config().total_nodes() as usize;
        assert_eq!(
            net.total_nodes() as usize,
            nodes,
            "network was built for a different machine"
        );
        let pool = NodePool::new(&topo);
        ServiceSim {
            net,
            topo,
            pool,
            admission,
            placement_rng,
            workload_seed,
            queue: VecDeque::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            node_owner: vec![NO_OWNER; nodes],
            completed: Vec::new(),
            active: 0,
            peak_active: 0,
            next_uid: 0,
        }
    }

    /// Queue a job to arrive at `arrival` (clamped to the current time, so
    /// mid-run injection "now" is always legal). Returns the job's uid.
    /// Rejects jobs whose shape overflows the machine or the event-tag
    /// fields — the admission-side half of the tag-width validation.
    pub fn submit(&mut self, job: ServiceJob, arrival: Ns) -> Result<u64, String> {
        let ranks = job.workload.ranks();
        let nodes = self.topo.config().total_nodes();
        if ranks == 0 {
            return Err("job needs at least one rank".into());
        }
        if let ServiceWorkload::Pattern { ranks, .. } = job.workload {
            if ranks < 2 {
                return Err("pattern jobs need at least 2 ranks".into());
            }
        }
        if ranks > MAX_RANKS {
            return Err(format!(
                "job has {ranks} ranks but the {RANK_BITS}-bit rank tag field holds {MAX_RANKS}"
            ));
        }
        if ranks > nodes {
            return Err(format!(
                "job needs {ranks} ranks but the machine has {nodes} nodes"
            ));
        }
        if !(job.msg_scale > 0.0) {
            return Err("msg_scale must be positive".into());
        }
        let arrival = arrival.max(self.net.now());
        let uid = self.next_uid;
        self.next_uid += 1;
        // Keep the queue sorted by (arrival, uid); mid-run injections land
        // behind earlier arrivals, FCFS-style.
        let pos = self
            .queue
            .iter()
            .rposition(|q| q.arrival <= arrival)
            .map_or(0, |p| p + 1);
        self.queue.insert(pos, QueuedJob { uid, job, arrival });
        self.net.schedule_wakeup(arrival);
        Ok(uid)
    }

    /// Advance the simulation until `t` (or until every event drains,
    /// whichever comes first). Admission re-attempts after every network
    /// event.
    pub fn step_until(&mut self, t: Ns) {
        if t > self.net.now() {
            self.net.schedule_wakeup(t);
        }
        self.try_admit();
        while self.net.now() < t {
            let Some(ev) = self.net.poll() else { break };
            self.handle(ev);
            self.try_admit();
        }
    }

    /// Drain the simulation: run until every submitted job has completed.
    /// Panics if jobs remain queued on an idle machine (an admission
    /// dead-end, which validated submissions cannot reach).
    pub fn run_to_idle(&mut self) {
        loop {
            self.try_admit();
            let Some(ev) = self.net.poll() else {
                // Drained. A congestion gate may only now be open —
                // re-attempt, and keep going if it admitted anything.
                let queued = self.queue.len();
                self.try_admit();
                if self.queue.len() == queued {
                    break;
                }
                continue;
            };
            self.handle(ev);
        }
        assert!(
            self.queue.is_empty() && self.active == 0,
            "service stalled: {} queued, {} active jobs on an idle network",
            self.queue.len(),
            self.active
        );
    }

    /// Current simulated time.
    pub fn now(&self) -> Ns {
        self.net.now()
    }

    /// Jobs currently running.
    pub fn active_jobs(&self) -> usize {
        self.active
    }

    /// Jobs waiting for admission.
    pub fn queued_jobs(&self) -> usize {
        self.queue.len()
    }

    /// Most jobs ever running at once.
    pub fn peak_active_jobs(&self) -> usize {
        self.peak_active
    }

    /// Job slots ever materialized — the state high-water mark. Bounded by
    /// peak concurrency (slots are recycled), not by stream length.
    pub fn job_slots(&self) -> usize {
        self.slots.len()
    }

    /// Outcomes of finished jobs, in completion order.
    pub fn completed(&self) -> &[ServiceOutcome] {
        &self.completed
    }

    /// Tear down, keeping the outcome stream and state statistics.
    pub fn finish(self) -> (Vec<ServiceOutcome>, usize, usize) {
        (self.completed, self.peak_active, self.slots.len())
    }

    fn slot_available(&self) -> bool {
        !self.free_slots.is_empty() || self.slots.len() < JOB_SLOTS
    }

    fn handle(&mut self, ev: NetworkEvent) {
        let NetworkEvent::Delivery(d) = ev else {
            return;
        };
        let now = self.net.now();
        let slot = (d.tag >> JOB_SHIFT) as u32;
        let phase = ((d.tag >> PHASE_SHIFT) & PHASE_MASK) as usize;
        let src_rank = (d.tag & RANK_MASK) as u32;
        let (dst_slot, dst_rank) = self.node_owner[d.dst.index()];
        debug_assert_eq!(dst_slot, slot, "delivery to a node the job does not own");
        let job = self.slots[slot as usize]
            .as_mut()
            .expect("delivery for a retired job slot");
        {
            let s = &mut job.ranks[src_rank as usize];
            debug_assert_eq!(s.phase, phase);
            s.outstanding_sends -= 1;
        }
        job.ranks[dst_rank as usize].recvs_got[phase] += 1;
        advance(self.net, job, slot, src_rank, now);
        if dst_rank != src_rank {
            advance(self.net, job, slot, dst_rank, now);
        }
        if job.unfinished == 0 {
            self.retire(slot, now);
        }
    }

    /// Admit queued jobs per the policy. Called after every event and
    /// submission, so completions and congestion drains re-trigger it.
    fn try_admit(&mut self) {
        let now = self.net.now();
        loop {
            let Some(head) = self.queue.front() else {
                return;
            };
            if head.arrival > now {
                return;
            }
            if let AdmissionPolicy::CongestionAware { max_queued_bytes } = self.admission {
                if self.net.total_queued_bytes() > max_queued_bytes {
                    // The gate re-opens as deliveries drain the buffers;
                    // every drained event re-attempts admission.
                    return;
                }
            }
            if head.job.workload.ranks() <= self.pool.free_count() && self.slot_available() {
                let q = self.queue.pop_front().expect("checked front");
                self.start_job(q, now);
                continue;
            }
            // Head blocked: strict FCFS stops here; backfill policies
            // consider later arrivals under the head's reservation.
            match self.admission {
                AdmissionPolicy::Fcfs => return,
                AdmissionPolicy::EasyBackfill | AdmissionPolicy::CongestionAware { .. } => {
                    self.backfill(now);
                    return;
                }
            }
        }
    }

    /// EASY backfill: reserve the head's projected start (walk running
    /// jobs by estimated completion until enough nodes free up), then let
    /// later arrivals start now if they fit and either (a) are estimated
    /// to finish before the reservation or (b) use only nodes the head
    /// won't need (the surplus).
    fn backfill(&mut self, now: Ns) {
        if !self.slot_available() {
            return;
        }
        let head_ranks = self
            .queue
            .front()
            .expect("backfill called with a queue head")
            .job
            .workload
            .ranks();
        let mut ends: Vec<(Ns, u64, u32)> = self
            .slots
            .iter()
            .flatten()
            .map(|j| {
                (
                    Ns(j.started_at.0.saturating_add(j.estimate.0)),
                    j.uid,
                    j.placement.len() as u32,
                )
            })
            .collect();
        ends.sort_unstable();
        let mut avail = self.pool.free_count();
        let mut shadow = Ns::MAX;
        let mut surplus = 0u32;
        for (end, _, freed) in ends {
            avail += freed;
            if avail >= head_ranks {
                shadow = end;
                surplus = avail - head_ranks;
                break;
            }
        }
        loop {
            let mut candidate = None;
            for i in 1..self.queue.len() {
                let q = &self.queue[i];
                if q.arrival > now {
                    break;
                }
                let r = q.job.workload.ranks();
                let fits = r <= self.pool.free_count() && self.slot_available();
                let honors_reservation =
                    Ns(now.0.saturating_add(q.job.estimate.0)) <= shadow || r <= surplus;
                if fits && honors_reservation {
                    candidate = Some((i, r));
                    break;
                }
            }
            let Some((i, r)) = candidate else { return };
            let q = self.queue.remove(i).expect("candidate index in range");
            if Ns(now.0.saturating_add(q.job.estimate.0)) > shadow {
                surplus -= r; // admitted on the surplus budget
            }
            self.start_job(q, now);
        }
    }

    fn start_job(&mut self, q: QueuedJob, now: Ns) {
        let ranks = q.job.workload.ranks();
        let trace = q
            .job
            .workload
            .trace(q.job.msg_scale, self.workload_seed ^ (q.uid << 32));
        assert_eq!(trace.ranks(), ranks, "trace rank count mismatch");
        assert!(
            trace.phase_count() <= MAX_PHASES,
            "trace has {} phases but the phase tag field holds {MAX_PHASES}",
            trace.phase_count()
        );
        let policy = match q.job.placement {
            PlacementChoice::Fixed(p) => p,
            PlacementChoice::Recommend => {
                // Live machine state: any co-runner, or congestion still
                // queued in the fabric, makes the network "shared".
                let shared = self.active > 0 || self.net.total_queued_bytes() > 0;
                recommend(CommIntensity::of(&trace), shared).placement
            }
        };
        let placement = policy
            .allocate(&self.topo, &mut self.pool, ranks, &mut self.placement_rng)
            .expect("admission checked the free count");
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                assert!(
                    self.slots.len() < JOB_SLOTS,
                    "slot budget checked at admission"
                );
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        for (rank, &node) in placement.iter().enumerate() {
            self.node_owner[node.index()] = (slot, rank as u32);
        }
        let mut groups: Vec<GroupId> = placement.iter().map(|&n| self.topo.node_group(n)).collect();
        groups.sort_unstable();
        groups.dedup();
        let mut interferers = HashSet::new();
        for other in self.slots.iter_mut().flatten() {
            let overlaps = other.groups.iter().any(|g| groups.binary_search(g).is_ok());
            if overlaps {
                other.interferers.insert(q.uid);
                interferers.insert(other.uid);
            }
        }
        let phases = trace.phase_count();
        let expected_recvs = trace.recv_counts();
        let rank_states: Vec<RankState> = (0..ranks)
            .map(|_| RankState {
                phase: 0,
                outstanding_sends: 0,
                recvs_got: vec![0; phases],
                finished: false,
            })
            .collect();
        self.slots[slot as usize] = Some(ActiveJob {
            uid: q.uid,
            tenant: q.job.tenant,
            label: q.job.workload.label(),
            arrival: q.arrival,
            started_at: now,
            estimate: q.job.estimate,
            trace,
            placement,
            policy,
            expected_recvs,
            ranks: rank_states,
            unfinished: ranks as usize,
            groups,
            interferers,
        });
        self.active += 1;
        self.peak_active = self.peak_active.max(self.active);
        let job = self.slots[slot as usize].as_mut().expect("just placed");
        for rank in 0..ranks {
            issue_phase(self.net, job, slot, rank, now);
        }
        for rank in 0..ranks {
            advance(self.net, job, slot, rank, now);
        }
        if job.unfinished == 0 {
            // Degenerate all-empty trace: completes at admission.
            self.retire(slot, now);
        }
    }

    /// Retire a finished job: release its nodes, recycle its slot, and
    /// keep only the compact outcome record.
    fn retire(&mut self, slot: u32, now: Ns) {
        let job = self.slots[slot as usize]
            .take()
            .expect("retiring an empty slot");
        for &n in &job.placement {
            self.node_owner[n.index()] = NO_OWNER;
        }
        self.pool.release(&job.placement);
        self.free_slots.push(slot);
        self.active -= 1;
        self.completed.push(ServiceOutcome {
            uid: job.uid,
            tenant: job.tenant,
            label: job.label,
            ranks: job.trace.ranks(),
            arrival: job.arrival,
            started_at: job.started_at,
            finished_at: now,
            wait: job.started_at - job.arrival,
            runtime: now - job.started_at,
            placement: job.policy,
            groups: job.groups.len() as u32,
            blast_radius: job.interferers.len() as u32,
        });
    }
}

fn issue_phase<N: DriverNet>(net: &mut N, job: &mut ActiveJob, slot: u32, rank: u32, now: Ns) {
    let phase = job.ranks[rank as usize].phase;
    let Some(ph) = job.trace.programs[rank as usize].phases.get(phase) else {
        return;
    };
    job.ranks[rank as usize].outstanding_sends = ph.sends.len() as u32;
    let src = job.placement[rank as usize];
    let tag = ((slot as u64) << JOB_SHIFT) | ((phase as u64) << PHASE_SHIFT) | rank as u64;
    for s in &ph.sends {
        net.send(now, src, job.placement[s.peer as usize], s.bytes, tag);
    }
}

fn advance<N: DriverNet>(net: &mut N, job: &mut ActiveJob, slot: u32, rank: u32, now: Ns) {
    loop {
        let state = &job.ranks[rank as usize];
        if state.finished {
            return;
        }
        let phase = state.phase;
        let total = job.trace.programs[rank as usize].phases.len();
        if phase >= total {
            job.ranks[rank as usize].finished = true;
            job.unfinished -= 1;
            return;
        }
        let expected = job.expected_recvs[rank as usize]
            .get(phase)
            .copied()
            .unwrap_or(0);
        if state.outstanding_sends > 0 || state.recvs_got[phase] < expected {
            return;
        }
        let next = phase + 1;
        job.ranks[rank as usize].phase = next;
        if next >= total {
            job.ranks[rank as usize].finished = true;
            job.unfinished -= 1;
            return;
        }
        issue_phase(net, job, slot, rank, now);
    }
}

/// A whole service run: machine, stream, and policies.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Machine shape.
    pub topology: TopologyConfig,
    /// Network parameters (set `audit`/`obs` here as for any run).
    pub network: NetworkParams,
    /// System-wide routing.
    pub routing: RoutingPolicy,
    /// Admission policy.
    pub admission: AdmissionPolicy,
    /// The submission stream (any order; sorted by arrival internally).
    pub submissions: Vec<ServiceSubmission>,
    /// Master seed (placement `split(1)`, workload `split(2)`, routing
    /// `split(3)` — the repo-wide derivation).
    pub seed: u64,
    /// Execution engine: serial loop or group-sharded PDES.
    pub parallelism: Parallelism,
}

impl ServiceConfig {
    /// Validate, naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        self.topology.validate()?;
        self.network.validate()?;
        if self.submissions.is_empty() {
            return Err("submissions: need at least one".into());
        }
        if self.parallelism == Parallelism::IntraRun(0) {
            return Err("parallelism: intra-run needs at least one worker".into());
        }
        let nodes = self.topology.total_nodes();
        for (i, s) in self.submissions.iter().enumerate() {
            let ranks = s.job.workload.ranks();
            if ranks == 0 {
                return Err(format!("submissions[{i}]: job needs at least one rank"));
            }
            if let ServiceWorkload::Pattern { ranks, .. } = s.job.workload {
                if ranks < 2 {
                    return Err(format!(
                        "submissions[{i}]: pattern jobs need at least 2 ranks"
                    ));
                }
            }
            if ranks > nodes {
                return Err(format!(
                    "submissions[{i}]: {ranks} ranks exceed the {nodes}-node machine"
                ));
            }
            if ranks > MAX_RANKS {
                return Err(format!(
                    "submissions[{i}]: {ranks} ranks exceed the {RANK_BITS}-bit rank tag field"
                ));
            }
            if !(s.job.msg_scale > 0.0) {
                return Err(format!("submissions[{i}]: msg_scale must be positive"));
            }
        }
        Ok(())
    }
}

/// Outcome of a whole service run.
#[derive(Debug, Clone)]
pub struct ServiceResult {
    /// Finished jobs in completion order.
    pub outcomes: Vec<ServiceOutcome>,
    /// Last completion time.
    pub makespan: Ns,
    /// Most jobs ever running at once.
    pub peak_active_jobs: usize,
    /// Job slots ever materialized (bounded state: peak concurrency, not
    /// stream length).
    pub job_slots: usize,
    /// Network events processed.
    pub events: u64,
    /// Conservation-audit report (when `network.audit`).
    pub audit: Option<AuditReport>,
    /// Telemetry report (when `network.obs`).
    pub obs: Option<ObsReport>,
}

/// Run a service stream to completion. A thin batch client of
/// [`ServiceSim`]'s incremental API: it steps to each arrival and injects
/// the job mid-run, exactly as a live driver would.
pub fn run_service(config: &ServiceConfig) -> ServiceResult {
    config.validate().expect("invalid service config");
    let topo = Arc::new(Topology::build(config.topology.clone()));
    // Draw the seed streams exactly as the batch runners do: split(1)
    // placement, split(2) workloads (both re-derived inside ServiceSim
    // from the same master), split(3) routing. `split` advances the
    // master, so the draws must happen in order.
    let mut master = Xoshiro256::seed_from(config.seed);
    let _placement = master.split(1);
    let _workloads = master.split(2);
    let routing_seed = master.split(3).next_u64();
    let mut subs = config.submissions.clone();
    subs.sort_by_key(|s| s.arrival);

    // A single-group machine has no cross-group cut to shard on; fall back
    // to the serial loop, as the experiment runner does.
    let workers = match config.parallelism {
        Parallelism::IntraRun(n) if config.topology.groups >= 2 => Some(n as usize),
        _ => None,
    };
    match workers {
        None => {
            let mut net = Network::new(topo.clone(), config.network, config.routing, routing_seed);
            let (outcomes, peak, slots) = drive(&mut net, topo, config, &subs);
            let makespan = outcomes
                .iter()
                .map(|o| o.finished_at)
                .max()
                .unwrap_or(Ns::ZERO);
            ServiceResult {
                outcomes,
                makespan,
                peak_active_jobs: peak,
                job_slots: slots,
                events: net.events_processed(),
                audit: net.audit_report(),
                obs: net.obs_report(),
            }
        }
        Some(n) => {
            let mut net = ShardedNetwork::new(
                topo.clone(),
                config.network,
                config.routing,
                routing_seed,
                n,
            );
            let (outcomes, peak, slots) = drive(&mut net, topo, config, &subs);
            let makespan = outcomes
                .iter()
                .map(|o| o.finished_at)
                .max()
                .unwrap_or(Ns::ZERO);
            let mut parts = net.finish();
            ServiceResult {
                outcomes,
                makespan,
                peak_active_jobs: peak,
                job_slots: slots,
                events: parts.events(),
                audit: parts.audit_report(),
                obs: parts.obs_report(),
            }
        }
    }
}

fn drive<N: DriverNet>(
    net: &mut N,
    topo: Arc<Topology>,
    config: &ServiceConfig,
    subs: &[ServiceSubmission],
) -> (Vec<ServiceOutcome>, usize, usize) {
    let mut sim = ServiceSim::new(net, topo, config.admission, config.seed);
    for s in subs {
        sim.step_until(s.arrival);
        sim.submit(s.job, s.arrival).expect("validated submission");
    }
    sim.run_to_idle();
    sim.finish()
}

/// Per-tenant SLO summary over an outcome stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSlo {
    /// Tenant id.
    pub tenant: u32,
    /// Jobs finished.
    pub jobs: u32,
    /// Mean queueing delay, µs.
    pub mean_wait_us: f64,
    /// Median queueing delay, µs.
    pub p50_wait_us: f64,
    /// 99th-percentile queueing delay, µs.
    pub p99_wait_us: f64,
    /// Median bounded slowdown (tau = [`BOUNDED_SLOWDOWN_TAU`]).
    pub p50_slowdown: f64,
    /// 99th-percentile bounded slowdown.
    pub p99_slowdown: f64,
    /// Mean communication runtime, µs.
    pub mean_runtime_us: f64,
    /// Mean interference blast radius.
    pub mean_blast_radius: f64,
    /// Largest blast radius any job saw.
    pub max_blast_radius: u32,
}

/// Aggregate per-tenant SLO metrics (p50/p99 via `dfly-stats`
/// percentiles), sorted by tenant id.
pub fn tenant_slos(outcomes: &[ServiceOutcome]) -> Vec<TenantSlo> {
    let mut tenants: Vec<u32> = outcomes.iter().map(|o| o.tenant).collect();
    tenants.sort_unstable();
    tenants.dedup();
    tenants
        .into_iter()
        .map(|tenant| {
            let of_tenant: Vec<&ServiceOutcome> =
                outcomes.iter().filter(|o| o.tenant == tenant).collect();
            let waits: Vec<f64> = of_tenant.iter().map(|o| o.wait.as_us_f64()).collect();
            let slowdowns: Vec<f64> = of_tenant
                .iter()
                .map(|o| o.bounded_slowdown(BOUNDED_SLOWDOWN_TAU))
                .collect();
            let runtimes: Vec<f64> = of_tenant.iter().map(|o| o.runtime.as_us_f64()).collect();
            let blasts: Vec<f64> = of_tenant.iter().map(|o| o.blast_radius as f64).collect();
            TenantSlo {
                tenant,
                jobs: of_tenant.len() as u32,
                mean_wait_us: dfly_stats::mean(&waits),
                p50_wait_us: percentile(&waits, 50.0),
                p99_wait_us: percentile(&waits, 99.0),
                p50_slowdown: percentile(&slowdowns, 50.0),
                p99_slowdown: percentile(&slowdowns, 99.0),
                mean_runtime_us: dfly_stats::mean(&runtimes),
                mean_blast_radius: dfly_stats::mean(&blasts),
                max_blast_radius: of_tenant.iter().map(|o| o.blast_radius).max().unwrap_or(0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfly_workloads::AppKind;

    fn app_job(ranks: u32, placement: PlacementPolicy) -> ServiceJob {
        ServiceJob {
            workload: ServiceWorkload::App(AppSelection::Amg { ranks }),
            placement: PlacementChoice::Fixed(placement),
            msg_scale: 0.3,
            tenant: 2,
            estimate: Ns::from_us(200),
        }
    }

    fn pattern_job(ranks: u32) -> ServiceJob {
        ServiceJob {
            workload: ServiceWorkload::Pattern {
                pattern: Pattern::Ring,
                ranks,
                bytes_per_phase: 8 * 1024,
                phases: 2,
            },
            placement: PlacementChoice::Fixed(PlacementPolicy::Contiguous),
            msg_scale: 1.0,
            tenant: 3,
            estimate: Ns::from_us(50),
        }
    }

    fn cfg(submissions: Vec<ServiceSubmission>) -> ServiceConfig {
        ServiceConfig {
            topology: TopologyConfig::small_test(),
            network: NetworkParams::default(),
            routing: RoutingPolicy::Adaptive,
            admission: AdmissionPolicy::Fcfs,
            submissions,
            seed: 0xF1F0,
            parallelism: Parallelism::Serial,
        }
    }

    fn sub(job: ServiceJob, arrival: Ns) -> ServiceSubmission {
        ServiceSubmission { job, arrival }
    }

    #[test]
    fn single_job_completes() {
        let r = run_service(&cfg(vec![sub(
            app_job(16, PlacementPolicy::Contiguous),
            Ns::ZERO,
        )]));
        assert_eq!(r.outcomes.len(), 1);
        assert_eq!(r.outcomes[0].wait, Ns::ZERO);
        assert!(r.outcomes[0].runtime > Ns::ZERO);
        assert_eq!(r.outcomes[0].blast_radius, 0);
        assert_eq!(r.peak_active_jobs, 1);
        assert_eq!(r.job_slots, 1);
    }

    #[test]
    fn mixed_stream_is_deterministic() {
        let subs = vec![
            sub(app_job(16, PlacementPolicy::RandomNode), Ns::ZERO),
            sub(pattern_job(8), Ns::from_us(20)),
            sub(app_job(27, PlacementPolicy::RandomChassis), Ns::from_us(40)),
        ];
        let a = run_service(&cfg(subs.clone()));
        let b = run_service(&cfg(subs));
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.peak_active_jobs, b.peak_active_jobs);
        assert_eq!(a.job_slots, b.job_slots);
        assert_eq!(a.events, b.events);
        assert_eq!(a.outcomes.len(), 3);
    }

    #[test]
    fn step_until_and_mid_run_injection() {
        let topo = Arc::new(Topology::build(TopologyConfig::small_test()));
        let routing_seed = Xoshiro256::seed_from(7).split(3).next_u64();
        let mut net = Network::new(
            topo.clone(),
            NetworkParams::default(),
            RoutingPolicy::Adaptive,
            routing_seed,
        );
        let mut sim = ServiceSim::new(&mut net, topo, AdmissionPolicy::Fcfs, 7);
        sim.submit(app_job(16, PlacementPolicy::Contiguous), Ns::ZERO)
            .unwrap();
        // Step partway: time advances to exactly the requested instant
        // while the first job is still in flight.
        sim.step_until(Ns::from_us(5));
        assert_eq!(sim.now(), Ns::from_us(5));
        assert_eq!(sim.active_jobs(), 1);
        // Inject mid-run with a past arrival: clamped to now.
        let uid = sim.submit(pattern_job(8), Ns::ZERO).unwrap();
        assert_eq!(uid, 1);
        sim.run_to_idle();
        assert_eq!(sim.completed().len(), 2);
        let second = sim.completed().iter().find(|o| o.uid == 1).unwrap();
        assert!(second.arrival >= Ns::from_us(5), "arrival clamped to now");
    }

    #[test]
    fn slots_recycle_and_state_stays_bounded() {
        // 120 sequential-ish small jobs: far more jobs than can ever run
        // at once. Slot count must track peak concurrency (<= 64/4 = 16
        // by node budget), not stream length — the state-retirement
        // regression (the pre-fix scheduler kept all 120 forever).
        let subs: Vec<ServiceSubmission> = (0..120)
            .map(|i| sub(pattern_job(4), Ns(i * 1000)))
            .collect();
        let r = run_service(&cfg(subs));
        assert_eq!(r.outcomes.len(), 120);
        assert!(
            r.job_slots <= 16,
            "job slots {} should be bounded by peak concurrency, not 120 jobs",
            r.job_slots
        );
        assert!(r.peak_active_jobs >= 2, "stream should overlap");
        assert_eq!(r.job_slots, r.peak_active_jobs);
    }

    #[test]
    fn fcfs_head_blocks_but_completion_readmits() {
        // A 40-node head, then a blocked 40-node job, then an 8-node job:
        // under FCFS everyone waits for the head in order.
        let subs = vec![
            sub(app_job(40, PlacementPolicy::Contiguous), Ns::ZERO),
            sub(app_job(40, PlacementPolicy::Contiguous), Ns(1)),
            sub(app_job(8, PlacementPolicy::Contiguous), Ns(2)),
        ];
        let r = run_service(&cfg(subs));
        let by_uid = |uid: u64| r.outcomes.iter().find(|o| o.uid == uid).unwrap();
        assert_eq!(by_uid(1).started_at, by_uid(0).finished_at);
        assert!(by_uid(2).started_at >= by_uid(1).started_at);
    }

    #[test]
    fn easy_backfill_lets_small_job_jump_blocked_head() {
        let subs = vec![
            sub(app_job(48, PlacementPolicy::Contiguous), Ns::ZERO),
            sub(app_job(48, PlacementPolicy::Contiguous), Ns(1)),
            sub(app_job(8, PlacementPolicy::Contiguous), Ns(2)),
        ];
        let mut fcfs = cfg(subs.clone());
        fcfs.admission = AdmissionPolicy::Fcfs;
        let mut easy = cfg(subs);
        easy.admission = AdmissionPolicy::EasyBackfill;
        let rf = run_service(&fcfs);
        let re = run_service(&easy);
        let started = |r: &ServiceResult, uid: u64| {
            r.outcomes.iter().find(|o| o.uid == uid).unwrap().started_at
        };
        // FCFS: the 8-rank job queues behind the blocked 48-rank head.
        assert!(started(&rf, 2) >= started(&rf, 1));
        // EASY: it backfills into the 16 surplus nodes immediately.
        assert!(started(&re, 2) < started(&re, 1));
        assert_eq!(started(&re, 2), Ns(2));
    }

    #[test]
    fn congestion_gate_defers_admission_under_load() {
        let subs = vec![
            sub(app_job(32, PlacementPolicy::RandomNode), Ns::ZERO),
            sub(app_job(16, PlacementPolicy::RandomNode), Ns(10)),
        ];
        let mut tight = cfg(subs.clone());
        tight.admission = AdmissionPolicy::CongestionAware {
            max_queued_bytes: 1,
        };
        let mut loose = cfg(subs);
        loose.admission = AdmissionPolicy::CongestionAware {
            max_queued_bytes: u64::MAX,
        };
        let rt = run_service(&tight);
        let rl = run_service(&loose);
        let wait =
            |r: &ServiceResult, uid: u64| r.outcomes.iter().find(|o| o.uid == uid).unwrap().wait;
        assert!(
            wait(&rt, 1) > wait(&rl, 1),
            "a 1-byte congestion gate must delay the second job ({} vs {})",
            wait(&rt, 1),
            wait(&rl, 1)
        );
        assert_eq!(rt.outcomes.len(), 2, "gated stream still drains");
    }

    #[test]
    fn recommend_placement_resolves_per_job() {
        // Low-load AMG alone on the machine: recommend says Contiguous.
        let mut job = app_job(16, PlacementPolicy::RandomNode);
        job.placement = PlacementChoice::Recommend;
        let r = run_service(&cfg(vec![sub(job, Ns::ZERO)]));
        assert_eq!(r.outcomes[0].placement, PlacementPolicy::Contiguous);
    }

    #[test]
    fn blast_radius_counts_group_sharing_corunners() {
        // Two RandomNode jobs on a 4-group machine overlap in time and
        // groups; two serial Contiguous jobs never co-reside.
        let overlap = run_service(&cfg(vec![
            sub(app_job(24, PlacementPolicy::RandomNode), Ns::ZERO),
            sub(app_job(24, PlacementPolicy::RandomNode), Ns::ZERO),
        ]));
        assert!(overlap.outcomes.iter().all(|o| o.blast_radius == 1));
        let serial = run_service(&cfg(vec![
            sub(app_job(48, PlacementPolicy::Contiguous), Ns::ZERO),
            sub(app_job(48, PlacementPolicy::Contiguous), Ns(1)),
        ]));
        assert!(serial.outcomes.iter().all(|o| o.blast_radius == 0));
    }

    #[test]
    fn sharded_engine_runs_the_stream_deterministically() {
        let subs = vec![
            sub(app_job(16, PlacementPolicy::RandomNode), Ns::ZERO),
            sub(pattern_job(8), Ns::from_us(10)),
        ];
        let mut c = cfg(subs);
        c.parallelism = Parallelism::IntraRun(2);
        let a = run_service(&c);
        let b = run_service(&c);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.events, b.events);
        assert_eq!(a.outcomes.len(), 2);
    }

    #[test]
    fn audit_stays_clean() {
        let mut c = cfg(vec![
            sub(app_job(16, PlacementPolicy::RandomNode), Ns::ZERO),
            sub(pattern_job(8), Ns::from_us(5)),
        ]);
        c.network.audit = true;
        let r = run_service(&c);
        let audit = r.audit.expect("audit enabled");
        assert!(audit.is_clean(), "{audit:?}");
    }

    #[test]
    fn validate_names_offending_fields() {
        let base = cfg(vec![sub(
            app_job(16, PlacementPolicy::Contiguous),
            Ns::ZERO,
        )]);
        assert!(cfg(vec![]).validate().unwrap_err().contains("submissions"));
        let mut c = base.clone();
        c.parallelism = Parallelism::IntraRun(0);
        assert!(c.validate().unwrap_err().contains("parallelism"));
        let mut c = base.clone();
        c.submissions[0].job.workload = ServiceWorkload::App(AppSelection::Amg { ranks: 100 });
        assert!(c.validate().unwrap_err().contains("64-node machine"));
        let mut c = base.clone();
        c.submissions[0].job.msg_scale = 0.0;
        assert!(c.validate().unwrap_err().contains("msg_scale"));
        let mut c = base;
        c.submissions[0].job.workload = ServiceWorkload::Pattern {
            pattern: Pattern::Ring,
            ranks: 1,
            bytes_per_phase: 1024,
            phases: 1,
        };
        assert!(c.validate().unwrap_err().contains("at least 2 ranks"));
    }

    #[test]
    fn submit_rejects_tag_width_overflow() {
        let topo = Arc::new(Topology::build(TopologyConfig::small_test()));
        let mut net = Network::new(
            topo.clone(),
            NetworkParams::default(),
            RoutingPolicy::Minimal,
            1,
        );
        let mut sim = ServiceSim::new(&mut net, topo, AdmissionPolicy::Fcfs, 1);
        let mut job = app_job(16, PlacementPolicy::Contiguous);
        job.workload = ServiceWorkload::App(AppSelection::Amg {
            ranks: MAX_RANKS + 1,
        });
        let err = sim.submit(job, Ns::ZERO).unwrap_err();
        assert!(err.contains("rank tag field"), "{err}");
    }

    #[test]
    fn admission_parse_and_labels() {
        assert_eq!(AdmissionPolicy::parse("fcfs"), Ok(AdmissionPolicy::Fcfs));
        assert_eq!(
            AdmissionPolicy::parse("easy"),
            Ok(AdmissionPolicy::EasyBackfill)
        );
        assert_eq!(
            AdmissionPolicy::parse("congestion:4096"),
            Ok(AdmissionPolicy::CongestionAware {
                max_queued_bytes: 4096
            })
        );
        assert!(AdmissionPolicy::parse("lifo").is_err());
        assert!(AdmissionPolicy::parse("congestion:zz").is_err());
        assert_eq!(
            AdmissionPolicy::parse("congestion").unwrap().label(),
            "congestion"
        );
    }

    #[test]
    fn tenant_slos_aggregate_per_tenant() {
        let mk = |tenant: u32, wait_us: u64, runtime_us: u64, blast: u32| ServiceOutcome {
            uid: 0,
            tenant,
            label: "amg",
            ranks: 8,
            arrival: Ns::ZERO,
            started_at: Ns::from_us(wait_us),
            finished_at: Ns::from_us(wait_us + runtime_us),
            wait: Ns::from_us(wait_us),
            runtime: Ns::from_us(runtime_us),
            placement: PlacementPolicy::Contiguous,
            groups: 1,
            blast_radius: blast,
        };
        let outcomes = vec![mk(0, 0, 100, 0), mk(0, 100, 100, 2), mk(1, 50, 200, 1)];
        let slos = tenant_slos(&outcomes);
        assert_eq!(slos.len(), 2);
        assert_eq!(slos[0].tenant, 0);
        assert_eq!(slos[0].jobs, 2);
        assert_eq!(slos[0].mean_wait_us, 50.0);
        assert_eq!(slos[0].max_blast_radius, 2);
        assert_eq!(slos[1].jobs, 1);
        // Bounded slowdown of the waiting job: (100+100)/100 = 2.
        assert!(slos[0].p99_slowdown >= 1.9);
    }

    #[test]
    fn service_job_from_arrival_maps_classes() {
        let a = Arrival {
            at: Ns::ZERO,
            kind: ArrivalKind::App(AppKind::CrystalRouter),
            ranks: 12,
            msg_scale: 0.5,
            estimate: Ns::from_us(90),
        };
        let j = ServiceJob::from_arrival(&a);
        assert_eq!(
            j.workload,
            ServiceWorkload::App(AppSelection::CrystalRouter { ranks: 12 })
        );
        assert_eq!(j.tenant, 0);
        assert_eq!(j.estimate, Ns::from_us(90));
        let b = Arrival {
            kind: ArrivalKind::Background(Pattern::Shift),
            ..a
        };
        let j = ServiceJob::from_arrival(&b);
        assert_eq!(j.tenant, 3);
        assert_eq!(j.workload.label(), "shift");
    }
}
