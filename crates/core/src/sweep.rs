//! Config grids and parameter sweeps, parallelized across simulations.
//!
//! Individual simulations are strictly sequential (determinism); campaigns
//! — ten placement x routing combinations, message-scale sweeps — are
//! embarrassingly parallel, so the sweep runner fans simulations out over
//! scoped threads with a shared work queue.
//!
//! The immutable topology is built **once per distinct
//! [`TopologyConfig`]** and shared across every cell and worker thread as
//! an `Arc` — a grid over the Theta machine constructs its 864 routers
//! and thousands of channels one time, not once per cell.

use crate::config::ExperimentConfig;
use crate::report::ConfigLabel;
use crate::runner::{execute_experiment_with_arena, prepare_topology, ExperimentResult};
use dfly_network::SimArena;
use dfly_topology::Topology;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One grid cell's outcome.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// Which placement x routing combination.
    pub label: ConfigLabel,
    /// The experiment result.
    pub result: ExperimentResult,
}

/// Run `base` under every given placement x routing combination.
/// Results come back in the order of `labels`.
pub fn run_config_grid(base: &ExperimentConfig, labels: &[ConfigLabel]) -> Vec<GridResult> {
    let configs: Vec<ExperimentConfig> = labels
        .iter()
        .map(|l| {
            let mut cfg = base.clone();
            cfg.placement = l.placement;
            cfg.routing = l.routing;
            cfg
        })
        .collect();
    let results = run_many(&configs);
    labels
        .iter()
        .zip(results)
        .map(|(&label, result)| GridResult { label, result })
        .collect()
}

/// Run `base` at each message scale (same placement/routing), in order.
pub fn run_scale_sweep(base: &ExperimentConfig, scales: &[f64]) -> Vec<ExperimentResult> {
    let configs: Vec<ExperimentConfig> = scales
        .iter()
        .map(|&s| {
            let mut cfg = base.clone();
            cfg.msg_scale = s;
            cfg
        })
        .collect();
    run_many(&configs)
}

/// Run a batch of independent experiments, using up to
/// `available_parallelism` worker threads. Result order matches input.
///
/// Each distinct topology in the batch is built exactly once
/// ([`prepare_topology`]) and shared across all cells and workers; a
/// typical grid varies only placement/routing/scale, so the whole batch
/// shares a single `Arc<Topology>`.
pub fn run_many(configs: &[ExperimentConfig]) -> Vec<ExperimentResult> {
    // Dedupe topologies by config equality (TopologyConfig is not Hash;
    // batches hold a handful of distinct topologies at most).
    let mut unique: Vec<Arc<Topology>> = Vec::new();
    let topos: Vec<Arc<Topology>> = configs
        .iter()
        .map(
            |cfg| match unique.iter().find(|t| t.config() == &cfg.topology) {
                Some(t) => t.clone(),
                None => {
                    let t = prepare_topology(cfg);
                    unique.push(t.clone());
                    t
                }
            },
        )
        .collect();
    let workers = sweep_workers(configs.len());
    if workers <= 1 || configs.len() <= 1 {
        // One arena carried across the whole batch: cell N+1 reuses the
        // buffer capacities cell N grew.
        let mut arena = SimArena::new();
        return configs
            .iter()
            .zip(&topos)
            .map(|(cfg, topo)| execute_experiment_with_arena(cfg, topo.clone(), &mut arena))
            .collect();
    }
    // Lock-free work claiming: a panicking worker must not poison shared
    // state, or the caller sees a misleading "lock poisoned" panic instead
    // of the original failure.
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<ExperimentResult>>> =
        configs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // Arenas are per-worker (SimArena is deliberately not
                    // shared): each thread warms its own buffer set.
                    let mut arena = SimArena::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= configs.len() {
                            break;
                        }
                        let r = execute_experiment_with_arena(
                            &configs[i],
                            topos[i].clone(),
                            &mut arena,
                        );
                        *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
                    }
                })
            })
            .collect();
        // Join explicitly and re-throw the *first worker's own payload*:
        // scope's automatic join would replace it with a generic
        // "a scoped thread panicked" message.
        let mut first_panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("worker filled every slot")
        })
        .collect()
}

/// Number of sweep worker threads: the `DFLY_SWEEP_WORKERS` environment
/// variable when set to a positive integer, otherwise the machine's
/// available parallelism; always capped by the batch size.
fn sweep_workers(batch: usize) -> usize {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    std::env::var("DFLY_SWEEP_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
        .min(batch.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoutingPolicy;
    use crate::runner::run_experiment;
    use dfly_placement::PlacementPolicy;

    fn base() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small_test();
        cfg.msg_scale = 0.05;
        cfg
    }

    #[test]
    fn grid_runs_all_labels_in_order() {
        let labels = ConfigLabel::all_ten();
        let grid = run_config_grid(&base(), &labels);
        assert_eq!(grid.len(), 10);
        for (g, l) in grid.iter().zip(&labels) {
            assert_eq!(&g.label, l);
            assert_eq!(g.result.config.placement, l.placement);
            assert_eq!(g.result.config.routing, l.routing);
            assert!(g.result.job_end > dfly_engine::Ns::ZERO);
        }
    }

    #[test]
    fn scale_sweep_increases_work() {
        let results = run_scale_sweep(&base(), &[0.05, 1.0]);
        assert_eq!(results.len(), 2);
        assert!(
            results[1].max_comm_time() > results[0].max_comm_time(),
            "larger messages must take longer"
        );
    }

    #[test]
    fn run_many_matches_sequential() {
        let mut a = base();
        a.placement = PlacementPolicy::RandomNode;
        let mut b = base();
        b.routing = RoutingPolicy::Adaptive;
        let batch = run_many(&[a.clone(), b.clone()]);
        let seq = [run_experiment(&a), run_experiment(&b)];
        assert_eq!(batch[0].rank_comm_times, seq[0].rank_comm_times);
        assert_eq!(batch[1].rank_comm_times, seq[1].rank_comm_times);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_many(&[]).is_empty());
    }

    #[test]
    fn worker_panic_propagates_original_payload() {
        // A config that passes topology dedupe (same topology as a valid
        // sibling, so `prepare_topology` never validates it on the main
        // thread) but fails `validate()` inside the worker: background
        // fanout larger than the free-node budget.
        let good = base();
        let mut bad = base();
        bad.background = Some(crate::config::BackgroundConfig {
            spec: dfly_workloads::BackgroundSpec::bursty(
                32 * 1024,
                dfly_engine::Ns::from_us(60),
                10_000, // far beyond the 64-node machine's free budget
                0,
            ),
        });
        let configs = [good, bad];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_many(&configs)))
            .expect_err("invalid cell must fail the batch");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload must be a string");
        // The original failure, not a poisoned-mutex artifact.
        assert!(
            msg.contains("invalid experiment config"),
            "wrong payload: {msg}"
        );
        assert!(!msg.contains("poisoned"), "poison leaked through: {msg}");
    }
}
