//! Config grids and parameter sweeps, parallelized across simulations.
//!
//! Individual simulations are strictly sequential (determinism); campaigns
//! — ten placement x routing combinations, message-scale sweeps — are
//! embarrassingly parallel, so the sweep runner fans simulations out over
//! scoped threads with a shared work queue.
//!
//! The immutable topology is built **once per distinct
//! [`TopologyConfig`]** and shared across every cell and worker thread as
//! an `Arc` — a grid over the Theta machine constructs its 864 routers
//! and thousands of channels one time, not once per cell.

use crate::config::ExperimentConfig;
use crate::report::ConfigLabel;
use crate::runner::{execute_experiment_with_arena, prepare_topology, ExperimentResult};
use dfly_network::SimArena;
use dfly_topology::Topology;
use std::sync::{Arc, Mutex};

/// One grid cell's outcome.
#[derive(Debug, Clone)]
pub struct GridResult {
    /// Which placement x routing combination.
    pub label: ConfigLabel,
    /// The experiment result.
    pub result: ExperimentResult,
}

/// Run `base` under every given placement x routing combination.
/// Results come back in the order of `labels`.
pub fn run_config_grid(base: &ExperimentConfig, labels: &[ConfigLabel]) -> Vec<GridResult> {
    let configs: Vec<ExperimentConfig> = labels
        .iter()
        .map(|l| {
            let mut cfg = base.clone();
            cfg.placement = l.placement;
            cfg.routing = l.routing;
            cfg
        })
        .collect();
    let results = run_many(&configs);
    labels
        .iter()
        .zip(results)
        .map(|(&label, result)| GridResult { label, result })
        .collect()
}

/// Run `base` at each message scale (same placement/routing), in order.
pub fn run_scale_sweep(base: &ExperimentConfig, scales: &[f64]) -> Vec<ExperimentResult> {
    let configs: Vec<ExperimentConfig> = scales
        .iter()
        .map(|&s| {
            let mut cfg = base.clone();
            cfg.msg_scale = s;
            cfg
        })
        .collect();
    run_many(&configs)
}

/// Run a batch of independent experiments, using up to
/// `available_parallelism` worker threads. Result order matches input.
///
/// Each distinct topology in the batch is built exactly once
/// ([`prepare_topology`]) and shared across all cells and workers; a
/// typical grid varies only placement/routing/scale, so the whole batch
/// shares a single `Arc<Topology>`.
pub fn run_many(configs: &[ExperimentConfig]) -> Vec<ExperimentResult> {
    // Dedupe topologies by config equality (TopologyConfig is not Hash;
    // batches hold a handful of distinct topologies at most).
    let mut unique: Vec<Arc<Topology>> = Vec::new();
    let topos: Vec<Arc<Topology>> = configs
        .iter()
        .map(
            |cfg| match unique.iter().find(|t| t.config() == &cfg.topology) {
                Some(t) => t.clone(),
                None => {
                    let t = prepare_topology(cfg);
                    unique.push(t.clone());
                    t
                }
            },
        )
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(configs.len().max(1));
    if workers <= 1 || configs.len() <= 1 {
        // One arena carried across the whole batch: cell N+1 reuses the
        // buffer capacities cell N grew.
        let mut arena = SimArena::new();
        return configs
            .iter()
            .zip(&topos)
            .map(|(cfg, topo)| execute_experiment_with_arena(cfg, topo.clone(), &mut arena))
            .collect();
    }
    let next = Mutex::new(0usize);
    let results: Vec<Mutex<Option<ExperimentResult>>> =
        configs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Arenas are per-worker (SimArena is deliberately not
                // shared): each thread warms its own buffer set.
                let mut arena = SimArena::new();
                loop {
                    let i = {
                        let mut n = next.lock().expect("claim lock never poisoned");
                        let i = *n;
                        *n += 1;
                        i
                    };
                    if i >= configs.len() {
                        break;
                    }
                    let r =
                        execute_experiment_with_arena(&configs[i], topos[i].clone(), &mut arena);
                    *results[i].lock().expect("slot lock never poisoned") = Some(r);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock never poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RoutingPolicy;
    use crate::runner::run_experiment;
    use dfly_placement::PlacementPolicy;

    fn base() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small_test();
        cfg.msg_scale = 0.05;
        cfg
    }

    #[test]
    fn grid_runs_all_labels_in_order() {
        let labels = ConfigLabel::all_ten();
        let grid = run_config_grid(&base(), &labels);
        assert_eq!(grid.len(), 10);
        for (g, l) in grid.iter().zip(&labels) {
            assert_eq!(&g.label, l);
            assert_eq!(g.result.config.placement, l.placement);
            assert_eq!(g.result.config.routing, l.routing);
            assert!(g.result.job_end > dfly_engine::Ns::ZERO);
        }
    }

    #[test]
    fn scale_sweep_increases_work() {
        let results = run_scale_sweep(&base(), &[0.05, 1.0]);
        assert_eq!(results.len(), 2);
        assert!(
            results[1].max_comm_time() > results[0].max_comm_time(),
            "larger messages must take longer"
        );
    }

    #[test]
    fn run_many_matches_sequential() {
        let mut a = base();
        a.placement = PlacementPolicy::RandomNode;
        let mut b = base();
        b.routing = RoutingPolicy::Adaptive;
        let batch = run_many(&[a.clone(), b.clone()]);
        let seq = [run_experiment(&a), run_experiment(&b)];
        assert_eq!(batch[0].rank_comm_times, seq[0].rank_comm_times);
        assert_eq!(batch[1].rank_comm_times, seq[1].rank_comm_times);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_many(&[]).is_empty());
    }
}
