//! Model validation benchmarks.
//!
//! The paper's Section II notes that CODES was validated against the real
//! Theta with **ping-pong** and **bisection pairing** benchmarks (<8%
//! error). We cannot compare against Theta, but we can do the analogous
//! internal validation: compare the simulator against closed-form
//! expectations of the same benchmarks on an idle network, pinning the
//! model's timing arithmetic (serialization, pipelining, per-hop latency)
//! and its aggregate bandwidth behaviour.

use crate::mpi::MpiDriver;
use dfly_engine::{Bytes, Ns, Xoshiro256};
use dfly_network::{Network, NetworkParams, Routing};
use dfly_topology::{ChannelClass, NodeId, Topology, TopologyConfig};
use dfly_workloads::{JobTrace, Phase, RankProgram, SendOp};
use std::sync::Arc;

/// Result of one ping-pong measurement.
#[derive(Debug, Clone, Copy)]
pub struct PingPongResult {
    /// Measured round-trip time.
    pub measured_rtt: Ns,
    /// Closed-form expectation for the same route.
    pub expected_rtt: Ns,
    /// |measured - expected| / expected.
    pub relative_error: f64,
}

/// Closed-form one-way time of a `bytes` message over a fixed channel
/// sequence on an idle network: the first packet pays every hop's
/// serialization + propagation (+ router latency where it enters a
/// router); the remaining packets pipeline behind the slowest hop.
pub fn expected_one_way(
    topo: &Topology,
    params: &NetworkParams,
    route_classes: &[ChannelClass],
    bytes: Bytes,
) -> Ns {
    let packets = params.packets_for(bytes);
    let full = params.packet_size as u64;
    let last = if bytes == 0 {
        1
    } else {
        bytes - (packets - 1) * full.min(bytes)
    };
    let _ = last;
    // All packets except possibly the last are full-size; the pipeline
    // bottleneck is the slowest serialization of a full packet.
    let mut first_packet = Ns::ZERO;
    let mut bottleneck = Ns::ZERO;
    for (i, &class) in route_classes.iter().enumerate() {
        let ser = topo
            .class_bandwidth(class)
            .serialization_time(full.min(bytes.max(1)));
        let next_is_router = i + 1 < route_classes.len();
        let extra = topo.class_latency(class)
            + if next_is_router {
                topo.config().router_latency
            } else {
                Ns::ZERO
            };
        first_packet += ser + extra;
        bottleneck = bottleneck.max(ser);
    }
    first_packet + bottleneck * (packets.saturating_sub(1))
}

/// Run a ping-pong between two nodes on the same router row (so the
/// minimal route is deterministic: terminal-up, one row link,
/// terminal-down) and compare with the closed form.
pub fn run_pingpong(cfg: &TopologyConfig, params: NetworkParams, bytes: Bytes) -> PingPongResult {
    let topo = Arc::new(Topology::build(cfg.clone()));
    // Nodes on routers (g0, row0, col0) and (g0, row0, col1): same row.
    let a = NodeId(0);
    let b = topo
        .router_nodes(topo.router_at(dfly_topology::GroupId(0), 0, 1))
        .next()
        .expect("router has nodes");

    let trace = JobTrace {
        programs: vec![
            RankProgram {
                phases: vec![
                    Phase {
                        sends: vec![SendOp { peer: 1, bytes }],
                    },
                    Phase { sends: vec![] },
                ],
            },
            RankProgram {
                phases: vec![
                    Phase { sends: vec![] },
                    Phase {
                        sends: vec![SendOp { peer: 0, bytes }],
                    },
                ],
            },
        ],
    };
    let placement = [a, b];
    let mut net = Network::new(topo.clone(), params, Routing::Minimal, 7);
    let result = MpiDriver::new(&mut net, &trace, &placement, None).run();
    let measured = result.job_end;

    let one_way = expected_one_way(
        &topo,
        &params,
        &[
            ChannelClass::TerminalUp,
            ChannelClass::LocalRow,
            ChannelClass::TerminalDown,
        ],
        bytes,
    );
    let expected = one_way * 2;
    let relative_error = (measured.as_nanos() as f64 - expected.as_nanos() as f64).abs()
        / expected.as_nanos() as f64;
    PingPongResult {
        measured_rtt: measured,
        expected_rtt: expected,
        relative_error,
    }
}

/// Result of a bisection-pairing measurement.
#[derive(Debug, Clone, Copy)]
pub struct BisectionResult {
    /// Time for all pairs to finish.
    pub makespan: Ns,
    /// Lower bound on the makespan from per-group-pair global capacity.
    pub capacity_bound: Ns,
    /// Achieved fraction of the capacity bound (<= 1 is impossible;
    /// values near 1 mean the network runs at wire speed).
    pub efficiency: f64,
    /// Aggregate delivered bandwidth in GiB/s.
    pub achieved_gib_per_sec: f64,
}

/// Bisection pairing: node `i` of group `g` exchanges with node `i` of
/// group `g + groups/2` (mod groups), every pair simultaneously. On an
/// idle network with minimal routing the makespan cannot beat the
/// per-group-pair global-link capacity; report how close we get.
pub fn run_bisection(
    cfg: &TopologyConfig,
    params: NetworkParams,
    bytes_per_node: Bytes,
    routing: Routing,
) -> BisectionResult {
    let topo = Arc::new(Topology::build(cfg.clone()));
    let total = cfg.total_nodes();
    let per_group = cfg.routers_per_group() * cfg.nodes_per_router;
    let half = cfg.groups / 2;
    assert!(half >= 1, "need at least 2 groups");

    let mut net = Network::new(topo.clone(), params, routing, 13);
    let mut rng = Xoshiro256::seed_from(3);
    let mut senders = 0u64;
    for n in 0..total {
        let g = n / per_group;
        let peer_group = (g + half) % cfg.groups;
        let peer = peer_group * per_group + n % per_group;
        if peer < total && peer != n {
            // Jitter injection within 1us to avoid a synchronized stampede
            // artifact on the event queue.
            let at = Ns(rng.next_below(1_000));
            net.send(at, NodeId(n), NodeId(peer), bytes_per_node, n as u64);
            senders += 1;
        }
    }
    net.run_to_idle();
    let makespan = net.now();

    // Each ordered group pair (g, g+half) carries per_group senders'
    // volume over links_per_group_pair global links (minimal routing).
    let volume_per_pair = per_group as u64 * bytes_per_node;
    let pair_bw = cfg.links_per_group_pair() as u64 * cfg.global_bw.bytes_per_sec();
    let capacity_bound =
        Ns(((volume_per_pair as u128 * 1_000_000_000u128) / pair_bw as u128) as u64);
    let efficiency = capacity_bound.as_nanos() as f64 / makespan.as_nanos() as f64;
    let achieved = (senders * bytes_per_node) as f64 / makespan.as_secs_f64() / (1u64 << 30) as f64;
    BisectionResult {
        makespan,
        capacity_bound,
        efficiency,
        achieved_gib_per_sec: achieved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pingpong_matches_closed_form_small() {
        // One packet each way: the expectation is exact.
        let r = run_pingpong(
            &TopologyConfig::small_test(),
            NetworkParams::default(),
            4096,
        );
        assert!(
            r.relative_error < 0.01,
            "1-packet ping-pong error {:.3}% (measured {}, expected {})",
            100.0 * r.relative_error,
            r.measured_rtt,
            r.expected_rtt
        );
    }

    #[test]
    fn pingpong_matches_closed_form_large() {
        // Many packets: pipelining must match within CODES's 8% bar.
        for bytes in [64 * 1024, 190 * 1024, 1024 * 1024] {
            let r = run_pingpong(
                &TopologyConfig::small_test(),
                NetworkParams::default(),
                bytes,
            );
            assert!(
                r.relative_error < 0.08,
                "{bytes}B ping-pong error {:.2}% (measured {}, expected {})",
                100.0 * r.relative_error,
                r.measured_rtt,
                r.expected_rtt
            );
        }
    }

    #[test]
    fn pingpong_scales_with_message_size() {
        let small = run_pingpong(
            &TopologyConfig::small_test(),
            NetworkParams::default(),
            8 * 1024,
        );
        let large = run_pingpong(
            &TopologyConfig::small_test(),
            NetworkParams::default(),
            512 * 1024,
        );
        let ratio = large.measured_rtt.as_nanos() as f64 / small.measured_rtt.as_nanos() as f64;
        // 64x the bytes, pipelined: between 16x and 64x.
        assert!(ratio > 16.0 && ratio < 64.0, "ratio {ratio:.1}");
    }

    #[test]
    fn bisection_minimal_respects_capacity_bound() {
        let r = run_bisection(
            &TopologyConfig::small_test(),
            NetworkParams::default(),
            256 * 1024,
            Routing::Minimal,
        );
        assert!(
            r.efficiency <= 1.001,
            "impossible: beat the capacity bound ({:.3})",
            r.efficiency
        );
        assert!(
            r.efficiency > 0.3,
            "bisection efficiency too low: {:.3} (makespan {} vs bound {})",
            r.efficiency,
            r.makespan,
            r.capacity_bound
        );
        assert!(r.achieved_gib_per_sec > 0.0);
    }

    #[test]
    fn bisection_adaptive_not_worse_than_half_minimal() {
        let min = run_bisection(
            &TopologyConfig::small_test(),
            NetworkParams::default(),
            128 * 1024,
            Routing::Minimal,
        );
        let adp = run_bisection(
            &TopologyConfig::small_test(),
            NetworkParams::default(),
            128 * 1024,
            Routing::Adaptive,
        );
        assert!(
            adp.makespan.as_nanos() < min.makespan.as_nanos() * 2,
            "adaptive bisection collapsed: {} vs {}",
            adp.makespan,
            min.makespan
        );
    }
}
