//! Run-to-run variability.
//!
//! The paper's motivation cites production measurements of run-to-run
//! variability "frequently 15% or greater and up to 100%" (its ref [5],
//! Chunduri et al. SC'17). This module measures the same statistic in the
//! simulator: repeat one configuration under different seeds — different
//! random placements, routing choices, and background phases — and report
//! the spread of the resulting communication times.

use crate::config::ExperimentConfig;
use crate::sweep::run_many;
use dfly_stats::{mean, stddev, BoxStats};

/// Variability of one configuration across seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct VariabilityReport {
    /// Median communication time of each run (ms).
    pub run_medians_ms: Vec<f64>,
    /// Maximum communication time of each run (ms).
    pub run_maxima_ms: Vec<f64>,
    /// Spread of the run medians.
    pub median_stats: BoxStats,
    /// Run-to-run variability: `(max - min) / min` of the run medians, in
    /// percent — the statistic the paper's ref [5] reports.
    pub variability_percent: f64,
    /// Coefficient of variation of the run medians, in percent.
    pub cv_percent: f64,
}

/// Run `config` under `runs` different seeds and measure run-to-run
/// variability of the median communication time.
pub fn measure_variability(config: &ExperimentConfig, runs: u32) -> VariabilityReport {
    assert!(runs >= 2, "need at least 2 runs to measure variability");
    let configs: Vec<ExperimentConfig> = (0..runs)
        .map(|i| {
            let mut c = config.clone();
            // Decorrelate every subsystem's stream per run.
            c.seed = config.seed ^ ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            c
        })
        .collect();
    let results = run_many(&configs);
    let run_medians_ms: Vec<f64> = results.iter().map(|r| r.comm_time_stats().median).collect();
    let run_maxima_ms: Vec<f64> = results
        .iter()
        .map(|r| r.max_comm_time().as_ms_f64())
        .collect();
    let median_stats = BoxStats::from_samples(&run_medians_ms).expect("runs >= 2");
    let lo = median_stats.min;
    let hi = median_stats.max;
    let variability_percent = if lo > 0.0 {
        100.0 * (hi - lo) / lo
    } else {
        0.0
    };
    let m = mean(&run_medians_ms);
    let cv_percent = if m > 0.0 {
        100.0 * stddev(&run_medians_ms) / m
    } else {
        0.0
    };
    VariabilityReport {
        run_medians_ms,
        run_maxima_ms,
        median_stats,
        variability_percent,
        cv_percent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AppSelection, BackgroundConfig, RoutingPolicy};
    use dfly_engine::Ns;
    use dfly_placement::PlacementPolicy;
    use dfly_workloads::BackgroundSpec;

    fn base(placement: PlacementPolicy) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small_test();
        cfg.app = AppSelection::Amg { ranks: 16 };
        cfg.placement = placement;
        cfg.routing = RoutingPolicy::Adaptive;
        cfg
    }

    #[test]
    fn reports_are_consistent() {
        let r = measure_variability(&base(PlacementPolicy::RandomNode), 4);
        assert_eq!(r.run_medians_ms.len(), 4);
        assert_eq!(r.run_maxima_ms.len(), 4);
        assert!(r.variability_percent >= 0.0);
        assert!(r.cv_percent >= 0.0);
        assert!(r.median_stats.max >= r.median_stats.min);
        for (med, max) in r.run_medians_ms.iter().zip(&r.run_maxima_ms) {
            assert!(max >= med);
        }
    }

    #[test]
    fn contiguous_placement_has_no_placement_randomness() {
        // Contiguous placement is seed-independent; without background the
        // only seed-dependent parts are workload jitter and routing RNG,
        // so variability should be small but typically nonzero.
        let r = measure_variability(&base(PlacementPolicy::Contiguous), 3);
        assert!(
            r.variability_percent < 30.0,
            "contiguous variability {:.1}%",
            r.variability_percent
        );
    }

    #[test]
    fn background_interference_raises_variability_for_random_placement() {
        // The paper's central variability claim: network sharing creates
        // run-to-run variability, and random placement exposes a job to
        // it more than contiguous placement.
        let with_bg = |placement| {
            let mut c = base(placement);
            c.background = Some(BackgroundConfig {
                spec: BackgroundSpec::uniform(32 * 1024, Ns::from_us(2), 0),
            });
            measure_variability(&c, 4)
        };
        let cont = with_bg(PlacementPolicy::Contiguous);
        let rand = with_bg(PlacementPolicy::RandomNode);
        assert!(
            rand.median_stats.mean > cont.median_stats.mean,
            "random placement should be slower under interference"
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 runs")]
    fn single_run_rejected() {
        let _ = measure_variability(&base(PlacementPolicy::Contiguous), 1);
    }
}
