//! Key/value config echo — the in-tree replacement for the serde derives
//! the workspace used to carry.
//!
//! The study never serialized configs to JSON (no serializer backend was
//! ever wired up); the derives existed so a run could *echo* its exact
//! configuration next to its results. [`ToKv`] keeps that capability with
//! ~30 lines of code and zero dependencies: every config type flattens
//! itself to ordered `(key, value)` pairs, nested configs are prefixed
//! with `parent.`, and [`ToKv::kv_echo`] renders the canonical
//! `key = value` block that reproduction binaries print and tests compare.

/// Flatten a configuration to ordered key/value string pairs.
///
/// Implementations must be deterministic: the same value always produces
/// the same pairs in the same order, so two runs' echoes are byte-equal
/// exactly when their configs are equal.
pub trait ToKv {
    /// The ordered `(key, value)` pairs describing `self`.
    fn to_kv(&self) -> Vec<(String, String)>;

    /// Render the pairs as a `key = value` block, one pair per line,
    /// with a trailing newline.
    fn kv_echo(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.to_kv() {
            out.push_str(&k);
            out.push_str(" = ");
            out.push_str(&v);
            out.push('\n');
        }
        out
    }
}

/// Prefix every key of a nested config with `prefix.` and append the
/// pairs to `out`. Lets a parent config compose its children:
///
/// ```
/// use dfly_engine::kv::{nest, ToKv};
/// struct Inner;
/// impl ToKv for Inner {
///     fn to_kv(&self) -> Vec<(String, String)> {
///         vec![("x".into(), "1".into())]
///     }
/// }
/// let mut out = Vec::new();
/// nest(&mut out, "inner", &Inner);
/// assert_eq!(out, vec![("inner.x".to_string(), "1".to_string())]);
/// ```
pub fn nest(out: &mut Vec<(String, String)>, prefix: &str, child: &dyn ToKv) {
    for (k, v) in child.to_kv() {
        out.push((format!("{prefix}.{k}"), v));
    }
}

/// Push one `Display`-able field. Small sugar so implementations read as
/// a field list.
pub fn kv(out: &mut Vec<(String, String)>, key: &str, value: impl std::fmt::Display) {
    out.push((key.to_string(), value.to_string()));
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Leaf {
        a: u32,
        b: &'static str,
    }

    impl ToKv for Leaf {
        fn to_kv(&self) -> Vec<(String, String)> {
            let mut out = Vec::new();
            kv(&mut out, "a", self.a);
            kv(&mut out, "b", self.b);
            out
        }
    }

    #[test]
    fn echo_renders_one_pair_per_line() {
        let l = Leaf { a: 7, b: "x" };
        assert_eq!(l.kv_echo(), "a = 7\nb = x\n");
    }

    #[test]
    fn nest_prefixes_keys() {
        let l = Leaf { a: 1, b: "y" };
        let mut out = Vec::new();
        nest(&mut out, "leaf", &l);
        assert_eq!(
            out,
            vec![
                ("leaf.a".to_string(), "1".to_string()),
                ("leaf.b".to_string(), "y".to_string())
            ]
        );
    }

    #[test]
    fn equal_values_echo_identically() {
        let a = Leaf { a: 3, b: "z" };
        let b = Leaf { a: 3, b: "z" };
        assert_eq!(a.kv_echo(), b.kv_echo());
    }
}
