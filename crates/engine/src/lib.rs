//! # dfly-engine
//!
//! Deterministic discrete-event simulation engine underpinning the dragonfly
//! network model. This crate replaces the role that ROSS/CODES plays in the
//! original paper: it provides
//!
//! * an integer-nanosecond simulated clock ([`Ns`]) with exact
//!   bandwidth/serialization arithmetic ([`Bandwidth`]),
//! * a total-ordered event queue ([`EventQueue`]) whose tie-breaking is a
//!   monotone sequence number, so simulations are bit-for-bit reproducible,
//! * a small, self-contained xoshiro256** random number generator
//!   ([`rng::Xoshiro256`]) so random placement/routing decisions are stable
//!   across dependency upgrades,
//! * an in-tree property-testing harness ([`proptest`]) and key/value
//!   config echo ([`kv`]) so tests and reporting need no external crates
//!   either — the workspace builds fully offline.
//!
//! The event loop itself stays sequential per shard. The paper used
//! parallel discrete-event simulation (ROSS) for speed on large clusters;
//! this reproduction mirrors that with a *conservative time-window* PDES
//! mode: a run may be partitioned into shards (one per dragonfly group)
//! that each own a sequential [`EventQueue`] and exchange cross-shard
//! traffic only at window boundaries bounded by the global-link lookahead
//! (see [`shard`]). Sharding is partition-deterministic — results are
//! byte-identical at any worker count — and parallelism *across*
//! simulation runs remains available too (see `dfly-core::sweep`).

#![warn(missing_docs)]

pub mod kv;
pub mod proptest;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod time;

pub use kv::ToKv;
pub use queue::{EventQueue, ScheduledEvent};
pub use rng::Xoshiro256;
pub use shard::{Mailbox, ShardClock, Windows};
pub use time::{Bandwidth, Bytes, Ns};
