//! # dfly-engine
//!
//! Deterministic discrete-event simulation engine underpinning the dragonfly
//! network model. This crate replaces the role that ROSS/CODES plays in the
//! original paper: it provides
//!
//! * an integer-nanosecond simulated clock ([`Ns`]) with exact
//!   bandwidth/serialization arithmetic ([`Bandwidth`]),
//! * a total-ordered event queue ([`EventQueue`]) whose tie-breaking is a
//!   monotone sequence number, so simulations are bit-for-bit reproducible,
//! * a small, self-contained xoshiro256** random number generator
//!   ([`rng::Xoshiro256`]) so random placement/routing decisions are stable
//!   across dependency upgrades,
//! * an in-tree property-testing harness ([`proptest`]) and key/value
//!   config echo ([`kv`]) so tests and reporting need no external crates
//!   either — the workspace builds fully offline.
//!
//! The engine is deliberately sequential. The paper used parallel
//! discrete-event simulation (ROSS) purely for speed on large clusters; the
//! *results* of a simulation are engine-independent, and the trade-off study
//! compares configurations, which benefits far more from determinism than
//! from parallel execution inside one run. Parallelism in this reproduction
//! happens *across* simulation runs (see `dfly-core::sweep`).

#![warn(missing_docs)]

pub mod kv;
pub mod proptest;
pub mod queue;
pub mod rng;
pub mod time;

pub use kv::ToKv;
pub use queue::{EventQueue, ScheduledEvent};
pub use rng::Xoshiro256;
pub use time::{Bandwidth, Bytes, Ns};
