//! A small in-tree property-testing harness — the zero-dependency
//! replacement for the external `proptest` crate, in the same spirit as
//! [`crate::rng`] replacing `rand`.
//!
//! The workspace's property tests need exactly four things:
//!
//! 1. **seeded case generation** — every case's input is derived from a
//!    single `u64` case seed drawn from a master [`Xoshiro256`] stream,
//!    so runs are reproducible forever (no dependency on an external
//!    crate's strategy internals);
//! 2. **configurable case count** — per-test via [`Config::with_cases`],
//!    globally via the `DFLY_PROPTEST_CASES` env var;
//! 3. **failing-seed reporting** — a failure panics with the case seed,
//!    and [`reproduce`] re-runs exactly that input from the seed alone;
//! 4. **minimal shrinking** for integer and vector inputs — greedy
//!    descent over caller-supplied candidate lists (see [`shrink`]),
//!    bounded by [`Config::max_shrink_steps`].
//!
//! A property is a plain closure `Fn(&T) -> Result<(), String>`; panics
//! inside the property (e.g. from `assert!` or an `unwrap`) are caught
//! and treated as failures, so existing assertion style keeps working.
//!
//! ```
//! use dfly_engine::proptest::{check, Config};
//!
//! check(
//!     "addition_commutes",
//!     &Config::with_cases(64),
//!     |rng| (rng.next_below(1000), rng.next_below(1000)),
//!     |&(a, b)| {
//!         if a + b == b + a {
//!             Ok(())
//!         } else {
//!             Err(format!("{a} + {b} not commutative"))
//!         }
//!     },
//! );
//! ```

use crate::rng::Xoshiro256;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Harness configuration: how many cases, from which master seed, and how
/// hard to shrink.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Master seed; each case's seed is drawn from this stream.
    pub seed: u64,
    /// Upper bound on accepted shrink steps (each step re-tests up to the
    /// whole candidate list, so this bounds work, not candidates).
    pub max_shrink_steps: u32,
}

impl Default for Config {
    /// 32 cases (or `DFLY_PROPTEST_CASES` if set), a fixed master seed
    /// (or `DFLY_PROPTEST_SEED` if set), 1024 shrink steps.
    fn default() -> Config {
        let cases = std::env::var("DFLY_PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        let seed = std::env::var("DFLY_PROPTEST_SEED")
            .ok()
            .and_then(|v| parse_seed(&v))
            .unwrap_or(0xDF17_CA5E_5EED_0001);
        Config {
            cases,
            seed,
            max_shrink_steps: 1024,
        }
    }
}

fn parse_seed(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

impl Config {
    /// Default config with an explicit case count. Explicit counts win;
    /// the `DFLY_PROPTEST_CASES` env var only changes the default.
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Everything needed to understand and reproduce a failing property.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which case (0-based) failed first.
    pub case_index: u32,
    /// The seed that regenerates the failing input via [`reproduce`].
    pub case_seed: u64,
    /// The failure message (property error or caught panic).
    pub message: String,
    /// `Debug` rendering of the (shrunk) failing input.
    pub input: String,
    /// How many shrink steps were accepted before reaching `input`.
    pub shrink_steps: u32,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "case #{} (case_seed = {:#018x}) failed: {}\n  minimal input \
             (after {} shrink steps): {}\n  reproduce with \
             DFLY_PROPTEST_SEED or proptest::reproduce({:#018x}, ...)",
            self.case_index,
            self.case_seed,
            self.message,
            self.shrink_steps,
            self.input,
            self.case_seed
        )
    }
}

/// Run the property on a value, converting panics into `Err`.
fn test_one<T, P>(prop: &P, value: &T) -> Result<(), String>
where
    P: Fn(&T) -> Result<(), String>,
    T: Debug,
{
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}

/// Non-panicking core runner. Returns the number of passing cases, or the
/// first (shrunk) failure. [`check_with_shrink`] is the panicking wrapper
/// tests normally use; this entry point exists so the harness can test
/// itself.
pub fn run_with_shrink<T, G, S, P>(
    cfg: &Config,
    generate: G,
    shrink_candidates: S,
    prop: P,
) -> Result<u32, Failure>
where
    T: Debug,
    G: Fn(&mut Xoshiro256) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let mut master = Xoshiro256::seed_from(cfg.seed);
    for case_index in 0..cfg.cases {
        let case_seed = master.next_u64();
        let input = generate(&mut Xoshiro256::seed_from(case_seed));
        if let Err(message) = test_one(&prop, &input) {
            // Greedy shrink: repeatedly move to the first still-failing
            // candidate until none fails or the step budget runs out.
            let mut current = input;
            let mut current_msg = message;
            let mut steps = 0u32;
            'outer: while steps < cfg.max_shrink_steps {
                for candidate in shrink_candidates(&current) {
                    if let Err(msg) = test_one(&prop, &candidate) {
                        current = candidate;
                        current_msg = msg;
                        steps += 1;
                        continue 'outer;
                    }
                }
                break;
            }
            return Err(Failure {
                case_index,
                case_seed,
                message: current_msg,
                input: format!("{current:?}"),
                shrink_steps: steps,
            });
        }
    }
    Ok(cfg.cases)
}

/// Run a property over `cfg.cases` generated inputs, panicking with a
/// seed-carrying report on the first failure. No shrinking.
pub fn check<T, G, P>(name: &str, cfg: &Config, generate: G, prop: P)
where
    T: Debug,
    G: Fn(&mut Xoshiro256) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    check_with_shrink(name, cfg, generate, |_| Vec::new(), prop);
}

/// [`check`] plus greedy shrinking over `shrink_candidates` (see
/// [`shrink`] for stock integer/vec shrinkers).
pub fn check_with_shrink<T, G, S, P>(
    name: &str,
    cfg: &Config,
    generate: G,
    shrink_candidates: S,
    prop: P,
) where
    T: Debug,
    G: Fn(&mut Xoshiro256) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    if let Err(failure) = run_with_shrink(cfg, generate, shrink_candidates, prop) {
        panic!("property '{name}' {failure}");
    }
}

/// Re-run a property on the exact input a reported `case_seed` generates.
/// Returns the property's verdict on that single input.
pub fn reproduce<T, G, P>(case_seed: u64, generate: G, prop: P) -> Result<(), String>
where
    T: Debug,
    G: Fn(&mut Xoshiro256) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let input = generate(&mut Xoshiro256::seed_from(case_seed));
    test_one(&prop, &input)
}

/// Stock shrink-candidate producers for integers and vectors.
///
/// A shrinker maps a failing value to a list of strictly "smaller"
/// candidates, best first; the runner greedily descends through whichever
/// candidates still fail. Candidate lists may propose values outside the
/// generator's range — the property re-check decides what counts.
pub mod shrink {
    /// Candidates for a `u64` bounded below by `lo`: the bound itself,
    /// halfway down, and one less.
    pub fn u64_toward(lo: u64, v: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if v > lo {
            out.push(lo);
            let half = lo + (v - lo) / 2;
            if half != lo && half != v {
                out.push(half);
            }
            if v - 1 != lo {
                out.push(v - 1);
            }
        }
        out
    }

    /// Candidates for a `usize` bounded below by `lo`.
    pub fn usize_toward(lo: usize, v: usize) -> Vec<usize> {
        u64_toward(lo as u64, v as u64)
            .into_iter()
            .map(|x| x as usize)
            .collect()
    }

    /// Candidates for a vector: structural reductions first (drop half,
    /// drop one element), then element-wise shrinks via `elem`.
    pub fn vec<T: Clone>(v: &[T], elem: impl Fn(&T) -> Vec<T>) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = Vec::new();
        let n = v.len();
        if n > 1 {
            out.push(v[..n / 2].to_vec()); // first half
            out.push(v[n - n / 2..].to_vec()); // second half
        }
        if n > 0 {
            let mut without_last = v.to_vec();
            without_last.pop();
            out.push(without_last);
        }
        // Element-wise: replace each position by its first shrink candidate.
        for i in 0..n {
            for candidate in elem(&v[i]) {
                let mut copy = v.to_vec();
                copy[i] = candidate;
                out.push(copy);
            }
        }
        out
    }
}

/// Generation helpers layered over [`Xoshiro256`] for the shapes the
/// workspace's properties draw.
pub mod gen {
    use crate::rng::Xoshiro256;

    /// A vector with uniform length in `[len_lo, len_hi]`, elements from
    /// `element`.
    pub fn vec_with<T>(
        rng: &mut Xoshiro256,
        len_lo: usize,
        len_hi: usize,
        mut element: impl FnMut(&mut Xoshiro256) -> T,
    ) -> Vec<T> {
        let len = rng.range_inclusive(len_lo as u64, len_hi as u64) as usize;
        (0..len).map(|_| element(rng)).collect()
    }

    /// A vector of uniform `u64` in `[lo, hi]`.
    pub fn vec_u64(
        rng: &mut Xoshiro256,
        len_lo: usize,
        len_hi: usize,
        lo: u64,
        hi: u64,
    ) -> Vec<u64> {
        vec_with(rng, len_lo, len_hi, |r| r.range_inclusive(lo, hi))
    }

    /// A vector of uniform `f64` in `[lo, hi)`.
    pub fn vec_f64(
        rng: &mut Xoshiro256,
        len_lo: usize,
        len_hi: usize,
        lo: f64,
        hi: f64,
    ) -> Vec<f64> {
        vec_with(rng, len_lo, len_hi, |r| lo + r.next_f64() * (hi - lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config::with_cases(17);
        let n = run_with_shrink(&cfg, |rng| rng.next_u64(), |_| Vec::new(), |_| Ok(()))
            .expect("property holds");
        assert_eq!(n, 17);
    }

    #[test]
    fn u64_toward_strictly_decreases() {
        let mut v = 1_000_000u64;
        let mut steps = 0;
        while let Some(&next) = shrink::u64_toward(10, v).first() {
            assert!(next < v);
            v = next;
            steps += 1;
            assert!(steps < 100);
        }
        assert_eq!(v, 10);
    }

    #[test]
    fn panics_are_reported_as_failures() {
        let cfg = Config::with_cases(5);
        let r = run_with_shrink(
            &cfg,
            |rng| rng.next_u64(),
            |_| Vec::new(),
            |_| -> Result<(), String> { panic!("boom") },
        );
        let f = r.expect_err("must fail");
        assert!(f.message.contains("boom"), "{}", f.message);
        assert_eq!(f.case_index, 0);
    }
}
