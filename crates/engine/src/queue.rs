//! The discrete-event queue.
//!
//! A thin wrapper over a binary heap keyed by `(time, sequence)`. The
//! sequence number makes the ordering of same-timestamp events the order in
//! which they were scheduled, which is what makes whole simulations
//! deterministic and therefore comparable across configurations.

use crate::time::Ns;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event drawn from the queue: the firing time plus the user payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// Simulated time at which the event fires.
    pub time: Ns,
    /// Scheduling sequence number (unique, monotone).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

struct HeapEntry<E> {
    time: Ns,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// ```
/// use dfly_engine::{EventQueue, Ns};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(Ns(20), "second");
/// q.schedule(Ns(10), "first");
/// q.schedule(Ns(20), "third"); // same time: FIFO by schedule order
/// assert_eq!(q.pop().unwrap().event, "first");
/// assert_eq!(q.pop().unwrap().event, "second");
/// assert_eq!(q.pop().unwrap().event, "third");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
    now: Ns,
    scheduled_total: u64,
    high_water: usize,
    /// `(time, seq)` of the most recently processed event — popped, or
    /// handled out-of-heap via [`EventQueue::advance_to`]. Guards the
    /// reserved-sequence protocol: a reserved seq handed back *after* the
    /// clock passed its slot would fire behind later-seq events of the
    /// same timestamp, silently breaking total order.
    last_key: Option<(Ns, u64)>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Ns::ZERO,
            scheduled_total: 0,
            high_water: 0,
            last_key: None,
        }
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: Ns::ZERO,
            scheduled_total: 0,
            high_water: 0,
            last_key: None,
        }
    }

    /// Schedule `event` to fire at absolute time `time`.
    ///
    /// Panics if `time` is before the current simulation time: causality
    /// violations are always a modelling bug and would otherwise silently
    /// corrupt results.
    pub fn schedule(&mut self, time: Ns, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: t={time:?} < now={:?}",
            self.now
        );
        assert!(self.next_seq != u64::MAX, "event sequence space exhausted");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(HeapEntry { time, seq, event });
        if self.heap.len() > self.high_water {
            self.high_water = self.heap.len();
        }
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: Ns, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Reserve the next sequence number for an event the caller will keep
    /// outside the heap and hand back later via
    /// [`EventQueue::schedule_reserved`] (or process directly after
    /// [`EventQueue::advance_to`]).
    ///
    /// The reservation counts as one scheduled event: the caller is
    /// promising that the event will eventually be processed in `(time,
    /// seq)` order, it just does not need a heap entry yet. This is what
    /// lets per-channel FIFOs hold their tail events out of the heap
    /// without perturbing the global deterministic order.
    pub fn reserve_seq(&mut self) -> u64 {
        assert!(self.next_seq != u64::MAX, "event sequence space exhausted");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        seq
    }

    /// Schedule `event` under a sequence number previously obtained from
    /// [`EventQueue::reserve_seq`].
    ///
    /// Unlike [`EventQueue::schedule`] this allocates no new sequence
    /// number and does not bump the scheduled-event total — the event was
    /// already accounted for when its number was reserved.
    pub fn schedule_reserved(&mut self, time: Ns, seq: u64, event: E) {
        assert!(
            time >= self.now,
            "reserved event scheduled in the past: t={time:?} < now={:?}",
            self.now
        );
        debug_assert!(
            seq < self.next_seq,
            "sequence number {seq} was never reserved"
        );
        // A reserved seq handed back after the clock already processed a
        // later key at the same timestamp would pop *behind* events it
        // should precede — the total (time, seq) order would silently
        // break even though `time >= now` holds.
        debug_assert!(
            self.last_key.is_none_or(|last| (time, seq) > last),
            "reserved event (t={time:?}, seq={seq}) scheduled behind the \
             already-processed key {:?} — equal-timestamp order violated",
            self.last_key
        );
        self.heap.push(HeapEntry { time, seq, event });
        if self.heap.len() > self.high_water {
            self.high_water = self.heap.len();
        }
    }

    /// The `(time, seq)` ordering key of the earliest pending event.
    ///
    /// Lets a caller holding a reserved event decide whether that event
    /// precedes everything in the heap and can be processed directly.
    pub fn peek_key(&self) -> Option<(Ns, u64)> {
        self.heap.peek().map(|e| (e.time, e.seq))
    }

    /// Advance the clock to `time`, marking the reserved event `(time,
    /// seq)` as processed without it ever entering the heap — used when
    /// the caller handles a reserved event directly.
    ///
    /// Panics on a backwards move; debug-asserts that no pending heap
    /// entry precedes `(time, seq)` (skipping one would break causality)
    /// and that the key advances over the last processed event.
    pub fn advance_to(&mut self, time: Ns, seq: u64) {
        assert!(
            time >= self.now,
            "clock moved backwards: t={time:?} < now={:?}",
            self.now
        );
        debug_assert!(seq < self.next_seq, "seq {seq} was never reserved");
        debug_assert!(
            self.peek_key().is_none_or(|key| (time, seq) < key),
            "advance_to(t={time:?}, seq={seq}) would skip a pending heap event"
        );
        debug_assert!(
            self.last_key.is_none_or(|last| (time, seq) > last),
            "advance_to(t={time:?}, seq={seq}) replays an already-processed key"
        );
        self.now = time;
        self.last_key = Some((time, seq));
    }

    /// Pop the earliest event and advance the clock to it.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        debug_assert!(
            self.last_key
                .is_none_or(|last| (entry.time, entry.seq) > last),
            "heap produced a key at or behind the last processed event"
        );
        self.now = entry.time;
        self.last_key = Some((entry.time, entry.seq));
        Some(ScheduledEvent {
            time: entry.time,
            seq: entry.seq,
            event: entry.event,
        })
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Ns> {
        self.heap.peek().map(|e| e.time)
    }

    /// Current simulation time (time of the most recently popped event).
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (a cheap progress metric).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Deepest the queue has ever been (pending events at any instant).
    ///
    /// A memory and churn diagnostic: a dragonfly run's event population
    /// tracks in-flight packets, so the high-water mark exposes injection
    /// bursts that `scheduled_total` averages away.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Ns(30), 3);
        q.schedule(Ns(10), 1);
        q.schedule(Ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_broken_by_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Ns(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Ns(7), ());
        q.schedule(Ns(42), ());
        assert_eq!(q.now(), Ns::ZERO);
        q.pop();
        assert_eq!(q.now(), Ns(7));
        q.pop();
        assert_eq!(q.now(), Ns(42));
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(Ns(100), "a");
        q.pop();
        q.schedule_after(Ns(5), "b");
        let e = q.pop().unwrap();
        assert_eq!(e.time, Ns(105));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Ns(10), ());
        q.pop();
        q.schedule(Ns(5), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Ns(1), ());
        q.schedule(Ns(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        q.schedule(Ns(9), 1);
        q.schedule(Ns(4), 2);
        assert_eq!(q.peek_time(), Some(Ns(4)));
        let e = q.pop().unwrap();
        assert_eq!(e.time, Ns(4));
    }

    #[test]
    fn scheduled_total_counts_everything() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(Ns(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 10);
    }

    #[test]
    fn high_water_tracks_peak_depth() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water(), 0);
        q.schedule(Ns(1), ());
        q.schedule(Ns(2), ());
        q.schedule(Ns(3), ());
        q.pop();
        q.pop();
        // Draining does not lower the mark...
        assert_eq!(q.high_water(), 3);
        q.schedule(Ns(4), ());
        assert_eq!(q.high_water(), 3);
        // ...and only a deeper peak raises it.
        q.schedule(Ns(5), ());
        q.schedule(Ns(6), ());
        assert_eq!(q.high_water(), 4);
    }

    #[test]
    fn reserved_events_keep_schedule_order() {
        // A reserved event interleaved with normal schedules must pop in
        // reservation order, not heap-insertion order.
        let mut q = EventQueue::new();
        q.schedule(Ns(10), "a"); // seq 0
        let seq = q.reserve_seq(); // seq 1
        q.schedule(Ns(10), "c"); // seq 2
        q.schedule_reserved(Ns(10), seq, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn reservation_counts_once_toward_scheduled_total() {
        let mut q = EventQueue::new();
        q.schedule(Ns(1), ());
        let seq = q.reserve_seq();
        assert_eq!(q.scheduled_total(), 2);
        q.schedule_reserved(Ns(2), seq, ());
        assert_eq!(q.scheduled_total(), 2, "late heap insertion double-counted");
    }

    #[test]
    fn peek_key_and_advance_to_support_out_of_heap_events() {
        let mut q = EventQueue::new();
        q.schedule(Ns(10), ());
        let held = q.reserve_seq(); // an event the caller keeps at Ns(5)
        assert_eq!(q.peek_key(), Some((Ns(10), 0)));
        // The held event (Ns(5), seq 1) precedes the heap top, so the
        // caller may process it directly after advancing the clock.
        q.advance_to(Ns(5), held);
        assert_eq!(q.now(), Ns(5));
        let e = q.pop().unwrap();
        assert_eq!(e.time, Ns(10));
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    fn advance_to_rejects_backwards_moves() {
        let mut q = EventQueue::new();
        q.schedule(Ns(10), ());
        let held = q.reserve_seq();
        q.pop();
        q.advance_to(Ns(5), held);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "debug_assert-only guard")]
    #[should_panic(expected = "equal-timestamp order violated")]
    fn stale_reserved_seq_behind_processed_tie_is_caught() {
        // seq 0 is reserved, then two direct events at the same timestamp
        // are scheduled *and processed*. Handing seq 0 back now would make
        // it pop after events it should precede — the exact interleaving
        // the (time, seq) total order exists to forbid.
        let mut q = EventQueue::new();
        let stale = q.reserve_seq(); // seq 0, held at Ns(10)
        q.schedule(Ns(10), "a"); // seq 1
        q.schedule(Ns(10), "b"); // seq 2
        q.pop();
        q.pop();
        q.schedule_reserved(Ns(10), stale, "late");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "debug_assert-only guard")]
    #[should_panic(expected = "replays an already-processed key")]
    fn advance_to_rejects_replayed_keys() {
        let mut q = EventQueue::new();
        let held = q.reserve_seq();
        q.schedule(Ns(10), ());
        q.pop(); // processes (Ns(10), seq 1)
        q.advance_to(Ns(10), held); // seq 0 at the same time: behind it
    }

    #[test]
    #[should_panic(expected = "sequence space exhausted")]
    fn seq_exhaustion_is_detected() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.next_seq = u64::MAX; // simulate 2^64 prior schedules
        q.reserve_seq();
    }

    #[test]
    fn interleaved_schedule_and_pop_is_stable() {
        // Simulates a cascading event pattern: popped events schedule
        // successors (bounded by a budget — an unbounded binary cascade
        // would be 2^50 events). Order must stay strictly causal.
        let mut q = EventQueue::new();
        q.schedule(Ns(0), 0u64);
        let mut last = Ns::ZERO;
        let mut count = 0u64;
        let mut budget = 2_000u64;
        while let Some(e) = q.pop() {
            assert!(e.time >= last);
            last = e.time;
            count += 1;
            if budget > 0 {
                budget -= 1;
                q.schedule_after(Ns(3), e.event + 1);
                q.schedule_after(Ns(1), e.event + 1);
            }
        }
        assert_eq!(count, 2 * 2_000 + 1);
    }
}
