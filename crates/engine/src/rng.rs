//! A self-contained deterministic random number generator.
//!
//! The study's random placement policies, adaptive-routing candidate
//! selection, and synthetic background traffic all consume randomness, and
//! every figure must be reproducible from a seed recorded in its config.
//! Rather than depending on the (version-dependent) stream of an external
//! crate's `SmallRng`, we implement xoshiro256** (Blackman & Vigna) plus
//! SplitMix64 seeding directly — ~40 lines of arithmetic whose output is
//! fixed forever.

/// xoshiro256** generator with SplitMix64 seeding.
///
/// ```
/// use dfly_engine::Xoshiro256;
/// let mut a = Xoshiro256::seed_from(42);
/// let mut b = Xoshiro256::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    /// Seed the generator from a single `u64` via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one forbidden state; SplitMix64 cannot
        // produce four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }

    /// Derive an independent child generator. Used to give every subsystem
    /// (placement, routing, each background rank, ...) its own stream so
    /// adding consumers to one subsystem never perturbs another.
    pub fn split(&mut self, stream_tag: u64) -> Xoshiro256 {
        let mixed = self.next_u64() ^ stream_tag.wrapping_mul(0xA076_1D64_78BD_642F);
        Xoshiro256::seed_from(mixed)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift method
    /// (unbiased, no modulo). Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire rejection loop.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive: lo > hi");
        if lo == hi {
            return lo;
        }
        let span = hi - lo;
        if span == u64::MAX {
            // Full domain: `span + 1` would overflow; every u64 is valid.
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to [0,1]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard-normal sample (Box–Muller; one value per call, the pair's
    /// second half is discarded to keep the consumption pattern simple).
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniformly choose one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.index(slice.len())]
    }

    /// Sample `k` distinct indices from `[0, n)` (partial Fisher–Yates).
    /// Returned order is random. Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        // For small k relative to n use a set-based sampler; otherwise
        // shuffle a full index vector.
        if k * 8 < n {
            let mut seen = std::collections::HashSet::with_capacity(k * 2);
            let mut out = Vec::with_capacity(k);
            while out.len() < k {
                let v = self.index(n);
                if seen.insert(v) {
                    out.push(v);
                }
            }
            out
        } else {
            let mut idx: Vec<usize> = (0..n).collect();
            self.shuffle(&mut idx);
            idx.truncate(k);
            idx
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xoshiro256::seed_from(7);
        let mut b = Xoshiro256::seed_from(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_later_draws() {
        // Drawing more values from a child must not change the parent's
        // subsequent stream relative to a parent that split identically.
        let mut p1 = Xoshiro256::seed_from(99);
        let mut p2 = Xoshiro256::seed_from(99);
        let mut c1 = p1.split(1);
        let mut c2 = p2.split(1);
        let _ = c1.next_u64();
        for _ in 0..10 {
            let _ = c2.next_u64();
        }
        assert_eq!(p1.next_u64(), p2.next_u64());
    }

    #[test]
    fn next_below_in_bounds() {
        let mut r = Xoshiro256::seed_from(3);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut r = Xoshiro256::seed_from(5);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            // expect 10_000 each; allow 5% deviation
            assert!((9_500..10_500).contains(&c), "count {c}");
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = Xoshiro256::seed_from(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match r.range_inclusive(3, 6) {
                3 => lo_seen = true,
                6 => hi_seen = true,
                4 | 5 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
        assert_eq!(r.range_inclusive(9, 9), 9);
    }

    #[test]
    fn range_inclusive_full_domain_does_not_overflow() {
        let mut r = Xoshiro256::seed_from(31);
        // Regression: `hi - lo + 1` used to overflow for the full range.
        let _ = r.range_inclusive(0, u64::MAX);
        let mut saw_large = false;
        for _ in 0..100 {
            if r.range_inclusive(0, u64::MAX) > u64::MAX / 2 {
                saw_large = true;
            }
        }
        assert!(saw_large, "full-domain draws never hit the upper half");
    }

    #[test]
    fn f64_in_unit_interval_with_spread() {
        let mut r = Xoshiro256::seed_from(13);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Xoshiro256::seed_from(17);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seed_from(19);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // It should actually have moved things (astronomically unlikely not to).
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = Xoshiro256::seed_from(23);
        for (n, k) in [(100, 3), (100, 50), (100, 100), (8, 8), (1000, 2)] {
            let s = r.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().copied().collect();
            assert_eq!(set.len(), k, "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Xoshiro256::seed_from(29);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256::seed_from(0).next_below(0);
    }
}
