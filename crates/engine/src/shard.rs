//! Shared-state primitives for conservative time-window PDES.
//!
//! A sharded simulation partitions its state into shards (one per
//! dragonfly group) that only interact across links with a known minimum
//! latency — the *lookahead*. Simulated time is cut into fixed windows of
//! one lookahead each: an event executed inside window `w` can only
//! produce cross-shard effects at or after the start of window `w + 1`,
//! so every shard may process all of window `w` without hearing from its
//! neighbors mid-window. This module holds the three pieces the engine
//! contributes:
//!
//! * [`Windows`] — the window arithmetic (index, start, exclusive end),
//! * [`ShardClock`] — an `AtomicU64` a shard uses to publish its next
//!   pending event time (`IDLE` when it has none), read by the
//!   coordinator to find the global minimum and skip empty windows,
//! * [`Mailbox`] — a mutex-guarded batch slot for the per-directed-edge
//!   exchange of cross-shard records between exactly one producer and
//!   one consumer (SPSC in discipline, `Mutex` in mechanism: each side
//!   touches the lock once per window, so contention is nil).
//!
//! Everything here is `std`-only, per the workspace zero-dependency
//! policy.

use crate::time::Ns;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The published value of a [`ShardClock`] with no pending work.
pub const IDLE: u64 = u64::MAX;

/// Fixed-width window arithmetic over simulated time.
///
/// Window `w` covers `[w * lookahead, (w + 1) * lookahead)`; the end is
/// *exclusive*, so a shard executes window `w` by running its local queue
/// up to and including `end(w) - 1`.
#[derive(Debug, Clone, Copy)]
pub struct Windows {
    lookahead: u64,
}

impl Windows {
    /// Window arithmetic with the given lookahead (the minimum
    /// cross-shard latency). Must be positive — a zero lookahead means
    /// the partition has no conservative window at all.
    pub fn new(lookahead: Ns) -> Windows {
        assert!(lookahead > Ns::ZERO, "PDES lookahead must be positive");
        Windows {
            lookahead: lookahead.as_nanos(),
        }
    }

    /// The lookahead this arithmetic was built with.
    pub fn lookahead(&self) -> Ns {
        Ns(self.lookahead)
    }

    /// Which window the instant `t` falls into.
    pub fn index_of(&self, t: Ns) -> u64 {
        t.as_nanos() / self.lookahead
    }

    /// First instant of window `w`.
    pub fn start(&self, w: u64) -> Ns {
        Ns(w.saturating_mul(self.lookahead))
    }

    /// One past the last instant of window `w` (exclusive end).
    pub fn end(&self, w: u64) -> Ns {
        Ns((w + 1).saturating_mul(self.lookahead))
    }
}

/// A shard's published horizon: the earliest simulated time at which it
/// still has pending work, or [`IDLE`] when it has none.
///
/// The owning shard stores with `Release`, the coordinator reads with
/// `Acquire`; the mpsc window handshake orders the accesses, the atomics
/// make the cross-thread reads well-defined for ThreadSanitizer and the
/// memory model alike.
#[derive(Debug)]
pub struct ShardClock {
    next: AtomicU64,
}

impl ShardClock {
    /// A fresh clock publishing "pending work at time zero" so the first
    /// window is never skipped before the shard's first publish.
    pub fn new() -> ShardClock {
        ShardClock {
            next: AtomicU64::new(0),
        }
    }

    /// Publish the earliest pending event time ([`IDLE`] for none).
    pub fn publish(&self, next: u64) {
        self.next.store(next, Ordering::Release);
    }

    /// Read the published horizon.
    pub fn load(&self) -> u64 {
        self.next.load(Ordering::Acquire)
    }
}

impl Default for ShardClock {
    fn default() -> Self {
        ShardClock::new()
    }
}

/// The minimum over a set of published horizons ([`IDLE`] when every
/// shard is idle).
pub fn min_horizon(clocks: &[ShardClock]) -> u64 {
    clocks.iter().map(|c| c.load()).min().unwrap_or(IDLE)
}

/// A single-producer single-consumer batch slot for cross-shard records.
///
/// The producer appends its whole window's worth of records in one
/// locked call; the consumer drains them in one locked call at the start
/// of its next window. Records are delivered in the order they were
/// pushed.
#[derive(Debug)]
pub struct Mailbox<T> {
    slot: Mutex<Vec<T>>,
}

impl<T> Mailbox<T> {
    /// An empty mailbox.
    pub fn new() -> Mailbox<T> {
        Mailbox {
            slot: Mutex::new(Vec::new()),
        }
    }

    /// Append everything in `batch` (drained, keeping its capacity for
    /// the producer's next window).
    pub fn push_batch(&self, batch: &mut Vec<T>) {
        if batch.is_empty() {
            return;
        }
        self.slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .append(batch);
    }

    /// Drain every pending record into `into`, preserving push order.
    pub fn drain_into(&self, into: &mut Vec<T>) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        into.append(&mut slot);
    }

    /// Whether any records are pending (consumer-side check; exact under
    /// the SPSC discipline once the producer's window has been fenced).
    pub fn is_empty(&self) -> bool {
        self.slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Mailbox::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn window_arithmetic_is_half_open() {
        let w = Windows::new(Ns(1_600));
        assert_eq!(w.index_of(Ns(0)), 0);
        assert_eq!(w.index_of(Ns(1_599)), 0);
        assert_eq!(w.index_of(Ns(1_600)), 1);
        assert_eq!(w.start(3), Ns(4_800));
        assert_eq!(w.end(3), Ns(6_400));
        assert_eq!(w.index_of(w.end(7)), 8, "end is exclusive");
        assert_eq!(w.lookahead(), Ns(1_600));
    }

    #[test]
    #[should_panic(expected = "lookahead must be positive")]
    fn zero_lookahead_is_rejected() {
        let _ = Windows::new(Ns::ZERO);
    }

    #[test]
    fn clock_roundtrips_and_min_horizon_skips_idle() {
        let clocks = [ShardClock::new(), ShardClock::new(), ShardClock::new()];
        assert_eq!(min_horizon(&clocks), 0, "fresh clocks claim time zero");
        clocks[0].publish(IDLE);
        clocks[1].publish(5_000);
        clocks[2].publish(3_200);
        assert_eq!(min_horizon(&clocks), 3_200);
        clocks[1].publish(IDLE);
        clocks[2].publish(IDLE);
        assert_eq!(min_horizon(&clocks), IDLE);
        assert_eq!(min_horizon(&[]), IDLE);
    }

    #[test]
    fn mailbox_preserves_batch_order_and_capacity() {
        let mb = Mailbox::new();
        let mut batch = vec![1, 2, 3];
        mb.push_batch(&mut batch);
        assert!(batch.is_empty());
        assert!(batch.capacity() >= 3, "producer keeps its buffer");
        batch.extend([4, 5]);
        mb.push_batch(&mut batch);
        assert!(!mb.is_empty());
        let mut got = Vec::new();
        mb.drain_into(&mut got);
        assert_eq!(got, [1, 2, 3, 4, 5]);
        assert!(mb.is_empty());
    }

    #[test]
    fn mailbox_hands_batches_across_threads() {
        let mb = Arc::new(Mailbox::new());
        let clock = Arc::new(ShardClock::new());
        let producer = {
            let mb = Arc::clone(&mb);
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || {
                let mut batch = Vec::new();
                for window in 0..100u64 {
                    batch.extend(window * 10..window * 10 + 10);
                    mb.push_batch(&mut batch);
                    clock.publish(window + 1);
                }
                clock.publish(IDLE);
            })
        };
        let mut got = Vec::new();
        while clock.load() != IDLE {
            mb.drain_into(&mut got);
        }
        mb.drain_into(&mut got);
        producer.join().unwrap();
        assert_eq!(got.len(), 1_000);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "order preserved");
    }
}
