//! Simulated time and bandwidth arithmetic.
//!
//! All simulated time is kept in integer nanoseconds. Integer time makes
//! event ordering exact (no float ties) and is plenty of range: `u64`
//! nanoseconds covers ~584 years of simulated time.
//!
//! Bandwidths are stored as bytes/second and converted to durations with
//! round-up integer division, so a transfer never finishes "for free".

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Message/packet sizes in bytes.
pub type Bytes = u64;

/// A point in simulated time (or a duration), in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ns(pub u64);

impl Ns {
    /// Time zero.
    pub const ZERO: Ns = Ns(0);
    /// The maximum representable time; used as an "infinitely far" sentinel.
    pub const MAX: Ns = Ns(u64::MAX);

    /// Construct from whole microseconds.
    pub const fn from_us(us: u64) -> Ns {
        Ns(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_ms(ms: u64) -> Ns {
        Ns(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Ns {
        Ns(s * 1_000_000_000)
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time expressed in (fractional) microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time expressed in (fractional) milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    pub fn saturating_sub(self, rhs: Ns) -> Ns {
        Ns(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, rhs: Ns) -> Option<Ns> {
        self.0.checked_add(rhs.0).map(Ns)
    }

    /// The larger of two times.
    pub fn max(self, rhs: Ns) -> Ns {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two times.
    pub fn min(self, rhs: Ns) -> Ns {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for Ns {
    type Output = Ns;
    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0 + rhs.0)
    }
}

impl AddAssign for Ns {
    fn add_assign(&mut self, rhs: Ns) {
        self.0 += rhs.0;
    }
}

impl Sub for Ns {
    type Output = Ns;
    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0 - rhs.0)
    }
}

impl SubAssign for Ns {
    fn sub_assign(&mut self, rhs: Ns) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ns {
    type Output = Ns;
    fn mul(self, rhs: u64) -> Ns {
        Ns(self.0 * rhs)
    }
}

impl Div<u64> for Ns {
    type Output = Ns;
    fn div(self, rhs: u64) -> Ns {
        Ns(self.0 / rhs)
    }
}

impl Sum for Ns {
    fn sum<I: Iterator<Item = Ns>>(iter: I) -> Ns {
        iter.fold(Ns::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A link bandwidth in bytes per second.
///
/// The paper's Theta configuration uses 16 GiB/s terminal links,
/// 5.25 GiB/s local links, and 4.69 GiB/s global links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth {
    bytes_per_sec: u64,
}

impl Bandwidth {
    /// Construct from bytes per second. Panics on zero (a zero-bandwidth
    /// link would never drain and deadlock the simulation).
    pub fn from_bytes_per_sec(bytes_per_sec: u64) -> Bandwidth {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        Bandwidth { bytes_per_sec }
    }

    /// Construct from binary gibibytes per second, with fractional
    /// resolution of 1/100 GiB/s (enough for the paper's 5.25 / 4.69).
    pub fn from_gib_per_sec_hundredths(hundredths: u64) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(hundredths * (1 << 30) / 100)
    }

    /// Construct from whole GiB/s.
    pub fn from_gib_per_sec(gib: u64) -> Bandwidth {
        Bandwidth::from_gib_per_sec_hundredths(gib * 100)
    }

    /// Raw bytes/second.
    pub fn bytes_per_sec(self) -> u64 {
        self.bytes_per_sec
    }

    /// Time to serialize `bytes` onto this link, rounded up to whole
    /// nanoseconds (a transfer always takes at least 1 ns).
    pub fn serialization_time(self, bytes: Bytes) -> Ns {
        if bytes == 0 {
            return Ns::ZERO;
        }
        // ns = ceil(bytes * 1e9 / bytes_per_sec); u128 avoids overflow for
        // any realistic message size.
        let num = bytes as u128 * 1_000_000_000u128;
        let den = self.bytes_per_sec as u128;
        let ns = num.div_ceil(den);
        Ns((ns as u64).max(1))
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} GiB/s",
            self.bytes_per_sec as f64 / (1u64 << 30) as f64
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_constructors() {
        assert_eq!(Ns::from_us(3).as_nanos(), 3_000);
        assert_eq!(Ns::from_ms(2).as_nanos(), 2_000_000);
        assert_eq!(Ns::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn ns_arithmetic() {
        let a = Ns(100);
        let b = Ns(40);
        assert_eq!(a + b, Ns(140));
        assert_eq!(a - b, Ns(60));
        assert_eq!(a * 3, Ns(300));
        assert_eq!(a / 4, Ns(25));
        assert_eq!(b.saturating_sub(a), Ns::ZERO);
        assert_eq!(a.saturating_sub(b), Ns(60));
    }

    #[test]
    fn ns_min_max() {
        assert_eq!(Ns(5).max(Ns(9)), Ns(9));
        assert_eq!(Ns(5).min(Ns(9)), Ns(5));
    }

    #[test]
    fn ns_sum() {
        let total: Ns = [Ns(1), Ns(2), Ns(3)].into_iter().sum();
        assert_eq!(total, Ns(6));
    }

    #[test]
    fn ns_display_units() {
        assert_eq!(format!("{}", Ns(5)), "5ns");
        assert_eq!(format!("{}", Ns(1_500)), "1.500us");
        assert_eq!(format!("{}", Ns(2_500_000)), "2.500ms");
        assert_eq!(format!("{}", Ns(3_000_000_000)), "3.000s");
    }

    #[test]
    fn ns_as_float_conversions() {
        assert!((Ns(1_000_000).as_ms_f64() - 1.0).abs() < 1e-12);
        assert!((Ns(1_000).as_us_f64() - 1.0).abs() < 1e-12);
        assert!((Ns(1_000_000_000).as_secs_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_serialization_rounds_up() {
        // 1 GiB/s, 1 byte: ceil(1e9 / 2^30) = 1 ns.
        let bw = Bandwidth::from_gib_per_sec(1);
        assert_eq!(bw.serialization_time(1), Ns(1));
        // 2^30 bytes at 1 GiB/s is exactly one second.
        assert_eq!(bw.serialization_time(1 << 30), Ns::from_secs(1));
    }

    #[test]
    fn bandwidth_zero_bytes_is_free() {
        let bw = Bandwidth::from_gib_per_sec(16);
        assert_eq!(bw.serialization_time(0), Ns::ZERO);
    }

    #[test]
    fn bandwidth_theta_values() {
        // Terminal 16 GiB/s: a 4 KiB packet takes ceil(4096e9/(16*2^30)) = 239 ns.
        let term = Bandwidth::from_gib_per_sec(16);
        assert_eq!(term.serialization_time(4096), Ns(239));
        // Local 5.25 GiB/s.
        let local = Bandwidth::from_gib_per_sec_hundredths(525);
        assert_eq!(local.bytes_per_sec(), 525 * (1 << 30) / 100);
        let t = local.serialization_time(4096);
        assert!(t > Ns(700) && t < Ns(740), "got {t}");
        // Global 4.69 GiB/s.
        let global = Bandwidth::from_gib_per_sec_hundredths(469);
        let t = global.serialization_time(4096);
        assert!(t > Ns(790) && t < Ns(830), "got {t}");
    }

    #[test]
    fn bandwidth_monotone_in_bytes() {
        let bw = Bandwidth::from_gib_per_sec_hundredths(469);
        let mut prev = Ns::ZERO;
        for bytes in [1u64, 10, 100, 1_000, 10_000, 100_000, 1_000_000] {
            let t = bw.serialization_time(bytes);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn bandwidth_zero_panics() {
        let _ = Bandwidth::from_bytes_per_sec(0);
    }

    #[test]
    fn bandwidth_display() {
        assert_eq!(
            format!("{}", Bandwidth::from_gib_per_sec(16)),
            "16.00 GiB/s"
        );
        assert_eq!(
            format!("{}", Bandwidth::from_gib_per_sec_hundredths(525)),
            "5.25 GiB/s"
        );
    }
}
