//! Property tests for the engine: total ordering of the event queue and
//! statistical sanity of the RNG under arbitrary seeds.

use dfly_engine::{Bandwidth, EventQueue, Ns, Xoshiro256};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Popping returns events in (time, insertion) order for any schedule.
    #[test]
    fn queue_total_order(times in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Ns(t), i);
        }
        let mut prev_time = Ns::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_time = None;
        while let Some(e) = q.pop() {
            prop_assert!(e.time >= prev_time);
            if last_time == Some(e.time) {
                // FIFO within a timestamp: insertion indices increase.
                prop_assert!(*seen_at_time.last().unwrap() < e.event);
                seen_at_time.push(e.event);
            } else {
                seen_at_time = vec![e.event];
                last_time = Some(e.time);
            }
            prev_time = e.time;
        }
    }

    /// Every scheduled event is popped exactly once.
    #[test]
    fn queue_conservation(times in prop::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Ns(t), i);
        }
        let mut seen = vec![false; times.len()];
        while let Some(e) = q.pop() {
            prop_assert!(!seen[e.event]);
            seen[e.event] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Serialization time is monotone in bytes and antitone in bandwidth.
    #[test]
    fn serialization_monotonicity(
        bytes_a in 1u64..1_000_000,
        delta in 0u64..1_000_000,
        bw_hundredths in 1u64..10_000,
    ) {
        let bw = Bandwidth::from_gib_per_sec_hundredths(bw_hundredths);
        let faster = Bandwidth::from_gib_per_sec_hundredths(bw_hundredths * 2);
        prop_assert!(bw.serialization_time(bytes_a + delta) >= bw.serialization_time(bytes_a));
        prop_assert!(faster.serialization_time(bytes_a) <= bw.serialization_time(bytes_a));
    }

    /// range_inclusive stays in range for arbitrary bounds and seeds.
    #[test]
    fn rng_range_inclusive_in_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000) {
        let mut rng = Xoshiro256::seed_from(seed);
        let hi = lo + span;
        for _ in 0..50 {
            let v = rng.range_inclusive(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }

    /// shuffle preserves multiset membership for arbitrary content.
    #[test]
    fn rng_shuffle_is_permutation(seed in any::<u64>(), mut v in prop::collection::vec(any::<u32>(), 0..100)) {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut original = v.clone();
        rng.shuffle(&mut v);
        original.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(original, v);
    }

    /// split() children with different tags produce different streams.
    #[test]
    fn rng_split_streams_differ(seed in any::<u64>()) {
        let mut parent = Xoshiro256::seed_from(seed);
        let mut a = parent.split(1);
        let mut parent2 = Xoshiro256::seed_from(seed);
        let mut b = parent2.split(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        prop_assert!(same < 4, "streams nearly identical");
    }
}
