//! Property tests for the engine: total ordering of the event queue and
//! statistical sanity of the RNG under arbitrary seeds. Runs on the
//! in-tree harness (`dfly_engine::proptest`) — no external crates.

use dfly_engine::proptest::{check, check_with_shrink, gen, shrink, Config};
use dfly_engine::{Bandwidth, EventQueue, Ns, Xoshiro256};

/// Popping returns events in (time, insertion) order for any schedule.
#[test]
fn queue_total_order() {
    check_with_shrink(
        "queue_total_order",
        &Config::with_cases(64),
        |rng| gen::vec_u64(rng, 1, 300, 0, 9_999),
        |times| shrink::vec(times, |&t| shrink::u64_toward(0, t)),
        |times| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(Ns(t), i);
            }
            let mut prev_time = Ns::ZERO;
            let mut seen_at_time: Vec<usize> = Vec::new();
            let mut last_time = None;
            while let Some(e) = q.pop() {
                if e.time < prev_time {
                    return Err(format!("time went backwards at {:?}", e.time));
                }
                if last_time == Some(e.time) {
                    // FIFO within a timestamp: insertion indices increase.
                    if *seen_at_time.last().unwrap() >= e.event {
                        return Err(format!("FIFO violated at {:?}", e.time));
                    }
                    seen_at_time.push(e.event);
                } else {
                    seen_at_time = vec![e.event];
                    last_time = Some(e.time);
                }
                prev_time = e.time;
            }
            Ok(())
        },
    );
}

/// Every scheduled event is popped exactly once.
#[test]
fn queue_conservation() {
    check_with_shrink(
        "queue_conservation",
        &Config::with_cases(64),
        |rng| gen::vec_u64(rng, 0, 200, 0, 999),
        |times| shrink::vec(times, |&t| shrink::u64_toward(0, t)),
        |times| {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(Ns(t), i);
            }
            let mut seen = vec![false; times.len()];
            while let Some(e) = q.pop() {
                if seen[e.event] {
                    return Err(format!("event {} popped twice", e.event));
                }
                seen[e.event] = true;
            }
            if seen.iter().all(|&s| s) {
                Ok(())
            } else {
                Err("some events never popped".into())
            }
        },
    );
}

/// Serialization time is monotone in bytes and antitone in bandwidth.
#[test]
fn serialization_monotonicity() {
    check(
        "serialization_monotonicity",
        &Config::with_cases(64),
        |rng| {
            (
                rng.range_inclusive(1, 999_999),
                rng.range_inclusive(0, 999_999),
                rng.range_inclusive(1, 9_999),
            )
        },
        |&(bytes_a, delta, bw_hundredths)| {
            let bw = Bandwidth::from_gib_per_sec_hundredths(bw_hundredths);
            let faster = Bandwidth::from_gib_per_sec_hundredths(bw_hundredths * 2);
            if bw.serialization_time(bytes_a + delta) < bw.serialization_time(bytes_a) {
                return Err("more bytes serialized faster".into());
            }
            if faster.serialization_time(bytes_a) > bw.serialization_time(bytes_a) {
                return Err("faster link serialized slower".into());
            }
            Ok(())
        },
    );
}

/// range_inclusive stays in range for arbitrary bounds and seeds.
#[test]
fn rng_range_inclusive_in_bounds() {
    check(
        "rng_range_inclusive_in_bounds",
        &Config::with_cases(64),
        |rng| {
            (
                rng.next_u64(),
                rng.range_inclusive(0, 999),
                rng.range_inclusive(0, 999),
            )
        },
        |&(seed, lo, span)| {
            let mut rng = Xoshiro256::seed_from(seed);
            let hi = lo + span;
            for _ in 0..50 {
                let v = rng.range_inclusive(lo, hi);
                if !(lo..=hi).contains(&v) {
                    return Err(format!("{v} outside [{lo}, {hi}]"));
                }
            }
            Ok(())
        },
    );
}

/// shuffle preserves multiset membership for arbitrary content.
#[test]
fn rng_shuffle_is_permutation() {
    check(
        "rng_shuffle_is_permutation",
        &Config::with_cases(64),
        |rng| {
            let seed = rng.next_u64();
            let v = gen::vec_u64(rng, 0, 100, 0, u64::MAX);
            (seed, v)
        },
        |(seed, v)| {
            let mut rng = Xoshiro256::seed_from(*seed);
            let mut shuffled = v.clone();
            rng.shuffle(&mut shuffled);
            let mut original = v.clone();
            original.sort_unstable();
            shuffled.sort_unstable();
            if original == shuffled {
                Ok(())
            } else {
                Err("shuffle changed the multiset".into())
            }
        },
    );
}

/// split() children with different tags produce different streams.
#[test]
fn rng_split_streams_differ() {
    check(
        "rng_split_streams_differ",
        &Config::with_cases(64),
        |rng| rng.next_u64(),
        |&seed| {
            let mut a = Xoshiro256::seed_from(seed).split(1);
            let mut b = Xoshiro256::seed_from(seed).split(2);
            let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
            if same < 4 {
                Ok(())
            } else {
                Err(format!("streams nearly identical ({same}/32 equal)"))
            }
        },
    );
}

/// The reserved-sequence protocol (per-channel in-flight FIFOs keeping
/// their tails out of the heap) preserves the global (time, seq) total
/// order under arbitrary interleavings of direct schedules, FIFO
/// reservations, and pops — including the inline coalescing path that
/// processes a reserved event via `advance_to` without a heap round-trip.
#[test]
fn queue_reserved_interleaving_total_order() {
    #[derive(Debug)]
    enum Ev {
        Direct,
        FifoHead,
    }
    use std::collections::VecDeque;

    fn process_one(
        q: &mut EventQueue<Ev>,
        fifo: &mut VecDeque<(Ns, u64)>,
        processed: &mut Vec<(Ns, u64)>,
    ) -> Result<(), String> {
        let Some(e) = q.pop() else {
            return Ok(());
        };
        processed.push((e.time, e.seq));
        if matches!(e.event, Ev::FifoHead) {
            let head = fifo.pop_front().ok_or("FIFO marker without an entry")?;
            if head != (e.time, e.seq) {
                return Err(format!(
                    "marker {:?} vs FIFO head {head:?}",
                    (e.time, e.seq)
                ));
            }
            // Exactly the engine's coalescing rule: successors that precede
            // everything in the heap drain inline via advance_to; the first
            // that does not goes back as the head's heap entry.
            while let Some(&next) = fifo.front() {
                if q.peek_key().is_none_or(|key| next < key) {
                    q.advance_to(next.0, next.1);
                    processed.push(next);
                    fifo.pop_front();
                } else {
                    q.schedule_reserved(next.0, next.1, Ev::FifoHead);
                    break;
                }
            }
        }
        Ok(())
    }

    check(
        "queue_reserved_interleaving_total_order",
        &Config::with_cases(64),
        |rng| gen::vec_u64(rng, 1, 400, 0, 999_999),
        |ops| {
            let mut q: EventQueue<Ev> = EventQueue::new();
            let mut fifo: VecDeque<(Ns, u64)> = VecDeque::new();
            let mut processed: Vec<(Ns, u64)> = Vec::new();
            for &op in ops {
                let delay = Ns((op / 4) % 64);
                match op % 4 {
                    0 => q.schedule(q.now() + delay, Ev::Direct),
                    1 => {
                        // Reserved times are monotone within the FIFO, as
                        // serialization times are on a real channel.
                        let t = (q.now() + delay).max(fifo.back().map_or(Ns::ZERO, |&(t, _)| t));
                        let seq = q.reserve_seq();
                        let was_empty = fifo.is_empty();
                        fifo.push_back((t, seq));
                        if was_empty {
                            q.schedule_reserved(t, seq, Ev::FifoHead);
                        }
                    }
                    _ => process_one(&mut q, &mut fifo, &mut processed)?,
                }
            }
            while !q.is_empty() {
                process_one(&mut q, &mut fifo, &mut processed)?;
            }
            if !fifo.is_empty() {
                return Err(format!("{} reserved events never processed", fifo.len()));
            }
            for w in processed.windows(2) {
                if w[1] <= w[0] {
                    return Err(format!("total order violated: {:?} then {:?}", w[0], w[1]));
                }
            }
            Ok(())
        },
    );
}
