//! Tests of the in-tree property-testing harness itself: case counts are
//! respected, failing seeds reproduce the same input, and shrinking
//! converges to the minimal counterexample.

use dfly_engine::proptest::{check, gen, reproduce, run_with_shrink, shrink, Config};
use std::cell::Cell;

fn cfg(cases: u32) -> Config {
    Config {
        cases,
        seed: 0xC0FFEE,
        max_shrink_steps: 1024,
    }
}

#[test]
fn case_count_is_respected() {
    for cases in [1u32, 13, 100] {
        let ran = Cell::new(0u32);
        let n = run_with_shrink(
            &cfg(cases),
            |rng| rng.next_u64(),
            |_| Vec::new(),
            |_| {
                ran.set(ran.get() + 1);
                Ok(())
            },
        )
        .expect("trivial property holds");
        assert_eq!(n, cases);
        assert_eq!(ran.get(), cases);
    }
}

#[test]
fn same_master_seed_gives_identical_case_stream() {
    let observe = || {
        let inputs = std::cell::RefCell::new(Vec::new());
        run_with_shrink(
            &cfg(10),
            |rng| rng.next_u64(),
            |_| Vec::new(),
            |&v| {
                inputs.borrow_mut().push(v);
                Ok(())
            },
        )
        .expect("recording property holds");
        inputs.into_inner()
    };
    assert_eq!(observe(), observe());
}

#[test]
fn failing_seed_reproduces_the_same_input() {
    // Property fails iff value >= 1000; generator draws from a wide range
    // so some case fails quickly.
    let generate = |rng: &mut dfly_engine::Xoshiro256| rng.next_below(1_000_000);
    let prop = |&v: &u64| {
        if v < 1000 {
            Ok(())
        } else {
            Err(format!("{v} too big"))
        }
    };
    let failure = run_with_shrink(&cfg(64), generate, |_| Vec::new(), prop)
        .expect_err("property must fail for most draws");
    // Re-running from the reported seed regenerates a failing input, and
    // (no shrinker was supplied) the exact same one — the failure message
    // embeds the value.
    let msg =
        reproduce(failure.case_seed, generate, prop).expect_err("reported seed must still fail");
    assert_eq!(msg, failure.message);
    // A seed for a passing value passes: 0 draws below 1000 eventually;
    // find one by scanning a few seeds.
    let passing_seed = (0..10_000u64)
        .find(|&s| {
            let v = generate(&mut dfly_engine::Xoshiro256::seed_from(s));
            v < 1000
        })
        .expect("some seed generates a small value");
    assert!(reproduce(passing_seed, generate, prop).is_ok());
}

#[test]
fn integer_shrinking_converges_to_the_boundary() {
    // Fails for v >= 17; minimal counterexample is exactly 17.
    let failure = run_with_shrink(
        &cfg(32),
        |rng| rng.range_inclusive(0, 1_000_000),
        |&v| shrink::u64_toward(0, v),
        |&v| if v < 17 { Ok(()) } else { Err("big".into()) },
    )
    .expect_err("must fail");
    assert_eq!(failure.input, "17", "shrink did not reach the boundary");
    assert!(failure.shrink_steps > 0, "no shrinking happened");
}

#[test]
fn vec_shrinking_removes_irrelevant_elements() {
    // Fails iff the vector contains any element >= 50; the minimal
    // counterexample is the single vector [50].
    let failure = run_with_shrink(
        &cfg(32),
        |rng| gen::vec_u64(rng, 1, 40, 0, 1000),
        |v| shrink::vec(v, |&x| shrink::u64_toward(0, x)),
        |v| {
            if v.iter().any(|&x| x >= 50) {
                Err("contains big element".into())
            } else {
                Ok(())
            }
        },
    )
    .expect_err("must fail: range 0..=1000 mostly exceeds 50");
    assert_eq!(failure.input, "[50]", "not minimal: {}", failure.input);
}

#[test]
fn shrink_step_budget_is_honored() {
    // A shrinker that always offers one smaller failing candidate would
    // descend forever; the budget must stop it.
    let tight = Config {
        cases: 1,
        seed: 1,
        max_shrink_steps: 7,
    };
    let failure = run_with_shrink(
        &tight,
        |_| u64::MAX,
        |&v| if v > 0 { vec![v - 1] } else { vec![] },
        |_| Err::<(), String>("always fails".into()),
    )
    .expect_err("must fail");
    assert_eq!(failure.shrink_steps, 7);
}

#[test]
fn check_panics_with_seed_report() {
    let result = std::panic::catch_unwind(|| {
        check(
            "doomed",
            &cfg(5),
            |rng| rng.next_u64(),
            |_| Err::<(), String>("nope".into()),
        )
    });
    let payload = result.expect_err("check must panic on failure");
    let msg = payload
        .downcast_ref::<String>()
        .expect("panic message is a String");
    assert!(msg.contains("property 'doomed'"), "{msg}");
    assert!(msg.contains("case_seed"), "{msg}");
    assert!(msg.contains("0x"), "no hex seed in: {msg}");
}
