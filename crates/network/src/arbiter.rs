//! Channel arbitration: round-robin virtual-channel selection and the
//! waiter/wakeup protocol for channels blocked on downstream credit.
//!
//! A channel transmits one packet at a time; when it goes idle it scans
//! its VCs round-robin (starting after the last VC served) for a head
//! packet whose next buffer can accept it. If every candidate is blocked,
//! the channel registers as a *waiter* on the first blocking channel and
//! is retried when that channel frees space at its `TxDone`. One
//! registration is enough: a woken channel rescans **all** of its VCs, and
//! every full channel fires `TxDone` eventually (the ascending-VC
//! discipline makes the buffer dependency graph acyclic), so progress is
//! never lost. The `in_waitlist` bit on
//! [`ChannelState`](crate::channel::ChannelState) makes the duplicate
//! check O(1) where the old `waiters.contains` scan was O(#waiters) — on
//! a hot channel under congestion, that list is long exactly when
//! `try_start` runs most often.

use crate::channel::ChannelState;
use crate::packet::MAX_ROUTE_LEN;
use dfly_topology::ChannelId;

/// The VC scan order for one arbitration round: all `MAX_ROUTE_LEN`
/// levels, starting at `start` (the VC after the last one served).
#[inline]
pub(crate) fn rr_scan(start: u8) -> impl Iterator<Item = usize> {
    let start = start as usize;
    (0..MAX_ROUTE_LEN).map(move |k| (start + k) % MAX_ROUTE_LEN)
}

/// Register `waiter` on `blocked_on`'s wait list, unless `waiter` is
/// already parked somewhere. Returns true if it registered.
#[inline]
pub(crate) fn park_waiter(
    channels: &mut [ChannelState],
    blocked_on: ChannelId,
    waiter: ChannelId,
) -> bool {
    if channels[waiter.index()].in_waitlist {
        return false;
    }
    channels[waiter.index()].in_waitlist = true;
    channels[blocked_on.index()].waiters.push(waiter);
    true
}

/// Take every channel parked on `ch`, clearing their `in_waitlist` bits.
/// The caller retries each returned channel (`try_start`), in
/// registration order — FIFO service keeps wakeups deterministic.
pub(crate) fn take_waiters(channels: &mut [ChannelState], ch: ChannelId) -> Vec<ChannelId> {
    let waiters = std::mem::take(&mut channels[ch.index()].waiters);
    for w in &waiters {
        channels[w.index()].in_waitlist = false;
    }
    waiters
}

/// How many `waiters` lists each channel currently appears on. The audit
/// sweep checks this census against the `in_waitlist` bits: a channel is
/// parked on at most one blocker, exactly when its bit is set.
pub(crate) fn waitlist_census(channels: &[ChannelState]) -> Vec<u32> {
    let mut counts = vec![0u32; channels.len()];
    for ch in channels {
        for w in &ch.waiters {
            counts[w.index()] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfly_engine::{Bandwidth, Ns};
    use dfly_topology::ChannelClass;

    fn channels(n: usize) -> Vec<ChannelState> {
        (0..n)
            .map(|_| {
                ChannelState::new(
                    ChannelClass::LocalRow,
                    Bandwidth::from_gib_per_sec(1),
                    Ns(0),
                )
            })
            .collect()
    }

    #[test]
    fn rr_scan_covers_all_vcs_once_from_start() {
        let order: Vec<usize> = rr_scan(3).collect();
        assert_eq!(order.len(), MAX_ROUTE_LEN);
        assert_eq!(order[0], 3);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..MAX_ROUTE_LEN).collect::<Vec<_>>());
    }

    #[test]
    fn park_is_idempotent_while_parked() {
        let mut chs = channels(3);
        assert!(park_waiter(&mut chs, ChannelId(0), ChannelId(2)));
        // Second attempt (even on a different blocker) is a no-op: one
        // wakeup rescans every VC.
        assert!(!park_waiter(&mut chs, ChannelId(1), ChannelId(2)));
        assert_eq!(chs[0].waiters, vec![ChannelId(2)]);
        assert!(chs[1].waiters.is_empty());
    }

    #[test]
    fn take_waiters_clears_bits_and_allows_reparking() {
        let mut chs = channels(4);
        park_waiter(&mut chs, ChannelId(0), ChannelId(2));
        park_waiter(&mut chs, ChannelId(0), ChannelId(3));
        let woken = take_waiters(&mut chs, ChannelId(0));
        assert_eq!(woken, vec![ChannelId(2), ChannelId(3)]);
        assert!(chs[0].waiters.is_empty());
        assert!(!chs[2].in_waitlist && !chs[3].in_waitlist);
        // A woken channel that is still blocked can park again.
        assert!(park_waiter(&mut chs, ChannelId(1), ChannelId(2)));
        assert_eq!(chs[1].waiters, vec![ChannelId(2)]);
    }
}
