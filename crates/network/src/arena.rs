//! Cross-run buffer recycling for parameter sweeps.
//!
//! A sweep builds one [`Network`](crate::Network) per grid cell and
//! tears it down minutes later, which means every cell re-grows the same
//! packet/message arenas, route scratch, delivery queue, and telemetry
//! sample buffers from zero. [`SimArena`] extends PR 4's persistent
//! UGAL-buffer pattern across whole runs: a finished network donates its
//! buffer *capacities* back (via [`Network::recycle`](crate::Network::recycle)),
//! and the next [`Network::with_arena`](crate::Network::with_arena) over
//! the arena starts with warm allocations.
//!
//! Recycling is capacity-only — every buffer is cleared before reuse and
//! arena indices are re-assigned from zero exactly as on a cold start —
//! so runs with and without an arena are bit-identical (the determinism
//! suite runs both paths).

use crate::net::Delivery;
use crate::packet::{MessageId, MessageState, Packet, PacketId};
use dfly_obs::NetSample;
use dfly_topology::ChannelId;
use std::collections::VecDeque;

/// Recycled buffer capacities shared by consecutive simulation runs.
///
/// One arena belongs to one thread of a sweep; it is deliberately not
/// `Sync` — workers each keep their own.
#[derive(Debug, Default)]
pub struct SimArena {
    packets: Vec<Packet>,
    free_packets: Vec<PacketId>,
    messages: Vec<MessageState>,
    free_messages: Vec<MessageId>,
    route_scratch: Vec<ChannelId>,
    router_scratch: Vec<ChannelId>,
    router_best: Vec<ChannelId>,
    deliveries: VecDeque<Delivery>,
    samples: Vec<NetSample>,
    recycled_runs: u64,
}

impl SimArena {
    /// An empty arena; the first run over it allocates cold, every run
    /// after starts warm.
    pub fn new() -> SimArena {
        SimArena::default()
    }

    /// How many networks have donated their buffers back so far.
    pub fn recycled_runs(&self) -> u64 {
        self.recycled_runs
    }

    /// Current packet-arena capacity (diagnostic; shows reuse in tests).
    pub fn packet_capacity(&self) -> usize {
        self.packets.capacity()
    }

    pub(crate) fn take_packets(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.packets)
    }
    pub(crate) fn take_free_packets(&mut self) -> Vec<PacketId> {
        std::mem::take(&mut self.free_packets)
    }
    pub(crate) fn take_messages(&mut self) -> Vec<MessageState> {
        std::mem::take(&mut self.messages)
    }
    pub(crate) fn take_free_messages(&mut self) -> Vec<MessageId> {
        std::mem::take(&mut self.free_messages)
    }
    pub(crate) fn take_route_scratch(&mut self) -> Vec<ChannelId> {
        std::mem::take(&mut self.route_scratch)
    }
    pub(crate) fn take_router_buffers(&mut self) -> (Vec<ChannelId>, Vec<ChannelId>) {
        (
            std::mem::take(&mut self.router_scratch),
            std::mem::take(&mut self.router_best),
        )
    }
    pub(crate) fn take_deliveries(&mut self) -> VecDeque<Delivery> {
        std::mem::take(&mut self.deliveries)
    }
    pub(crate) fn take_sample_buffer(&mut self) -> Vec<NetSample> {
        std::mem::take(&mut self.samples)
    }

    pub(crate) fn put_packets(&mut self, buf: Vec<Packet>) {
        self.packets = buf;
    }
    pub(crate) fn put_free_packets(&mut self, buf: Vec<PacketId>) {
        self.free_packets = buf;
    }
    pub(crate) fn put_messages(&mut self, buf: Vec<MessageState>) {
        self.messages = buf;
    }
    pub(crate) fn put_free_messages(&mut self, buf: Vec<MessageId>) {
        self.free_messages = buf;
    }
    pub(crate) fn put_route_scratch(&mut self, buf: Vec<ChannelId>) {
        self.route_scratch = buf;
    }
    pub(crate) fn put_router_buffers(&mut self, bufs: (Vec<ChannelId>, Vec<ChannelId>)) {
        self.router_scratch = bufs.0;
        self.router_best = bufs.1;
    }
    pub(crate) fn put_deliveries(&mut self, buf: VecDeque<Delivery>) {
        self.deliveries = buf;
    }
    pub(crate) fn put_sample_buffer(&mut self, buf: Vec<NetSample>) {
        self.samples = buf;
    }
    pub(crate) fn note_recycled(&mut self) {
        self.recycled_runs += 1;
    }
}
