//! Shadow-accounting audit layer: proves the packet engine's counters.
//!
//! The engine's hot-path bookkeeping — intrusive packet lists, credit
//! occupancy, the `in_waitlist` bit, saturation intervals — fails
//! *silently*: a leaked packet or a mis-counted VC skews the saturation
//! CDFs without crashing anything. This module keeps an independent
//! shadow copy of every byte movement (CODES ships the same kind of
//! conserved-flit sanity checks) and cross-checks the engine against it:
//!
//! * **after every event** (O(touched state)): the occupancy of each
//!   channel the event touched, its `total_occupancy`, `full_vcs`,
//!   `traffic`, `in_waitlist` bit, and the global queued-bytes gauge all
//!   match the shadow ledger;
//! * **periodically and at drain** (O(whole network)): a full structural
//!   sweep — every intrusive list is walked (cycle-bounded), every live
//!   packet sits in exactly one queue, head/tail agree, per-VC occupancy
//!   equals queued bytes plus in-flight reservations, waitlist membership
//!   is consistent, bytes are conserved per message, and at drain every
//!   buffer is empty and every saturation interval is closed.
//!
//! Violations never panic: they accumulate in an [`AuditReport`]
//! (structured [`AuditViolation`]s with channel/VC/expected/actual/event
//! context) surfaced through `execute_experiment`, so a broken invariant
//! is diagnosable from a test failure or a stress-fuzzer shrink.
//!
//! Auditing only observes — it must never perturb the simulation
//! (`tests/determinism.rs` proves audited runs bit-identical to
//! unaudited ones). It is on by default in debug builds via
//! [`NetworkParams::audit`](crate::params::NetworkParams::audit) and off
//! in release builds.

use crate::channel::{ChannelState, PacketList};
use crate::packet::{MessageId, Packet, PacketId, MAX_ROUTE_LEN};
use dfly_engine::{Bytes, Ns};
use dfly_topology::ChannelId;
use std::collections::VecDeque;
use std::fmt;

/// Run a full structural sweep every this many events (the per-event
/// incremental checks run always).
pub(crate) const FULL_SWEEP_EVERY: u64 = 4096;

/// At most this many violations are recorded verbatim; further ones only
/// bump [`AuditReport::suppressed`] (one broken counter tends to cascade).
pub const MAX_RECORDED_VIOLATIONS: usize = 64;

/// Which engine invariant an [`AuditViolation`] breaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuditKind {
    /// Bytes injected != bytes delivered + bytes resident per message.
    ByteConservation,
    /// A VC's `occupancy` (or a channel's `total_occupancy`, or the
    /// global queued-bytes gauge) disagrees with the shadow ledger.
    VcOccupancy,
    /// Intrusive-list corruption: a `next`-link cycle, a packet in zero
    /// or two queues, head/tail disagreement, or arena state mismatch.
    ListIntegrity,
    /// Waitlist discipline: `in_waitlist` bit vs actual membership on
    /// blockers' `waiters` lists (must be on at most one).
    Waitlist,
    /// Saturation accounting: `full_vcs` vs the count of `full` VC flags,
    /// or an interval still open at drain.
    Saturation,
}

impl AuditKind {
    /// Short stable label (for logs and CSV).
    pub fn label(self) -> &'static str {
        match self {
            AuditKind::ByteConservation => "byte-conservation",
            AuditKind::VcOccupancy => "vc-occupancy",
            AuditKind::ListIntegrity => "list-integrity",
            AuditKind::Waitlist => "waitlist",
            AuditKind::Saturation => "saturation",
        }
    }
}

/// One invariant violation, with enough context to debug it.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditViolation {
    /// Which invariant broke.
    pub kind: AuditKind,
    /// The channel involved, if the violation is channel-scoped.
    pub channel: Option<ChannelId>,
    /// The VC involved, if VC-scoped.
    pub vc: Option<usize>,
    /// What the shadow ledger says the value should be.
    pub expected: u64,
    /// What the engine actually holds.
    pub actual: u64,
    /// Simulated time of the check.
    pub at: Ns,
    /// The event context the check ran under (e.g. `tx_done`, `drain`).
    pub context: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: expected {}, actual {} [{}]",
            self.kind.label(),
            self.expected,
            self.actual,
            self.context
        )?;
        if let Some(ch) = self.channel {
            write!(f, " channel={}", ch.0)?;
        }
        if let Some(vc) = self.vc {
            write!(f, " vc={vc}")?;
        }
        write!(f, " at={}ns", self.at.as_nanos())
    }
}

/// The outcome of an audited run: all recorded violations plus coverage
/// counters. A clean report proves the engine's counters were consistent
/// at every checked point.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Recorded violations, in detection order (capped at
    /// [`MAX_RECORDED_VIOLATIONS`]).
    pub violations: Vec<AuditViolation>,
    /// Violations detected beyond the recording cap.
    pub suppressed: u64,
    /// Events that ran with per-event checks enabled.
    pub events_audited: u64,
    /// Full structural sweeps performed (periodic + drain + on demand).
    pub full_sweeps: u64,
}

impl AuditReport {
    /// True if no violation was detected at all.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit: {} violation(s) ({} suppressed), {} events audited, {} full sweeps",
            self.violations.len(),
            self.suppressed,
            self.events_audited,
            self.full_sweeps
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Where the shadow ledger believes a live packet currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// Arena slot is free (packet delivered or never used).
    Free,
    /// In a source NIC injection queue (node index).
    Nic(u32),
    /// Queued in a channel's VC buffer.
    Queued(ChannelId, u8),
    /// Between `TxDone` and `Arrive`: on the wire, in no queue.
    InFlight,
    /// Shard mode: an imported packet refused at ingress, waiting in the
    /// channel's landing queue for buffer space.
    Landing(ChannelId),
}

/// Shadow state for one arena slot.
#[derive(Debug, Clone, Copy)]
struct PacketShadow {
    loc: Loc,
    /// Downstream space held on the packet's behalf (reserved at
    /// transmission start, converted to queued bytes at enqueue).
    reserved: Option<(ChannelId, u8)>,
    size: u32,
    msg: MessageId,
}

const FREE_SHADOW: PacketShadow = PacketShadow {
    loc: Loc::Free,
    reserved: None,
    size: 0,
    msg: MessageId(0),
};

/// Shadow state for one message slot.
#[derive(Debug, Clone, Copy, Default)]
struct MsgShadow {
    active: bool,
    expected: u64,
    injected: u64,
    delivered: u64,
    /// Bytes that entered this replica from another shard (shard mode).
    imported: u64,
    /// Bytes that left this replica over a global link (shard mode).
    exported: u64,
    live_packets: u32,
}

/// Per-channel shadow counters.
#[derive(Debug, Clone)]
struct ChannelShadow {
    occ: [Bytes; MAX_ROUTE_LEN],
    total: Bytes,
    traffic: Bytes,
    /// The blocker this channel is parked on, if any.
    parked_on: Option<ChannelId>,
}

/// The shadow ledger. Owned by [`Network`](crate::net::Network) when
/// auditing is on; every state transition in the event handlers is
/// mirrored here and cross-checked.
pub(crate) struct Auditor {
    packets: Vec<PacketShadow>,
    messages: Vec<MsgShadow>,
    channels: Vec<ChannelShadow>,
    total_queued: Bytes,
    injected_bytes: u64,
    delivered_bytes: u64,
    /// Shard mode: bytes entering / leaving this replica across shard
    /// boundaries. Zero in serial runs, degenerating the generalized
    /// balance `injected + imported == delivered + exported + resident`
    /// to the classic serial check.
    imported_bytes: u64,
    exported_bytes: u64,
    report: AuditReport,
    events_since_sweep: u64,
    last_drain_at: Option<u64>,
}

impl Auditor {
    /// Fresh ledger for a network with `channels` channels.
    pub(crate) fn new(channels: usize) -> Auditor {
        Auditor {
            packets: Vec::new(),
            messages: Vec::new(),
            channels: vec![
                ChannelShadow {
                    occ: [0; MAX_ROUTE_LEN],
                    total: 0,
                    traffic: 0,
                    parked_on: None,
                };
                channels
            ],
            total_queued: 0,
            injected_bytes: 0,
            delivered_bytes: 0,
            imported_bytes: 0,
            exported_bytes: 0,
            report: AuditReport::default(),
            events_since_sweep: 0,
            last_drain_at: None,
        }
    }

    /// The report accumulated so far.
    pub(crate) fn report(&self) -> &AuditReport {
        &self.report
    }

    fn violate(
        &mut self,
        kind: AuditKind,
        channel: Option<ChannelId>,
        vc: Option<usize>,
        expected: u64,
        actual: u64,
        at: Ns,
        context: &str,
    ) {
        if self.report.violations.len() >= MAX_RECORDED_VIOLATIONS {
            self.report.suppressed += 1;
            return;
        }
        self.report.violations.push(AuditViolation {
            kind,
            channel,
            vc,
            expected,
            actual,
            at,
            context: context.to_string(),
        });
    }

    // ----- lifecycle mirror ------------------------------------------------

    fn packet_mut(&mut self, pid: PacketId) -> &mut PacketShadow {
        let i = pid.0 as usize;
        if i >= self.packets.len() {
            self.packets.resize(i + 1, FREE_SHADOW);
        }
        &mut self.packets[i]
    }

    /// A message's packets are about to enter the source NIC.
    pub(crate) fn on_message_injected(&mut self, msg: MessageId, bytes: Bytes, at: Ns) {
        let i = msg.0 as usize;
        if i >= self.messages.len() {
            self.messages.resize(i + 1, MsgShadow::default());
        }
        if self.messages[i].active {
            self.violate(
                AuditKind::ByteConservation,
                None,
                None,
                0,
                1,
                at,
                "message slot recycled while live",
            );
        }
        self.messages[i] = MsgShadow {
            active: true,
            expected: bytes.max(1), // zero-byte messages carry a header byte
            injected: 0,
            delivered: 0,
            imported: 0,
            exported: 0,
            live_packets: 0,
        };
    }

    /// Shard mode: a message slot materialized for remotely injected
    /// traffic (a destination-side delivery shadow, or a per-packet
    /// transit shadow). Its bytes arrive via imports, never injections.
    pub(crate) fn on_remote_message(&mut self, msg: MessageId, expected: u64, at: Ns) {
        let i = msg.0 as usize;
        if i >= self.messages.len() {
            self.messages.resize(i + 1, MsgShadow::default());
        }
        if self.messages[i].active {
            self.violate(
                AuditKind::ByteConservation,
                None,
                None,
                0,
                1,
                at,
                "message slot recycled while live",
            );
        }
        self.messages[i] = MsgShadow {
            active: true,
            expected,
            injected: 0,
            delivered: 0,
            imported: 0,
            exported: 0,
            live_packets: 0,
        };
    }

    /// One packet of `msg` entered node `node`'s NIC queue.
    pub(crate) fn on_packet_injected(
        &mut self,
        pid: PacketId,
        msg: MessageId,
        size: u32,
        node: u32,
        at: Ns,
    ) {
        let prior = self.packet_mut(pid).loc;
        if prior != Loc::Free {
            self.violate(
                AuditKind::ListIntegrity,
                None,
                None,
                0,
                1,
                at,
                "packet slot reused while live",
            );
        }
        *self.packet_mut(pid) = PacketShadow {
            loc: Loc::Nic(node),
            reserved: None,
            size,
            msg,
        };
        self.injected_bytes += size as u64;
        let m = &mut self.messages[msg.0 as usize];
        m.injected += size as u64;
        m.live_packets += 1;
    }

    /// A packet moved from the NIC into the terminal-up VC0 buffer.
    pub(crate) fn on_nic_to_vc(&mut self, pid: PacketId, node: u32, ch: ChannelId, at: Ns) {
        let p = self.packet_mut(pid);
        let size = p.size as u64;
        if p.loc != Loc::Nic(node) {
            let loc = p.loc;
            self.violate(
                AuditKind::ListIntegrity,
                Some(ch),
                Some(0),
                0,
                1,
                at,
                &format!("nic pop of packet not in NIC (shadow {loc:?})"),
            );
        }
        self.packet_mut(pid).loc = Loc::Queued(ch, 0);
        let cs = &mut self.channels[ch.index()];
        cs.occ[0] += size;
        cs.total += size;
        self.total_queued += size;
    }

    /// Downstream space was reserved at transmission start.
    pub(crate) fn on_reserve(&mut self, pid: PacketId, ch: ChannelId, vc: usize, at: Ns) {
        let p = self.packet_mut(pid);
        let size = p.size as u64;
        if p.reserved.is_some() {
            self.violate(
                AuditKind::VcOccupancy,
                Some(ch),
                Some(vc),
                0,
                1,
                at,
                "double reservation for one packet",
            );
        }
        self.packet_mut(pid).reserved = Some((ch, vc as u8));
        let cs = &mut self.channels[ch.index()];
        cs.occ[vc] += size;
        cs.total += size;
        self.total_queued += size;
    }

    /// A channel started serializing the head packet of VC `vc`.
    pub(crate) fn on_tx_start(&mut self, pid: PacketId, ch: ChannelId, vc: usize, at: Ns) {
        let p = self.packet_mut(pid);
        let size = p.size as u64;
        if p.loc != Loc::Queued(ch, vc as u8) {
            let loc = p.loc;
            self.violate(
                AuditKind::ListIntegrity,
                Some(ch),
                Some(vc),
                0,
                1,
                at,
                &format!("tx start of packet not queued here (shadow {loc:?})"),
            );
        }
        self.channels[ch.index()].traffic += size;
    }

    /// The packet's last byte left `ch`; it is now on the wire.
    pub(crate) fn on_tx_done(&mut self, pid: PacketId, ch: ChannelId, vc: usize, at: Ns) {
        let p = self.packet_mut(pid);
        let size = p.size as u64;
        if p.loc != Loc::Queued(ch, vc as u8) {
            let loc = p.loc;
            self.violate(
                AuditKind::ListIntegrity,
                Some(ch),
                Some(vc),
                0,
                1,
                at,
                &format!("tx done for packet not queued here (shadow {loc:?})"),
            );
        }
        self.packet_mut(pid).loc = Loc::InFlight;
        let (occ_v, total) = {
            let cs = &self.channels[ch.index()];
            (cs.occ[vc], cs.total)
        };
        if occ_v < size || total < size || self.total_queued < size {
            self.violate(
                AuditKind::VcOccupancy,
                Some(ch),
                Some(vc),
                size,
                occ_v.min(total),
                at,
                "occupancy release underflow",
            );
            return;
        }
        let cs = &mut self.channels[ch.index()];
        cs.occ[vc] -= size;
        cs.total -= size;
        self.total_queued -= size;
    }

    /// The packet landed in its (previously reserved) next buffer.
    pub(crate) fn on_enqueue(&mut self, pid: PacketId, ch: ChannelId, vc: usize, at: Ns) {
        let p = *self.packet_mut(pid);
        if p.loc != Loc::InFlight {
            let loc = p.loc;
            self.violate(
                AuditKind::ListIntegrity,
                Some(ch),
                Some(vc),
                0,
                1,
                at,
                &format!("enqueue of packet not in flight (shadow {loc:?})"),
            );
        }
        if p.reserved != Some((ch, vc as u8)) {
            let r = p.reserved;
            self.violate(
                AuditKind::VcOccupancy,
                Some(ch),
                Some(vc),
                0,
                1,
                at,
                &format!("enqueue without matching reservation (shadow {r:?})"),
            );
        }
        let p = self.packet_mut(pid);
        p.loc = Loc::Queued(ch, vc as u8);
        p.reserved = None;
        // Occupancy already counted at reservation time: no byte moves.
    }

    /// The packet reached its destination node.
    pub(crate) fn on_delivered(&mut self, pid: PacketId, msg: MessageId, at: Ns) {
        let p = *self.packet_mut(pid);
        let size = p.size as u64;
        if p.loc != Loc::InFlight {
            let loc = p.loc;
            self.violate(
                AuditKind::ListIntegrity,
                None,
                None,
                0,
                1,
                at,
                &format!("delivery of packet not in flight (shadow {loc:?})"),
            );
        }
        if p.reserved.is_some() {
            self.violate(
                AuditKind::VcOccupancy,
                None,
                None,
                0,
                1,
                at,
                "delivered packet still holds a reservation",
            );
        }
        if p.msg != msg {
            self.violate(
                AuditKind::ListIntegrity,
                None,
                None,
                p.msg.0,
                msg.0,
                at,
                "delivered packet's owning message diverged from shadow",
            );
        }
        *self.packet_mut(pid) = FREE_SHADOW;
        self.delivered_bytes += size;
        let m = &mut self.messages[msg.0 as usize];
        m.delivered += size;
        m.live_packets = m.live_packets.saturating_sub(1);
    }

    /// The message's last packet was delivered. The balance generalizes
    /// the serial `injected == delivered == expected` check to shard
    /// mode, where a slot's bytes may arrive as imports (destination
    /// shadow) and detour exports return as imports (same-group Valiant):
    /// every byte in equals every byte out.
    pub(crate) fn on_message_complete(&mut self, msg: MessageId, at: Ns) {
        let m = self.messages[msg.0 as usize];
        if m.delivered != m.expected || m.injected + m.imported != m.delivered + m.exported {
            self.violate(
                AuditKind::ByteConservation,
                None,
                None,
                m.expected,
                m.delivered,
                at,
                &format!(
                    "message {} bytes not conserved (injected {}, imported {}, exported {})",
                    msg.0, m.injected, m.imported, m.exported
                ),
            );
        }
        if m.live_packets != 0 {
            self.violate(
                AuditKind::ByteConservation,
                None,
                None,
                0,
                m.live_packets as u64,
                at,
                &format!("message {} completed with live packets", msg.0),
            );
        }
        self.messages[msg.0 as usize].active = false;
    }

    /// Shard mode: a `Forwarding` or `Transit` slot closed because its
    /// last packet left over a global link. Nothing may have delivered
    /// locally, and everything that entered must have left.
    pub(crate) fn on_message_closed(&mut self, msg: MessageId, at: Ns) {
        let m = self.messages[msg.0 as usize];
        if m.delivered != 0 || m.injected + m.imported != m.exported {
            self.violate(
                AuditKind::ByteConservation,
                None,
                None,
                m.injected + m.imported,
                m.exported + m.delivered,
                at,
                &format!("forwarded message {} bytes not conserved", msg.0),
            );
        }
        if m.live_packets != 0 {
            self.violate(
                AuditKind::ByteConservation,
                None,
                None,
                0,
                m.live_packets as u64,
                at,
                &format!("forwarded message {} closed with live packets", msg.0),
            );
        }
        self.messages[msg.0 as usize].active = false;
    }

    // ----- shard-boundary mirror -------------------------------------------

    /// Shard mode: a packet materialized from another replica's wire
    /// record. It is "on the wire" until its import event fires.
    pub(crate) fn on_packet_imported(&mut self, pid: PacketId, msg: MessageId, size: u32, at: Ns) {
        let prior = self.packet_mut(pid).loc;
        if prior != Loc::Free {
            self.violate(
                AuditKind::ListIntegrity,
                None,
                None,
                0,
                1,
                at,
                "packet slot reused while live",
            );
        }
        *self.packet_mut(pid) = PacketShadow {
            loc: Loc::InFlight,
            reserved: None,
            size,
            msg,
        };
        self.imported_bytes += size as u64;
        let m = &mut self.messages[msg.0 as usize];
        m.imported += size as u64;
        m.live_packets += 1;
    }

    /// Shard mode: a packet's last byte cleared a global channel and the
    /// packet left this replica as a wire record.
    pub(crate) fn on_exported(&mut self, pid: PacketId, msg: MessageId, at: Ns) {
        let p = *self.packet_mut(pid);
        let size = p.size as u64;
        if p.loc != Loc::InFlight {
            let loc = p.loc;
            self.violate(
                AuditKind::ListIntegrity,
                None,
                None,
                0,
                1,
                at,
                &format!("export of packet not in flight (shadow {loc:?})"),
            );
        }
        if p.reserved.is_some() {
            self.violate(
                AuditKind::VcOccupancy,
                None,
                None,
                0,
                1,
                at,
                "exported packet still holds a reservation",
            );
        }
        if p.msg != msg {
            self.violate(
                AuditKind::ListIntegrity,
                None,
                None,
                p.msg.0,
                msg.0,
                at,
                "exported packet's owning message diverged from shadow",
            );
        }
        *self.packet_mut(pid) = FREE_SHADOW;
        self.exported_bytes += size;
        let m = &mut self.messages[msg.0 as usize];
        m.exported += size;
        m.live_packets = m.live_packets.saturating_sub(1);
    }

    /// Shard mode: an imported packet entered a VC buffer directly — no
    /// reservation exists, the bytes appear in the books here.
    pub(crate) fn on_ingress_enqueue(&mut self, pid: PacketId, ch: ChannelId, vc: usize, at: Ns) {
        let p = *self.packet_mut(pid);
        let size = p.size as u64;
        if p.loc != Loc::InFlight {
            let loc = p.loc;
            self.violate(
                AuditKind::ListIntegrity,
                Some(ch),
                Some(vc),
                0,
                1,
                at,
                &format!("ingress enqueue of packet not in flight (shadow {loc:?})"),
            );
        }
        if p.reserved.is_some() {
            self.violate(
                AuditKind::VcOccupancy,
                Some(ch),
                Some(vc),
                0,
                1,
                at,
                "ingress enqueue with a reservation held",
            );
        }
        let ps = self.packet_mut(pid);
        ps.loc = Loc::Queued(ch, vc as u8);
        let cs = &mut self.channels[ch.index()];
        cs.occ[vc] += size;
        cs.total += size;
        self.total_queued += size;
    }

    /// Shard mode: an import was refused at ingress and parked in the
    /// channel's landing queue (holds no buffer occupancy).
    pub(crate) fn on_landing(&mut self, pid: PacketId, ch: ChannelId, at: Ns) {
        let p = self.packet_mut(pid);
        if p.loc != Loc::InFlight {
            let loc = p.loc;
            self.violate(
                AuditKind::ListIntegrity,
                Some(ch),
                None,
                0,
                1,
                at,
                &format!("landing of packet not in flight (shadow {loc:?})"),
            );
        }
        self.packet_mut(pid).loc = Loc::Landing(ch);
    }

    /// Shard mode: a landed import was admitted into a VC buffer.
    pub(crate) fn on_landing_to_vc(&mut self, pid: PacketId, ch: ChannelId, vc: usize, at: Ns) {
        let p = *self.packet_mut(pid);
        let size = p.size as u64;
        if p.loc != Loc::Landing(ch) {
            let loc = p.loc;
            self.violate(
                AuditKind::ListIntegrity,
                Some(ch),
                Some(vc),
                0,
                1,
                at,
                &format!("vc admission of packet not landed here (shadow {loc:?})"),
            );
        }
        self.packet_mut(pid).loc = Loc::Queued(ch, vc as u8);
        let cs = &mut self.channels[ch.index()];
        cs.occ[vc] += size;
        cs.total += size;
        self.total_queued += size;
    }

    /// A blocked channel tried to park on `blocker`'s wait list.
    pub(crate) fn on_park(
        &mut self,
        waiter: ChannelId,
        blocker: ChannelId,
        registered: bool,
        at: Ns,
    ) {
        let parked = self.channels[waiter.index()].parked_on;
        if registered {
            if parked.is_some() {
                self.violate(
                    AuditKind::Waitlist,
                    Some(waiter),
                    None,
                    0,
                    1,
                    at,
                    "registered on a second blocker while parked",
                );
            }
            self.channels[waiter.index()].parked_on = Some(blocker);
        } else if parked.is_none() {
            self.violate(
                AuditKind::Waitlist,
                Some(waiter),
                None,
                1,
                0,
                at,
                "park refused but shadow says not parked",
            );
        }
    }

    /// `blocker` freed space and woke every parked channel.
    pub(crate) fn on_wake(&mut self, blocker: ChannelId, waiters: &[ChannelId], at: Ns) {
        for &w in waiters {
            if self.channels[w.index()].parked_on != Some(blocker) {
                self.violate(
                    AuditKind::Waitlist,
                    Some(w),
                    None,
                    blocker.0 as u64,
                    self.channels[w.index()]
                        .parked_on
                        .map_or(u64::MAX, |c| c.0 as u64),
                    at,
                    "woken from a blocker the shadow never parked it on",
                );
            }
            self.channels[w.index()].parked_on = None;
        }
    }

    // ----- incremental checks ---------------------------------------------

    /// O(VCs) consistency check of one channel the last event touched.
    pub(crate) fn check_channel(
        &mut self,
        id: ChannelId,
        ch: &ChannelState,
        engine_total_queued: Bytes,
        at: Ns,
        context: &str,
    ) {
        let shadow = self.channels[id.index()].clone();
        for (vc, s) in ch.vcs.iter().enumerate() {
            if s.occupancy != shadow.occ[vc] {
                self.violate(
                    AuditKind::VcOccupancy,
                    Some(id),
                    Some(vc),
                    shadow.occ[vc],
                    s.occupancy,
                    at,
                    context,
                );
            }
        }
        if ch.total_occupancy != shadow.total {
            self.violate(
                AuditKind::VcOccupancy,
                Some(id),
                None,
                shadow.total,
                ch.total_occupancy,
                at,
                context,
            );
        }
        if ch.traffic != shadow.traffic {
            self.violate(
                AuditKind::VcOccupancy,
                Some(id),
                None,
                shadow.traffic,
                ch.traffic,
                at,
                &format!("{context} (traffic counter)"),
            );
        }
        let full_count = ch.vcs.iter().filter(|v| v.full).count() as u64;
        if ch.full_vcs as u64 != full_count {
            self.violate(
                AuditKind::Saturation,
                Some(id),
                None,
                full_count,
                ch.full_vcs as u64,
                at,
                context,
            );
        }
        if ch.in_waitlist != shadow.parked_on.is_some() {
            self.violate(
                AuditKind::Waitlist,
                Some(id),
                None,
                shadow.parked_on.is_some() as u64,
                ch.in_waitlist as u64,
                at,
                context,
            );
        }
        if engine_total_queued != self.total_queued {
            self.violate(
                AuditKind::VcOccupancy,
                None,
                None,
                self.total_queued,
                engine_total_queued,
                at,
                &format!("{context} (global queued-bytes gauge)"),
            );
        }
    }

    /// Count one audited event; true when a periodic full sweep is due.
    pub(crate) fn note_event(&mut self) -> bool {
        self.report.events_audited += 1;
        self.events_since_sweep += 1;
        self.events_since_sweep >= FULL_SWEEP_EVERY
    }

    /// A drain sweep is only worth repeating after new events; returns
    /// true at most once per `events_processed` value.
    pub(crate) fn drain_pending(&mut self, events_processed: u64) -> bool {
        if self.last_drain_at == Some(events_processed) {
            return false;
        }
        self.last_drain_at = Some(events_processed);
        true
    }

    // ----- full structural sweep ------------------------------------------

    /// Walk every structure in the network and cross-check it against the
    /// shadow ledger. With `drained` set, additionally require the
    /// fully-drained postconditions (empty buffers, conserved bytes,
    /// closed saturation intervals, empty wait lists).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn full_sweep(
        &mut self,
        channels: &[ChannelState],
        nic: &[PacketList],
        packets: &[Packet],
        free_packets: &[PacketId],
        landing: &[VecDeque<PacketId>],
        engine_total_queued: Bytes,
        at: Ns,
        drained: bool,
    ) {
        self.report.full_sweeps += 1;
        self.events_since_sweep = 0;
        let n = packets.len();
        let mut visited = vec![false; n];
        // Aggregate in-flight reservations per (channel, VC): a VC's
        // engine occupancy must equal its queued bytes plus these.
        let mut reserved = vec![[0u64; MAX_ROUTE_LEN]; channels.len()];
        for ps in self.packets.iter() {
            if ps.loc != Loc::Free {
                if let Some((c, v)) = ps.reserved {
                    reserved[c.index()][v as usize] += ps.size as u64;
                }
            }
        }
        let ctx = if drained { "drain" } else { "full sweep" };

        // Every VC queue: walk, occupancy, head/tail, membership.
        for (ci, ch) in channels.iter().enumerate() {
            let id = ChannelId(ci as u32);
            for vc in 0..MAX_ROUTE_LEN {
                let queued = self.walk_list(
                    &ch.vcs[vc].queue,
                    packets,
                    &mut visited,
                    Loc::Queued(id, vc as u8),
                    Some(id),
                    Some(vc),
                    at,
                    ctx,
                );
                let expect = queued + reserved[ci][vc];
                if ch.vcs[vc].occupancy != expect {
                    self.violate(
                        AuditKind::VcOccupancy,
                        Some(id),
                        Some(vc),
                        expect,
                        ch.vcs[vc].occupancy,
                        at,
                        &format!("{ctx}: occupancy != queued + reserved"),
                    );
                }
            }
            self.check_channel(id, ch, engine_total_queued, at, ctx);
            if drained {
                if ch.total_occupancy != 0 {
                    self.violate(
                        AuditKind::VcOccupancy,
                        Some(id),
                        None,
                        0,
                        ch.total_occupancy,
                        at,
                        "drain: buffer not empty",
                    );
                }
                if ch.full_vcs != 0 {
                    self.violate(
                        AuditKind::Saturation,
                        Some(id),
                        None,
                        0,
                        ch.full_vcs as u64,
                        at,
                        "drain: saturation interval still open",
                    );
                }
                if !ch.waiters.is_empty() || ch.in_waitlist || ch.busy {
                    self.violate(
                        AuditKind::Waitlist,
                        Some(id),
                        None,
                        0,
                        ch.waiters.len() as u64 + ch.in_waitlist as u64 + ch.busy as u64,
                        at,
                        "drain: waiters/in_waitlist/busy not cleared",
                    );
                }
            }
        }

        // NIC queues.
        for (node, list) in nic.iter().enumerate() {
            self.walk_list(
                list,
                packets,
                &mut visited,
                Loc::Nic(node as u32),
                None,
                None,
                at,
                ctx,
            );
        }

        // Landing queues (shard mode; the slice is empty in serial runs).
        for (ci, q) in landing.iter().enumerate() {
            let id = ChannelId(ci as u32);
            for &pid in q {
                let i = pid.0 as usize;
                if i < n {
                    if visited[i] {
                        self.report_list(at, ctx, "landing packet also in a queue");
                    }
                    visited[i] = true;
                }
                let shadow = self.packets.get(i).copied().unwrap_or(FREE_SHADOW);
                if shadow.loc != Loc::Landing(id) {
                    self.report_list(at, ctx, "landing queue membership mismatch");
                }
            }
            if drained && !q.is_empty() {
                self.violate(
                    AuditKind::ListIntegrity,
                    Some(id),
                    None,
                    0,
                    q.len() as u64,
                    at,
                    "drain: landing queue not empty",
                );
            }
        }

        // Waitlist census: membership across all `waiters` lists must
        // match the `in_waitlist` bits and the shadow's parked state.
        let census = crate::arbiter::waitlist_census(channels);
        for (ci, &count) in census.iter().enumerate() {
            let id = ChannelId(ci as u32);
            let expected = channels[ci].in_waitlist as u64;
            if count as u64 != expected || count > 1 {
                self.violate(
                    AuditKind::Waitlist,
                    Some(id),
                    None,
                    expected,
                    count as u64,
                    at,
                    &format!("{ctx}: waiters membership vs in_waitlist bit"),
                );
            }
            if (self.channels[ci].parked_on.is_some()) != channels[ci].in_waitlist {
                self.violate(
                    AuditKind::Waitlist,
                    Some(id),
                    None,
                    self.channels[ci].parked_on.is_some() as u64,
                    channels[ci].in_waitlist as u64,
                    at,
                    &format!("{ctx}: shadow parked state vs in_waitlist bit"),
                );
            }
        }

        // Every live shadow packet is either in exactly the one queue we
        // walked it in, or in flight (in no queue). Free slots must not
        // appear in any queue.
        let mut live_bytes = 0u64;
        for i in 0..self.packets.len() {
            let ps = self.packets[i];
            match ps.loc {
                // A free slot appearing in a queue is recorded during the
                // walk itself as a membership mismatch.
                Loc::Free => {}
                Loc::InFlight => {
                    live_bytes += ps.size as u64;
                    if i < n && visited[i] {
                        self.report_list(at, ctx, "in-flight packet found in a queue");
                    }
                }
                Loc::Nic(_) | Loc::Queued(..) | Loc::Landing(_) => {
                    live_bytes += ps.size as u64;
                    if i >= n || !visited[i] {
                        self.report_list(at, ctx, "shadow-live packet in no queue (leak)");
                    }
                }
            }
        }

        // Free-list agreement: every free-list entry must be shadow-free.
        for &pid in free_packets {
            let i = pid.0 as usize;
            if i < self.packets.len() && self.packets[i].loc != Loc::Free {
                self.report_list(at, ctx, "free-list entry still live in shadow");
            }
        }

        // Byte conservation, network-wide. In serial runs imported and
        // exported are zero and this is the classic
        // `injected == delivered + resident`.
        let resident = live_bytes;
        if self.injected_bytes + self.imported_bytes
            != self.delivered_bytes + self.exported_bytes + resident
        {
            self.violate(
                AuditKind::ByteConservation,
                None,
                None,
                self.injected_bytes + self.imported_bytes,
                self.delivered_bytes + self.exported_bytes + resident,
                at,
                &format!("{ctx}: injected + imported != delivered + exported + resident"),
            );
        }
        if drained {
            if resident != 0 {
                self.violate(
                    AuditKind::ByteConservation,
                    None,
                    None,
                    0,
                    resident,
                    at,
                    "drain: live packets remain",
                );
            }
            let stuck = self
                .messages
                .iter()
                .enumerate()
                .find(|(_, m)| m.active)
                .map(|(i, m)| (i, *m));
            if let Some((mi, m)) = stuck {
                // One is enough to flag; the rest cascade.
                self.violate(
                    AuditKind::ByteConservation,
                    None,
                    None,
                    m.expected,
                    m.delivered,
                    at,
                    &format!("drain: message {mi} never completed"),
                );
            }
            if engine_total_queued != 0 {
                self.violate(
                    AuditKind::VcOccupancy,
                    None,
                    None,
                    0,
                    engine_total_queued,
                    at,
                    "drain: queued-bytes gauge not zero",
                );
            }
        }
    }

    fn report_list(&mut self, at: Ns, ctx: &str, what: &str) {
        self.violate(
            AuditKind::ListIntegrity,
            None,
            None,
            0,
            1,
            at,
            &format!("{ctx}: {what}"),
        );
    }

    /// Walk one intrusive list, bounded against cycles; verifies shadow
    /// membership, exactly-once visitation, and head/tail agreement.
    /// Returns the sum of visited packet sizes.
    #[allow(clippy::too_many_arguments)]
    fn walk_list(
        &mut self,
        list: &PacketList,
        packets: &[Packet],
        visited: &mut [bool],
        want: Loc,
        channel: Option<ChannelId>,
        vc: Option<usize>,
        at: Ns,
        ctx: &str,
    ) -> u64 {
        let n = packets.len();
        let mut sum = 0u64;
        let mut count = 0usize;
        let mut last = None;
        for pid in list.iter(packets) {
            count += 1;
            if count > n {
                self.violate(
                    AuditKind::ListIntegrity,
                    channel,
                    vc,
                    n as u64,
                    count as u64,
                    at,
                    &format!("{ctx}: next-link cycle"),
                );
                return sum;
            }
            let i = pid.0 as usize;
            if visited[i] {
                self.violate(
                    AuditKind::ListIntegrity,
                    channel,
                    vc,
                    1,
                    2,
                    at,
                    &format!("{ctx}: packet {} in two queues", pid.0),
                );
            }
            visited[i] = true;
            let engine_size = packets[i].size as u64;
            sum += engine_size;
            let shadow = self.packets.get(i).copied().unwrap_or(FREE_SHADOW);
            if shadow.loc != want {
                self.violate(
                    AuditKind::ListIntegrity,
                    channel,
                    vc,
                    0,
                    1,
                    at,
                    &format!(
                        "{ctx}: queue membership mismatch (shadow {:?}, walked {want:?})",
                        shadow.loc
                    ),
                );
            } else if shadow.size as u64 != engine_size {
                self.violate(
                    AuditKind::ListIntegrity,
                    channel,
                    vc,
                    shadow.size as u64,
                    engine_size,
                    at,
                    &format!("{ctx}: packet size diverged from shadow"),
                );
            }
            last = Some(pid);
        }
        if !list.tail_agrees(last) {
            self.violate(
                AuditKind::ListIntegrity,
                channel,
                vc,
                last.map_or(u64::MAX, |p| p.0 as u64),
                u64::MAX,
                at,
                &format!("{ctx}: head/tail disagree"),
            );
        }
        sum
    }
}
