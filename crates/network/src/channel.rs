//! Per-channel state: virtual-channel buffers, credit/occupancy
//! bookkeeping, and full-interval (saturation) accounting.
//!
//! A VC buffer is an intrusive FIFO over the network's packet arena: the
//! queue itself is just a head/tail pair of arena indices, and each
//! [`Packet`](crate::packet::Packet) carries the index of the packet
//! behind it. A packet sits in at most one queue at a time (its current
//! channel's VC, or the source NIC), so one link per packet suffices.
//! Compared to the previous `VecDeque<PacketId>` per VC, this removes
//! `MAX_ROUTE_LEN` heap allocations per channel (thousands of channels x
//! twelve VCs on the Theta machine) and the pointer chase per operation —
//! push, pop, and front are all O(1) on the arena the event loop already
//! has hot.

use crate::packet::{Packet, PacketId, MAX_ROUTE_LEN, NO_PACKET};
use dfly_engine::{Bandwidth, Bytes, Ns};
use dfly_topology::{ChannelClass, ChannelId};
use std::collections::VecDeque;

/// One packet in flight on a channel's wire: it left the transmitter
/// earlier and lands in its next buffer (or delivers) at `at`, ordered
/// globally by the event sequence number reserved at transmission start.
///
/// A channel's in-flight packets arrive in strictly increasing `(at,
/// seq)` order — transmissions are serialized by the `busy` flag and
/// `arrival_extra` is a per-channel constant — so a plain FIFO holds
/// them and only the *head* needs a heap entry in the event queue (see
/// `Network::step`). This keeps the heap population proportional to
/// active channels rather than in-flight packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct InFlight {
    pub(crate) pid: PacketId,
    pub(crate) at: Ns,
    pub(crate) seq: u64,
}

/// Intrusive FIFO of packets; links live in the packet arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PacketList {
    head: u32,
    tail: u32,
}

impl Default for PacketList {
    fn default() -> Self {
        PacketList {
            head: NO_PACKET,
            tail: NO_PACKET,
        }
    }
}

impl PacketList {
    /// The packet at the head, without removing it.
    #[inline]
    pub(crate) fn front(&self) -> Option<PacketId> {
        (self.head != NO_PACKET).then_some(PacketId(self.head))
    }

    /// Append `pid`, updating its intrusive link in `packets`.
    #[inline]
    pub(crate) fn push_back(&mut self, packets: &mut [Packet], pid: PacketId) {
        packets[pid.0 as usize].next = NO_PACKET;
        if self.tail == NO_PACKET {
            self.head = pid.0;
        } else {
            packets[self.tail as usize].next = pid.0;
        }
        self.tail = pid.0;
    }

    /// Detach and return the head packet.
    #[inline]
    pub(crate) fn pop_front(&mut self, packets: &[Packet]) -> Option<PacketId> {
        if self.head == NO_PACKET {
            return None;
        }
        let pid = self.head;
        self.head = packets[pid as usize].next;
        if self.head == NO_PACKET {
            self.tail = NO_PACKET;
        }
        Some(PacketId(pid))
    }

    /// Iterate front-to-back following the intrusive links. Used by the
    /// audit layer's structural sweep; callers must bound the walk
    /// themselves if the links may be corrupted (cycles never terminate).
    pub(crate) fn iter<'a>(&self, packets: &'a [Packet]) -> PacketListIter<'a> {
        PacketListIter {
            packets,
            cur: self.head,
        }
    }

    /// True if the stored tail matches the last packet reached by walking
    /// from the head (`None` for an empty walk). Audit-only.
    pub(crate) fn tail_agrees(&self, last: Option<PacketId>) -> bool {
        match last {
            None => self.head == NO_PACKET && self.tail == NO_PACKET,
            Some(pid) => self.tail == pid.0,
        }
    }
}

/// Iterator over a [`PacketList`]'s intrusive links (see
/// [`PacketList::iter`]).
pub(crate) struct PacketListIter<'a> {
    packets: &'a [Packet],
    cur: u32,
}

impl Iterator for PacketListIter<'_> {
    type Item = PacketId;

    fn next(&mut self) -> Option<PacketId> {
        if self.cur == NO_PACKET {
            return None;
        }
        let pid = self.cur;
        self.cur = self.packets[pid as usize].next;
        Some(PacketId(pid))
    }
}

/// One virtual-channel buffer: its queued packets, how many bytes they
/// (plus inbound reservations) occupy, and whether a reservation was
/// refused since space last freed.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct VcState {
    pub(crate) queue: PacketList,
    pub(crate) occupancy: Bytes,
    /// True once a reservation was refused; cleared when space frees.
    pub(crate) full: bool,
}

/// Mutable per-channel simulation state. The immutable half (endpoints,
/// class wiring) stays in the shared [`Topology`](dfly_topology::Topology).
pub(crate) struct ChannelState {
    pub(crate) class: ChannelClass,
    pub(crate) bandwidth: Bandwidth,
    /// Link propagation latency plus downstream router traversal latency.
    pub(crate) arrival_extra: Ns,
    /// One buffer per VC level; VC index = hop index, so `MAX_ROUTE_LEN`
    /// covers every reachable level. Fixed-size: no per-channel heap.
    pub(crate) vcs: [VcState; MAX_ROUTE_LEN],
    pub(crate) total_occupancy: Bytes,
    pub(crate) busy: bool,
    pub(crate) tx_vc: u8,
    pub(crate) rr_next: u8,
    /// Packets transmitted but not yet landed, in arrival order. Only
    /// the front has an `Arrive` entry in the event heap.
    pub(crate) inflight: VecDeque<InFlight>,
    /// Channels whose head packet is waiting for space in our buffers.
    pub(crate) waiters: Vec<ChannelId>,
    /// True while this channel sits on some other channel's `waiters`
    /// list. A blocked channel registers on at most one blocker at a
    /// time — any wakeup rescans all VCs — so one bit replaces the
    /// O(waiters) `contains` scan the arbiter used to do per attempt.
    pub(crate) in_waitlist: bool,
    // --- metrics ---
    pub(crate) full_vcs: u16,
    pub(crate) full_start: Ns,
    pub(crate) saturated: Ns,
    pub(crate) traffic: Bytes,
    pub(crate) busy_time: Ns,
}

impl ChannelState {
    /// Fresh state for a channel of `class`.
    pub(crate) fn new(
        class: ChannelClass,
        bandwidth: Bandwidth,
        arrival_extra: Ns,
    ) -> ChannelState {
        ChannelState {
            class,
            bandwidth,
            arrival_extra,
            vcs: [VcState::default(); MAX_ROUTE_LEN],
            total_occupancy: 0,
            busy: false,
            tx_vc: 0,
            rr_next: 0,
            inflight: VecDeque::new(),
            waiters: Vec::new(),
            in_waitlist: false,
            full_vcs: 0,
            full_start: Ns::ZERO,
            saturated: Ns::ZERO,
            traffic: 0,
            busy_time: Ns::ZERO,
        }
    }

    /// Record that a reservation on VC `vc` was refused at `now`: opens
    /// the channel's saturated interval if it wasn't already open.
    pub(crate) fn mark_full(&mut self, vc: usize, now: Ns) {
        if !self.vcs[vc].full {
            self.vcs[vc].full = true;
            if self.full_vcs == 0 {
                self.full_start = now;
            }
            self.full_vcs += 1;
        }
    }

    /// Record that VC `vc` freed space at `now`: closes the saturated
    /// interval once no VC is full, accumulating it exactly once.
    pub(crate) fn clear_full(&mut self, vc: usize, now: Ns) {
        if self.vcs[vc].full {
            self.vcs[vc].full = false;
            self.full_vcs -= 1;
            if self.full_vcs == 0 {
                self.saturated += now - self.full_start;
            }
        }
    }

    /// Saturated time including a still-open full interval at `now`.
    ///
    /// `now` may precede `full_start` when telemetry back-fills aligned
    /// sample windows: an interval opened by the current event has not
    /// started yet at an earlier window boundary and contributes nothing.
    pub(crate) fn saturated_until(&self, now: Ns) -> Ns {
        let mut s = self.saturated;
        if self.full_vcs > 0 {
            s += now.saturating_sub(self.full_start);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{MessageId, Route};

    fn arena(n: usize) -> Vec<Packet> {
        (0..n)
            .map(|_| Packet {
                msg: MessageId(0),
                size: 1,
                hop: 0,
                routed: false,
                route: Route::from_slice(&[ChannelId(0), ChannelId(1)]),
                next: NO_PACKET,
            })
            .collect()
    }

    #[test]
    fn packet_list_fifo_order() {
        let mut packets = arena(4);
        let mut q = PacketList::default();
        assert_eq!(q.front(), None);
        for i in 0..4 {
            q.push_back(&mut packets, PacketId(i));
        }
        assert_eq!(q.front(), Some(PacketId(0)));
        for i in 0..4 {
            assert_eq!(q.pop_front(&packets), Some(PacketId(i)));
        }
        assert_eq!(q.pop_front(&packets), None);
        assert_eq!(q, PacketList::default());
    }

    #[test]
    fn packet_list_interleaved_push_pop() {
        let mut packets = arena(6);
        let mut q = PacketList::default();
        q.push_back(&mut packets, PacketId(0));
        q.push_back(&mut packets, PacketId(1));
        assert_eq!(q.pop_front(&packets), Some(PacketId(0)));
        q.push_back(&mut packets, PacketId(2));
        assert_eq!(q.pop_front(&packets), Some(PacketId(1)));
        assert_eq!(q.pop_front(&packets), Some(PacketId(2)));
        assert_eq!(q.pop_front(&packets), None);
        // Reusable after full drain.
        q.push_back(&mut packets, PacketId(5));
        assert_eq!(q.front(), Some(PacketId(5)));
    }

    #[test]
    fn full_interval_accounting_is_exactly_once() {
        let mut ch = ChannelState::new(
            ChannelClass::LocalRow,
            Bandwidth::from_gib_per_sec(1),
            Ns(0),
        );
        ch.mark_full(0, Ns(100));
        ch.mark_full(0, Ns(150)); // repeated refusal: no double-open
        ch.mark_full(2, Ns(200)); // second VC joins the open interval
        ch.clear_full(0, Ns(300));
        assert_eq!(ch.saturated, Ns::ZERO, "interval still open via VC 2");
        ch.clear_full(2, Ns(450));
        assert_eq!(ch.saturated, Ns(350));
        // Clearing an already-clear VC is a no-op.
        ch.clear_full(1, Ns(500));
        assert_eq!(ch.saturated, Ns(350));
    }

    #[test]
    fn saturated_until_closes_open_interval() {
        let mut ch = ChannelState::new(ChannelClass::Global, Bandwidth::from_gib_per_sec(1), Ns(0));
        assert_eq!(ch.saturated_until(Ns(50)), Ns::ZERO);
        ch.mark_full(1, Ns(10));
        assert_eq!(ch.saturated_until(Ns(50)), Ns(40));
        ch.clear_full(1, Ns(60));
        assert_eq!(ch.saturated_until(Ns(90)), Ns(50));
    }
}
