//! # dfly-network
//!
//! The packet-level dragonfly network model — this reproduction's stand-in
//! for the CODES dragonfly-custom model the paper uses.
//!
//! ## Model
//!
//! Messages are segmented into packets (default 4 KiB). Every packet is
//! routed at injection (as in the CODES model): **minimal** routes follow
//! the paper's Section III-C; **adaptive** routing picks among two minimal
//! and two non-minimal (Valiant) candidates, scored UGAL-style by the queue
//! occupancy of the first router-to-router channel times path length.
//!
//! Every directed link is a [`ChannelId`] with a set of virtual-channel
//! buffers (the paper's 8 KiB node/local and 16 KiB global VC buffers). A
//! channel serializes one packet at a time at the link bandwidth, and may
//! only start transmitting when the packet's *next* buffer has space —
//! credit-based back-pressure. The VC index strictly increases along every
//! route (VC = hop index), making the buffer dependency graph acyclic and
//! the network provably deadlock-free; a property test injects adversarial
//! random traffic and asserts the network always drains.
//!
//! Time a channel spends with a refused-full buffer is accumulated as
//! **link saturation time**, and transmitted bytes as **channel traffic** —
//! the two link-level metrics of the paper's evaluation.

#![warn(missing_docs)]

mod arbiter;
pub mod arena;
pub mod audit;
mod channel;
pub mod metrics;
pub mod net;
mod obs;
pub mod packet;
pub mod params;
pub mod policy;
pub mod routing;
pub mod shard;

pub use arena::SimArena;
pub use audit::{AuditKind, AuditReport, AuditViolation};
pub use dfly_obs::{CoarseTimeline, MetricsMode, ObsReport};
pub use metrics::{
    class_index, ChannelSnapshot, MetricsFilter, NetworkMetrics, TrafficTimeline, TIMELINE_CLASSES,
};
pub use net::{Delivery, Network, NetworkEvent};
pub use packet::{MessageId, PacketId};
pub use params::NetworkParams;
pub use policy::{ChannelView, RouteCtx, RoutingPolicy};
pub use routing::Routing;
pub use shard::{ShardParts, ShardedNetwork};
