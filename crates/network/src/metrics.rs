//! Link-level metric snapshots and the filters the paper's figures apply.
//!
//! Figures 4–6 plot CDFs over *all* local/global channels of the machine;
//! Figures 8–10 restrict to "the routers that serve the nodes assigned to
//! the target application". [`MetricsFilter`] expresses both.

use dfly_engine::{Bytes, Ns};
use dfly_topology::{ChannelClass, ChannelId, RouterId};
use std::collections::HashSet;

/// Per-channel metric snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelSnapshot {
    /// The channel.
    pub id: ChannelId,
    /// Its class.
    pub class: ChannelClass,
    /// The router this channel belongs to (terminal channels are owned by
    /// the node's home router).
    pub src_router: Option<RouterId>,
    /// Total bytes transmitted.
    pub traffic_bytes: Bytes,
    /// Total time the channel had a refused-full buffer.
    pub saturated_time: Ns,
    /// Total time the channel spent serializing packets (utilization
    /// numerator; divide by the observation window for a utilization
    /// fraction — the "network health" view of Bhatele et al.).
    pub busy_time: Ns,
}

/// Which channels a report should include.
///
/// Borrows its router set rather than owning it: filters are transient
/// views constructed per report, and the app-router sets they reference
/// live in experiment results — cloning a `HashSet` per figure line was
/// pure waste.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFilter<'a> {
    /// Every channel in the machine (Figures 4–6).
    All,
    /// Only channels owned by the given routers (Figures 8–10: the routers
    /// serving the target application's nodes).
    Routers(&'a HashSet<RouterId>),
}

impl MetricsFilter<'_> {
    fn accepts(&self, snap: &ChannelSnapshot) -> bool {
        match self {
            MetricsFilter::All => true,
            MetricsFilter::Routers(set) => {
                snap.src_router.map(|r| set.contains(&r)).unwrap_or(false)
            }
        }
    }
}

/// All channel snapshots of a network at one point in time.
#[derive(Debug, Clone)]
pub struct NetworkMetrics {
    snapshots: Vec<ChannelSnapshot>,
}

impl NetworkMetrics {
    /// Wrap a snapshot list (produced by `Network::metrics`).
    pub fn new(snapshots: Vec<ChannelSnapshot>) -> NetworkMetrics {
        NetworkMetrics { snapshots }
    }

    /// All snapshots.
    pub fn channels(&self) -> impl Iterator<Item = &ChannelSnapshot> {
        self.snapshots.iter()
    }

    /// Traffic in bytes on each **local** channel passing `filter`
    /// (the x-series of the paper's "local channel traffic" CDFs).
    pub fn local_traffic(&self, filter: &MetricsFilter) -> Vec<f64> {
        self.select(filter, |c| c.class.is_local(), |c| c.traffic_bytes as f64)
    }

    /// Traffic in bytes on each **global** channel passing `filter`.
    pub fn global_traffic(&self, filter: &MetricsFilter) -> Vec<f64> {
        self.select(
            filter,
            |c| c.class == ChannelClass::Global,
            |c| c.traffic_bytes as f64,
        )
    }

    /// Saturated time (milliseconds) of each local channel passing `filter`.
    pub fn local_saturation_ms(&self, filter: &MetricsFilter) -> Vec<f64> {
        self.select(
            filter,
            |c| c.class.is_local(),
            |c| c.saturated_time.as_ms_f64(),
        )
    }

    /// Saturated time (milliseconds) of each global channel passing `filter`.
    pub fn global_saturation_ms(&self, filter: &MetricsFilter) -> Vec<f64> {
        self.select(
            filter,
            |c| c.class == ChannelClass::Global,
            |c| c.saturated_time.as_ms_f64(),
        )
    }

    fn select(
        &self,
        filter: &MetricsFilter,
        class_pred: impl Fn(&ChannelSnapshot) -> bool,
        value: impl Fn(&ChannelSnapshot) -> f64,
    ) -> Vec<f64> {
        self.snapshots
            .iter()
            .filter(|c| class_pred(c) && filter.accepts(c))
            .map(value)
            .collect()
    }

    /// Utilization fraction of each channel of a class over the
    /// observation window `[0, end]`.
    ///
    /// The window must cover every recorded transmission: a channel is
    /// busy at most 100% of real time, so `end < busy_time` means the
    /// caller passed a stale window (debug builds assert). The released
    /// value is clamped to 1.0 so a stale window can only flatten the
    /// figure, never fabricate >100% utilization.
    pub fn utilization(&self, class: ChannelClass, end: Ns) -> Vec<f64> {
        assert!(end > Ns::ZERO, "observation window must be positive");
        self.snapshots
            .iter()
            .filter(|c| c.class == class)
            .map(|c| {
                debug_assert!(
                    c.busy_time <= end,
                    "observation window end {end:?} predates channel {:?}'s \
                     busy_time {:?}",
                    c.id,
                    c.busy_time
                );
                (c.busy_time.as_nanos() as f64 / end.as_nanos() as f64).min(1.0)
            })
            .collect()
    }

    /// Sum of traffic over all channels of a class.
    pub fn total_traffic(&self, class: ChannelClass) -> Bytes {
        self.snapshots
            .iter()
            .filter(|c| c.class == class)
            .map(|c| c.traffic_bytes)
            .sum()
    }

    /// Router-level rollup: total router-to-router traffic owned by each
    /// router, for `total_routers` routers — the per-router heatmap view
    /// of "network health" dashboards (Bhatele et al.).
    pub fn router_traffic(&self, total_routers: u32) -> Vec<Bytes> {
        let mut out = vec![0u64; total_routers as usize];
        for c in &self.snapshots {
            if !c.class.is_router_to_router() {
                continue;
            }
            if let Some(r) = c.src_router {
                out[r.index()] += c.traffic_bytes;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(
        id: u32,
        class: ChannelClass,
        router: u32,
        traffic: u64,
        sat_ns: u64,
    ) -> ChannelSnapshot {
        ChannelSnapshot {
            id: ChannelId(id),
            class,
            src_router: Some(RouterId(router)),
            traffic_bytes: traffic,
            saturated_time: Ns(sat_ns),
            busy_time: Ns(traffic * 2),
        }
    }

    fn sample() -> NetworkMetrics {
        NetworkMetrics::new(vec![
            snap(0, ChannelClass::LocalRow, 0, 100, 1_000_000),
            snap(1, ChannelClass::LocalCol, 0, 200, 0),
            snap(2, ChannelClass::LocalRow, 1, 300, 2_000_000),
            snap(3, ChannelClass::Global, 0, 400, 500_000),
            snap(4, ChannelClass::Global, 1, 500, 0),
            snap(5, ChannelClass::TerminalUp, 0, 999, 0),
        ])
    }

    #[test]
    fn local_traffic_all() {
        let m = sample();
        let mut v = m.local_traffic(&MetricsFilter::All);
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(v, vec![100.0, 200.0, 300.0]);
    }

    #[test]
    fn global_traffic_all() {
        let m = sample();
        let mut v = m.global_traffic(&MetricsFilter::All);
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(v, vec![400.0, 500.0]);
    }

    #[test]
    fn terminal_channels_excluded_from_local() {
        let m = sample();
        assert!(!m.local_traffic(&MetricsFilter::All).contains(&999.0));
    }

    #[test]
    fn router_filter_restricts() {
        let m = sample();
        let routers: HashSet<RouterId> = [RouterId(0)].into_iter().collect();
        let filter = MetricsFilter::Routers(&routers);
        let mut v = m.local_traffic(&filter);
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(v, vec![100.0, 200.0]);
        assert_eq!(m.global_traffic(&filter), vec![400.0]);
    }

    #[test]
    fn saturation_in_ms() {
        let m = sample();
        let mut v = m.local_saturation_ms(&MetricsFilter::All);
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(v, vec![0.0, 1.0, 2.0]);
        let mut g = m.global_saturation_ms(&MetricsFilter::All);
        g.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(g, vec![0.0, 0.5]);
    }

    #[test]
    fn total_traffic_per_class() {
        let m = sample();
        assert_eq!(m.total_traffic(ChannelClass::Global), 900);
        assert_eq!(m.total_traffic(ChannelClass::LocalRow), 400);
        assert_eq!(m.total_traffic(ChannelClass::TerminalUp), 999);
    }

    #[test]
    fn router_traffic_rollup() {
        let m = sample();
        let t = m.router_traffic(3);
        // Router 0: local 100+200 + global 400; terminal excluded.
        assert_eq!(t, vec![700, 800, 0]);
    }

    #[test]
    fn utilization_fractions() {
        let m = sample();
        let u = m.utilization(ChannelClass::Global, Ns(2000));
        // busy = traffic*2 in the fixture: 800/2000 and 1000/2000.
        let mut u = u;
        u.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(u, vec![0.4, 0.5]);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn utilization_zero_window_panics() {
        sample().utilization(ChannelClass::Global, Ns::ZERO);
    }

    /// Regression: a window `end` that predates the last transmission
    /// used to return fractions > 1.0 silently. Debug builds now assert;
    /// release builds clamp to 1.0.
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "predates channel"))]
    fn utilization_stale_window_is_loud_or_clamped() {
        // The fixture's global busy times are 800ns and 1000ns; a 900ns
        // window covers one channel but predates the other.
        let u = sample().utilization(ChannelClass::Global, Ns(900));
        // Only reached in release builds (debug asserts above).
        assert!(u.iter().all(|&f| f <= 1.0), "clamped: {u:?}");
        assert!(u.contains(&1.0), "stale channel pinned at 100%: {u:?}");
    }

    #[test]
    fn filter_without_router_info() {
        let mut s = snap(9, ChannelClass::LocalRow, 0, 50, 0);
        s.src_router = None;
        let m = NetworkMetrics::new(vec![s]);
        let routers: HashSet<RouterId> = [RouterId(0)].into_iter().collect();
        let filter = MetricsFilter::Routers(&routers);
        assert!(m.local_traffic(&filter).is_empty());
        assert_eq!(m.local_traffic(&MetricsFilter::All), vec![50.0]);
    }
}

/// Time-binned traffic by channel class: who moved bytes when. Enabled
/// with [`crate::Network::enable_traffic_timeline`]; each transmission
/// start adds the packet bytes to its class's bin.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficTimeline {
    bin_width: Ns,
    /// One series per class, indexed by [`class_index`].
    bins: [Vec<u64>; 5],
}

/// Number of channel classes a timeline tracks (one lane per
/// [`class_index`] value).
pub const TIMELINE_CLASSES: usize = 5;

/// Dense index of a channel class inside [`TrafficTimeline`].
pub fn class_index(class: ChannelClass) -> usize {
    match class {
        ChannelClass::TerminalUp => 0,
        ChannelClass::TerminalDown => 1,
        ChannelClass::LocalRow => 2,
        ChannelClass::LocalCol => 3,
        ChannelClass::Global => 4,
    }
}

impl TrafficTimeline {
    /// Hard cap on bins per class (2^20 bins = 8 MiB of `u64` per class).
    /// The bin vector grows to whatever index a timestamp implies, so
    /// without a cap one far-future event — or a tiny bin width on a long
    /// run — would allocate gigabytes. Events past the cap saturate into
    /// the last bin; pick `bin_width >= run_length / MAX_BINS` to avoid
    /// any saturation.
    pub const MAX_BINS: usize = 1 << 20;

    /// Empty timeline with the given bin width.
    pub fn new(bin_width: Ns) -> TrafficTimeline {
        assert!(bin_width > Ns::ZERO, "bin width must be positive");
        TrafficTimeline {
            bin_width,
            bins: Default::default(),
        }
    }

    /// Record `bytes` moved on `class` at time `at`. Timestamps past
    /// [`TrafficTimeline::MAX_BINS`] bins saturate into the last bin.
    #[inline]
    pub fn record(&mut self, class: ChannelClass, at: Ns, bytes: Bytes) {
        let idx = ((at.as_nanos() / self.bin_width.as_nanos()) as usize).min(Self::MAX_BINS - 1);
        let series = &mut self.bins[class_index(class)];
        if series.len() <= idx {
            series.resize(idx + 1, 0);
        }
        series[idx] += bytes;
    }

    /// The bin width.
    pub fn bin_width(&self) -> Ns {
        self.bin_width
    }

    /// The series for a class (may be shorter than others; missing bins
    /// are zero).
    pub fn series(&self, class: ChannelClass) -> &[u64] {
        &self.bins[class_index(class)]
    }

    /// Approximate heap bytes held by the bin vectors.
    pub fn approx_bytes(&self) -> usize {
        self.bins
            .iter()
            .map(|s| s.capacity() * std::mem::size_of::<u64>())
            .sum()
    }

    /// Combined local (row + col) series.
    pub fn local_series(&self) -> Vec<u64> {
        let row = self.series(ChannelClass::LocalRow);
        let col = self.series(ChannelClass::LocalCol);
        let n = row.len().max(col.len());
        (0..n)
            .map(|i| row.get(i).copied().unwrap_or(0) + col.get(i).copied().unwrap_or(0))
            .collect()
    }
}

#[cfg(test)]
mod timeline_tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut t = TrafficTimeline::new(Ns(100));
        t.record(ChannelClass::Global, Ns(0), 10);
        t.record(ChannelClass::Global, Ns(99), 5);
        t.record(ChannelClass::Global, Ns(100), 7);
        t.record(ChannelClass::LocalRow, Ns(250), 3);
        assert_eq!(t.series(ChannelClass::Global), &[15, 7]);
        assert_eq!(t.series(ChannelClass::LocalRow), &[0, 0, 3]);
        assert_eq!(t.series(ChannelClass::LocalCol), &[] as &[u64]);
    }

    #[test]
    fn local_series_merges_rows_and_cols() {
        let mut t = TrafficTimeline::new(Ns(10));
        t.record(ChannelClass::LocalRow, Ns(5), 2);
        t.record(ChannelClass::LocalCol, Ns(5), 3);
        t.record(ChannelClass::LocalCol, Ns(25), 4);
        assert_eq!(t.local_series(), vec![5, 0, 4]);
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_rejected() {
        let _ = TrafficTimeline::new(Ns::ZERO);
    }

    /// Regression: `record` used to resize to whatever index the
    /// timestamp implied — one far-future event (or a tiny bin width on
    /// a long run) allocated gigabytes. The bin count is now capped and
    /// overflowing events saturate into the last bin.
    #[test]
    fn far_future_events_saturate_into_last_bin() {
        let mut t = TrafficTimeline::new(Ns(1));
        t.record(ChannelClass::Global, Ns(5), 2);
        // u64::MAX ns at 1ns bins implies ~2^64 bins; must stay capped.
        t.record(ChannelClass::Global, Ns(u64::MAX), 7);
        t.record(ChannelClass::Global, Ns(u64::MAX - 1), 3);
        let s = t.series(ChannelClass::Global);
        assert_eq!(s.len(), TrafficTimeline::MAX_BINS);
        assert_eq!(s[5], 2);
        assert_eq!(s[TrafficTimeline::MAX_BINS - 1], 10, "saturated bin");
        // Totals are preserved — saturation shifts time, never drops bytes.
        assert_eq!(s.iter().sum::<u64>(), 12);
    }

    #[test]
    fn last_in_range_bin_is_not_saturation() {
        let mut t = TrafficTimeline::new(Ns(100));
        let last_start = (TrafficTimeline::MAX_BINS as u64 - 1) * 100;
        t.record(ChannelClass::LocalRow, Ns(last_start), 4);
        t.record(ChannelClass::LocalRow, Ns(last_start + 99), 6);
        let s = t.series(ChannelClass::LocalRow);
        assert_eq!(s.len(), TrafficTimeline::MAX_BINS);
        assert_eq!(s[TrafficTimeline::MAX_BINS - 1], 10);
    }
}
