//! The packet engine: event loop and public API.
//!
//! The per-channel state lives in [`crate::channel`]; VC selection and
//! the blocked-channel wakeup protocol in [`crate::arbiter`]; this module
//! owns the event queue, the packet/message arenas, and the handlers that
//! tie them together. The central invariants:
//!
//! * a channel transmits one packet at a time (serialization at link
//!   bandwidth), and only starts when the packet's next buffer has space —
//!   the space is *reserved* at transmission start (credit semantics);
//! * a packet occupies its current buffer until its last byte has left
//!   (store-and-forward); occupancy is released at `TxDone`;
//! * the VC index equals the hop index, so buffer dependencies only point
//!   from lower to higher VC levels — the network cannot deadlock;
//! * per-channel traffic bytes and refused-full ("saturation") time are
//!   accumulated exactly once per packet / full interval.

use crate::arbiter;
use crate::arena::SimArena;
use crate::audit::{AuditReport, Auditor};
use crate::channel::{ChannelState, InFlight, PacketList};
use crate::metrics::{class_index, ChannelSnapshot, NetworkMetrics, TrafficTimeline};
use crate::obs::ObsCollector;
use crate::packet::{MessageId, MessageKind, MessageState, Packet, PacketId, Route, MAX_ROUTE_LEN};
use crate::params::NetworkParams;
use crate::routing::{RouteComputer, Routing};
use crate::shard::{ShardState, WireRecord};
use dfly_engine::{Bytes, EventQueue, Ns, Xoshiro256};
use dfly_obs::{CoarseTimeline, EventKind, ObsReport};
use dfly_topology::{ChannelClass, ChannelEnd, ChannelId, NodeId, Topology};
use std::collections::VecDeque;
use std::sync::Arc;

/// A completed message delivery.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The message (ids are recycled after delivery; consume immediately).
    pub msg: MessageId,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Message payload bytes.
    pub bytes: Bytes,
    /// Caller tag from [`Network::send`].
    pub tag: u64,
    /// When the message was injected.
    pub injected_at: Ns,
    /// When the last packet arrived.
    pub completed_at: Ns,
    /// Mean router-to-router hops over the message's packets.
    pub avg_hops: f64,
}

impl Delivery {
    /// End-to-end message latency.
    pub fn latency(&self) -> Ns {
        self.completed_at - self.injected_at
    }
}

#[derive(Debug)]
enum NetEvent {
    /// A message's packets enter the source NIC queue.
    Inject(MessageId),
    /// A channel finished serializing its in-flight packet.
    TxDone(ChannelId),
    /// The *head* of this channel's in-flight FIFO lands at the element
    /// following `hop - 1`. The packet, its landing time, and its
    /// reserved sequence number live in the FIFO (see
    /// [`crate::channel::InFlight`]); the heap holds at most one arrival
    /// entry per channel, so the event population tracks active channels
    /// rather than in-flight packets.
    Arrive(ChannelId),
    /// A caller-requested wakeup (see [`Network::schedule_wakeup`]).
    Wakeup,
    /// Shard mode only: a packet imported from another group-replica
    /// lands at its first channel inside this group (profiled as an
    /// arrival — that is what it is, minus the heap bookkeeping).
    Import(PacketId),
}

/// What [`Network::poll`] hands back to the driving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkEvent {
    /// A message finished delivery.
    Delivery(Delivery),
    /// A wakeup requested via [`Network::schedule_wakeup`] fired; the
    /// current time is [`Network::now`]. Drivers use this to inject
    /// open-loop (background) traffic incrementally instead of
    /// materializing millions of future messages up front.
    Wakeup,
}

/// The packet-level dragonfly network.
pub struct Network {
    topo: Arc<Topology>,
    params: NetworkParams,
    router_latency: Ns,
    channels: Vec<ChannelState>,
    packets: Vec<Packet>,
    free_packets: Vec<PacketId>,
    messages: Vec<MessageState>,
    free_messages: Vec<MessageId>,
    nic: Vec<PacketList>,
    queue: EventQueue<NetEvent>,
    deliveries: VecDeque<Delivery>,
    router: RouteComputer,
    route_scratch: Vec<ChannelId>,
    events_processed: u64,
    packets_delivered: u64,
    /// Arrivals processed straight off a channel's in-flight FIFO,
    /// skipping the heap push+pop their `Arrive` entry would have cost.
    arrivals_coalesced: u64,
    wakeup_fired: bool,
    total_queued: Bytes,
    traffic_timeline: Option<TrafficTimeline>,
    /// Streaming-mode replacement for `traffic_timeline`: fixed bin
    /// count, geometrically coarsening width. At most one of the two is
    /// live, picked by `params.metrics` at `enable_traffic_timeline`.
    coarse_timeline: Option<CoarseTimeline>,
    /// Seed for streaming metric reservoirs (derived from the network
    /// seed; stored so a collector rebuild keeps the same tag streams).
    obs_seed: u64,
    /// Shadow-accounting audit ledger (see [`crate::audit`]); `None`
    /// when auditing is off — the hot path then pays one branch per hook.
    audit: Option<Box<Auditor>>,
    /// Telemetry collector (see [`crate::obs`]); `None` when telemetry is
    /// off — the event loop then pays one branch per event.
    obs: Option<Box<ObsCollector>>,
    /// PDES shard state (see [`crate::shard`]); `None` in serial runs —
    /// the serial event loop then pays one branch per hook and stays
    /// bit-identical to pre-shard releases.
    shard: Option<Box<ShardState>>,
}

impl Network {
    /// Build a network over `topo` with the given parameters, routing
    /// policy, and RNG seed (used only for routing decisions).
    pub fn new(topo: Arc<Topology>, params: NetworkParams, routing: Routing, seed: u64) -> Network {
        Network::with_arena(topo, params, routing, seed, &mut SimArena::new())
    }

    /// Like [`Network::new`], but reusing the buffer capacities a
    /// previous run donated to `arena` (see [`Network::recycle`]). A
    /// fresh arena is equivalent to [`Network::new`]: recycling reuses
    /// only *capacity*, never content, so results are bit-identical
    /// either way.
    pub fn with_arena(
        topo: Arc<Topology>,
        params: NetworkParams,
        routing: Routing,
        seed: u64,
        arena: &mut SimArena,
    ) -> Network {
        params.validate().expect("invalid network params");
        let router_latency = topo.config().router_latency;
        let channels = topo
            .channels()
            .map(|(_, info)| {
                let dst_is_router = info.dst.router().is_some();
                ChannelState::new(
                    info.class,
                    topo.class_bandwidth(info.class),
                    topo.class_latency(info.class)
                        + if dst_is_router {
                            router_latency
                        } else {
                            Ns::ZERO
                        },
                )
            })
            .collect();
        let nodes = topo.config().total_nodes() as usize;
        let audit = params
            .audit
            .then(|| Box::new(Auditor::new(topo.channel_count())));
        let mut router = RouteComputer::new(routing, Xoshiro256::seed_from(seed));
        router.adopt_buffers(arena.take_router_buffers());
        // Streaming reservoirs tag samples from their own stream, derived
        // from the routing seed so sharded replicas (seeded per group) get
        // distinct, reproducible tag streams.
        let obs_seed = seed ^ 0x9E37_79B9_7F4A_7C15;
        let obs = params.obs.then(|| {
            Box::new(ObsCollector::new(
                ObsCollector::DEFAULT_INTERVAL,
                params.obs_stride,
                params.obs_coarse_clock,
                params.metrics,
                obs_seed,
                arena.take_sample_buffer(),
            ))
        });
        if obs.is_some() {
            router.enable_stats();
        }
        let mut packets = arena.take_packets();
        packets.clear();
        let mut free_packets = arena.take_free_packets();
        free_packets.clear();
        let mut messages = arena.take_messages();
        messages.clear();
        let mut free_messages = arena.take_free_messages();
        free_messages.clear();
        let mut deliveries = arena.take_deliveries();
        deliveries.clear();
        let mut route_scratch = arena.take_route_scratch();
        route_scratch.clear();
        route_scratch.reserve(MAX_ROUTE_LEN);
        Network {
            params,
            router_latency,
            channels,
            packets,
            free_packets,
            messages,
            free_messages,
            nic: vec![PacketList::default(); nodes],
            queue: EventQueue::with_capacity(1024),
            deliveries,
            router,
            route_scratch,
            events_processed: 0,
            packets_delivered: 0,
            arrivals_coalesced: 0,
            wakeup_fired: false,
            total_queued: 0,
            traffic_timeline: None,
            coarse_timeline: None,
            obs_seed,
            audit,
            obs,
            shard: None,
            topo,
        }
    }

    /// Donate this network's buffer capacities back to `arena` for the
    /// next [`Network::with_arena`] over the same (or a similar)
    /// topology. Consumes the network: call it after the final metrics /
    /// report reads.
    pub fn recycle(mut self, arena: &mut SimArena) {
        arena.put_packets(std::mem::take(&mut self.packets));
        arena.put_free_packets(std::mem::take(&mut self.free_packets));
        arena.put_messages(std::mem::take(&mut self.messages));
        arena.put_free_messages(std::mem::take(&mut self.free_messages));
        arena.put_deliveries(std::mem::take(&mut self.deliveries));
        arena.put_route_scratch(std::mem::take(&mut self.route_scratch));
        arena.put_router_buffers(self.router.release_buffers());
        if let Some(obs) = self.obs.as_mut() {
            arena.put_sample_buffer(obs.take_sample_buffer());
        }
        arena.note_recycled();
    }

    /// Turn the audit layer on or off. Only valid on a fresh network —
    /// the shadow ledger must observe every event from the first
    /// injection, or its books cannot balance.
    ///
    /// Auditing never perturbs the simulation: audited and unaudited runs
    /// are bit-identical (enforced by `tests/determinism.rs`).
    pub fn set_audit(&mut self, enabled: bool) {
        assert!(
            self.events_processed == 0 && self.messages.is_empty(),
            "audit can only be toggled on a fresh network"
        );
        self.params.audit = enabled;
        if enabled {
            if self.audit.is_none() {
                self.audit = Some(Box::new(Auditor::new(self.topo.channel_count())));
            }
        } else {
            self.audit = None;
        }
    }

    /// True if the shadow-accounting audit layer is active.
    pub fn audit_enabled(&self) -> bool {
        self.audit.is_some()
    }

    /// Run a full audit sweep at the current state and return the
    /// accumulated report, or `None` if auditing is off. If the network
    /// is idle the sweep also enforces the fully-drained postconditions.
    pub fn audit_report(&mut self) -> Option<AuditReport> {
        if self.audit.is_some() {
            let drained = self.queue.is_empty();
            self.audit_full_sweep(drained);
        }
        self.audit.as_ref().map(|a| a.report().clone())
    }

    /// Turn the telemetry layer on or off. Only valid on a fresh network —
    /// the sample windows and decision counters must cover the run from
    /// the first injection to mean anything.
    ///
    /// Telemetry never perturbs the simulation: obs-on and obs-off runs
    /// are bit-identical (enforced by `tests/determinism.rs`). Samples are
    /// taken every [`Network::set_obs_interval`]'s default of 50 µs.
    pub fn set_obs(&mut self, enabled: bool) {
        assert!(
            self.events_processed == 0 && self.messages.is_empty(),
            "telemetry can only be toggled on a fresh network"
        );
        self.params.obs = enabled;
        if enabled {
            if self.obs.is_none() {
                self.rebuild_obs(ObsCollector::DEFAULT_INTERVAL);
            }
            self.router.enable_stats();
        } else {
            self.obs = None;
        }
    }

    /// Enable telemetry with a custom sampling interval (simulation
    /// time). Same fresh-network restriction as [`Network::set_obs`].
    pub fn set_obs_interval(&mut self, interval: Ns) {
        assert!(
            self.events_processed == 0 && self.messages.is_empty(),
            "telemetry can only be toggled on a fresh network"
        );
        self.params.obs = true;
        self.rebuild_obs(interval);
        self.router.enable_stats();
    }

    /// Set the telemetry timing stride (see `NetworkParams::obs_stride`).
    /// Same fresh-network restriction as [`Network::set_obs`]; takes
    /// effect on the active collector immediately.
    pub fn set_obs_stride(&mut self, stride: u32) {
        assert!(
            self.events_processed == 0 && self.messages.is_empty(),
            "telemetry can only be toggled on a fresh network"
        );
        assert!(stride >= 1, "obs_stride must be at least 1");
        self.params.obs_stride = stride;
        if let Some(interval) = self.obs.as_ref().map(|o| o.interval()) {
            self.rebuild_obs(interval);
        }
    }

    /// Switch telemetry timing to the coarse monotonic clock (see
    /// `NetworkParams::obs_coarse_clock`). Same fresh-network restriction
    /// as [`Network::set_obs`].
    pub fn set_obs_coarse_clock(&mut self, coarse: bool) {
        assert!(
            self.events_processed == 0 && self.messages.is_empty(),
            "telemetry can only be toggled on a fresh network"
        );
        self.params.obs_coarse_clock = coarse;
        if let Some(interval) = self.obs.as_ref().map(|o| o.interval()) {
            self.rebuild_obs(interval);
        }
    }

    /// (Re)build the collector from the current params, keeping any
    /// sample-buffer capacity the old collector held.
    fn rebuild_obs(&mut self, interval: Ns) {
        let buf = self
            .obs
            .as_mut()
            .map(|o| o.take_sample_buffer())
            .unwrap_or_default();
        self.obs = Some(Box::new(ObsCollector::new(
            interval,
            self.params.obs_stride,
            self.params.obs_coarse_clock,
            self.params.metrics,
            self.obs_seed,
            buf,
        )));
    }

    /// True if the telemetry layer is active.
    pub fn obs_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// Close the current sampling window with a final sweep and return
    /// everything telemetry collected, or `None` if telemetry is off.
    pub fn obs_report(&mut self) -> Option<ObsReport> {
        let now = self.queue.now();
        if let Some(obs) = self.obs.as_mut() {
            obs.close(now, &self.channels, &self.params, self.router.stats());
        }
        let high_water = self.queue.high_water();
        self.obs
            .as_ref()
            .map(|o| o.report(high_water, self.router.stats()))
    }

    /// Current simulated time.
    pub fn now(&self) -> Ns {
        self.queue.now()
    }

    /// Routing policy in use.
    pub fn routing(&self) -> Routing {
        self.router.routing()
    }

    /// Network parameters in use.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// The topology the network runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Total packets delivered so far.
    pub fn packets_delivered(&self) -> u64 {
        self.packets_delivered
    }

    /// Arrivals processed straight off a channel's in-flight FIFO without
    /// a heap round-trip (a churn diagnostic; see `NetEvent::Arrive`).
    pub fn arrivals_coalesced(&self) -> u64 {
        self.arrivals_coalesced
    }

    /// Queue a message for injection at absolute time `at`. Injection
    /// times in the past are clamped to [`Network::now`] — a driver that
    /// computes injection times from stale state gets "inject now"
    /// semantics instead of a causality panic deep in the event queue.
    ///
    /// The message is segmented into packets at injection time; each
    /// packet's route is computed later, when it reaches the head of the
    /// source NIC's injection buffer, so adaptive routing sees the live
    /// congestion state (per-packet routing, as on Aries).
    pub fn send(&mut self, at: Ns, src: NodeId, dst: NodeId, bytes: Bytes, tag: u64) -> MessageId {
        self.send_inner(at, src, dst, bytes, tag, MessageKind::Delivering, 0)
    }

    /// Shard-mode injection: like [`Network::send`], but carrying the
    /// coordinator-assigned global message id, and accounting the message
    /// as `Forwarding` when the destination lives in another group (its
    /// packets leave this replica over a global link; the destination
    /// replica emits the `Delivery`).
    pub(crate) fn send_sharded(
        &mut self,
        gid: u64,
        at: Ns,
        src: NodeId,
        dst: NodeId,
        bytes: Bytes,
        tag: u64,
    ) -> MessageId {
        let shard = self
            .shard
            .as_ref()
            .expect("send_sharded outside shard mode");
        debug_assert!(gid != 0, "shard-mode sends carry a nonzero gid");
        debug_assert_eq!(
            self.topo.node_group(src).0,
            shard.group,
            "injection routed to the wrong group-replica"
        );
        let kind = if self.topo.node_group(dst).0 == shard.group {
            MessageKind::Delivering
        } else {
            MessageKind::Forwarding
        };
        self.send_inner(at, src, dst, bytes, tag, kind, gid)
    }

    fn send_inner(
        &mut self,
        at: Ns,
        src: NodeId,
        dst: NodeId,
        bytes: Bytes,
        tag: u64,
        kind: MessageKind,
        gid: u64,
    ) -> MessageId {
        assert!(
            src.0 < self.topo.config().total_nodes() && dst.0 < self.topo.config().total_nodes(),
            "send endpoints out of range"
        );
        let at = at.max(self.queue.now());
        let total_packets = self.params.packets_for(bytes);
        let state = MessageState {
            src,
            dst,
            bytes,
            tag,
            remaining_packets: total_packets,
            total_packets,
            hops_accum: 0,
            injected_at: at,
            kind,
            gid,
        };
        let id = self.alloc_message(state);
        self.queue.schedule(at, NetEvent::Inject(id));
        id
    }

    fn alloc_message(&mut self, state: MessageState) -> MessageId {
        match self.free_messages.pop() {
            Some(id) => {
                self.messages[id.0 as usize] = state;
                id
            }
            None => {
                let id = MessageId(self.messages.len() as u64);
                self.messages.push(state);
                id
            }
        }
    }

    /// Pop a pending delivery, processing events as needed. Returns `None`
    /// once the network is fully drained with no deliveries left.
    /// Wakeups are skipped; use [`Network::poll`] when driving background
    /// traffic.
    pub fn poll_delivery(&mut self) -> Option<Delivery> {
        loop {
            match self.poll() {
                Some(NetworkEvent::Delivery(d)) => return Some(d),
                Some(NetworkEvent::Wakeup) => continue,
                None => return None,
            }
        }
    }

    /// Request a [`NetworkEvent::Wakeup`] from [`Network::poll`] at
    /// absolute time `at`.
    pub fn schedule_wakeup(&mut self, at: Ns) {
        self.queue.schedule(at, NetEvent::Wakeup);
    }

    /// Advance the simulation until the next delivery or wakeup. Returns
    /// `None` once fully drained.
    pub fn poll(&mut self) -> Option<NetworkEvent> {
        loop {
            if let Some(d) = self.deliveries.pop_front() {
                return Some(NetworkEvent::Delivery(d));
            }
            if self.wakeup_fired {
                self.wakeup_fired = false;
                return Some(NetworkEvent::Wakeup);
            }
            if !self.step() {
                return None;
            }
        }
    }

    /// Process all events with firing time `<= t`. Deliveries accumulate
    /// and can be drained with [`Network::drain_deliveries`].
    pub fn run_until(&mut self, t: Ns) {
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.step_bounded(t);
        }
    }

    /// Run the network until no events remain.
    pub fn run_to_idle(&mut self) {
        while self.step() {}
    }

    /// True if no events are pending (all traffic drained).
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Take all accumulated deliveries.
    pub fn drain_deliveries(&mut self) -> Vec<Delivery> {
        Vec::from(std::mem::take(&mut self.deliveries))
    }

    /// Process a single event. Returns false if the queue was empty.
    fn step(&mut self) -> bool {
        self.step_bounded(Ns::MAX)
    }

    /// Process the next pending event; consecutive same-channel arrivals
    /// drain inline while they stay the globally next event and fire no
    /// later than `limit` (so [`Network::run_until`]'s time bound holds).
    /// Returns false if the queue was empty.
    fn step_bounded(&mut self, limit: Ns) -> bool {
        let Some(ev) = self.queue.pop() else {
            // Queue empty means fully drained: any queued packet implies
            // a pending TxDone. The audit drain sweep therefore doubles
            // as a leak/deadlock detector.
            self.audit_drain_sweep();
            return false;
        };
        match ev.event {
            NetEvent::Inject(msg) => {
                let started = self.event_begin(EventKind::Inject);
                self.handle_inject(msg);
                self.event_end(EventKind::Inject, started);
            }
            NetEvent::TxDone(ch) => {
                let started = self.event_begin(EventKind::TxDone);
                self.handle_tx_done(ch);
                self.event_end(EventKind::TxDone, started);
            }
            NetEvent::Wakeup => {
                let started = self.event_begin(EventKind::Wakeup);
                self.wakeup_fired = true;
                self.event_end(EventKind::Wakeup, started);
            }
            NetEvent::Import(pid) => {
                let started = self.event_begin(EventKind::Arrive);
                self.handle_import(pid);
                self.event_end(EventKind::Arrive, started);
            }
            NetEvent::Arrive(ch_id) => loop {
                let rec = self.channels[ch_id.index()]
                    .inflight
                    .pop_front()
                    .expect("Arrive fired for a channel with no packets in flight");
                debug_assert_eq!(rec.at, self.queue.now());
                let deliveries_before = self.deliveries.len();
                let started = self.event_begin(EventKind::Arrive);
                self.handle_arrive(rec.pid);
                self.event_end(EventKind::Arrive, started);
                // The channel's next arrival is the globally next event
                // exactly when its (time, seq) key precedes everything in
                // the heap — then the heap round-trip is pure churn and
                // the record drains inline. A delivery hands control back
                // to the driver first (it may react by injecting), and
                // `limit` keeps `run_until`'s contract.
                let Some(&next) = self.channels[ch_id.index()].inflight.front() else {
                    break;
                };
                let precedes_heap = match self.queue.peek_key() {
                    Some(key) => (next.at, next.seq) < key,
                    None => true,
                };
                if precedes_heap && next.at <= limit && self.deliveries.len() == deliveries_before {
                    self.queue.advance_to(next.at, next.seq);
                    self.arrivals_coalesced += 1;
                } else {
                    self.queue
                        .schedule_reserved(next.at, next.seq, NetEvent::Arrive(ch_id));
                    break;
                }
            },
        }
        true
    }

    /// Per-event prologue: count it, and decide via the per-kind stride
    /// whether this one's handler gets timed, taking the start timestamp
    /// if so. The obs-off path pays one branch.
    #[inline]
    fn event_begin(&mut self, kind: EventKind) -> Option<u64> {
        self.events_processed += 1;
        match self.obs.as_mut() {
            Some(obs) => obs.timing_due(kind).then(|| obs.clock_now()),
            None => None,
        }
    }

    /// Per-event epilogue: audit bookkeeping, then telemetry (profile
    /// the event, sweep a sample window when due). The obs-off path pays
    /// one branch.
    #[inline]
    fn event_end(&mut self, kind: EventKind, started: Option<u64>) {
        self.audit_after_event();
        if self.obs.is_some() {
            self.obs_after_event(kind, started);
        }
    }

    // ----- telemetry plumbing ----------------------------------------------

    /// Profile the event just handled and run a periodic sample sweep when
    /// one is due. Read-only with respect to the simulation: nothing here
    /// schedules events or touches engine counters.
    fn obs_after_event(&mut self, kind: EventKind, started: Option<u64>) {
        let depth = self.queue.len();
        let now = self.queue.now();
        let Some(obs) = self.obs.as_mut() else {
            return;
        };
        obs.note_event(kind, started, depth);
        if obs.sample_due(now) {
            obs.sample(now, &self.channels, &self.params, self.router.stats());
        }
    }

    // ----- audit plumbing --------------------------------------------------

    /// Incremental consistency check of one channel the last event
    /// touched (no-op with auditing off).
    #[inline]
    fn audit_check_channel(&mut self, ch: ChannelId, context: &'static str) {
        if let Some(a) = self.audit.as_mut() {
            a.check_channel(
                ch,
                &self.channels[ch.index()],
                self.total_queued,
                self.queue.now(),
                context,
            );
        }
    }

    /// Count the event against the periodic full-sweep schedule.
    #[inline]
    fn audit_after_event(&mut self) {
        let due = match self.audit.as_mut() {
            Some(a) => a.note_event(),
            None => return,
        };
        if due {
            self.audit_full_sweep(false);
        }
    }

    /// Full structural sweep of every list, counter, and wait list.
    fn audit_full_sweep(&mut self, drained: bool) {
        if let Some(a) = self.audit.as_mut() {
            let landing: &[VecDeque<PacketId>] = match self.shard.as_ref() {
                Some(s) => &s.landing,
                None => &[],
            };
            a.full_sweep(
                &self.channels,
                &self.nic,
                &self.packets,
                &self.free_packets,
                landing,
                self.total_queued,
                self.queue.now(),
                drained,
            );
        }
    }

    /// Drain-time sweep, at most once per processed-event count (polling
    /// an idle network repeatedly must not re-sweep).
    fn audit_drain_sweep(&mut self) {
        let pending = match self.audit.as_mut() {
            Some(a) => a.drain_pending(self.events_processed),
            None => return,
        };
        if pending {
            self.audit_full_sweep(true);
        }
    }

    // ----- event handlers --------------------------------------------------

    fn handle_inject(&mut self, msg: MessageId) {
        let (src, dst, bytes, total_packets) = {
            let m = &self.messages[msg.0 as usize];
            (m.src, m.dst, m.bytes, m.total_packets)
        };
        if let Some(a) = self.audit.as_mut() {
            a.on_message_injected(msg, bytes, self.queue.now());
        }
        let pkt_size = self.params.packet_size as u64;
        let mut remaining = bytes.max(1); // zero-byte messages carry a header byte
                                          // Placeholder route until the source router fixes the real one at
                                          // the packet's first transmission attempt (per-packet routing with
                                          // a fresh congestion view).
        let placeholder =
            Route::from_slice(&[self.topo.terminal_up(src), self.topo.terminal_down(dst)]);
        for _ in 0..total_packets {
            let size = remaining.min(pkt_size) as u32;
            remaining = remaining.saturating_sub(pkt_size);
            let packet = Packet {
                msg,
                size,
                hop: 0,
                routed: false,
                route: placeholder,
                next: crate::packet::NO_PACKET,
            };
            let pid = match self.free_packets.pop() {
                Some(pid) => {
                    self.packets[pid.0 as usize] = packet;
                    pid
                }
                None => {
                    let pid = PacketId(self.packets.len() as u32);
                    self.packets.push(packet);
                    pid
                }
            };
            self.nic[src.index()].push_back(&mut self.packets, pid);
            if let Some(a) = self.audit.as_mut() {
                a.on_packet_injected(pid, msg, size, src.0, self.queue.now());
            }
        }
        self.nic_push(src);
    }

    /// Move packets from a node's NIC queue into its terminal-up VC0
    /// buffer while space allows.
    fn nic_push(&mut self, node: NodeId) {
        let ch_id = self.topo.terminal_up(node);
        loop {
            let Some(pid) = self.nic[node.index()].front() else {
                return;
            };
            let size = self.packets[pid.0 as usize].size as u64;
            let now = self.queue.now();
            let ch = &mut self.channels[ch_id.index()];
            let cap = self.params.vc_capacity(ch.class);
            if ch.vcs[0].occupancy + size > cap {
                // NIC blocked: the injection buffer is full.
                ch.mark_full(0, now);
                self.audit_check_channel(ch_id, "nic blocked");
                return;
            }
            ch.vcs[0].occupancy += size;
            ch.total_occupancy += size;
            self.total_queued += size;
            self.nic[node.index()].pop_front(&self.packets);
            self.channels[ch_id.index()].vcs[0]
                .queue
                .push_back(&mut self.packets, pid);
            if let Some(a) = self.audit.as_mut() {
                a.on_nic_to_vc(pid, node.0, ch_id, now);
            }
            self.audit_check_channel(ch_id, "nic push");
            self.try_start(ch_id);
        }
    }

    /// Compute a packet's real route (terminal-up, router hops,
    /// terminal-down) with the current congestion state.
    fn fix_route(&mut self, pid: PacketId) {
        let (src, dst) = {
            let m = &self.messages[self.packets[pid.0 as usize].msg.0 as usize];
            (m.src, m.dst)
        };
        self.route_scratch.clear();
        self.route_scratch.push(self.topo.terminal_up(src));
        {
            // Split borrows: the route computer needs occupancy lookups.
            let channels = &self.channels;
            let topo = &self.topo;
            let params = &self.params;
            let mut body = Vec::new();
            std::mem::swap(&mut body, &mut self.route_scratch);
            self.router.compute(
                topo,
                params,
                src,
                dst,
                |c| channels[c.index()].total_occupancy,
                &mut body,
            );
            std::mem::swap(&mut body, &mut self.route_scratch);
        }
        self.route_scratch.push(self.topo.terminal_down(dst));
        let p = &mut self.packets[pid.0 as usize];
        p.route = Route::from_slice(&self.route_scratch);
        p.routed = true;
    }

    /// Attempt to begin transmitting on `ch_id`: round-robin over VCs with
    /// queued packets whose next buffer can accept them.
    fn try_start(&mut self, ch_id: ChannelId) {
        if self.channels[ch_id.index()].busy {
            return;
        }
        for v in arbiter::rr_scan(self.channels[ch_id.index()].rr_next) {
            let Some(pid) = self.channels[ch_id.index()].vcs[v].queue.front() else {
                continue;
            };
            // Route the packet at its source router, with the congestion
            // state at the moment it first reaches the head of the
            // injection buffer.
            if !self.packets[pid.0 as usize].routed {
                self.fix_route(pid);
            }
            let (size, next_ch, next_vc) = {
                let p = &self.packets[pid.0 as usize];
                debug_assert_eq!(p.current_channel(), ch_id);
                debug_assert_eq!(Packet::vc_at(p.hop), v);
                (p.size as u64, p.next_channel(), p.hop as usize + 1)
            };
            // Shard mode: a global channel's far end belongs to another
            // group-replica. No cross-shard credit is reserved (the
            // importer has a landing queue instead), and the arrival is
            // the importer's business — transmission completes locally at
            // TxDone, which exports the packet as a wire record.
            let exports =
                self.shard.is_some() && self.channels[ch_id.index()].class == ChannelClass::Global;
            // Reserve space downstream (final hops sink into the node).
            if let Some(nc) = next_ch.filter(|_| !exports) {
                let now = self.queue.now();
                let ncs = &mut self.channels[nc.index()];
                let cap = self.params.vc_capacity(ncs.class);
                if ncs.vcs[next_vc].occupancy + size > cap {
                    ncs.mark_full(next_vc, now);
                    let registered = arbiter::park_waiter(&mut self.channels, nc, ch_id);
                    if let Some(a) = self.audit.as_mut() {
                        a.on_park(ch_id, nc, registered, now);
                    }
                    self.audit_check_channel(nc, "reserve refused");
                    continue;
                }
                ncs.vcs[next_vc].occupancy += size;
                ncs.total_occupancy += size;
                self.total_queued += size;
                if let Some(a) = self.audit.as_mut() {
                    a.on_reserve(pid, nc, next_vc, now);
                }
                self.audit_check_channel(nc, "reserve");
            }
            // Start transmission.
            let ch = &mut self.channels[ch_id.index()];
            ch.busy = true;
            ch.tx_vc = v as u8;
            ch.rr_next = ((v + 1) % MAX_ROUTE_LEN) as u8;
            ch.traffic += size;
            let ser = ch.bandwidth.serialization_time(size);
            ch.busy_time += ser;
            let extra = ch.arrival_extra;
            if let Some(tl) = &mut self.traffic_timeline {
                tl.record(ch.class, self.queue.now(), size);
            }
            if let Some(ct) = &mut self.coarse_timeline {
                ct.record(class_index(ch.class), self.queue.now(), size);
            }
            if let Some(a) = self.audit.as_mut() {
                a.on_tx_start(pid, ch_id, v, self.queue.now());
            }
            self.audit_check_channel(ch_id, "tx start");
            self.queue.schedule_after(ser, NetEvent::TxDone(ch_id));
            if exports {
                // No local arrival: the packet leaves this replica when
                // its last byte clears the channel (at TxDone).
                return;
            }
            // The arrival joins the channel's in-flight FIFO instead of
            // the heap; its sequence number is reserved *here* so the
            // global event order is exactly as if it had been scheduled
            // (same program point, same seq). Only the FIFO head keeps a
            // heap entry.
            let at = self.queue.now() + ser + extra;
            let seq = self.queue.reserve_seq();
            let inflight = &mut self.channels[ch_id.index()].inflight;
            debug_assert!(inflight
                .back()
                .is_none_or(|prev| (prev.at, prev.seq) < (at, seq)));
            let was_empty = inflight.is_empty();
            inflight.push_back(InFlight { pid, at, seq });
            if was_empty {
                self.queue
                    .schedule_reserved(at, seq, NetEvent::Arrive(ch_id));
            }
            return;
        }
    }

    fn handle_tx_done(&mut self, ch_id: ChannelId) {
        let now = self.queue.now();
        let (pid, v, node_to_push) = {
            let ch = &mut self.channels[ch_id.index()];
            debug_assert!(ch.busy);
            let v = ch.tx_vc as usize;
            let pid = ch.vcs[v]
                .queue
                .pop_front(&self.packets)
                .expect("tx_vc queue cannot be empty at TxDone");
            let size = self.packets[pid.0 as usize].size as u64;
            ch.vcs[v].occupancy -= size;
            ch.total_occupancy -= size;
            self.total_queued -= size;
            ch.busy = false;
            ch.clear_full(v, now);
            let node = if ch.class == ChannelClass::TerminalUp {
                // terminal-up channel id == node id by construction
                Some(NodeId(ch_id.0))
            } else {
                None
            };
            (pid, v, node)
        };
        if let Some(a) = self.audit.as_mut() {
            a.on_tx_done(pid, ch_id, v, now);
        }
        self.audit_check_channel(ch_id, "tx done");
        if let Some(node) = node_to_push {
            self.nic_push(node);
        }
        if self.shard.is_some() {
            if self.channels[ch_id.index()].class == ChannelClass::Global {
                self.export_packet(pid, ch_id, now);
            }
            // Freed space may admit imports parked in the landing queue.
            self.drain_landing(ch_id);
        }
        let waiters = arbiter::take_waiters(&mut self.channels, ch_id);
        if let Some(a) = self.audit.as_mut() {
            a.on_wake(ch_id, &waiters, now);
        }
        for w in waiters {
            self.try_start(w);
        }
        self.try_start(ch_id);
    }

    fn handle_arrive(&mut self, pid: PacketId) {
        let (at_last, msg) = {
            let p = &mut self.packets[pid.0 as usize];
            let next = p.hop as usize + 1;
            if next >= p.route.len() {
                (true, p.msg)
            } else {
                p.hop = next as u8;
                (false, p.msg)
            }
        };
        if !at_last {
            // Enqueue at the next channel (space was reserved at TxDone's
            // transmission start); then see if that channel can transmit.
            let (ch_id, v) = {
                let p = &self.packets[pid.0 as usize];
                (p.current_channel(), Packet::vc_at(p.hop))
            };
            self.channels[ch_id.index()].vcs[v]
                .queue
                .push_back(&mut self.packets, pid);
            if let Some(a) = self.audit.as_mut() {
                a.on_enqueue(pid, ch_id, v, self.queue.now());
            }
            self.audit_check_channel(ch_id, "arrive enqueue");
            self.try_start(ch_id);
            return;
        }
        // Final arrival at the destination node.
        self.packets_delivered += 1;
        let hops = self.packets[pid.0 as usize].route.router_hops() as u64;
        self.free_packets.push(pid);
        if let Some(a) = self.audit.as_mut() {
            a.on_delivered(pid, msg, self.queue.now());
        }
        let m = &mut self.messages[msg.0 as usize];
        m.hops_accum += hops;
        m.remaining_packets -= 1;
        if m.remaining_packets == 0 {
            let delivery = Delivery {
                msg,
                src: m.src,
                dst: m.dst,
                bytes: m.bytes,
                tag: m.tag,
                injected_at: m.injected_at,
                completed_at: self.queue.now(),
                avg_hops: m.avg_hops(),
            };
            self.deliveries.push_back(delivery);
            self.free_messages.push(msg);
            if let Some(a) = self.audit.as_mut() {
                a.on_message_complete(msg, self.queue.now());
            }
            let gid = self.messages[msg.0 as usize].gid;
            if gid != 0 {
                // Drop the cross-replica attribution entry (present when
                // this slot received imports, or registered itself as a
                // detour origin at export).
                if let Some(shard) = self.shard.as_mut() {
                    shard.remote.remove(&gid);
                }
            }
        }
    }

    // ----- shard (PDES) mode -----------------------------------------------

    /// Put a fresh network into shard mode as the replica owning `group`.
    /// The replica simulates only the channels whose transmitting end sits
    /// in its group; packets crossing a global link leave as
    /// [`WireRecord`]s and enter via [`Network::import_records`].
    pub(crate) fn enable_shard(&mut self, group: u32) {
        assert!(
            self.events_processed == 0 && self.messages.is_empty(),
            "shard mode can only be enabled on a fresh network"
        );
        let groups = self.topo.config().groups as usize;
        let count = self.topo.channel_count();
        let mut owner = Vec::with_capacity(count);
        let mut global_dst = vec![u32::MAX; count];
        for (id, info) in self.topo.channels() {
            let src_group = match info.src {
                ChannelEnd::Router(r) => self.topo.router_group(r).0,
                ChannelEnd::Node(n) => self.topo.node_group(n).0,
            };
            owner.push(src_group);
            if info.class == ChannelClass::Global {
                if let ChannelEnd::Router(r) = info.dst {
                    global_dst[id.index()] = self.topo.router_group(r).0;
                }
            }
        }
        if let Some(obs) = self.obs.as_mut() {
            obs.set_owned_mask(owner.iter().map(|&g| g == group).collect());
        }
        self.shard = Some(Box::new(ShardState::new(
            group, groups, count, owner, global_dst,
        )));
    }

    /// The shard state, if this replica runs in shard mode.
    pub(crate) fn shard_state(&self) -> Option<&ShardState> {
        self.shard.as_deref()
    }

    /// Ingest one window's worth of cross-group records, pre-sorted by
    /// the caller on `(t_arr, src_group, emit_seq)` so event sequence
    /// numbers are assigned identically at any worker count.
    pub(crate) fn import_records(&mut self, recs: &[WireRecord]) {
        for rec in recs {
            self.import_record(rec);
        }
    }

    fn import_record(&mut self, rec: &WireRecord) {
        let now = self.queue.now();
        debug_assert!(
            rec.t_arr >= now,
            "import at {:?} arrived behind the replica clock {:?}",
            rec.t_arr,
            now
        );
        let hop = rec.hop + 1;
        // The packet terminates here unless its remaining route crosses
        // another global link (it may re-export immediately: the entry
        // router can own the next global channel).
        let terminates = !rec.route.as_slice()[hop as usize..]
            .iter()
            .any(|c| self.channels[c.index()].class == ChannelClass::Global);
        let msg = if terminates {
            let shard = self.shard.as_mut().expect("import outside shard mode");
            match shard.remote.get(&rec.gid) {
                // Either the destination-side slot from an earlier packet
                // of the same message, or — when source and destination
                // share this group — the detour-origin slot itself.
                Some(&m) => m,
                None => {
                    let state = MessageState {
                        src: rec.src,
                        dst: rec.dst,
                        bytes: rec.bytes,
                        tag: rec.tag,
                        remaining_packets: rec.total_packets,
                        total_packets: rec.total_packets,
                        hops_accum: 0,
                        injected_at: rec.injected_at,
                        kind: MessageKind::Delivering,
                        gid: rec.gid,
                    };
                    let m = self.alloc_message(state);
                    self.shard
                        .as_mut()
                        .expect("import outside shard mode")
                        .remote
                        .insert(rec.gid, m);
                    if let Some(a) = self.audit.as_mut() {
                        a.on_remote_message(m, rec.bytes.max(1), now);
                    }
                    m
                }
            }
        } else {
            // One transit shadow per passing packet: it carries the
            // message metadata for the onward wire record and frees at
            // re-export.
            let state = MessageState {
                src: rec.src,
                dst: rec.dst,
                bytes: rec.bytes,
                tag: rec.tag,
                remaining_packets: 1,
                total_packets: rec.total_packets,
                hops_accum: 0,
                injected_at: rec.injected_at,
                kind: MessageKind::Transit,
                gid: rec.gid,
            };
            let m = self.alloc_message(state);
            if let Some(a) = self.audit.as_mut() {
                a.on_remote_message(m, rec.size as u64, now);
            }
            m
        };
        {
            let shard = self.shard.as_mut().expect("import outside shard mode");
            let from = &mut shard.imported_from[rec.src_group as usize];
            from.0 += rec.size as u64;
            from.1 += 1;
        }
        let packet = Packet {
            msg,
            size: rec.size,
            hop,
            routed: true,
            route: rec.route,
            next: crate::packet::NO_PACKET,
        };
        let pid = match self.free_packets.pop() {
            Some(pid) => {
                self.packets[pid.0 as usize] = packet;
                pid
            }
            None => {
                let pid = PacketId(self.packets.len() as u32);
                self.packets.push(packet);
                pid
            }
        };
        if let Some(a) = self.audit.as_mut() {
            a.on_packet_imported(pid, msg, rec.size, now);
        }
        self.queue.schedule(rec.t_arr, NetEvent::Import(pid));
    }

    /// An imported packet lands at its first in-group channel. With
    /// buffer space it enqueues like any arrival; otherwise it parks in
    /// the channel's landing queue (no cross-shard credit was reserved —
    /// the conservative-window analogue of an input buffer, drained in
    /// FIFO order as the channel transmits).
    fn handle_import(&mut self, pid: PacketId) {
        let now = self.queue.now();
        let (ch_id, v, size) = {
            let p = &self.packets[pid.0 as usize];
            (p.current_channel(), Packet::vc_at(p.hop), p.size as u64)
        };
        let ch = &mut self.channels[ch_id.index()];
        let cap = self.params.vc_capacity(ch.class);
        if ch.vcs[v].occupancy + size > cap {
            self.shard
                .as_mut()
                .expect("import outside shard mode")
                .landing[ch_id.index()]
            .push_back(pid);
            if let Some(a) = self.audit.as_mut() {
                a.on_landing(pid, ch_id, now);
            }
            return;
        }
        ch.vcs[v].occupancy += size;
        ch.total_occupancy += size;
        self.total_queued += size;
        self.channels[ch_id.index()].vcs[v]
            .queue
            .push_back(&mut self.packets, pid);
        if let Some(a) = self.audit.as_mut() {
            a.on_ingress_enqueue(pid, ch_id, v, now);
        }
        self.audit_check_channel(ch_id, "import enqueue");
        self.try_start(ch_id);
    }

    /// Admit landed imports into `ch_id`'s VCs while space allows (called
    /// after the channel's TxDone freed occupancy).
    fn drain_landing(&mut self, ch_id: ChannelId) {
        loop {
            let Some(&pid) = self
                .shard
                .as_ref()
                .expect("landing drain outside shard mode")
                .landing[ch_id.index()]
            .front() else {
                return;
            };
            let now = self.queue.now();
            let (v, size) = {
                let p = &self.packets[pid.0 as usize];
                debug_assert_eq!(p.current_channel(), ch_id);
                (Packet::vc_at(p.hop), p.size as u64)
            };
            let ch = &mut self.channels[ch_id.index()];
            let cap = self.params.vc_capacity(ch.class);
            if ch.vcs[v].occupancy + size > cap {
                return;
            }
            ch.vcs[v].occupancy += size;
            ch.total_occupancy += size;
            self.total_queued += size;
            self.shard.as_mut().unwrap().landing[ch_id.index()].pop_front();
            self.channels[ch_id.index()].vcs[v]
                .queue
                .push_back(&mut self.packets, pid);
            if let Some(a) = self.audit.as_mut() {
                a.on_landing_to_vc(pid, ch_id, v, now);
            }
            self.audit_check_channel(ch_id, "landing drain");
        }
    }

    /// A packet's last byte cleared a global channel: hand it to the
    /// destination group as a wire record and free the local slot.
    fn export_packet(&mut self, pid: PacketId, ch_id: ChannelId, now: Ns) {
        let (msg, size, hop, route) = {
            let p = &self.packets[pid.0 as usize];
            (p.msg, p.size, p.hop, p.route)
        };
        let extra = self.channels[ch_id.index()].arrival_extra;
        let (gid, kind, rec) = {
            let m = &self.messages[msg.0 as usize];
            (
                m.gid,
                m.kind,
                WireRecord {
                    t_arr: now + extra,
                    src_group: 0, // filled below
                    emit_seq: 0,  // filled below
                    gid: m.gid,
                    size,
                    hop,
                    route,
                    src: m.src,
                    dst: m.dst,
                    bytes: m.bytes,
                    tag: m.tag,
                    injected_at: m.injected_at,
                    total_packets: m.total_packets,
                },
            )
        };
        debug_assert!(gid != 0, "exported packet from a gid-less message");
        {
            let shard = self.shard.as_mut().expect("export outside shard mode");
            let dst_group = shard.global_dst[ch_id.index()];
            debug_assert!(dst_group != u32::MAX && dst_group != shard.group);
            let mut rec = rec;
            rec.src_group = shard.group;
            rec.emit_seq = shard.emit_seq[dst_group as usize];
            shard.emit_seq[dst_group as usize] += 1;
            let to = &mut shard.exported_to[dst_group as usize];
            to.0 += size as u64;
            to.1 += 1;
            shard.outboxes[dst_group as usize].push(rec);
        }
        if let Some(a) = self.audit.as_mut() {
            a.on_exported(pid, msg, now);
        }
        self.free_packets.push(pid);
        match kind {
            MessageKind::Delivering => {
                // A Valiant detour from a same-group source: remember the
                // slot so the returning import re-attaches to it.
                self.shard
                    .as_mut()
                    .unwrap()
                    .remote
                    .entry(gid)
                    .or_insert(msg);
            }
            MessageKind::Forwarding | MessageKind::Transit => {
                let m = &mut self.messages[msg.0 as usize];
                m.remaining_packets -= 1;
                if m.remaining_packets == 0 {
                    self.free_messages.push(msg);
                    if let Some(a) = self.audit.as_mut() {
                        a.on_message_closed(msg, now);
                    }
                }
            }
        }
    }

    /// This window's outbound records toward `dst_group` (the worker
    /// moves them into the shared edge mailbox).
    pub(crate) fn take_outbox(&mut self, dst_group: usize) -> &mut Vec<WireRecord> {
        &mut self
            .shard
            .as_mut()
            .expect("outbox outside shard mode")
            .outboxes[dst_group]
    }

    /// Move accumulated deliveries into `into` (the worker forwards them
    /// to the coordinator once per window).
    pub(crate) fn take_deliveries_into(&mut self, into: &mut Vec<Delivery>) {
        into.extend(self.deliveries.drain(..));
    }

    /// Firing time of the earliest pending event, if any.
    pub(crate) fn next_event_time(&self) -> Option<Ns> {
        self.queue.peek_time()
    }

    /// Like [`Network::obs_report`], but closing the sample series at a
    /// caller-supplied global end time, so every replica of a sharded run
    /// produces the same sample grid and the series merge index-aligned.
    pub(crate) fn obs_report_closed_at(&mut self, global_end: Ns) -> Option<ObsReport> {
        let end = self.queue.now().max(global_end);
        if let Some(obs) = self.obs.as_mut() {
            obs.close(end, &self.channels, &self.params, self.router.stats());
        }
        let high_water = self.queue.high_water();
        self.obs
            .as_ref()
            .map(|o| o.report(high_water, self.router.stats()))
    }

    /// Snapshot one channel for the cross-replica metrics merge; open
    /// saturation intervals close at the run-wide end time `t_end`.
    pub(crate) fn snapshot_channel(&self, id: ChannelId, t_end: Ns) -> ChannelSnapshot {
        let info = self.topo.channel(id);
        let ch = &self.channels[id.index()];
        ChannelSnapshot {
            id,
            class: info.class,
            src_router: match info.src {
                ChannelEnd::Router(r) => Some(r),
                ChannelEnd::Node(n) => Some(self.topo.node_router(n)),
            },
            traffic_bytes: ch.traffic,
            saturated_time: ch.saturated_until(t_end),
            busy_time: ch.busy_time,
        }
    }

    // ----- metrics ---------------------------------------------------------

    /// Snapshot per-channel traffic and saturation. A channel still in a
    /// full state has its open interval closed at the current time.
    pub fn metrics(&self) -> NetworkMetrics {
        let now = self.queue.now();
        let snapshots = self
            .topo
            .channels()
            .map(|(id, info)| {
                let ch = &self.channels[id.index()];
                ChannelSnapshot {
                    id,
                    class: info.class,
                    src_router: match info.src {
                        ChannelEnd::Router(r) => Some(r),
                        ChannelEnd::Node(n) => Some(self.topo.node_router(n)),
                    },
                    traffic_bytes: ch.traffic,
                    saturated_time: ch.saturated_until(now),
                    busy_time: ch.busy_time,
                }
            })
            .collect();
        NetworkMetrics::new(snapshots)
    }

    /// Total queued bytes at a channel (all VCs). Exposed for tests and
    /// congestion-aware workloads.
    pub fn channel_occupancy(&self, ch: ChannelId) -> Bytes {
        self.channels[ch.index()].total_occupancy
    }

    /// The fixed per-router traversal latency.
    pub fn router_latency(&self) -> Ns {
        self.router_latency
    }

    /// Total bytes currently queued or reserved in every channel buffer —
    /// an O(1) instantaneous network-load gauge for time-series sampling.
    pub fn total_queued_bytes(&self) -> Bytes {
        self.total_queued
    }

    /// Packets currently alive (injected or in flight, not yet delivered).
    pub fn packets_in_flight(&self) -> usize {
        self.packets.len() - self.free_packets.len()
    }

    /// Bin count of the streaming-mode coarse timeline: enough bins for
    /// fig4-style plots, small enough that five lanes stay under 24 KiB.
    const COARSE_TIMELINE_BINS: usize = 512;

    /// Start recording a per-class traffic time series with the given bin
    /// width (call before injecting traffic). In `MetricsMode::Dense` this
    /// is the exact [`TrafficTimeline`] (bins grow with run duration, up
    /// to its internal cap); in streaming mode it is a [`CoarseTimeline`]
    /// whose bin *width* doubles instead — memory stays fixed no matter
    /// how long the run is, starting from the same `bin_width`.
    pub fn enable_traffic_timeline(&mut self, bin_width: Ns) {
        if self.params.metrics.is_streaming() {
            self.coarse_timeline = Some(CoarseTimeline::new(
                bin_width,
                crate::metrics::TIMELINE_CLASSES,
                Self::COARSE_TIMELINE_BINS,
            ));
        } else {
            self.traffic_timeline = Some(TrafficTimeline::new(bin_width));
        }
    }

    /// The recorded dense traffic timeline, if enabled (dense mode only).
    pub fn traffic_timeline(&self) -> Option<&TrafficTimeline> {
        self.traffic_timeline.as_ref()
    }

    /// The recorded coarsening traffic timeline, if enabled (streaming
    /// mode only).
    pub fn coarse_timeline(&self) -> Option<&CoarseTimeline> {
        self.coarse_timeline.as_ref()
    }

    /// Approximate heap bytes currently held by metric structures:
    /// timelines plus the telemetry collector's series and link digest.
    /// Simulation state (channels, packets, the event queue) is excluded
    /// — this is the quantity the streaming mode bounds.
    pub fn metric_bytes_approx(&self) -> usize {
        let tl = self
            .traffic_timeline
            .as_ref()
            .map_or(0, TrafficTimeline::approx_bytes);
        let ct = self
            .coarse_timeline
            .as_ref()
            .map_or(0, CoarseTimeline::approx_bytes);
        let obs = self.obs.as_ref().map_or(0, |o| o.approx_metric_bytes());
        tl + ct + obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfly_topology::TopologyConfig;

    fn net(routing: Routing) -> Network {
        let topo = Arc::new(Topology::build(TopologyConfig::small_test()));
        Network::new(topo, NetworkParams::default(), routing, 12345)
    }

    #[test]
    fn single_small_message_delivers() {
        let mut n = net(Routing::Minimal);
        let id = n.send(Ns::ZERO, NodeId(0), NodeId(1), 100, 7);
        let d = n.poll_delivery().expect("must deliver");
        assert_eq!(d.msg, id);
        assert_eq!(d.src, NodeId(0));
        assert_eq!(d.dst, NodeId(1));
        assert_eq!(d.bytes, 100);
        assert_eq!(d.tag, 7);
        assert!(d.completed_at > Ns::ZERO);
        // Nodes 0 and 1 share router 0: zero router hops.
        assert_eq!(d.avg_hops, 0.0);
        assert!(n.poll_delivery().is_none());
        assert!(n.is_idle());
    }

    #[test]
    fn same_router_latency_is_two_terminal_serializations() {
        let mut n = net(Routing::Minimal);
        n.send(Ns::ZERO, NodeId(0), NodeId(1), 4096, 0);
        let d = n.poll_delivery().unwrap();
        let topo = n.topology();
        let ser = topo
            .class_bandwidth(ChannelClass::TerminalUp)
            .serialization_time(4096);
        let term_lat = topo.class_latency(ChannelClass::TerminalUp);
        let expected = (ser + term_lat + topo.config().router_latency) + (ser + term_lat);
        assert_eq!(d.latency(), expected);
    }

    #[test]
    fn multi_packet_message_counts_packets() {
        let mut n = net(Routing::Minimal);
        n.send(Ns::ZERO, NodeId(0), NodeId(8), 10_000, 0); // 3 packets
        let d = n.poll_delivery().unwrap();
        assert_eq!(d.bytes, 10_000);
        assert_eq!(n.packets_delivered(), 3);
    }

    #[test]
    fn zero_byte_message_still_delivers() {
        let mut n = net(Routing::Minimal);
        n.send(Ns::ZERO, NodeId(0), NodeId(30), 0, 1);
        let d = n.poll_delivery().unwrap();
        assert_eq!(d.bytes, 0);
    }

    #[test]
    fn cross_group_message_has_hops() {
        let mut n = net(Routing::Minimal);
        let last = NodeId(n.topology().config().total_nodes() - 1);
        n.send(Ns::ZERO, NodeId(0), last, 4096, 0);
        let d = n.poll_delivery().unwrap();
        assert!(d.avg_hops >= 1.0, "hops {}", d.avg_hops);
        assert!(d.avg_hops <= 5.0);
    }

    #[test]
    fn deliveries_ordered_by_completion_time() {
        let mut n = net(Routing::Minimal);
        for i in 0..20 {
            let dst = NodeId((i * 3 + 1) % 64);
            n.send(Ns(i as u64 * 10), NodeId(0), dst, 2048, i as u64);
        }
        let mut prev = Ns::ZERO;
        while let Some(d) = n.poll_delivery() {
            assert!(d.completed_at >= prev);
            prev = d.completed_at;
        }
    }

    #[test]
    fn traffic_recorded_on_used_channels() {
        let mut n = net(Routing::Minimal);
        n.send(Ns::ZERO, NodeId(0), NodeId(63), 8192, 0);
        n.run_to_idle();
        let m = n.metrics();
        let total_traffic: u64 = m.channels().map(|c| c.traffic_bytes).sum();
        // Every hop counts the packet bytes once; at least up+down.
        assert!(total_traffic >= 2 * 8192, "traffic {total_traffic}");
    }

    #[test]
    fn backpressure_limits_injection_buffer() {
        // Flood one terminal link; the 8 KiB injection VC can hold at most
        // two 4 KiB packets, everything else waits in the NIC.
        let mut n = net(Routing::Minimal);
        for i in 0..50 {
            n.send(Ns::ZERO, NodeId(0), NodeId(32), 4096, i);
        }
        // After injection events fire, occupancy never exceeds capacity.
        n.run_until(Ns(1));
        let up = n.topology().terminal_up(NodeId(0));
        assert!(n.channel_occupancy(up) <= 8 * 1024);
        n.run_to_idle();
        assert_eq!(n.drain_deliveries().len(), 50);
    }

    #[test]
    fn saturation_accumulates_under_congestion() {
        let mut n = net(Routing::Minimal);
        // Many nodes hammer one destination: its terminal-down link and
        // the local links feeding it must saturate.
        for src in 1..32u32 {
            for k in 0..4 {
                n.send(
                    Ns::ZERO,
                    NodeId(src),
                    NodeId(0),
                    16 * 4096,
                    (src * 10 + k) as u64,
                );
            }
        }
        n.run_to_idle();
        let m = n.metrics();
        let saturated: u64 = m.channels().map(|c| c.saturated_time.as_nanos()).sum();
        assert!(saturated > 0, "expected some saturation");
    }

    #[test]
    fn no_saturation_on_idle_paths() {
        let mut n = net(Routing::Minimal);
        n.send(Ns::ZERO, NodeId(0), NodeId(2), 1024, 0);
        n.run_to_idle();
        let m = n.metrics();
        // A single small message cannot fill any 8 KiB buffer.
        let saturated: u64 = m.channels().map(|c| c.saturated_time.as_nanos()).sum();
        assert_eq!(saturated, 0);
    }

    #[test]
    fn conservation_all_messages_delivered() {
        for routing in [Routing::Minimal, Routing::Adaptive] {
            let mut n = net(routing);
            let mut rng = Xoshiro256::seed_from(55);
            let nodes = n.topology().config().total_nodes();
            let total = 300;
            for i in 0..total {
                let s = NodeId(rng.next_below(nodes as u64) as u32);
                let d = NodeId(rng.next_below(nodes as u64) as u32);
                let bytes = rng.range_inclusive(1, 50_000);
                n.send(Ns(i as u64 * 50), s, d, bytes, i as u64);
            }
            let mut count = 0;
            let mut tags = std::collections::HashSet::new();
            while let Some(d) = n.poll_delivery() {
                count += 1;
                tags.insert(d.tag);
            }
            assert_eq!(count, total);
            assert_eq!(tags.len(), total);
            assert!(n.is_idle());
        }
    }

    #[test]
    fn adaptive_relieves_local_congestion_under_locality() {
        // The paper's Section IV-A observation: when contiguous placement
        // confines skewed traffic to a few local links, minimal routing
        // saturates them; adaptive detours onto idle paths, reducing
        // local-link saturation at the cost of extra hops. All-to-all
        // within one chassis (router row) keeps the hot set small while
        // leaving column/global links free as detours.
        let run = |routing: Routing| -> (u64, f64) {
            let topo = Arc::new(Topology::build(TopologyConfig::small_test()));
            // Low detour bias: this test checks the *mechanism* (detours
            // relieve a skewed hotspot); the production default is tuned
            // for the paper's workloads, where minimal paths are longer
            // and the signal is proportionally stronger.
            let params = NetworkParams {
                adaptive_bias_bytes: 2048,
                ..NetworkParams::default()
            };
            let mut n = Network::new(topo.clone(), params, routing, 9);
            let row_nodes = topo.config().cols * topo.config().nodes_per_router;
            // All-to-all inside the first router row, heavy enough to back
            // queues up past the UGAL detour threshold.
            for i in 0..row_nodes {
                for j in 0..row_nodes {
                    if i != j {
                        n.send(
                            Ns::ZERO,
                            NodeId(i),
                            NodeId(j),
                            256 * 1024,
                            (i * 100 + j) as u64,
                        );
                    }
                }
            }
            n.run_to_idle();
            let m = n.metrics();
            let local_sat: u64 = m
                .channels()
                .filter(|c| c.class.is_local())
                .map(|c| c.saturated_time.as_nanos())
                .sum();
            let hops: f64 = {
                let ds = n.drain_deliveries();
                ds.iter().map(|d| d.avg_hops).sum::<f64>() / ds.len() as f64
            };
            (local_sat, hops)
        };
        let (sat_min, hops_min) = run(Routing::Minimal);
        let (sat_adp, hops_adp) = run(Routing::Adaptive);
        assert!(
            sat_adp < sat_min,
            "adaptive should reduce local saturation: {sat_adp} vs {sat_min}"
        );
        assert!(
            hops_adp > hops_min,
            "adaptive pays extra hops: {hops_adp} vs {hops_min}"
        );
    }

    #[test]
    fn run_until_respects_time_bound() {
        let mut n = net(Routing::Minimal);
        n.send(Ns(1_000_000), NodeId(0), NodeId(5), 1024, 0);
        n.run_until(Ns(500_000));
        assert!(n.drain_deliveries().is_empty());
        assert_eq!(n.now(), Ns::ZERO); // nothing fired yet
        n.run_until(Ns(10_000_000));
        assert_eq!(n.drain_deliveries().len(), 1);
    }

    #[test]
    fn message_and_packet_slots_recycle() {
        let mut n = net(Routing::Minimal);
        for round in 0..10u64 {
            n.send(Ns(round * 100_000), NodeId(0), NodeId(9), 4096, round);
        }
        n.run_to_idle();
        assert_eq!(n.drain_deliveries().len(), 10);
        // All packets freed: arena high-water mark stays small because
        // rounds are sequential in time.
        assert!(n.packets.len() <= 4, "arena grew to {}", n.packets.len());
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let run = || {
            let mut n = net(Routing::Adaptive);
            let mut rng = Xoshiro256::seed_from(777);
            for i in 0..100u64 {
                let s = NodeId(rng.next_below(64) as u32);
                let d = NodeId(rng.next_below(64) as u32);
                n.send(Ns(i * 200), s, d, 10_000, i);
            }
            let mut out = Vec::new();
            while let Some(d) = n.poll_delivery() {
                out.push((d.tag, d.completed_at));
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_rejects_bad_node() {
        let mut n = net(Routing::Minimal);
        n.send(Ns::ZERO, NodeId(0), NodeId(10_000), 1, 0);
    }

    #[test]
    fn send_in_the_past_is_clamped_to_now() {
        // Regression: `send` used to forward a stale `at < now` straight
        // into the event queue, which panics on causality violations. The
        // documented contract is now "clamped to now".
        let mut n = net(Routing::Minimal);
        n.schedule_wakeup(Ns::from_ms(1));
        assert_eq!(n.poll(), Some(NetworkEvent::Wakeup));
        assert_eq!(n.now(), Ns::from_ms(1));
        n.send(Ns::ZERO, NodeId(0), NodeId(1), 100, 9);
        let d = n.poll_delivery().expect("clamped send must deliver");
        assert_eq!(d.tag, 9);
        assert_eq!(d.injected_at, Ns::from_ms(1), "injection clamped to now");
        assert!(d.completed_at > Ns::from_ms(1));
    }

    #[test]
    fn parked_channel_is_woken_and_drains() {
        // Saturate one destination hard enough that upstream channels must
        // park on the terminal-down link's wait list (exercising the
        // in_waitlist protocol end to end), then verify full drain.
        let mut n = net(Routing::Minimal);
        for src in 1..16u32 {
            n.send(Ns::ZERO, NodeId(src), NodeId(0), 64 * 1024, src as u64);
        }
        n.run_to_idle();
        assert_eq!(n.drain_deliveries().len(), 15);
        assert_eq!(n.total_queued_bytes(), 0);
        for ch in &n.channels {
            assert!(!ch.in_waitlist, "waitlist bit must clear at drain");
            assert!(ch.waiters.is_empty(), "wait lists must empty at drain");
        }
    }

    #[test]
    fn traffic_timeline_partitions_total_traffic() {
        let mut n = net(Routing::Minimal);
        n.enable_traffic_timeline(Ns::from_us(1));
        for i in 0..20u64 {
            n.send(
                Ns(i * 500),
                NodeId((i % 8) as u32),
                NodeId(32 + (i % 8) as u32),
                20_000,
                i,
            );
        }
        n.run_to_idle();
        let m = n.metrics();
        let tl = n.traffic_timeline().expect("enabled");
        for class in [
            ChannelClass::TerminalUp,
            ChannelClass::TerminalDown,
            ChannelClass::Global,
        ] {
            let series_total: u64 = tl.series(class).iter().sum();
            assert_eq!(series_total, m.total_traffic(class), "{class:?}");
        }
        let local_total: u64 = tl.local_series().iter().sum();
        assert_eq!(
            local_total,
            m.total_traffic(ChannelClass::LocalRow) + m.total_traffic(ChannelClass::LocalCol)
        );
        assert!(
            tl.series(ChannelClass::Global).len() > 1,
            "spans multiple bins"
        );
    }

    #[test]
    fn streaming_timeline_matches_dense_mass_with_bounded_bins() {
        use dfly_obs::MetricsMode;
        let drive = |n: &mut Network| {
            n.enable_traffic_timeline(Ns::from_us(1));
            for i in 0..20u64 {
                n.send(
                    Ns(i * 500),
                    NodeId((i % 8) as u32),
                    NodeId(32 + (i % 8) as u32),
                    20_000,
                    i,
                );
            }
            n.run_to_idle();
        };

        let mut dense = net(Routing::Minimal);
        drive(&mut dense);
        let dense_total: Vec<u64> = [
            ChannelClass::TerminalUp,
            ChannelClass::TerminalDown,
            ChannelClass::LocalRow,
            ChannelClass::LocalCol,
            ChannelClass::Global,
        ]
        .iter()
        .map(|&c| dense.traffic_timeline().unwrap().series(c).iter().sum())
        .collect();

        let topo = Arc::new(Topology::build(TopologyConfig::small_test()));
        let params = NetworkParams {
            metrics: MetricsMode::Streaming { reservoir_k: 64 },
            ..NetworkParams::default()
        };
        let mut streaming = Network::new(topo, params, Routing::Minimal, 12345);
        drive(&mut streaming);
        assert!(streaming.traffic_timeline().is_none());
        let ct = streaming.coarse_timeline().expect("streaming timeline");
        // Same bytes per class — coarsening redistributes, never loses.
        for (lane, &want) in dense_total.iter().enumerate() {
            assert_eq!(ct.total(lane), want, "lane {lane}");
        }
        assert!(ct.lane_count() == crate::metrics::TIMELINE_CLASSES);
        for lane in 0..ct.lane_count() {
            assert!(ct.series(lane).len() <= Network::COARSE_TIMELINE_BINS);
        }
        // Simulation outputs are mode-independent.
        assert_eq!(
            dense.metrics().total_traffic(ChannelClass::Global),
            streaming.metrics().total_traffic(ChannelClass::Global)
        );
        assert!(streaming.metric_bytes_approx() > 0);
    }

    #[test]
    fn queued_bytes_gauge_returns_to_zero() {
        let mut n = net(Routing::Minimal);
        for i in 0..20 {
            n.send(Ns(i * 100), NodeId(0), NodeId(40), 20_000, i);
        }
        n.run_until(Ns(5_000));
        // While traffic is in flight the gauge is positive...
        let mid = n.total_queued_bytes();
        assert!(mid > 0 || n.packets_in_flight() > 0);
        n.run_to_idle();
        // ...and it fully drains with the network.
        assert_eq!(n.total_queued_bytes(), 0);
        assert_eq!(n.packets_in_flight(), 0);
    }

    #[test]
    fn wakeups_interleave_with_deliveries_in_time_order() {
        let mut n = net(Routing::Minimal);
        n.send(Ns::ZERO, NodeId(0), NodeId(1), 100, 0);
        n.schedule_wakeup(Ns::from_ms(1));
        n.schedule_wakeup(Ns::from_ms(2));
        let mut seq = Vec::new();
        while let Some(ev) = n.poll() {
            match ev {
                NetworkEvent::Delivery(d) => seq.push(("d", d.completed_at)),
                NetworkEvent::Wakeup => seq.push(("w", n.now())),
            }
        }
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[0].0, "d"); // sub-millisecond delivery first
        assert_eq!(seq[1], ("w", Ns::from_ms(1)));
        assert_eq!(seq[2], ("w", Ns::from_ms(2)));
    }

    // ----- audit layer -----------------------------------------------------

    use crate::audit::AuditKind;

    /// A network with audits forced on (not just debug-default), mid-run
    /// under enough load that queues, waitlists, and full flags are live.
    fn audited_congested_net() -> Network {
        let mut n = net(Routing::Minimal);
        n.set_audit(true);
        for src in 1..24u32 {
            n.send(Ns::ZERO, NodeId(src), NodeId(0), 64 * 1024, src as u64);
        }
        n.run_until(Ns(20_000));
        assert!(n.packets_in_flight() > 0, "want a mid-run state");
        n
    }

    #[test]
    fn audited_run_is_clean_and_covers_events() {
        let mut n = audited_congested_net();
        assert!(n.audit_enabled());
        n.run_to_idle();
        let report = n.audit_report().expect("audit on");
        assert!(report.is_clean(), "{report}");
        assert!(report.events_audited > 100, "{report}");
        // At least the drain sweep plus the on-demand one ran.
        assert!(report.full_sweeps >= 2, "{report}");
    }

    #[test]
    fn audit_off_reports_none_and_skips_shadow() {
        let mut n = net(Routing::Minimal);
        n.set_audit(false);
        n.send(Ns::ZERO, NodeId(0), NodeId(9), 4096, 0);
        n.run_to_idle();
        assert!(!n.audit_enabled());
        assert!(n.audit_report().is_none());
    }

    #[test]
    #[should_panic(expected = "fresh network")]
    fn audit_toggle_after_traffic_is_rejected() {
        let mut n = net(Routing::Minimal);
        n.send(Ns::ZERO, NodeId(0), NodeId(1), 100, 0);
        n.set_audit(true);
    }

    #[test]
    fn audit_detects_occupancy_corruption() {
        let mut n = audited_congested_net();
        // Corrupt one channel's credit counter behind the auditor's back.
        let up = n.topology().terminal_up(NodeId(1));
        n.channels[up.index()].total_occupancy += 64;
        let report = n.audit_report().unwrap();
        assert!(!report.is_clean());
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.kind == AuditKind::VcOccupancy && v.channel == Some(up)),
            "{report}"
        );
    }

    #[test]
    fn audit_detects_saturation_miscount() {
        let mut n = audited_congested_net();
        let up = n.topology().terminal_up(NodeId(2));
        n.channels[up.index()].full_vcs += 1;
        let report = n.audit_report().unwrap();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.kind == AuditKind::Saturation && v.channel == Some(up)),
            "{report}"
        );
    }

    #[test]
    fn audit_detects_waitlist_corruption() {
        let mut n = audited_congested_net();
        // Flip a waitlist bit with no matching waiters-list membership.
        let victim = n
            .channels
            .iter()
            .position(|c| !c.in_waitlist)
            .expect("some channel not parked");
        n.channels[victim].in_waitlist = true;
        let report = n.audit_report().unwrap();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.kind == AuditKind::Waitlist
                    && v.channel == Some(ChannelId(victim as u32))),
            "{report}"
        );
    }

    #[test]
    fn audit_detects_leaked_packet() {
        let mut n = audited_congested_net();
        // Drop a queued packet on the floor: pop it from its list without
        // releasing occupancy or telling the auditor.
        let victim = (0..n.channels.len())
            .find(|&i| {
                // Skip the busy head (TxDone would then pop a packet the
                // engine no longer has) — take a queue with depth >= 2.
                n.channels[i].vcs[0].queue.iter(&n.packets).count() >= 2
            })
            .expect("some deep VC queue");
        n.channels[victim].vcs[0].queue.pop_front(&n.packets);
        let report = n.audit_report().unwrap();
        assert!(!report.is_clean());
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.kind == AuditKind::ListIntegrity),
            "{report}"
        );
    }

    #[test]
    fn audit_detects_traffic_miscount() {
        let mut n = audited_congested_net();
        let up = n.topology().terminal_up(NodeId(3));
        n.channels[up.index()].traffic += 1;
        let report = n.audit_report().unwrap();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.kind == AuditKind::VcOccupancy && v.channel == Some(up)),
            "{report}"
        );
    }

    #[test]
    fn audit_report_is_displayable() {
        let mut n = audited_congested_net();
        n.channels[0].total_occupancy += 1;
        let report = n.audit_report().unwrap();
        let text = report.to_string();
        assert!(text.contains("violation"), "{text}");
        assert!(text.contains("vc-occupancy"), "{text}");
    }

    /// A network with telemetry on (fine sampling interval so even short
    /// unit-test runs produce several sweeps), congested enough that
    /// utilization, occupancy, and stall counters are all live.
    fn observed_congested_net() -> Network {
        let mut n = net(Routing::Adaptive);
        n.set_obs_interval(Ns(1_000));
        for src in 1..24u32 {
            n.send(Ns::ZERO, NodeId(src), NodeId(0), 64 * 1024, src as u64);
        }
        n
    }

    #[test]
    fn obs_samplers_actually_record() {
        // Tamper-style positive check: a telemetry layer that silently
        // records nothing would pass every bit-identity test, so prove
        // the samplers see the run.
        let mut n = observed_congested_net();
        assert!(n.obs_enabled());
        n.run_to_idle();
        let report = n.obs_report().expect("obs on");

        // Every handled event is profiled.
        assert_eq!(report.profile.total_events(), n.events_processed());
        assert!(report.profile.total_wall_ns > 0);
        assert!(report.profile.queue_high_water > 0);

        // The sample series is non-empty with strictly monotone
        // timestamps and clamped utilizations.
        let samples = report.series.samples();
        assert!(samples.len() >= 3, "only {} samples", samples.len());
        for pair in samples.windows(2) {
            assert!(pair[0].at < pair[1].at, "non-monotone sample times");
        }
        assert!(samples
            .iter()
            .all(|s| s.util.iter().all(|&u| (0.0..=1.0).contains(&u))));
        // A 24-sender hotspot must actually show utilization and backlog.
        assert!(samples.iter().any(|s| s.util.iter().any(|&u| u > 0.0)));
        assert!(samples
            .iter()
            .any(|s| s.queued_bytes.iter().sum::<u64>() > 0));
        // The hotspot's terminal-down link saturates: stalls are seen.
        assert!(samples.iter().any(|s| s.stall_ns.iter().sum::<u64>() > 0));

        // VC occupancy readings cover every sweep.
        assert!(report.vc_occupancy.readings > 0);
        // Adaptive routing ran: every packet's decision is accounted.
        assert!(report.route.total() > 0);
    }

    #[test]
    fn obs_off_reports_none() {
        let mut n = net(Routing::Adaptive);
        n.set_obs(false);
        n.send(Ns::ZERO, NodeId(0), NodeId(9), 4096, 0);
        n.run_to_idle();
        assert!(!n.obs_enabled());
        assert!(n.obs_report().is_none());
    }

    #[test]
    fn obs_report_final_sweep_closes_tail_window() {
        // A run shorter than the sampling interval still yields one
        // sample: obs_report closes the open tail window.
        let mut n = net(Routing::Minimal);
        n.set_obs(true); // default 50 µs interval
        n.send(Ns::ZERO, NodeId(0), NodeId(1), 512, 0);
        n.run_to_idle();
        assert!(n.now() < ObsCollector::DEFAULT_INTERVAL);
        let report = n.obs_report().expect("obs on");
        assert_eq!(report.series.samples().len(), 1);
        // Repeated reports do not grow the series (zero-width window).
        let again = n.obs_report().unwrap();
        assert_eq!(again.series.samples().len(), 1);
    }

    #[test]
    #[should_panic(expected = "fresh network")]
    fn obs_toggle_mid_run_panics() {
        let mut n = net(Routing::Minimal);
        n.send(Ns::ZERO, NodeId(0), NodeId(1), 512, 0);
        n.poll_delivery();
        n.set_obs(true);
    }

    #[test]
    fn sparse_traffic_emits_uniform_catchup_windows() {
        // Regression: a burst, a long quiet gap, another burst. The old
        // collector emitted one oversized window at the first event after
        // the gap; the aligned grid must keep every boundary window.
        let mut n = net(Routing::Minimal);
        n.set_obs_interval(Ns(1_000));
        n.send(Ns::ZERO, NodeId(0), NodeId(40), 4096, 0);
        n.send(Ns(40_000), NodeId(1), NodeId(41), 4096, 1);
        n.run_to_idle();
        let report = n.obs_report().expect("obs on");
        let samples = report.series.samples();
        assert!(
            samples.len() >= 40,
            "gap skipped: {} windows",
            samples.len()
        );
        // Every window but the close() tail sits on the aligned grid.
        for (i, s) in samples[..samples.len() - 1].iter().enumerate() {
            assert_eq!(s.at, Ns(1_000 * (i as u64 + 1)), "window off the grid");
        }
        let tail = samples.last().unwrap();
        assert_eq!(tail.at, n.now(), "tail window closes at the final event");
    }

    #[test]
    fn arena_recycling_is_bit_identical_and_warm() {
        let topo = Arc::new(Topology::build(TopologyConfig::small_test()));
        let run = |arena: &mut SimArena| {
            let mut n = Network::with_arena(
                topo.clone(),
                NetworkParams::default(),
                Routing::Adaptive,
                42,
                arena,
            );
            let mut rng = Xoshiro256::seed_from(99);
            for i in 0..60u64 {
                let s = NodeId(rng.next_below(64) as u32);
                let d = NodeId(rng.next_below(64) as u32);
                n.send(Ns(i * 100), s, d, 20_000, i);
            }
            n.run_to_idle();
            let out: Vec<(u64, Ns)> = n
                .drain_deliveries()
                .iter()
                .map(|d| (d.tag, d.completed_at))
                .collect();
            n.recycle(arena);
            out
        };
        let mut arena = SimArena::new();
        let first = run(&mut arena);
        assert_eq!(arena.recycled_runs(), 1);
        let warm_cap = arena.packet_capacity();
        assert!(warm_cap > 0, "finished run must donate packet capacity");
        let second = run(&mut arena);
        assert_eq!(first, second, "recycled buffers changed results");
        assert_eq!(arena.recycled_runs(), 2);
        assert!(
            arena.packet_capacity() >= warm_cap,
            "identical rerun must not shrink the arena"
        );
    }

    #[test]
    fn small_packet_streams_coalesce_arrivals() {
        // Tiny packets serialize in ~1 ns but cross a global link with
        // 1.6 µs of latency, so a stream keeps many packets in flight on
        // one channel and consecutive arrivals land on adjacent ticks.
        // Those drain inline from the channel FIFO instead of round-
        // tripping through the heap; the counter proves the path is live.
        let mut n = net(Routing::Minimal);
        let last = NodeId(n.topology().config().total_nodes() - 1);
        for i in 0..40u64 {
            n.send(Ns::ZERO, NodeId(0), last, 8, i);
        }
        n.run_to_idle();
        assert_eq!(n.drain_deliveries().len(), 40);
        assert!(
            n.arrivals_coalesced() > 0,
            "no inline arrival drains on a cross-group small-packet stream"
        );
    }

    #[test]
    fn obs_stride_changes_timing_cost_not_results() {
        let run = |stride: u32| {
            let mut n = net(Routing::Adaptive);
            n.set_obs_interval(Ns(1_000));
            n.set_obs_stride(stride);
            for src in 1..24u32 {
                n.send(Ns::ZERO, NodeId(src), NodeId(0), 64 * 1024, src as u64);
            }
            n.run_to_idle();
            let deliveries: Vec<(u64, Ns)> = n
                .drain_deliveries()
                .iter()
                .map(|d| (d.tag, d.completed_at))
                .collect();
            let report = n.obs_report().expect("obs on");
            (deliveries, n.events_processed(), report.profile)
        };
        let (d1, e1, exhaustive) = run(1);
        let (d64, e64, sampled) = run(64);
        assert_eq!(d1, d64, "stride changed simulation results");
        assert_eq!(e1, e64);
        // Counts are exact regardless of stride; timing is the subset.
        assert_eq!(exhaustive.counts, sampled.counts);
        assert_eq!(exhaustive.timed_events(), exhaustive.total_events());
        assert!(sampled.timed_events() < sampled.total_events());
        assert!(sampled.timed_events() > 0);
    }

    #[test]
    fn wakeup_allows_injection_at_wakeup_time() {
        let mut n = net(Routing::Minimal);
        n.schedule_wakeup(Ns::from_ms(1));
        match n.poll() {
            Some(NetworkEvent::Wakeup) => {
                n.send(n.now(), NodeId(0), NodeId(9), 512, 5);
            }
            other => panic!("expected wakeup, got {other:?}"),
        }
        let d = n.poll_delivery().unwrap();
        assert_eq!(d.tag, 5);
        assert!(d.injected_at == Ns::from_ms(1));
    }
}
