//! The telemetry collector: the mutating half of the `dfly-obs` layer.
//!
//! `dfly-obs` holds the passive data structures (profiles, sample series,
//! histograms, reports); this module owns the periodic sweep that fills
//! them from live [`ChannelState`], the same privileged view the audit
//! layer uses. Collection is strictly read-only with respect to the
//! simulation: no event is scheduled, no counter of the engine is
//! touched, so obs-on and obs-off runs are bit-identical
//! (`tests/determinism.rs` enforces it).

use crate::channel::ChannelState;
use crate::metrics::class_index;
use crate::params::NetworkParams;
use dfly_engine::Ns;
use dfly_obs::{
    EventKind, EventLoopProfile, NetSample, ObsReport, OccupancyHistogram, RouteStats,
    SampleSeries, OBS_CLASSES,
};
use std::time::Instant;

/// Collects telemetry for one network over its lifetime.
pub(crate) struct ObsCollector {
    profile: EventLoopProfile,
    series: SampleSeries,
    vc_occupancy: OccupancyHistogram,
    /// Next simulation time at which a sweep is due.
    next_sample: Ns,
    /// Start of the current sampling window.
    last_sample_at: Ns,
    /// Cumulative per-class busy time at the last sweep (delta base).
    prev_busy_ns: [u64; 5],
    /// Cumulative per-class saturated time at the last sweep.
    prev_stall_ns: [u64; 5],
    /// Cumulative UGAL counters at the last sweep.
    prev_minimal: u64,
    prev_nonminimal: u64,
    /// Channels per class, computed on the first sweep (0 = unknown).
    class_counts: [u64; 5],
}

impl ObsCollector {
    /// Default sampling interval: 50 µs of simulation time — fine enough
    /// to resolve the paper's millisecond-scale communication phases,
    /// coarse enough that a long run stays within the series cap.
    pub(crate) const DEFAULT_INTERVAL: Ns = Ns(50_000);

    /// Fresh collector sampling every `interval` of simulation time.
    pub(crate) fn new(interval: Ns) -> ObsCollector {
        ObsCollector {
            profile: EventLoopProfile::new(),
            series: SampleSeries::new(interval),
            vc_occupancy: OccupancyHistogram::new(),
            next_sample: interval,
            last_sample_at: Ns::ZERO,
            prev_busy_ns: [0; 5],
            prev_stall_ns: [0; 5],
            prev_minimal: 0,
            prev_nonminimal: 0,
            class_counts: [0; 5],
        }
    }

    /// Record one handled event into the profile.
    #[inline]
    pub(crate) fn note_event(&mut self, kind: EventKind, started: Instant, queue_depth: usize) {
        self.profile.record(kind, started, queue_depth);
    }

    /// True once simulation time has reached the next sweep.
    #[inline]
    pub(crate) fn sample_due(&self, now: Ns) -> bool {
        now >= self.next_sample
    }

    /// Sweep the channel state and push one sample covering the window
    /// since the previous sweep. A zero-width window (two sweeps at the
    /// same instant) is skipped — there is nothing to attribute to it.
    pub(crate) fn sample(
        &mut self,
        now: Ns,
        channels: &[ChannelState],
        params: &NetworkParams,
        route: Option<&RouteStats>,
    ) {
        if now <= self.last_sample_at {
            return;
        }
        if self.class_counts == [0; 5] {
            for ch in channels {
                self.class_counts[class_index(ch.class)] += 1;
            }
        }

        let mut busy_ns = [0u64; 5];
        let mut stall_ns = [0u64; 5];
        let mut queued = [0u64; 5];
        for ch in channels {
            let ci = class_index(ch.class);
            busy_ns[ci] += ch.busy_time.as_nanos();
            stall_ns[ci] += ch.saturated_until(now).as_nanos();
            queued[ci] += ch.total_occupancy;
            let cap = params.vc_capacity(ch.class) as f64;
            for vc in &ch.vcs {
                self.vc_occupancy.record(vc.occupancy as f64 / cap);
            }
        }

        let window = (now - self.last_sample_at).as_nanos() as f64;
        let mut sample = NetSample {
            at: now,
            ..NetSample::default()
        };
        for (i, _) in OBS_CLASSES.iter().enumerate() {
            // Mean utilization across the class's channels. Transmission
            // time is credited in full at tx start, so the window quotient
            // can transiently exceed 1 — clamp.
            let denom = window * self.class_counts[i].max(1) as f64;
            let busy_delta = busy_ns[i].saturating_sub(self.prev_busy_ns[i]) as f64;
            sample.util[i] = (busy_delta / denom).min(1.0);
            sample.stall_ns[i] = stall_ns[i].saturating_sub(self.prev_stall_ns[i]);
            sample.queued_bytes[i] = queued[i];
            self.prev_busy_ns[i] = busy_ns[i];
            self.prev_stall_ns[i] = stall_ns[i];
        }
        if let Some(r) = route {
            sample.minimal_taken = r.minimal_taken - self.prev_minimal;
            sample.nonminimal_taken = r.nonminimal_taken - self.prev_nonminimal;
            self.prev_minimal = r.minimal_taken;
            self.prev_nonminimal = r.nonminimal_taken;
        }
        self.series.push(sample);
        self.last_sample_at = now;
        self.next_sample = now + self.series.interval();
    }

    /// Bundle everything collected into a report. `queue_high_water` comes
    /// from the event queue (it sees peaks between profiled events);
    /// `route` is the cumulative UGAL ledger from the route computer.
    pub(crate) fn report(&self, queue_high_water: usize, route: Option<&RouteStats>) -> ObsReport {
        let mut profile = self.profile.clone();
        profile.queue_high_water = profile.queue_high_water.max(queue_high_water);
        ObsReport {
            profile,
            series: self.series.clone(),
            vc_occupancy: self.vc_occupancy,
            route: route.copied().unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfly_engine::Bandwidth;
    use dfly_topology::ChannelClass;

    fn channels() -> Vec<ChannelState> {
        let mut out = Vec::new();
        for class in [
            ChannelClass::TerminalUp,
            ChannelClass::LocalRow,
            ChannelClass::Global,
        ] {
            let mut ch = ChannelState::new(class, Bandwidth::from_gib_per_sec(1), Ns(0));
            ch.busy_time = Ns(10_000);
            ch.total_occupancy = 512;
            ch.vcs[0].occupancy = 512;
            out.push(ch);
        }
        out
    }

    #[test]
    fn sweep_produces_window_deltas() {
        let params = NetworkParams::default();
        let mut c = ObsCollector::new(Ns(50_000));
        assert!(!c.sample_due(Ns(49_999)));
        assert!(c.sample_due(Ns(50_000)));

        let chans = channels();
        c.sample(Ns(50_000), &chans, &params, None);
        let report = c.report(0, None);
        let samples = report.series.samples();
        assert_eq!(samples.len(), 1);
        // One busy channel per swept class, 10µs busy over a 50µs window.
        let ci = class_index(ChannelClass::Global);
        assert!((samples[0].util[ci] - 0.2).abs() < 1e-9);
        assert_eq!(samples[0].queued_bytes[ci], 512);
        // Every VC of every channel contributes one occupancy reading.
        assert_eq!(
            report.vc_occupancy.readings as usize,
            chans[0].vcs.len() * 3
        );

        // Second sweep with unchanged busy time: utilization drops to 0.
        c.sample(Ns(100_000), &chans, &params, None);
        let report = c.report(0, None);
        assert_eq!(report.series.samples()[1].util[ci], 0.0);
    }

    #[test]
    fn zero_width_window_is_skipped() {
        let params = NetworkParams::default();
        let mut c = ObsCollector::new(Ns(1_000));
        let chans = channels();
        c.sample(Ns(1_000), &chans, &params, None);
        c.sample(Ns(1_000), &chans, &params, None);
        assert_eq!(c.report(0, None).series.samples().len(), 1);
    }

    #[test]
    fn utilization_clamped_even_with_txstart_credit() {
        // busy_time credited at tx start can exceed the window.
        let params = NetworkParams::default();
        let mut c = ObsCollector::new(Ns(100));
        let mut chans = channels();
        chans[0].busy_time = Ns(1_000_000);
        c.sample(Ns(100), &chans, &params, None);
        let s = c.report(0, None).series.samples()[0];
        assert!(s.util.iter().all(|&u| u <= 1.0), "unclamped: {:?}", s.util);
    }

    #[test]
    fn route_deltas_per_window() {
        let params = NetworkParams::default();
        let chans = channels();
        let mut c = ObsCollector::new(Ns(1_000));
        let mut route = RouteStats::new();
        route.record(false, 10);
        route.record(true, 20);
        c.sample(Ns(1_000), &chans, &params, Some(&route));
        route.record(true, 30);
        c.sample(Ns(2_000), &chans, &params, Some(&route));
        let report = c.report(7, Some(&route));
        let s = report.series.samples();
        assert_eq!((s[0].minimal_taken, s[0].nonminimal_taken), (1, 1));
        assert_eq!((s[1].minimal_taken, s[1].nonminimal_taken), (0, 1));
        // The report carries the cumulative ledger and the queue peak.
        assert_eq!(report.route.total(), 3);
        assert_eq!(report.profile.queue_high_water, 7);
    }
}
