//! The telemetry collector: the mutating half of the `dfly-obs` layer.
//!
//! `dfly-obs` holds the passive data structures (profiles, sample series,
//! histograms, reports); this module owns the periodic sweep that fills
//! them from live [`ChannelState`], the same privileged view the audit
//! layer uses. Collection is strictly read-only with respect to the
//! simulation: no event is scheduled, no counter of the engine is
//! touched, so obs-on and obs-off runs are bit-identical
//! (`tests/determinism.rs` enforces it).
//!
//! Event timing is stride-sampled (see [`ObsCollector::timing_due`]):
//! every event is counted, every Nth per kind is timed, so the obs-on
//! path pays O(1/N) clock reads. Sample windows land on the aligned grid
//! `interval, 2*interval, ...` of simulation time: when events are
//! sparse and time jumps over several boundaries at once, the collector
//! emits one catch-up window per crossed boundary instead of a single
//! oversized one, so `SampleSeries` spacing stays uniform.

use crate::channel::ChannelState;
use crate::metrics::class_index;
use crate::params::NetworkParams;
use dfly_engine::Ns;
use dfly_obs::{
    EventKind, EventLoopProfile, LinkDigest, MetricsMode, NetSample, ObsClock, ObsReport,
    OccupancyHistogram, RouteStats, SampleSeries, OBS_CLASSES,
};

/// Collects telemetry for one network over its lifetime.
pub(crate) struct ObsCollector {
    profile: EventLoopProfile,
    series: SampleSeries,
    vc_occupancy: OccupancyHistogram,
    /// Metric storage discipline (dense = historical exact structures).
    mode: MetricsMode,
    /// Seed for the streaming link digest's reservoirs.
    digest_seed: u64,
    /// Per-link-class digest, rebuilt at every close (streaming only).
    digest: Option<LinkDigest>,
    /// The wall-clock source for handler timing.
    clock: ObsClock,
    /// Coarse timing was requested but the platform lacks a coarse source.
    coarse_unavailable: bool,
    /// Time every Nth event per kind (1 = exhaustive).
    stride: u32,
    /// Per-kind countdown until the next timed event.
    until_timed: [u32; 4],
    /// Next aligned simulation time at which a sweep is due.
    next_sample: Ns,
    /// Start of the current sampling window.
    last_sample_at: Ns,
    /// Cumulative per-class busy time at the last sweep (delta base).
    prev_busy_ns: [u64; 5],
    /// Cumulative per-class saturated time at the last sweep.
    prev_stall_ns: [u64; 5],
    /// Cumulative UGAL counters at the last sweep.
    prev_minimal: u64,
    prev_nonminimal: u64,
    /// Channels per class, computed on the first sweep (0 = unknown).
    class_counts: [u64; 5],
    /// Shard mode: which channels this replica owns. Occupancy histogram
    /// readings are restricted to owned channels so a sharded run's merged
    /// histogram matches a serial sweep (unowned channels are always empty
    /// here and would flood bucket zero). Busy/stall/queued sums need no
    /// mask — unowned channels contribute zeros.
    owned: Option<Vec<bool>>,
}

impl ObsCollector {
    /// Default sampling interval: 50 µs of simulation time — fine enough
    /// to resolve the paper's millisecond-scale communication phases,
    /// coarse enough that a long run stays within the series cap.
    pub(crate) const DEFAULT_INTERVAL: Ns = Ns(50_000);

    /// Retained-sample cap of the coarsening series in streaming mode
    /// (4 Ki samples ≈ 600 KiB): long runs double their effective
    /// sampling stride instead of dropping the tail.
    pub(crate) const STREAM_SERIES_CAP: usize = 4096;

    /// Fresh collector sampling every `interval` of simulation time,
    /// timing every `stride`th event per kind with a precise or `coarse`
    /// clock, reusing `sample_buf`'s capacity for the series. `mode`
    /// picks dense (exact, historical) or streaming (bounded) metric
    /// storage; `digest_seed` seeds the streaming reservoirs.
    pub(crate) fn new(
        interval: Ns,
        stride: u32,
        coarse_clock: bool,
        mode: MetricsMode,
        digest_seed: u64,
        sample_buf: Vec<NetSample>,
    ) -> ObsCollector {
        assert!(stride >= 1, "obs stride must be at least 1");
        let clock = ObsClock::new(coarse_clock);
        let series = if mode.is_streaming() {
            SampleSeries::bounded_with_buffer(interval, Self::STREAM_SERIES_CAP, sample_buf)
        } else {
            SampleSeries::with_buffer(interval, sample_buf)
        };
        ObsCollector {
            profile: EventLoopProfile::new(),
            series,
            vc_occupancy: OccupancyHistogram::new(),
            mode,
            digest_seed,
            digest: None,
            coarse_unavailable: coarse_clock && !clock.is_coarse(),
            clock,
            stride,
            // Zero countdowns: the first event of each kind is timed, so
            // short runs still get a cost estimate for every kind.
            until_timed: [0; 4],
            next_sample: interval,
            last_sample_at: Ns::ZERO,
            prev_busy_ns: [0; 5],
            prev_stall_ns: [0; 5],
            prev_minimal: 0,
            prev_nonminimal: 0,
            class_counts: [0; 5],
            owned: None,
        }
    }

    /// Restrict occupancy-histogram readings to the channels marked true
    /// (shard mode; see the `owned` field).
    pub(crate) fn set_owned_mask(&mut self, owned: Vec<bool>) {
        self.owned = Some(owned);
    }

    /// The sampling interval.
    pub(crate) fn interval(&self) -> Ns {
        self.series.interval()
    }

    /// Take the sample storage back out for arena recycling.
    pub(crate) fn take_sample_buffer(&mut self) -> Vec<NetSample> {
        self.series.take_buffer()
    }

    /// Decide whether the upcoming event of `kind` gets its handler
    /// timed, advancing the per-kind stride countdown.
    #[inline]
    pub(crate) fn timing_due(&mut self, kind: EventKind) -> bool {
        let slot = &mut self.until_timed[kind.index()];
        if *slot == 0 {
            *slot = self.stride - 1;
            true
        } else {
            *slot -= 1;
            false
        }
    }

    /// Read the profiling clock (only meaningful around a timed event).
    #[inline]
    pub(crate) fn clock_now(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Record one handled event into the profile: timed when
    /// [`ObsCollector::timing_due`] picked it (then `started` carries the
    /// pre-handler clock read), counted otherwise.
    #[inline]
    pub(crate) fn note_event(&mut self, kind: EventKind, started: Option<u64>, queue_depth: usize) {
        match started {
            Some(t0) => {
                let elapsed = self.clock.now_ns().saturating_sub(t0);
                self.profile.record_timed(kind, elapsed, queue_depth);
            }
            None => self.profile.record_counted(kind, queue_depth),
        }
    }

    /// True once simulation time has reached the next sweep boundary.
    #[inline]
    pub(crate) fn sample_due(&self, now: Ns) -> bool {
        now >= self.next_sample
    }

    /// Emit one window per aligned boundary crossed by `now`. Sparse
    /// traffic that jumps several intervals between events gets uniform
    /// catch-up windows (saturation interpolates via its interval
    /// bookkeeping; busy/queued state cannot change without events).
    pub(crate) fn sample(
        &mut self,
        now: Ns,
        channels: &[ChannelState],
        params: &NetworkParams,
        route: Option<&RouteStats>,
    ) {
        while self.next_sample <= now {
            let at = self.next_sample;
            self.push_window(at, channels, params, route);
            self.next_sample = at + self.series.interval();
        }
    }

    /// Emit every due aligned window, then close the partial tail window
    /// at `now`. Called once when a report is taken; safe to repeat (a
    /// zero-width tail is skipped, and the streaming digest is an
    /// idempotent rebuild from cumulative channel counters).
    pub(crate) fn close(
        &mut self,
        now: Ns,
        channels: &[ChannelState],
        params: &NetworkParams,
        route: Option<&RouteStats>,
    ) {
        self.sample(now, channels, params, route);
        self.push_window(now, channels, params, route);
        self.series.finalize_tail();
        if let Some(k) = self.mode.reservoir_k() {
            // Rebuild from scratch: channel counters are cumulative, so
            // a repeated close must not double-count. In shard mode only
            // owned channels are digested; the drain merges per-group
            // digests in fixed group order.
            let mut digest = LinkDigest::new(k as usize, self.digest_seed);
            let owned = self.owned.as_deref();
            for (i, ch) in channels.iter().enumerate() {
                if owned.is_some_and(|m| !m[i]) {
                    continue;
                }
                digest.observe_channel(class_index(ch.class), ch.traffic, ch.saturated_until(now));
            }
            self.digest = Some(digest);
        }
    }

    /// Sweep the channel state and push one sample covering the window
    /// `(last_sample_at, at]`. A zero-width window is skipped — there is
    /// nothing to attribute to it.
    fn push_window(
        &mut self,
        at: Ns,
        channels: &[ChannelState],
        params: &NetworkParams,
        route: Option<&RouteStats>,
    ) {
        if at <= self.last_sample_at {
            return;
        }
        if self.class_counts == [0; 5] {
            for ch in channels {
                self.class_counts[class_index(ch.class)] += 1;
            }
        }

        let mut busy_ns = [0u64; 5];
        let mut stall_ns = [0u64; 5];
        let mut queued = [0u64; 5];
        let owned = self.owned.as_deref();
        for (i, ch) in channels.iter().enumerate() {
            let ci = class_index(ch.class);
            busy_ns[ci] += ch.busy_time.as_nanos();
            stall_ns[ci] += ch.saturated_until(at).as_nanos();
            queued[ci] += ch.total_occupancy;
            if owned.is_some_and(|m| !m[i]) {
                continue;
            }
            let cap = params.vc_capacity(ch.class) as f64;
            for vc in &ch.vcs {
                self.vc_occupancy.record(vc.occupancy as f64 / cap);
            }
        }

        let window = (at - self.last_sample_at).as_nanos() as f64;
        let mut sample = NetSample {
            at,
            ..NetSample::default()
        };
        for (i, _) in OBS_CLASSES.iter().enumerate() {
            // Mean utilization across the class's channels. Transmission
            // time is credited in full at tx start, so the window quotient
            // can transiently exceed 1 — clamp.
            let denom = window * self.class_counts[i].max(1) as f64;
            let busy_delta = busy_ns[i].saturating_sub(self.prev_busy_ns[i]) as f64;
            sample.util[i] = (busy_delta / denom).min(1.0);
            sample.stall_ns[i] = stall_ns[i].saturating_sub(self.prev_stall_ns[i]);
            sample.queued_bytes[i] = queued[i];
            self.prev_busy_ns[i] = busy_ns[i];
            self.prev_stall_ns[i] = stall_ns[i];
        }
        if let Some(r) = route {
            sample.minimal_taken = r.minimal_taken - self.prev_minimal;
            sample.nonminimal_taken = r.nonminimal_taken - self.prev_nonminimal;
            self.prev_minimal = r.minimal_taken;
            self.prev_nonminimal = r.nonminimal_taken;
        }
        self.series.push(sample);
        self.last_sample_at = at;
    }

    /// Approximate heap bytes of the collector's metric structures (the
    /// sample series plus the streaming digest, if any).
    pub(crate) fn approx_metric_bytes(&self) -> usize {
        self.series.approx_bytes() + self.digest.as_ref().map_or(0, LinkDigest::approx_bytes)
    }

    /// Bundle everything collected into a report. `queue_high_water` comes
    /// from the event queue (it sees peaks between profiled events);
    /// `route` is the cumulative UGAL ledger from the route computer.
    pub(crate) fn report(&self, queue_high_water: usize, route: Option<&RouteStats>) -> ObsReport {
        let mut profile = self.profile.clone();
        profile.queue_high_water = profile.queue_high_water.max(queue_high_water);
        ObsReport {
            profile,
            series: self.series.clone(),
            vc_occupancy: self.vc_occupancy,
            route: route.copied().unwrap_or_default(),
            link_digest: self.digest.clone(),
            coarse_unavailable: self.coarse_unavailable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfly_engine::Bandwidth;
    use dfly_topology::ChannelClass;

    fn collector(interval: Ns) -> ObsCollector {
        ObsCollector::new(interval, 1, false, MetricsMode::Dense, 0, Vec::new())
    }

    fn channels() -> Vec<ChannelState> {
        let mut out = Vec::new();
        for class in [
            ChannelClass::TerminalUp,
            ChannelClass::LocalRow,
            ChannelClass::Global,
        ] {
            let mut ch = ChannelState::new(class, Bandwidth::from_gib_per_sec(1), Ns(0));
            ch.busy_time = Ns(10_000);
            ch.total_occupancy = 512;
            ch.vcs[0].occupancy = 512;
            out.push(ch);
        }
        out
    }

    #[test]
    fn sweep_produces_window_deltas() {
        let params = NetworkParams::default();
        let mut c = collector(Ns(50_000));
        assert!(!c.sample_due(Ns(49_999)));
        assert!(c.sample_due(Ns(50_000)));

        let chans = channels();
        c.sample(Ns(50_000), &chans, &params, None);
        let report = c.report(0, None);
        let samples = report.series.samples();
        assert_eq!(samples.len(), 1);
        // One busy channel per swept class, 10µs busy over a 50µs window.
        let ci = class_index(ChannelClass::Global);
        assert!((samples[0].util[ci] - 0.2).abs() < 1e-9);
        assert_eq!(samples[0].queued_bytes[ci], 512);
        // Every VC of every channel contributes one occupancy reading.
        assert_eq!(
            report.vc_occupancy.readings as usize,
            chans[0].vcs.len() * 3
        );

        // Second sweep with unchanged busy time: utilization drops to 0.
        c.sample(Ns(100_000), &chans, &params, None);
        let report = c.report(0, None);
        assert_eq!(report.series.samples()[1].util[ci], 0.0);
    }

    #[test]
    fn zero_width_window_is_skipped() {
        let params = NetworkParams::default();
        let mut c = collector(Ns(1_000));
        let chans = channels();
        c.sample(Ns(1_000), &chans, &params, None);
        c.sample(Ns(1_000), &chans, &params, None);
        assert_eq!(c.report(0, None).series.samples().len(), 1);
    }

    #[test]
    fn time_jump_emits_aligned_catchup_windows() {
        // A jump over five boundaries yields five uniformly spaced
        // windows, not one oversized window at the jump's end.
        let params = NetworkParams::default();
        let mut c = collector(Ns(1_000));
        let mut chans = channels();
        chans[2].mark_full(0, Ns(500)); // global channel saturates mid-gap
        c.sample(Ns(5_200), &chans, &params, None);
        let report = c.report(0, None);
        let samples = report.series.samples();
        assert_eq!(samples.len(), 5, "one window per crossed boundary");
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s.at, Ns(1_000 * (i as u64 + 1)), "windows off the grid");
        }
        // The open saturation interval interpolates across the catch-up
        // windows: 500 ns in the first (opened at 500), then full
        // 1000 ns windows — not everything lumped into the last.
        let ci = class_index(ChannelClass::Global);
        assert_eq!(samples[0].stall_ns[ci], 500);
        assert!(samples[1..].iter().all(|s| s.stall_ns[ci] == 1_000));
        // The 200 ns remainder stays open for the next window.
        assert!(!c.sample_due(Ns(5_900)));
        assert!(c.sample_due(Ns(6_000)));
    }

    #[test]
    fn close_emits_partial_tail_window_once() {
        let params = NetworkParams::default();
        let mut c = collector(Ns(1_000));
        let chans = channels();
        c.close(Ns(2_500), &chans, &params, None);
        let report = c.report(0, None);
        let at: Vec<Ns> = report.series.samples().iter().map(|s| s.at).collect();
        assert_eq!(at, vec![Ns(1_000), Ns(2_000), Ns(2_500)]);
        // Closing again at the same instant adds nothing.
        c.close(Ns(2_500), &chans, &params, None);
        assert_eq!(c.report(0, None).series.samples().len(), 3);
    }

    #[test]
    fn utilization_clamped_even_with_txstart_credit() {
        // busy_time credited at tx start can exceed the window.
        let params = NetworkParams::default();
        let mut c = collector(Ns(100));
        let mut chans = channels();
        chans[0].busy_time = Ns(1_000_000);
        c.sample(Ns(100), &chans, &params, None);
        let s = c.report(0, None).series.samples()[0];
        assert!(s.util.iter().all(|&u| u <= 1.0), "unclamped: {:?}", s.util);
    }

    #[test]
    fn route_deltas_per_window() {
        let params = NetworkParams::default();
        let chans = channels();
        let mut c = collector(Ns(1_000));
        let mut route = RouteStats::new();
        route.record(false, 10);
        route.record(true, 20);
        c.sample(Ns(1_000), &chans, &params, Some(&route));
        route.record(true, 30);
        c.sample(Ns(2_000), &chans, &params, Some(&route));
        let report = c.report(7, Some(&route));
        let s = report.series.samples();
        assert_eq!((s[0].minimal_taken, s[0].nonminimal_taken), (1, 1));
        assert_eq!((s[1].minimal_taken, s[1].nonminimal_taken), (0, 1));
        // The report carries the cumulative ledger and the queue peak.
        assert_eq!(report.route.total(), 3);
        assert_eq!(report.profile.queue_high_water, 7);
    }

    #[test]
    fn stride_times_first_then_every_nth_per_kind() {
        let mut c = ObsCollector::new(Ns(1_000), 4, false, MetricsMode::Dense, 0, Vec::new());
        let timed: Vec<bool> = (0..9).map(|_| c.timing_due(EventKind::Arrive)).collect();
        assert_eq!(
            timed,
            [true, false, false, false, true, false, false, false, true]
        );
        // Kinds count down independently.
        assert!(c.timing_due(EventKind::Inject));
        assert!(!c.timing_due(EventKind::Inject));
    }

    #[test]
    fn streaming_collector_builds_digest_and_bounded_series() {
        let params = NetworkParams::default();
        let mode = MetricsMode::Streaming { reservoir_k: 8 };
        let mut c = ObsCollector::new(Ns(1_000), 1, false, mode, 42, Vec::new());
        let mut chans = channels();
        chans[2].traffic = 5_000_000;
        chans[2].saturated = Ns(2_000_000);
        c.close(Ns(10_500), &chans, &params, None);
        let report = c.report(0, None);
        let digest = report.link_digest.as_ref().expect("streaming digest");
        let gi = class_index(ChannelClass::Global);
        assert_eq!(digest.channels(gi), 1);
        assert_eq!(digest.class(gi).traffic_bytes.sum(), 5_000_000.0);
        assert_eq!(digest.class(gi).saturated_ms.max(), Some(2.0));
        // Closing again must not double-count the cumulative counters.
        c.close(Ns(10_500), &chans, &params, None);
        let again = c.report(0, None);
        assert_eq!(
            again.link_digest.as_ref().unwrap().channels(gi),
            1,
            "repeated close double-counts"
        );
        assert!(report.series.samples().len() <= ObsCollector::STREAM_SERIES_CAP);
    }

    #[test]
    fn dense_collector_has_no_digest() {
        let params = NetworkParams::default();
        let mut c = collector(Ns(1_000));
        let chans = channels();
        c.close(Ns(2_000), &chans, &params, None);
        assert!(c.report(0, None).link_digest.is_none());
    }

    #[test]
    fn sampled_profile_counts_all_events_but_times_a_subset() {
        let mut c = ObsCollector::new(Ns(1_000), 8, false, MetricsMode::Dense, 0, Vec::new());
        for _ in 0..100 {
            let started = c.timing_due(EventKind::TxDone).then(|| c.clock_now());
            c.note_event(EventKind::TxDone, started, 3);
        }
        let report = c.report(0, None);
        assert_eq!(report.profile.counts[EventKind::TxDone.index()], 100);
        assert_eq!(report.profile.timed[EventKind::TxDone.index()], 13);
    }
}
