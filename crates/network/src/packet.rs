//! Packet and message bookkeeping.

use dfly_engine::{Bytes, Ns};
use dfly_topology::{ChannelId, NodeId};

/// Longest possible route in channels: terminal-up + at most 10
/// router-to-router hops (non-minimal worst case) + terminal-down.
pub const MAX_ROUTE_LEN: usize = dfly_topology::paths::MAX_ROUTER_HOPS + 2;

/// Index of a message in the network's message table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MessageId(pub u64);

/// Index of a packet in the network's (recycled) packet arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(pub u32);

/// Sentinel for "no packet" in the intrusive queue links ([`Packet::next`]).
pub(crate) const NO_PACKET: u32 = u32::MAX;

/// A fixed-capacity route: avoids a heap allocation per packet, which at
/// millions of packets per run is the simulator's dominant cost otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    channels: [ChannelId; MAX_ROUTE_LEN],
    len: u8,
}

impl Route {
    /// Build from a channel list. Panics if longer than [`MAX_ROUTE_LEN`].
    pub fn from_slice(channels: &[ChannelId]) -> Route {
        assert!(
            channels.len() <= MAX_ROUTE_LEN,
            "route of {} exceeds MAX_ROUTE_LEN",
            channels.len()
        );
        let mut arr = [ChannelId(u32::MAX); MAX_ROUTE_LEN];
        arr[..channels.len()].copy_from_slice(channels);
        Route {
            channels: arr,
            len: channels.len() as u8,
        }
    }

    /// Number of channels on the route.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for a (degenerate) empty route.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Channel at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> ChannelId {
        debug_assert!(i < self.len());
        self.channels[i]
    }

    /// The channels as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[ChannelId] {
        &self.channels[..self.len()]
    }

    /// Router-to-router hops: total channels minus the two terminal links.
    #[inline]
    pub fn router_hops(&self) -> u32 {
        (self.len() as u32).saturating_sub(2)
    }
}

/// In-flight packet state. Kept small (fits in two cache lines) because the
/// arena holds hundreds of thousands of these.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Owning message.
    pub msg: MessageId,
    /// Payload bytes carried by this packet.
    pub size: u32,
    /// Position in `route` where the packet currently sits (or is heading).
    pub hop: u8,
    /// False until the source router has fixed the route. Until then
    /// `route` is the placeholder `[terminal-up, terminal-down]`; the real
    /// route is computed when the packet first reaches the head of the
    /// injection buffer, using the congestion state of that moment —
    /// per-packet adaptive routing as on real Aries hardware.
    pub routed: bool,
    /// The full route, terminal links included.
    pub route: Route,
    /// Intrusive link: arena index of the packet behind this one in
    /// whichever FIFO (NIC queue or VC buffer) currently holds it, or
    /// [`NO_PACKET`]. A packet sits in at most one queue at a time, so a
    /// single link suffices and the queues themselves are just
    /// head/tail pairs — no per-VC heap allocation.
    pub(crate) next: u32,
}

impl Packet {
    /// Channel the packet currently occupies.
    #[inline]
    pub fn current_channel(&self) -> ChannelId {
        self.route.get(self.hop as usize)
    }

    /// Channel after the current one, or `None` at the last hop.
    #[inline]
    pub fn next_channel(&self) -> Option<ChannelId> {
        let next = self.hop as usize + 1;
        if next < self.route.len() {
            Some(self.route.get(next))
        } else {
            None
        }
    }

    /// Virtual-channel index used at hop `h` (equals `h`, the ascending-VC
    /// deadlock-avoidance discipline).
    #[inline]
    pub fn vc_at(hop: u8) -> usize {
        hop as usize
    }
}

/// What a message slot is accounting for. Serial runs use only
/// [`MessageKind::Delivering`]; the other two kinds exist for sharded
/// (PDES) runs, where a group-local network replica sees only the part
/// of a message's life that happens inside its own group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageKind {
    /// The destination lives in this replica: `remaining_packets` counts
    /// deliveries and completion emits a `Delivery` record. Also the
    /// origin-side slot when source and destination share the group (a
    /// Valiant detour may still export packets; they return before
    /// delivering).
    Delivering,
    /// Origin-side slot for a remote destination: `remaining_packets`
    /// counts packets exported across a global link (each packet leaves
    /// the origin group exactly once). The slot frees silently at zero —
    /// the destination replica emits the `Delivery`.
    Forwarding,
    /// Per-packet shadow for traffic passing through this group en route
    /// to a third one; carries the message metadata for the onward
    /// [`crate::shard::WireRecord`] and frees at re-export.
    Transit,
}

/// Bookkeeping for one in-flight message.
#[derive(Debug, Clone)]
pub struct MessageState {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Total message payload.
    pub bytes: Bytes,
    /// Caller-supplied tag, passed through to the delivery record.
    pub tag: u64,
    /// Packets not yet delivered (exported, for [`MessageKind::Forwarding`]
    /// and [`MessageKind::Transit`]).
    pub remaining_packets: u64,
    /// Total packets.
    pub total_packets: u64,
    /// Sum of router hops over delivered packets (for the avg-hops metric).
    pub hops_accum: u64,
    /// Injection timestamp.
    pub injected_at: Ns,
    /// What this slot accounts for (always `Delivering` in serial runs).
    pub kind: MessageKind,
    /// Global message id, unique across all shards of one run so replicas
    /// can attribute imported packets to the same logical message. Zero in
    /// serial runs (no cross-replica attribution needed).
    pub gid: u64,
}

impl MessageState {
    /// Average router-to-router hops per delivered packet so far.
    pub fn avg_hops(&self) -> f64 {
        let delivered = self.total_packets - self.remaining_packets;
        if delivered == 0 {
            0.0
        } else {
            self.hops_accum as f64 / delivered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_roundtrip() {
        let chs = [ChannelId(5), ChannelId(9), ChannelId(2)];
        let r = Route::from_slice(&chs);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.as_slice(), &chs);
        assert_eq!(r.get(1), ChannelId(9));
        assert_eq!(r.router_hops(), 1);
    }

    #[test]
    fn route_minimum_terminal_only() {
        let r = Route::from_slice(&[ChannelId(0), ChannelId(1)]);
        assert_eq!(r.router_hops(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_ROUTE_LEN")]
    fn route_too_long_panics() {
        let chs = vec![ChannelId(0); MAX_ROUTE_LEN + 1];
        let _ = Route::from_slice(&chs);
    }

    #[test]
    fn packet_navigation() {
        let r = Route::from_slice(&[ChannelId(1), ChannelId(2), ChannelId(3)]);
        let mut p = Packet {
            msg: MessageId(0),
            size: 4096,
            hop: 0,
            routed: true,
            route: r,
            next: NO_PACKET,
        };
        assert_eq!(p.current_channel(), ChannelId(1));
        assert_eq!(p.next_channel(), Some(ChannelId(2)));
        p.hop = 2;
        assert_eq!(p.current_channel(), ChannelId(3));
        assert_eq!(p.next_channel(), None);
    }

    #[test]
    fn vc_is_hop_index() {
        assert_eq!(Packet::vc_at(0), 0);
        assert_eq!(Packet::vc_at(7), 7);
    }

    #[test]
    fn message_avg_hops() {
        let mut m = MessageState {
            src: NodeId(0),
            dst: NodeId(1),
            bytes: 8192,
            tag: 0,
            remaining_packets: 2,
            total_packets: 2,
            hops_accum: 0,
            injected_at: Ns::ZERO,
            kind: MessageKind::Delivering,
            gid: 0,
        };
        assert_eq!(m.avg_hops(), 0.0);
        m.remaining_packets = 1;
        m.hops_accum = 3;
        assert_eq!(m.avg_hops(), 3.0);
        m.remaining_packets = 0;
        m.hops_accum = 8;
        assert_eq!(m.avg_hops(), 4.0);
    }

    #[test]
    fn packet_struct_stays_small() {
        // Guard against accidental growth of the hottest struct.
        assert!(
            std::mem::size_of::<Packet>() <= 72,
            "Packet grew to {} bytes",
            std::mem::size_of::<Packet>()
        );
    }
}
