//! Network model parameters (Section II of the paper).

use dfly_engine::kv::{kv, ToKv};
use dfly_engine::Bytes;
use dfly_obs::MetricsMode;
use dfly_topology::ChannelClass;

/// Tunable parameters of the packet-level model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkParams {
    /// Maximum packet payload; messages are segmented into packets of this
    /// size (last packet may be smaller).
    pub packet_size: u32,
    /// Buffer capacity of each compute-node (terminal) virtual channel.
    pub terminal_vc_bytes: Bytes,
    /// Buffer capacity of each local virtual channel.
    pub local_vc_bytes: Bytes,
    /// Buffer capacity of each global virtual channel.
    pub global_vc_bytes: Bytes,
    /// UGAL minimal-path bias, in score units (first-hop queued bytes x
    /// path hops): a non-minimal candidate's score pays this on top, so a
    /// detour is only taken when the minimal first hop is genuinely backed
    /// up (default 32 KiB ~ a full local VC x 4 hops). Larger values make
    /// adaptive routing behave more minimally.
    pub adaptive_bias_bytes: u64,
    /// Enable the shadow-accounting audit layer (see
    /// [`crate::audit`]): every event cross-checks the engine's
    /// occupancy/list/waitlist/saturation counters against an independent
    /// ledger. Auditing observes only — results are bit-identical either
    /// way — but costs time, so it defaults to on in debug builds and off
    /// in release builds. [`Network::set_audit`](crate::Network::set_audit)
    /// overrides it on a fresh network.
    pub audit: bool,
    /// Enable the telemetry layer (see `dfly-obs`): event-loop profiling,
    /// periodic per-class utilization/occupancy samples, and UGAL decision
    /// counters. Like auditing, telemetry observes only — obs-on and
    /// obs-off runs are bit-identical in every simulation output — but it
    /// costs time per event, so it defaults to off everywhere.
    /// [`Network::set_obs`](crate::Network::set_obs) overrides it on a
    /// fresh network.
    pub obs: bool,
    /// Telemetry timing stride: with obs on, every event is counted but
    /// only every Nth event per kind has its handler wall-clock measured,
    /// so the obs-on path does O(1/N) timestamp reads. Stride 1 restores
    /// exhaustive timing; the default (64) keeps per-kind means within a
    /// few percent of exhaustive on quick-scale runs while cutting the
    /// timing cost to noise. Must be at least 1. Ignored when `obs` is
    /// off.
    pub obs_stride: u32,
    /// Use Linux's `CLOCK_MONOTONIC_COARSE` for telemetry timing instead
    /// of the precise monotonic clock. Reads cost a few ns but resolve
    /// only to the kernel tick (1–4 ms), so this is for aggregate timing
    /// over very long instrumented runs; per-kind means need event counts
    /// far above the tick/handler-cost ratio to converge. Falls back to
    /// the precise clock off Linux. Ignored when `obs` is off.
    pub obs_coarse_clock: bool,
    /// How metric-heavy structures store their data. `Dense` (the
    /// default) keeps the historical exact structures and is
    /// byte-identical to every release before this knob existed.
    /// `Streaming { reservoir_k }` bounds metric memory at
    /// `O(links * K)` regardless of run duration: telemetry sample
    /// series coarsen geometrically instead of dropping, per-channel
    /// distributions become seeded reservoir digests, and traffic
    /// timelines fold their bin width. Simulation outputs (event order,
    /// delivered bytes, completion times) are identical in both modes —
    /// only metric *storage* changes.
    pub metrics: MetricsMode,
}

impl Default for NetworkParams {
    /// The paper's Theta parameters: 8 KiB node VC, 8 KiB local VC,
    /// 16 KiB global VC; 4 KiB packets (Aries-like maximum request size).
    fn default() -> NetworkParams {
        NetworkParams {
            packet_size: 4096,
            terminal_vc_bytes: 8 * 1024,
            local_vc_bytes: 8 * 1024,
            global_vc_bytes: 16 * 1024,
            adaptive_bias_bytes: 32768,
            audit: cfg!(debug_assertions),
            obs: false,
            obs_stride: 64,
            obs_coarse_clock: false,
            metrics: MetricsMode::Dense,
        }
    }
}

impl NetworkParams {
    /// VC buffer capacity for a channel class.
    pub fn vc_capacity(&self, class: ChannelClass) -> Bytes {
        match class {
            ChannelClass::TerminalUp | ChannelClass::TerminalDown => self.terminal_vc_bytes,
            ChannelClass::LocalRow | ChannelClass::LocalCol => self.local_vc_bytes,
            ChannelClass::Global => self.global_vc_bytes,
        }
    }

    /// Number of packets a message of `bytes` is segmented into
    /// (a zero-byte message still sends one packet, carrying the header).
    pub fn packets_for(&self, bytes: Bytes) -> u64 {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.packet_size as u64)
        }
    }

    /// Validate: every buffer must hold at least one full packet, or the
    /// network could never forward a full-size packet.
    pub fn validate(&self) -> Result<(), String> {
        if self.packet_size == 0 {
            return Err("packet_size must be positive".into());
        }
        if self.obs_stride == 0 {
            return Err("obs_stride must be at least 1 (1 = exhaustive timing)".into());
        }
        self.metrics.validate()?;
        for (name, cap) in [
            ("terminal", self.terminal_vc_bytes),
            ("local", self.local_vc_bytes),
            ("global", self.global_vc_bytes),
        ] {
            if cap < self.packet_size as u64 {
                return Err(format!(
                    "{name} VC capacity {cap} cannot hold one packet of {}",
                    self.packet_size
                ));
            }
        }
        Ok(())
    }
}

impl ToKv for NetworkParams {
    fn to_kv(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        kv(&mut out, "packet_size", self.packet_size);
        kv(&mut out, "terminal_vc_bytes", self.terminal_vc_bytes);
        kv(&mut out, "local_vc_bytes", self.local_vc_bytes);
        kv(&mut out, "global_vc_bytes", self.global_vc_bytes);
        kv(&mut out, "adaptive_bias_bytes", self.adaptive_bias_bytes);
        kv(&mut out, "audit", self.audit);
        kv(&mut out, "obs", self.obs);
        kv(&mut out, "obs_stride", self.obs_stride);
        kv(&mut out, "obs_coarse_clock", self.obs_coarse_clock);
        // Echoed only when non-default so dense-mode config echoes — and
        // therefore the goldens — stay byte-identical to before the knob
        // existed (the `arrangement` pattern in `TopologyConfig`).
        if self.metrics != MetricsMode::Dense {
            kv(&mut out, "metrics_mode", self.metrics.label());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let p = NetworkParams::default();
        assert_eq!(p.packet_size, 4096);
        assert_eq!(p.vc_capacity(ChannelClass::TerminalUp), 8 * 1024);
        assert_eq!(p.vc_capacity(ChannelClass::LocalRow), 8 * 1024);
        assert_eq!(p.vc_capacity(ChannelClass::LocalCol), 8 * 1024);
        assert_eq!(p.vc_capacity(ChannelClass::Global), 16 * 1024);
        assert_eq!(p.audit, cfg!(debug_assertions));
        assert!(!p.obs, "telemetry must be opt-in in every build profile");
        assert_eq!(p.obs_stride, 64);
        assert!(!p.obs_coarse_clock);
        p.validate().unwrap();
    }

    #[test]
    fn packet_segmentation() {
        let p = NetworkParams::default();
        assert_eq!(p.packets_for(0), 1);
        assert_eq!(p.packets_for(1), 1);
        assert_eq!(p.packets_for(4096), 1);
        assert_eq!(p.packets_for(4097), 2);
        assert_eq!(p.packets_for(190 * 1024), 48); // CR's ~190 KB message
    }

    #[test]
    fn validate_rejects_small_buffers() {
        let mut p = NetworkParams::default();
        p.local_vc_bytes = 1024;
        assert!(p.validate().is_err());
        let mut p = NetworkParams::default();
        p.packet_size = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn metrics_mode_defaults_dense_and_echoes_only_when_set() {
        use dfly_engine::kv::ToKv;
        let p = NetworkParams::default();
        assert_eq!(p.metrics, MetricsMode::Dense);
        // Dense echo has no metrics_mode key — the golden-stability
        // contract: old echoes are byte-identical.
        assert!(p.to_kv().iter().all(|(k, _)| k != "metrics_mode"));

        let mut p = p;
        p.metrics = MetricsMode::Streaming { reservoir_k: 256 };
        p.validate().unwrap();
        let kv = p.to_kv();
        assert!(kv.contains(&("metrics_mode".to_string(), "streaming:256".to_string())));
    }

    #[test]
    fn validate_rejects_degenerate_reservoir() {
        let mut p = NetworkParams::default();
        p.metrics = MetricsMode::Streaming { reservoir_k: 1 };
        assert!(p.validate().is_err());
        p.metrics = MetricsMode::Streaming { reservoir_k: 2 };
        p.validate().unwrap();
    }

    #[test]
    fn validate_rejects_zero_stride() {
        let mut p = NetworkParams::default();
        p.obs_stride = 0;
        assert!(p.validate().is_err());
        p.obs_stride = 1;
        p.validate().unwrap();
    }
}
