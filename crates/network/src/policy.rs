//! The pluggable routing-policy interface and its implementations.
//!
//! A [`RoutingPolicy`] turns a (source router, destination router) pair
//! into a channel sequence by generating candidate paths and scoring them
//! over a [`ChannelView`] — the policy's window onto the network's queue
//! state. The [`Routing`](crate::Routing) enum stays the config-level
//! selector (`Copy`/`Eq`/`Hash` for grids and labels); each variant
//! instantiates one of the policies here, and the labels on these types
//! are the single source for config nomenclature and CSV headers.
//!
//! The three historical policies — [`MinimalPolicy`], [`ValiantPolicy`],
//! [`UgalLocal`] — consume their RNG stream in exactly the order the
//! pre-trait `RouteComputer` match did, so default-config runs stay byte
//! identical (pinned by `tests/refactor_equivalence.rs` and the golden
//! figure suite). The two new policies extend the zoo:
//!
//! * [`UgalGlobal`] — UGAL-G: same candidate structure as UGAL-L, but
//!   scored with global queue knowledge (the summed occupancy of *every*
//!   hop on the candidate), the idealized variant simulators use as the
//!   upper bound for adaptive routing.
//! * [`Progressive`] — PAR: a UGAL-L decision at the source, re-evaluated
//!   at the source group's gateway; if the planned global channel looks
//!   congested against a sibling global channel of the same gateway
//!   router, the packet is diverted through that channel's group instead.

use crate::params::NetworkParams;
use dfly_engine::{Bytes, Xoshiro256};
use dfly_obs::RouteStats;
use dfly_topology::paths;
use dfly_topology::{ChannelClass, ChannelId, RouterId, Topology};

/// A policy's read-only window onto per-channel queue state.
///
/// UGAL-L's hardware-faithful signal is the occupancy of a candidate's
/// *first* hop (the source router's output port); UGAL-G's idealized
/// signal sums the whole path. Both are expressed over this view, so a
/// policy never touches the network's internals directly.
pub struct ChannelView<'a> {
    occ: &'a dyn Fn(ChannelId) -> Bytes,
}

impl<'a> ChannelView<'a> {
    /// Wrap an occupancy lookup.
    pub fn new(occ: &'a dyn Fn(ChannelId) -> Bytes) -> ChannelView<'a> {
        ChannelView { occ }
    }

    /// Total queued bytes currently held at a channel.
    #[inline]
    pub fn occupancy(&self, c: ChannelId) -> Bytes {
        (self.occ)(c)
    }

    /// Summed queued bytes over a whole candidate path (UGAL-G's signal).
    #[inline]
    pub fn path_occupancy(&self, path: &[ChannelId]) -> Bytes {
        path.iter()
            .fold(0u64, |acc, &c| acc.saturating_add(self.occupancy(c)))
    }
}

/// Mutable routing state a policy borrows for one decision: the topology,
/// parameters, the policy RNG stream, the two persistent candidate
/// buffers (no allocation on the per-packet hot path), and the optional
/// UGAL telemetry ledger.
pub struct RouteCtx<'a> {
    /// The machine.
    pub topo: &'a Topology,
    /// Packet/buffer/bias parameters.
    pub params: &'a NetworkParams,
    /// The routing RNG stream (owned by the `RouteComputer`).
    pub rng: &'a mut Xoshiro256,
    /// Scratch candidate buffer.
    pub scratch: &'a mut Vec<ChannelId>,
    /// Best-so-far candidate buffer (swapped with `scratch` on a win).
    pub best: &'a mut Vec<ChannelId>,
    /// UGAL decision counters, recorded only when telemetry is on.
    pub stats: Option<&'a mut RouteStats>,
}

/// A routing policy: candidate generation + scoring over a
/// [`ChannelView`]. Implementations append the chosen router-to-router
/// channel sequence to `out` (terminal channels are the caller's job).
pub trait RoutingPolicy {
    /// Short label used in config nomenclature and CSV headers. The
    /// [`Routing`](crate::Routing) enum's `label()` reads these same
    /// constants, so a policy's name exists in exactly one place.
    fn label(&self) -> &'static str;

    /// Compute one route from `src` to `dst`.
    fn route(
        &mut self,
        ctx: &mut RouteCtx<'_>,
        src: RouterId,
        dst: RouterId,
        view: &ChannelView<'_>,
        out: &mut Vec<ChannelId>,
    );
}

// ---------------------------------------------------------------------------
// Minimal
// ---------------------------------------------------------------------------

/// Always take a minimal path (random gateway / intermediate draws).
pub struct MinimalPolicy;

impl MinimalPolicy {
    /// Nomenclature label.
    pub const LABEL: &'static str = "min";
}

impl RoutingPolicy for MinimalPolicy {
    fn label(&self) -> &'static str {
        Self::LABEL
    }

    fn route(
        &mut self,
        ctx: &mut RouteCtx<'_>,
        src: RouterId,
        dst: RouterId,
        _view: &ChannelView<'_>,
        out: &mut Vec<ChannelId>,
    ) {
        paths::push_minimal(ctx.topo, src, dst, ctx.rng, out);
    }
}

// ---------------------------------------------------------------------------
// Valiant
// ---------------------------------------------------------------------------

/// Always route through a uniformly random intermediate router (Valiant
/// load balancing) — the traffic-balancing extreme, used as an ablation
/// baseline.
pub struct ValiantPolicy;

impl ValiantPolicy {
    /// Nomenclature label.
    pub const LABEL: &'static str = "val";
}

impl RoutingPolicy for ValiantPolicy {
    fn label(&self) -> &'static str {
        Self::LABEL
    }

    fn route(
        &mut self,
        ctx: &mut RouteCtx<'_>,
        src: RouterId,
        dst: RouterId,
        _view: &ChannelView<'_>,
        out: &mut Vec<ChannelId>,
    ) {
        // Retry until the detour fits the VC budget (a random
        // intermediate can make the concatenation exceed the 10-hop
        // bound only in degenerate gateway layouts).
        loop {
            ctx.scratch.clear();
            let inter = paths::random_intermediate(ctx.topo, ctx.rng);
            paths::push_minimal(ctx.topo, src, inter, ctx.rng, ctx.scratch);
            paths::push_minimal(ctx.topo, inter, dst, ctx.rng, ctx.scratch);
            if ctx.scratch.len() <= paths::MAX_ROUTER_HOPS {
                out.extend_from_slice(ctx.scratch);
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shared UGAL candidate loop
// ---------------------------------------------------------------------------

/// How a UGAL-family policy scores a candidate.
#[derive(Clone, Copy)]
enum UgalSignal {
    /// First-hop queue x hop count (UGAL-L, as on Aries hardware).
    Local,
    /// Summed queue over every hop (UGAL-G, idealized global knowledge).
    Global,
}

fn ugal_candidate_score(
    signal: UgalSignal,
    candidate: &[ChannelId],
    bias: u64,
    view: &ChannelView<'_>,
) -> u64 {
    match signal {
        UgalSignal::Local => {
            let hops = candidate.len() as u64;
            let first: u64 = candidate.first().map(|&c| view.occupancy(c)).unwrap_or(0);
            first.saturating_mul(hops).saturating_add(bias)
        }
        UgalSignal::Global => view.path_occupancy(candidate).saturating_add(bias),
    }
}

/// The UGAL candidate loop shared by UGAL-L, UGAL-G, and PAR's first
/// stage: two minimal candidates, then two non-minimal candidates through
/// random intermediates, lowest score wins with ties to the earliest.
/// Leaves the winner in `ctx.best` and returns
/// `(best_minimal, best_nonminimal)` scores for telemetry/PAR.
///
/// RNG consumption order is the byte-identity contract: exactly the
/// pre-trait `compute_adaptive` sequence.
fn ugal_select(
    signal: UgalSignal,
    ctx: &mut RouteCtx<'_>,
    src: RouterId,
    dst: RouterId,
    view: &ChannelView<'_>,
) -> (u64, u64) {
    let mut best_score = u64::MAX;
    ctx.best.clear();

    let mut best_minimal = u64::MAX;
    let mut best_nonminimal = u64::MAX;

    // Two minimal candidates (different random gateway / intermediate
    // choices).
    for _ in 0..2 {
        ctx.scratch.clear();
        paths::push_minimal(ctx.topo, src, dst, ctx.rng, ctx.scratch);
        let score = ugal_candidate_score(signal, ctx.scratch, 0, view);
        best_minimal = best_minimal.min(score);
        if score < best_score {
            best_score = score;
            std::mem::swap(ctx.best, ctx.scratch);
        }
    }
    // Two non-minimal candidates through random intermediate routers.
    for _ in 0..2 {
        let inter = paths::random_intermediate(ctx.topo, ctx.rng);
        ctx.scratch.clear();
        paths::push_minimal(ctx.topo, src, inter, ctx.rng, ctx.scratch);
        paths::push_minimal(ctx.topo, inter, dst, ctx.rng, ctx.scratch);
        if ctx.scratch.len() <= paths::MAX_ROUTER_HOPS {
            let score =
                ugal_candidate_score(signal, ctx.scratch, ctx.params.adaptive_bias_bytes, view);
            best_nonminimal = best_nonminimal.min(score);
            if score < best_score {
                best_score = score;
                std::mem::swap(ctx.best, ctx.scratch);
            }
        }
    }
    (best_minimal, best_nonminimal)
}

/// Record a UGAL decision on the ledger (shared tie/walkover semantics:
/// ties go to the earliest candidate and minimal candidates run first, so
/// a tie is a minimal decision; a missing non-minimal candidate is a
/// walkover with margin 0, not a win).
fn record_ugal(stats: &mut Option<&mut RouteStats>, best_minimal: u64, best_nonminimal: u64) {
    if let Some(stats) = stats {
        let took_nonminimal = best_nonminimal < best_minimal;
        let margin = if best_nonminimal == u64::MAX {
            0
        } else if took_nonminimal {
            best_minimal - best_nonminimal
        } else {
            best_nonminimal - best_minimal
        };
        stats.record(took_nonminimal, margin);
    }
}

// ---------------------------------------------------------------------------
// UGAL-L
// ---------------------------------------------------------------------------

/// UGAL with local knowledge (paper Section III-C "adaptive"), as on
/// Aries hardware: the only congestion signal is the queue at the
/// candidate's first router-to-router channel. Credit back-pressure
/// propagates downstream congestion into that queue over time, so the
/// signal is real but local — adaptive routing can misjudge, which is
/// exactly the behaviour the paper's trade-off hinges on.
pub struct UgalLocal;

impl UgalLocal {
    /// Nomenclature label (the paper calls this configuration "adp").
    pub const LABEL: &'static str = "adp";
}

impl RoutingPolicy for UgalLocal {
    fn label(&self) -> &'static str {
        Self::LABEL
    }

    fn route(
        &mut self,
        ctx: &mut RouteCtx<'_>,
        src: RouterId,
        dst: RouterId,
        view: &ChannelView<'_>,
        out: &mut Vec<ChannelId>,
    ) {
        let (best_min, best_non) = ugal_select(UgalSignal::Local, ctx, src, dst, view);
        out.extend_from_slice(ctx.best);
        record_ugal(&mut ctx.stats, best_min, best_non);
    }
}

// ---------------------------------------------------------------------------
// UGAL-G
// ---------------------------------------------------------------------------

/// UGAL with global knowledge: the same 2-minimal + 2-non-minimal
/// candidate structure as UGAL-L, but each candidate scored by the summed
/// occupancy of *every* channel on it (plus the non-minimal bias). An
/// idealized oracle no hardware has — the standard upper bound adaptive
/// routing is compared against.
///
/// Under group-sharded PDES a replica only sees its own group's queues
/// (remote channels read as empty), so UGAL-G degrades toward UGAL-L
/// there; runs stay deterministic per worker count either way.
pub struct UgalGlobal;

impl UgalGlobal {
    /// Nomenclature label.
    pub const LABEL: &'static str = "ugalg";
}

impl RoutingPolicy for UgalGlobal {
    fn label(&self) -> &'static str {
        Self::LABEL
    }

    fn route(
        &mut self,
        ctx: &mut RouteCtx<'_>,
        src: RouterId,
        dst: RouterId,
        view: &ChannelView<'_>,
        out: &mut Vec<ChannelId>,
    ) {
        let (best_min, best_non) = ugal_select(UgalSignal::Global, ctx, src, dst, view);
        out.extend_from_slice(ctx.best);
        record_ugal(&mut ctx.stats, best_min, best_non);
    }
}

// ---------------------------------------------------------------------------
// PAR (progressive adaptive)
// ---------------------------------------------------------------------------

/// Progressive adaptive routing: a UGAL-L decision at the source, then —
/// when that decision was *minimal* and the packet must leave the group —
/// a second look at the source group's gateway. If the planned global
/// channel is congested relative to a sibling global channel of the same
/// gateway router (non-minimal bias included), the packet diverts through
/// that sibling's group and continues minimally from there.
///
/// The diverted path is `src -> gateway` (unchanged prefix), the sibling
/// global hop, then minimal routing from the sibling's far end to the
/// destination: at most 2 + 1 + 5 = 8 hops, inside the 10-hop VC budget.
/// On the ledger a diversion counts as a non-minimal decision, so the
/// obs UGAL ledger's `nonminimal_fraction` is PAR's divert rate.
pub struct Progressive;

impl Progressive {
    /// Nomenclature label.
    pub const LABEL: &'static str = "par";
}

impl RoutingPolicy for Progressive {
    fn label(&self) -> &'static str {
        Self::LABEL
    }

    fn route(
        &mut self,
        ctx: &mut RouteCtx<'_>,
        src: RouterId,
        dst: RouterId,
        view: &ChannelView<'_>,
        out: &mut Vec<ChannelId>,
    ) {
        // Stage 1: UGAL-L at the source.
        let (best_min, best_non) = ugal_select(UgalSignal::Local, ctx, src, dst, view);
        let took_nonminimal = best_non < best_min;
        let sg = ctx.topo.router_group(src);
        let dg = ctx.topo.router_group(dst);
        if took_nonminimal || sg == dg {
            out.extend_from_slice(ctx.best);
            record_ugal(&mut ctx.stats, best_min, best_non);
            return;
        }

        // Stage 2: the minimal winner crosses groups — re-evaluate at its
        // gateway. Find the global hop and the router holding it.
        let global_at = ctx
            .best
            .iter()
            .position(|&c| ctx.topo.channel(c).class == ChannelClass::Global)
            .expect("inter-group minimal path has a global hop");
        let planned = ctx.best[global_at];
        let gateway = ctx
            .topo
            .channel(planned)
            .src
            .router()
            .expect("global channel starts at a router");

        // The least-occupied sibling global channel of the same gateway
        // router (deterministic scan, ties to the first).
        let mut alt: Option<(ChannelId, Bytes)> = None;
        for &(ch, dst_group) in ctx.topo.router_global_channels(gateway) {
            if ch == planned || dst_group == dg || dst_group == sg {
                continue;
            }
            let occ = view.occupancy(ch);
            if alt.map_or(true, |(_, best)| occ < best) {
                alt = Some((ch, occ));
            }
        }
        let Some((alt_ch, alt_occ)) = alt else {
            out.extend_from_slice(ctx.best);
            record_ugal(&mut ctx.stats, best_min, best_non);
            return;
        };

        // Compare remaining cost from the gateway onward: planned global
        // queue x remaining minimal hops, vs the sibling's queue x its
        // detour tail (built below) + the non-minimal bias.
        let planned_remaining = (ctx.best.len() - global_at) as u64;
        let planned_cost = view.occupancy(planned).saturating_mul(planned_remaining);

        // Build the diverted tail: sibling hop, then minimal from its far
        // end. (RNG is consumed only when stage 2 actually evaluates a
        // divert — PAR is a new policy with no byte-identity contract.)
        ctx.scratch.clear();
        ctx.scratch.extend_from_slice(&ctx.best[..global_at]);
        ctx.scratch.push(alt_ch);
        let entry = ctx
            .topo
            .channel(alt_ch)
            .dst
            .router()
            .expect("global channel ends at a router");
        paths::push_minimal(ctx.topo, entry, dst, ctx.rng, ctx.scratch);

        let divert_remaining = (ctx.scratch.len() - global_at) as u64;
        let divert_cost = alt_occ
            .saturating_mul(divert_remaining)
            .saturating_add(ctx.params.adaptive_bias_bytes);

        if divert_cost < planned_cost && ctx.scratch.len() <= paths::MAX_ROUTER_HOPS {
            out.extend_from_slice(ctx.scratch);
            if let Some(stats) = &mut ctx.stats {
                stats.record(true, planned_cost - divert_cost);
            }
        } else {
            out.extend_from_slice(ctx.best);
            record_ugal(&mut ctx.stats, best_min, best_non);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_live_in_one_place_and_do_not_collide() {
        // The satellite contract: every policy label is defined once (the
        // consts here), distinct, and distinct from any existing golden
        // filename fragment.
        let labels = [
            MinimalPolicy::LABEL,
            UgalLocal::LABEL,
            ValiantPolicy::LABEL,
            UgalGlobal::LABEL,
            Progressive::LABEL,
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len(), "policy labels must be unique");
        for new in [UgalGlobal::LABEL, Progressive::LABEL] {
            for old in ["min", "adp", "val"] {
                assert_ne!(new, old, "new policy label collides with a golden name");
            }
        }
    }

    #[test]
    fn channel_view_sums_paths() {
        let occ = |c: ChannelId| c.0 as u64 * 10;
        let view = ChannelView::new(&occ);
        assert_eq!(view.occupancy(ChannelId(3)), 30);
        assert_eq!(
            view.path_occupancy(&[ChannelId(1), ChannelId(2), ChannelId(4)]),
            70
        );
        assert_eq!(view.path_occupancy(&[]), 0);
    }
}
