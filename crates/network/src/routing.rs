//! Routing policies (paper Section III-C).
//!
//! Both policies compute a packet's full route at injection time, as the
//! CODES dragonfly model does:
//!
//! * **Minimal** — the shortest path; within a group at most one
//!   intermediate router, across groups one global hop through a randomly
//!   chosen gateway of the group pair.
//! * **Adaptive** — UGAL-style: up to four candidates (two minimal, two
//!   non-minimal through a random intermediate router), scored by the queue
//!   occupancy of the candidate's first router-to-router channel multiplied
//!   by its hop count; non-minimal candidates additionally pay a
//!   minimal-path bias. Lowest score wins.

use crate::params::NetworkParams;
use dfly_engine::{Bytes, Xoshiro256};
use dfly_obs::RouteStats;
use dfly_topology::paths;
use dfly_topology::{ChannelId, NodeId, RouterId, Topology};

/// Which routing mechanism packets use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Routing {
    /// Always take a minimal path.
    Minimal,
    /// UGAL-style adaptive selection among minimal and non-minimal paths.
    Adaptive,
    /// Always route through a uniformly random intermediate router
    /// (Valiant load balancing) — the classic traffic-balancing extreme,
    /// used as an ablation baseline; the paper's configurations only use
    /// minimal and adaptive.
    Valiant,
}

impl Routing {
    /// Short label used in config nomenclature (`min` / `adp`).
    pub fn label(self) -> &'static str {
        match self {
            Routing::Minimal => "min",
            Routing::Adaptive => "adp",
            Routing::Valiant => "val",
        }
    }
}

/// Computes routes. Owns its RNG stream so routing decisions don't perturb
/// other randomized subsystems.
pub struct RouteComputer {
    routing: Routing,
    rng: Xoshiro256,
    scratch: Vec<ChannelId>,
    /// Second persistent buffer holding the best candidate seen so far
    /// during adaptive selection. Swapped with `scratch` when a candidate
    /// wins, so the per-packet hot path allocates nothing.
    best: Vec<ChannelId>,
    /// UGAL decision counters, recorded only when telemetry is on
    /// (`None` costs one branch per adaptive decision).
    stats: Option<RouteStats>,
}

impl RouteComputer {
    /// New route computer with its own RNG stream.
    pub fn new(routing: Routing, rng: Xoshiro256) -> RouteComputer {
        RouteComputer {
            routing,
            rng,
            scratch: Vec::with_capacity(paths::MAX_ROUTER_HOPS),
            best: Vec::with_capacity(paths::MAX_ROUTER_HOPS),
            stats: None,
        }
    }

    /// The policy in use.
    pub fn routing(&self) -> Routing {
        self.routing
    }

    /// Replace the candidate buffers with recycled ones (arena reuse —
    /// see `SimArena`). Capacity-only: both buffers are cleared before
    /// use, so routing results are unaffected.
    pub(crate) fn adopt_buffers(
        &mut self,
        (mut scratch, mut best): (Vec<ChannelId>, Vec<ChannelId>),
    ) {
        scratch.clear();
        best.clear();
        scratch.reserve(paths::MAX_ROUTER_HOPS);
        best.reserve(paths::MAX_ROUTER_HOPS);
        self.scratch = scratch;
        self.best = best;
    }

    /// Hand the candidate buffers back for arena recycling.
    pub(crate) fn release_buffers(&mut self) -> (Vec<ChannelId>, Vec<ChannelId>) {
        (
            std::mem::take(&mut self.scratch),
            std::mem::take(&mut self.best),
        )
    }

    /// Start recording UGAL decision counters (telemetry). Recording does
    /// not change which routes are chosen.
    pub fn enable_stats(&mut self) {
        self.stats = Some(RouteStats::new());
    }

    /// The recorded UGAL decision counters, if recording was enabled.
    pub fn stats(&self) -> Option<&RouteStats> {
        self.stats.as_ref()
    }

    /// Compute the router-to-router channel sequence for a packet from
    /// `src` to `dst` (terminal channels are added by the caller).
    ///
    /// `occupancy(channel)` must return the total queued bytes currently
    /// held at a channel; adaptive routing uses it as its congestion
    /// signal. Results are appended to `out`.
    pub fn compute(
        &mut self,
        topo: &Topology,
        params: &NetworkParams,
        src: NodeId,
        dst: NodeId,
        occupancy: impl Fn(ChannelId) -> Bytes,
        out: &mut Vec<ChannelId>,
    ) {
        let src_r = topo.node_router(src);
        let dst_r = topo.node_router(dst);
        match self.routing {
            Routing::Minimal => {
                paths::push_minimal(topo, src_r, dst_r, &mut self.rng, out);
            }
            Routing::Adaptive => {
                self.compute_adaptive(topo, params, src_r, dst_r, occupancy, out);
            }
            Routing::Valiant => {
                // Retry until the detour fits the VC budget (a random
                // intermediate can make the concatenation exceed the
                // 10-hop bound only in degenerate gateway layouts).
                loop {
                    self.scratch.clear();
                    let inter = paths::random_intermediate(topo, &mut self.rng);
                    paths::push_minimal(topo, src_r, inter, &mut self.rng, &mut self.scratch);
                    paths::push_minimal(topo, inter, dst_r, &mut self.rng, &mut self.scratch);
                    if self.scratch.len() <= paths::MAX_ROUTER_HOPS {
                        out.extend_from_slice(&self.scratch);
                        break;
                    }
                }
            }
        }
    }

    fn compute_adaptive(
        &mut self,
        topo: &Topology,
        params: &NetworkParams,
        src_r: RouterId,
        dst_r: RouterId,
        occupancy: impl Fn(ChannelId) -> Bytes,
        out: &mut Vec<ChannelId>,
    ) {
        // UGAL-L scoring, as on Aries hardware: the only congestion signal
        // is the queue at the candidate's first router-to-router channel
        // (the source router's output port). Credit back-pressure
        // propagates downstream congestion into that queue over time, so
        // the signal is real but local — adaptive routing can misjudge,
        // which is exactly the behaviour the paper's trade-off hinges on.
        //
        //   score = first_hop_queue_bytes * path_hops  (+ bias if
        //           non-minimal)
        //
        // Lower wins; ties go to the earliest candidate, and minimal
        // candidates are generated first, so an idle network stays on
        // minimal paths.
        // The winner lives in `self.best` (a persistent buffer — this is
        // the per-packet hot path, so no allocation): a winning candidate
        // is swapped in from `scratch` rather than copied.
        let mut best_score = u64::MAX;
        self.best.clear();

        // Per-family bests, kept so telemetry can report the decision and
        // its margin. Tracking two integers is free; recording is gated.
        let mut best_minimal = u64::MAX;
        let mut best_nonminimal = u64::MAX;

        // Two minimal candidates (different random gateway / intermediate
        // choices).
        for _ in 0..2 {
            self.scratch.clear();
            paths::push_minimal(topo, src_r, dst_r, &mut self.rng, &mut self.scratch);
            let score = Self::ugal_score(&self.scratch, 0, &occupancy);
            best_minimal = best_minimal.min(score);
            if score < best_score {
                best_score = score;
                std::mem::swap(&mut self.best, &mut self.scratch);
            }
        }
        // Two non-minimal candidates through random intermediate routers.
        for _ in 0..2 {
            let inter = paths::random_intermediate(topo, &mut self.rng);
            self.scratch.clear();
            paths::push_minimal(topo, src_r, inter, &mut self.rng, &mut self.scratch);
            paths::push_minimal(topo, inter, dst_r, &mut self.rng, &mut self.scratch);
            if self.scratch.len() <= paths::MAX_ROUTER_HOPS {
                let score = Self::ugal_score(&self.scratch, params.adaptive_bias_bytes, &occupancy);
                best_nonminimal = best_nonminimal.min(score);
                if score < best_score {
                    best_score = score;
                    std::mem::swap(&mut self.best, &mut self.scratch);
                }
            }
        }
        out.extend_from_slice(&self.best);
        if let Some(stats) = &mut self.stats {
            // Ties go to the earliest candidate and minimal candidates run
            // first, so a tie is a minimal decision.
            let took_nonminimal = best_nonminimal < best_minimal;
            let margin = if best_nonminimal == u64::MAX {
                0 // no valid non-minimal candidate: a walkover, not a win
            } else if took_nonminimal {
                best_minimal - best_nonminimal
            } else {
                best_nonminimal - best_minimal
            };
            stats.record(took_nonminimal, margin);
        }
    }

    /// UGAL candidate score: first-hop queued bytes x path hops, plus the
    /// minimal-path `bias` for non-minimal candidates. Lower wins; ties
    /// go to the earliest candidate.
    #[inline]
    fn ugal_score(
        candidate: &[ChannelId],
        bias: u64,
        occupancy: &impl Fn(ChannelId) -> Bytes,
    ) -> u64 {
        let hops = candidate.len() as u64;
        let first: u64 = candidate.first().map(|&c| occupancy(c)).unwrap_or(0);
        first.saturating_mul(hops).saturating_add(bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfly_topology::TopologyConfig;

    fn topo() -> Topology {
        Topology::build(TopologyConfig::small_test())
    }

    fn mk(routing: Routing) -> RouteComputer {
        RouteComputer::new(routing, Xoshiro256::seed_from(42))
    }

    #[test]
    fn labels() {
        assert_eq!(Routing::Minimal.label(), "min");
        assert_eq!(Routing::Adaptive.label(), "adp");
        assert_eq!(Routing::Valiant.label(), "val");
    }

    #[test]
    fn minimal_routes_are_valid_and_short() {
        let t = topo();
        let params = NetworkParams::default();
        let mut rc = mk(Routing::Minimal);
        let n = t.config().total_nodes();
        for s in (0..n).step_by(7) {
            for d in (0..n).step_by(11) {
                let mut route = Vec::new();
                rc.compute(&t, &params, NodeId(s), NodeId(d), |_| 0, &mut route);
                let p = dfly_topology::Path {
                    channels: route.clone(),
                    kind: dfly_topology::RouteKind::Minimal,
                };
                assert!(paths::validate_path(
                    &t,
                    t.node_router(NodeId(s)),
                    t.node_router(NodeId(d)),
                    &p
                ));
                assert!(route.len() <= 5);
            }
        }
    }

    #[test]
    fn adaptive_idle_network_prefers_minimal() {
        // With zero occupancy everywhere the hop-cost term dominates, so
        // adaptive must stay near-minimal: at most one global hop for
        // cross-group pairs (rarely two, when a random intermediate
        // happens to lie on a genuinely shorter double-global path) and
        // never longer than the dragonfly minimal bound.
        let t = topo();
        let params = NetworkParams::default();
        let mut rc = mk(Routing::Adaptive);
        let mut rng = Xoshiro256::seed_from(7);
        let mut hops_total = 0usize;
        let n = 200;
        for _ in 0..n {
            let s = NodeId(rng.next_below(t.config().total_nodes() as u64) as u32);
            let d = NodeId(rng.next_below(t.config().total_nodes() as u64) as u32);
            let mut adaptive = Vec::new();
            rc.compute(&t, &params, s, d, |_| 0, &mut adaptive);
            assert!(
                adaptive.len() <= 5,
                "idle adaptive took {} hops",
                adaptive.len()
            );
            hops_total += adaptive.len();
        }
        // Average must be well inside the minimal regime (< 3 hops on the
        // small machine, where minimal averages ~2.5).
        assert!(
            (hops_total as f64 / n as f64) < 3.5,
            "idle adaptive average hops too high: {}",
            hops_total as f64 / n as f64
        );
    }

    #[test]
    fn adaptive_detours_around_congested_first_hops() {
        // UGAL-L senses the source router's output queues. Congest every
        // minimal first hop (the channels adaptive uses when idle); the
        // chosen routes must then mostly start on other channels.
        let t = topo();
        let params = NetworkParams::default();
        // Intra-group pair sharing neither row nor column: the minimal
        // first hop is one of exactly two local channels, leaving the
        // source router's five other output channels as detour starts.
        let src = NodeId(0); // router (g0, row 0, col 0)
        let dst_router = t.router_at(dfly_topology::GroupId(0), 1, 3);
        let dst = t.router_nodes(dst_router).next().unwrap();

        // Observe the idle-network first hops (minimal candidates).
        let mut rc = mk(Routing::Adaptive);
        let mut minimal_first = std::collections::HashSet::new();
        for _ in 0..100 {
            let mut route = Vec::new();
            rc.compute(&t, &params, src, dst, |_| 0, &mut route);
            minimal_first.insert(route[0]);
        }
        assert!(minimal_first.len() <= 2);

        let mut rc = mk(Routing::Adaptive);
        let mut avoided = 0;
        let trials = 60;
        for _ in 0..trials {
            let mut route = Vec::new();
            rc.compute(
                &t,
                &params,
                src,
                dst,
                |c| {
                    if minimal_first.contains(&c) {
                        8 << 20
                    } else {
                        0
                    }
                },
                &mut route,
            );
            if !minimal_first.contains(&route[0]) {
                avoided += 1;
            }
        }
        // Detours require a non-minimal candidate whose first hop is
        // uncongested; with 2 random intermediates per packet that is the
        // common case but not guaranteed, hence a majority check.
        assert!(
            avoided > trials / 2,
            "adaptive avoided congested first hops only {avoided}/{trials}"
        );
    }

    #[test]
    fn adaptive_routes_stay_within_bounds() {
        let t = topo();
        let params = NetworkParams::default();
        let mut rc = mk(Routing::Adaptive);
        let mut rng = Xoshiro256::seed_from(3);
        for _ in 0..300 {
            let s = NodeId(rng.next_below(t.config().total_nodes() as u64) as u32);
            let d = NodeId(rng.next_below(t.config().total_nodes() as u64) as u32);
            let mut route = Vec::new();
            rc.compute(&t, &params, s, d, |c| (c.0 as u64 * 37) % 5000, &mut route);
            assert!(route.len() <= paths::MAX_ROUTER_HOPS);
            let p = dfly_topology::Path {
                channels: route,
                kind: dfly_topology::RouteKind::NonMinimal,
            };
            assert!(paths::validate_path(
                &t,
                t.node_router(s),
                t.node_router(d),
                &p
            ));
        }
    }

    #[test]
    fn valiant_routes_valid_and_longer_on_average() {
        let t = topo();
        let params = NetworkParams::default();
        let mut val = mk(Routing::Valiant);
        let mut min = mk(Routing::Minimal);
        let mut rng = Xoshiro256::seed_from(15);
        let (mut v_hops, mut m_hops) = (0usize, 0usize);
        for _ in 0..200 {
            let s = NodeId(rng.next_below(t.config().total_nodes() as u64) as u32);
            let d = NodeId(rng.next_below(t.config().total_nodes() as u64) as u32);
            let mut rv = Vec::new();
            val.compute(&t, &params, s, d, |_| 0, &mut rv);
            let p = dfly_topology::Path {
                channels: rv.clone(),
                kind: dfly_topology::RouteKind::NonMinimal,
            };
            assert!(paths::validate_path(
                &t,
                t.node_router(s),
                t.node_router(d),
                &p
            ));
            v_hops += rv.len();
            let mut rm = Vec::new();
            min.compute(&t, &params, s, d, |_| 0, &mut rm);
            m_hops += rm.len();
        }
        assert!(v_hops > m_hops, "valiant {v_hops} !> minimal {m_hops}");
    }

    #[test]
    fn stats_recording_never_changes_routes() {
        let t = topo();
        let params = NetworkParams::default();
        let mut plain = mk(Routing::Adaptive);
        let mut recorded = mk(Routing::Adaptive);
        recorded.enable_stats();
        let occ = |c: ChannelId| (c.0 as u64 * 131) % 9000;
        for i in 0..200u32 {
            let s = NodeId(i % t.config().total_nodes());
            let d = NodeId((i * 29 + 3) % t.config().total_nodes());
            let mut ra = Vec::new();
            let mut rb = Vec::new();
            plain.compute(&t, &params, s, d, occ, &mut ra);
            recorded.compute(&t, &params, s, d, occ, &mut rb);
            assert_eq!(ra, rb, "stats recording perturbed a route");
        }
        let stats = recorded.stats().unwrap();
        assert_eq!(stats.total(), 200, "every adaptive decision recorded");
        assert!(plain.stats().is_none());
    }

    #[test]
    fn stats_see_forced_detours_as_nonminimal() {
        // Congest everything 5-hops-cheap; with all first hops equally
        // loaded the bias keeps decisions minimal. Then congest only the
        // minimal first hops: recorded decisions must flip non-minimal.
        let t = topo();
        let params = NetworkParams::default();
        let src = NodeId(0);
        let dst_router = t.router_at(dfly_topology::GroupId(0), 1, 3);
        let dst = t.router_nodes(dst_router).next().unwrap();

        let mut rc = mk(Routing::Adaptive);
        let mut minimal_first = std::collections::HashSet::new();
        for _ in 0..100 {
            let mut route = Vec::new();
            rc.compute(&t, &params, src, dst, |_| 0, &mut route);
            minimal_first.insert(route[0]);
        }

        let mut rc = mk(Routing::Adaptive);
        rc.enable_stats();
        for _ in 0..60 {
            let mut route = Vec::new();
            rc.compute(
                &t,
                &params,
                src,
                dst,
                |c| {
                    if minimal_first.contains(&c) {
                        8 << 20
                    } else {
                        0
                    }
                },
                &mut route,
            );
        }
        let stats = rc.stats().unwrap();
        assert_eq!(stats.total(), 60);
        assert!(
            stats.nonminimal_taken > 30,
            "only {}/60 decisions non-minimal under forced congestion",
            stats.nonminimal_taken
        );
        assert!(stats.mean_margin() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = topo();
        let params = NetworkParams::default();
        let mut a = mk(Routing::Adaptive);
        let mut b = mk(Routing::Adaptive);
        for i in 0..50u32 {
            let s = NodeId(i % t.config().total_nodes());
            let d = NodeId((i * 13) % t.config().total_nodes());
            let mut ra = Vec::new();
            let mut rb = Vec::new();
            a.compute(&t, &params, s, d, |_| 0, &mut ra);
            b.compute(&t, &params, s, d, |_| 0, &mut rb);
            assert_eq!(ra, rb);
        }
    }
}
