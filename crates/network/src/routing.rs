//! Routing selection (paper Section III-C) and the route computer.
//!
//! All policies compute a packet's full route at injection time, as the
//! CODES dragonfly model does. The mechanics live in [`crate::policy`]
//! behind the [`RoutingPolicy`] trait; this module keeps the config-level
//! [`Routing`] selector (`Copy`/`Eq`/`Hash`, usable in sweep grids and
//! labels) and the [`RouteComputer`] that owns the per-run policy
//! instance, RNG stream, candidate buffers, and telemetry ledger.

use crate::params::NetworkParams;
use crate::policy::{
    ChannelView, MinimalPolicy, Progressive, RouteCtx, RoutingPolicy, UgalGlobal, UgalLocal,
    ValiantPolicy,
};
use dfly_engine::{Bytes, Xoshiro256};
use dfly_obs::RouteStats;
use dfly_topology::paths;
use dfly_topology::{ChannelId, NodeId, Topology};

/// Which routing mechanism packets use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Routing {
    /// Always take a minimal path.
    Minimal,
    /// UGAL-L: adaptive selection among minimal and non-minimal paths
    /// using the local (first-hop queue) congestion signal, as on Aries.
    Adaptive,
    /// Always route through a uniformly random intermediate router
    /// (Valiant load balancing) — the classic traffic-balancing extreme,
    /// used as an ablation baseline; the paper's configurations only use
    /// minimal and adaptive.
    Valiant,
    /// UGAL-G: the same candidates as `Adaptive`, scored with global
    /// queue knowledge (summed occupancy over the whole path).
    UgalG,
    /// PAR (progressive adaptive): a UGAL-L decision at the source,
    /// re-evaluated at the source group's gateway.
    Progressive,
}

impl Routing {
    /// Every selectable policy, for sweeps and fuzzers.
    pub const ALL: [Routing; 5] = [
        Routing::Minimal,
        Routing::Adaptive,
        Routing::Valiant,
        Routing::UgalG,
        Routing::Progressive,
    ];

    /// Short label used in config nomenclature and CSV/golden filenames.
    /// Reads the single-source constants on the policy types, so a label
    /// exists in exactly one place.
    pub fn label(self) -> &'static str {
        match self {
            Routing::Minimal => MinimalPolicy::LABEL,
            Routing::Adaptive => UgalLocal::LABEL,
            Routing::Valiant => ValiantPolicy::LABEL,
            Routing::UgalG => UgalGlobal::LABEL,
            Routing::Progressive => Progressive::LABEL,
        }
    }

    /// Parse a label back into a selector (inverse of [`Routing::label`]).
    pub fn from_label(label: &str) -> Option<Routing> {
        Routing::ALL.into_iter().find(|r| r.label() == label)
    }

    /// Instantiate the policy behind this selector. `Send` because
    /// sharded runs move the owning `Network` across worker threads.
    pub fn policy(self) -> Box<dyn RoutingPolicy + Send> {
        match self {
            Routing::Minimal => Box::new(MinimalPolicy),
            Routing::Adaptive => Box::new(UgalLocal),
            Routing::Valiant => Box::new(ValiantPolicy),
            Routing::UgalG => Box::new(UgalGlobal),
            Routing::Progressive => Box::new(Progressive),
        }
    }
}

/// Computes routes by delegating to a [`RoutingPolicy`]. Owns its RNG
/// stream so routing decisions don't perturb other randomized subsystems,
/// plus the persistent candidate buffers and the optional telemetry
/// ledger the policy borrows per decision.
pub struct RouteComputer {
    routing: Routing,
    policy: Box<dyn RoutingPolicy + Send>,
    rng: Xoshiro256,
    scratch: Vec<ChannelId>,
    /// Second persistent buffer holding the best candidate seen so far
    /// during adaptive selection. Swapped with `scratch` when a candidate
    /// wins, so the per-packet hot path allocates nothing.
    best: Vec<ChannelId>,
    /// UGAL decision counters, recorded only when telemetry is on
    /// (`None` costs one branch per adaptive decision).
    stats: Option<RouteStats>,
}

impl RouteComputer {
    /// New route computer with its own RNG stream.
    pub fn new(routing: Routing, rng: Xoshiro256) -> RouteComputer {
        RouteComputer {
            routing,
            policy: routing.policy(),
            rng,
            scratch: Vec::with_capacity(paths::MAX_ROUTER_HOPS),
            best: Vec::with_capacity(paths::MAX_ROUTER_HOPS),
            stats: None,
        }
    }

    /// The policy selector in use.
    pub fn routing(&self) -> Routing {
        self.routing
    }

    /// Replace the candidate buffers with recycled ones (arena reuse —
    /// see `SimArena`). Capacity-only: both buffers are cleared before
    /// use, so routing results are unaffected.
    pub(crate) fn adopt_buffers(
        &mut self,
        (mut scratch, mut best): (Vec<ChannelId>, Vec<ChannelId>),
    ) {
        scratch.clear();
        best.clear();
        scratch.reserve(paths::MAX_ROUTER_HOPS);
        best.reserve(paths::MAX_ROUTER_HOPS);
        self.scratch = scratch;
        self.best = best;
    }

    /// Hand the candidate buffers back for arena recycling.
    pub(crate) fn release_buffers(&mut self) -> (Vec<ChannelId>, Vec<ChannelId>) {
        (
            std::mem::take(&mut self.scratch),
            std::mem::take(&mut self.best),
        )
    }

    /// Start recording UGAL decision counters (telemetry). Recording does
    /// not change which routes are chosen.
    pub fn enable_stats(&mut self) {
        self.stats = Some(RouteStats::new());
    }

    /// The recorded UGAL decision counters, if recording was enabled.
    pub fn stats(&self) -> Option<&RouteStats> {
        self.stats.as_ref()
    }

    /// Compute the router-to-router channel sequence for a packet from
    /// `src` to `dst` (terminal channels are added by the caller).
    ///
    /// `occupancy(channel)` must return the total queued bytes currently
    /// held at a channel; adaptive policies read it through a
    /// [`ChannelView`] as their congestion signal. Results are appended
    /// to `out`.
    pub fn compute(
        &mut self,
        topo: &Topology,
        params: &NetworkParams,
        src: NodeId,
        dst: NodeId,
        occupancy: impl Fn(ChannelId) -> Bytes,
        out: &mut Vec<ChannelId>,
    ) {
        let src_r = topo.node_router(src);
        let dst_r = topo.node_router(dst);
        let view = ChannelView::new(&occupancy);
        let mut ctx = RouteCtx {
            topo,
            params,
            rng: &mut self.rng,
            scratch: &mut self.scratch,
            best: &mut self.best,
            stats: self.stats.as_mut(),
        };
        self.policy.route(&mut ctx, src_r, dst_r, &view, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfly_topology::TopologyConfig;

    fn topo() -> Topology {
        Topology::build(TopologyConfig::small_test())
    }

    fn mk(routing: Routing) -> RouteComputer {
        RouteComputer::new(routing, Xoshiro256::seed_from(42))
    }

    #[test]
    fn labels() {
        assert_eq!(Routing::Minimal.label(), "min");
        assert_eq!(Routing::Adaptive.label(), "adp");
        assert_eq!(Routing::Valiant.label(), "val");
        assert_eq!(Routing::UgalG.label(), "ugalg");
        assert_eq!(Routing::Progressive.label(), "par");
    }

    #[test]
    fn labels_round_trip_and_stay_unique() {
        let mut seen = std::collections::HashSet::new();
        for r in Routing::ALL {
            assert!(seen.insert(r.label()), "duplicate label {}", r.label());
            assert_eq!(Routing::from_label(r.label()), Some(r));
            assert_eq!(r.policy().label(), r.label(), "enum/policy label drift");
        }
        assert_eq!(Routing::from_label("nope"), None);
    }

    #[test]
    fn minimal_routes_are_valid_and_short() {
        let t = topo();
        let params = NetworkParams::default();
        let mut rc = mk(Routing::Minimal);
        let n = t.config().total_nodes();
        for s in (0..n).step_by(7) {
            for d in (0..n).step_by(11) {
                let mut route = Vec::new();
                rc.compute(&t, &params, NodeId(s), NodeId(d), |_| 0, &mut route);
                let p = dfly_topology::Path {
                    channels: route.clone(),
                    kind: dfly_topology::RouteKind::Minimal,
                };
                assert!(paths::validate_path(
                    &t,
                    t.node_router(NodeId(s)),
                    t.node_router(NodeId(d)),
                    &p
                ));
                assert!(route.len() <= 5);
            }
        }
    }

    #[test]
    fn adaptive_idle_network_prefers_minimal() {
        // With zero occupancy everywhere the hop-cost term dominates, so
        // adaptive must stay near-minimal: at most one global hop for
        // cross-group pairs (rarely two, when a random intermediate
        // happens to lie on a genuinely shorter double-global path) and
        // never longer than the dragonfly minimal bound. Holds for every
        // adaptive-family policy.
        let t = topo();
        let params = NetworkParams::default();
        for routing in [Routing::Adaptive, Routing::UgalG, Routing::Progressive] {
            let mut rc = mk(routing);
            let mut rng = Xoshiro256::seed_from(7);
            let mut hops_total = 0usize;
            let n = 200;
            for _ in 0..n {
                let s = NodeId(rng.next_below(t.config().total_nodes() as u64) as u32);
                let d = NodeId(rng.next_below(t.config().total_nodes() as u64) as u32);
                let mut adaptive = Vec::new();
                rc.compute(&t, &params, s, d, |_| 0, &mut adaptive);
                assert!(
                    adaptive.len() <= 5,
                    "idle {} took {} hops",
                    routing.label(),
                    adaptive.len()
                );
                hops_total += adaptive.len();
            }
            // Average must be well inside the minimal regime (< 3 hops on
            // the small machine, where minimal averages ~2.5).
            assert!(
                (hops_total as f64 / n as f64) < 3.5,
                "idle {} average hops too high: {}",
                routing.label(),
                hops_total as f64 / n as f64
            );
        }
    }

    #[test]
    fn adaptive_detours_around_congested_first_hops() {
        // UGAL-L senses the source router's output queues. Congest every
        // minimal first hop (the channels adaptive uses when idle); the
        // chosen routes must then mostly start on other channels.
        let t = topo();
        let params = NetworkParams::default();
        // Intra-group pair sharing neither row nor column: the minimal
        // first hop is one of exactly two local channels, leaving the
        // source router's five other output channels as detour starts.
        let src = NodeId(0); // router (g0, row 0, col 0)
        let dst_router = t.router_at(dfly_topology::GroupId(0), 1, 3);
        let dst = t.router_nodes(dst_router).next().unwrap();

        // Observe the idle-network first hops (minimal candidates).
        let mut rc = mk(Routing::Adaptive);
        let mut minimal_first = std::collections::HashSet::new();
        for _ in 0..100 {
            let mut route = Vec::new();
            rc.compute(&t, &params, src, dst, |_| 0, &mut route);
            minimal_first.insert(route[0]);
        }
        assert!(minimal_first.len() <= 2);

        let mut rc = mk(Routing::Adaptive);
        let mut avoided = 0;
        let trials = 60;
        for _ in 0..trials {
            let mut route = Vec::new();
            rc.compute(
                &t,
                &params,
                src,
                dst,
                |c| {
                    if minimal_first.contains(&c) {
                        8 << 20
                    } else {
                        0
                    }
                },
                &mut route,
            );
            if !minimal_first.contains(&route[0]) {
                avoided += 1;
            }
        }
        // Detours require a non-minimal candidate whose first hop is
        // uncongested; with 2 random intermediates per packet that is the
        // common case but not guaranteed, hence a majority check.
        assert!(
            avoided > trials / 2,
            "adaptive avoided congested first hops only {avoided}/{trials}"
        );
    }

    #[test]
    fn every_policy_stays_within_bounds() {
        let t = topo();
        let params = NetworkParams::default();
        for routing in Routing::ALL {
            let mut rc = mk(routing);
            let mut rng = Xoshiro256::seed_from(3);
            for _ in 0..300 {
                let s = NodeId(rng.next_below(t.config().total_nodes() as u64) as u32);
                let d = NodeId(rng.next_below(t.config().total_nodes() as u64) as u32);
                let mut route = Vec::new();
                rc.compute(&t, &params, s, d, |c| (c.0 as u64 * 37) % 5000, &mut route);
                assert!(
                    route.len() <= paths::MAX_ROUTER_HOPS,
                    "{} exceeded hop budget",
                    routing.label()
                );
                let p = dfly_topology::Path {
                    channels: route,
                    kind: dfly_topology::RouteKind::NonMinimal,
                };
                assert!(
                    paths::validate_path(&t, t.node_router(s), t.node_router(d), &p),
                    "{} produced an invalid path",
                    routing.label()
                );
            }
        }
    }

    #[test]
    fn valiant_routes_valid_and_longer_on_average() {
        let t = topo();
        let params = NetworkParams::default();
        let mut val = mk(Routing::Valiant);
        let mut min = mk(Routing::Minimal);
        let mut rng = Xoshiro256::seed_from(15);
        let (mut v_hops, mut m_hops) = (0usize, 0usize);
        for _ in 0..200 {
            let s = NodeId(rng.next_below(t.config().total_nodes() as u64) as u32);
            let d = NodeId(rng.next_below(t.config().total_nodes() as u64) as u32);
            let mut rv = Vec::new();
            val.compute(&t, &params, s, d, |_| 0, &mut rv);
            let p = dfly_topology::Path {
                channels: rv.clone(),
                kind: dfly_topology::RouteKind::NonMinimal,
            };
            assert!(paths::validate_path(
                &t,
                t.node_router(s),
                t.node_router(d),
                &p
            ));
            v_hops += rv.len();
            let mut rm = Vec::new();
            min.compute(&t, &params, s, d, |_| 0, &mut rm);
            m_hops += rm.len();
        }
        assert!(v_hops > m_hops, "valiant {v_hops} !> minimal {m_hops}");
    }

    #[test]
    fn stats_recording_never_changes_routes() {
        let t = topo();
        let params = NetworkParams::default();
        let occ = |c: ChannelId| (c.0 as u64 * 131) % 9000;
        for routing in [Routing::Adaptive, Routing::UgalG, Routing::Progressive] {
            let mut plain = mk(routing);
            let mut recorded = mk(routing);
            recorded.enable_stats();
            for i in 0..200u32 {
                let s = NodeId(i % t.config().total_nodes());
                let d = NodeId((i * 29 + 3) % t.config().total_nodes());
                let mut ra = Vec::new();
                let mut rb = Vec::new();
                plain.compute(&t, &params, s, d, occ, &mut ra);
                recorded.compute(&t, &params, s, d, occ, &mut rb);
                assert_eq!(
                    ra,
                    rb,
                    "stats recording perturbed a {} route",
                    routing.label()
                );
            }
            let stats = recorded.stats().unwrap();
            assert_eq!(stats.total(), 200, "every adaptive decision recorded");
            assert!(plain.stats().is_none());
        }
    }

    #[test]
    fn stats_see_forced_detours_as_nonminimal() {
        // Congest everything 5-hops-cheap; with all first hops equally
        // loaded the bias keeps decisions minimal. Then congest only the
        // minimal first hops: recorded decisions must flip non-minimal.
        let t = topo();
        let params = NetworkParams::default();
        let src = NodeId(0);
        let dst_router = t.router_at(dfly_topology::GroupId(0), 1, 3);
        let dst = t.router_nodes(dst_router).next().unwrap();

        let mut rc = mk(Routing::Adaptive);
        let mut minimal_first = std::collections::HashSet::new();
        for _ in 0..100 {
            let mut route = Vec::new();
            rc.compute(&t, &params, src, dst, |_| 0, &mut route);
            minimal_first.insert(route[0]);
        }

        let mut rc = mk(Routing::Adaptive);
        rc.enable_stats();
        for _ in 0..60 {
            let mut route = Vec::new();
            rc.compute(
                &t,
                &params,
                src,
                dst,
                |c| {
                    if minimal_first.contains(&c) {
                        8 << 20
                    } else {
                        0
                    }
                },
                &mut route,
            );
        }
        let stats = rc.stats().unwrap();
        assert_eq!(stats.total(), 60);
        assert!(
            stats.nonminimal_taken > 30,
            "only {}/60 decisions non-minimal under forced congestion",
            stats.nonminimal_taken
        );
        assert!(stats.mean_margin() > 0.0);
    }

    #[test]
    fn ugal_g_senses_downstream_congestion_ugal_l_cannot_see() {
        // Congest only *global* channels. UGAL-L (first-hop signal, local
        // channels first) scores every candidate by its local first hop
        // and cannot tell them apart; UGAL-G sums the whole path, so its
        // chosen routes should accumulate less global-channel occupancy.
        let t = topo();
        let params = NetworkParams::default();
        let occ = |c: ChannelId| {
            if t.channel(c).class == dfly_topology::ChannelClass::Global {
                (c.0 as u64 * 7919) % 100_000
            } else {
                0
            }
        };
        let mut local = mk(Routing::Adaptive);
        let mut global = mk(Routing::UgalG);
        let (mut l_occ, mut g_occ) = (0u64, 0u64);
        let mut rng = Xoshiro256::seed_from(99);
        for _ in 0..400 {
            let s = NodeId(rng.next_below(t.config().total_nodes() as u64) as u32);
            let d = NodeId(rng.next_below(t.config().total_nodes() as u64) as u32);
            let mut rl = Vec::new();
            let mut rg = Vec::new();
            local.compute(&t, &params, s, d, occ, &mut rl);
            global.compute(&t, &params, s, d, occ, &mut rg);
            l_occ += rl.iter().map(|&c| occ(c)).sum::<u64>();
            g_occ += rg.iter().map(|&c| occ(c)).sum::<u64>();
        }
        assert!(
            g_occ < l_occ,
            "UGAL-G accumulated {g_occ} queued bytes vs UGAL-L {l_occ}"
        );
    }

    #[test]
    fn par_diverts_at_the_gateway_when_planned_global_is_congested() {
        // Cross-group pair on an idle network: PAR follows the minimal
        // winner. Congest the minimal global channels heavily: PAR must
        // start diverting through sibling gateways (its ledger records
        // those as non-minimal), while still producing valid paths.
        let t = topo();
        let params = NetworkParams::default();
        let src = NodeId(0);
        // A node in another group.
        let dst_router = t.router_at(dfly_topology::GroupId(1), 0, 0);
        let dst = t.router_nodes(dst_router).next().unwrap();

        // Collect the global channels idle PAR uses for this pair.
        let mut rc = mk(Routing::Progressive);
        let mut idle_globals = std::collections::HashSet::new();
        for _ in 0..100 {
            let mut route = Vec::new();
            rc.compute(&t, &params, src, dst, |_| 0, &mut route);
            for &c in &route {
                if t.channel(c).class == dfly_topology::ChannelClass::Global {
                    idle_globals.insert(c);
                }
            }
        }
        assert!(!idle_globals.is_empty());

        let mut rc = mk(Routing::Progressive);
        rc.enable_stats();
        let mut diverted = 0;
        let trials = 80;
        for _ in 0..trials {
            let mut route = Vec::new();
            rc.compute(
                &t,
                &params,
                src,
                dst,
                |c| {
                    if idle_globals.contains(&c) {
                        8 << 20
                    } else {
                        0
                    }
                },
                &mut route,
            );
            let p = dfly_topology::Path {
                channels: route.clone(),
                kind: dfly_topology::RouteKind::NonMinimal,
            };
            assert!(paths::validate_path(
                &t,
                t.node_router(src),
                t.node_router(dst),
                &p
            ));
            if route
                .iter()
                .any(|&c| t.channel(c).class == dfly_topology::ChannelClass::Global)
                && !route.iter().any(|&c| idle_globals.contains(&c))
            {
                diverted += 1;
            }
        }
        assert!(
            diverted > trials / 2,
            "PAR diverted only {diverted}/{trials} under forced gateway congestion"
        );
        let stats = rc.stats().unwrap();
        assert!(
            stats.nonminimal_taken > 0,
            "diversions must show on the ledger"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let t = topo();
        let params = NetworkParams::default();
        for routing in Routing::ALL {
            let mut a = mk(routing);
            let mut b = mk(routing);
            for i in 0..50u32 {
                let s = NodeId(i % t.config().total_nodes());
                let d = NodeId((i * 13) % t.config().total_nodes());
                let mut ra = Vec::new();
                let mut rb = Vec::new();
                a.compute(&t, &params, s, d, |_| 0, &mut ra);
                b.compute(&t, &params, s, d, |_| 0, &mut rb);
                assert_eq!(ra, rb, "{} not deterministic", routing.label());
            }
        }
    }

    #[test]
    fn trait_reimplementation_is_byte_identical_to_legacy_algorithms() {
        // Frozen reimplementation of the pre-trait `RouteComputer` match
        // (minimal / adaptive / valiant exactly as they were written),
        // run against the trait-based computer with identical seeds. This
        // is the in-crate half of the byte-identity contract; the
        // end-to-end half lives in tests/refactor_equivalence.rs.
        struct Legacy {
            rng: Xoshiro256,
            scratch: Vec<ChannelId>,
            best: Vec<ChannelId>,
        }
        impl Legacy {
            fn compute(
                &mut self,
                routing: Routing,
                topo: &Topology,
                params: &NetworkParams,
                src: NodeId,
                dst: NodeId,
                occupancy: impl Fn(ChannelId) -> Bytes,
                out: &mut Vec<ChannelId>,
            ) {
                let src_r = topo.node_router(src);
                let dst_r = topo.node_router(dst);
                let score = |candidate: &[ChannelId], bias: u64| -> u64 {
                    let hops = candidate.len() as u64;
                    let first = candidate.first().map(|&c| occupancy(c)).unwrap_or(0);
                    first.saturating_mul(hops).saturating_add(bias)
                };
                match routing {
                    Routing::Minimal => {
                        paths::push_minimal(topo, src_r, dst_r, &mut self.rng, out);
                    }
                    Routing::Valiant => loop {
                        self.scratch.clear();
                        let inter = paths::random_intermediate(topo, &mut self.rng);
                        paths::push_minimal(topo, src_r, inter, &mut self.rng, &mut self.scratch);
                        paths::push_minimal(topo, inter, dst_r, &mut self.rng, &mut self.scratch);
                        if self.scratch.len() <= paths::MAX_ROUTER_HOPS {
                            out.extend_from_slice(&self.scratch);
                            break;
                        }
                    },
                    Routing::Adaptive => {
                        let mut best_score = u64::MAX;
                        self.best.clear();
                        for _ in 0..2 {
                            self.scratch.clear();
                            paths::push_minimal(
                                topo,
                                src_r,
                                dst_r,
                                &mut self.rng,
                                &mut self.scratch,
                            );
                            let s = score(&self.scratch, 0);
                            if s < best_score {
                                best_score = s;
                                std::mem::swap(&mut self.best, &mut self.scratch);
                            }
                        }
                        for _ in 0..2 {
                            let inter = paths::random_intermediate(topo, &mut self.rng);
                            self.scratch.clear();
                            paths::push_minimal(
                                topo,
                                src_r,
                                inter,
                                &mut self.rng,
                                &mut self.scratch,
                            );
                            paths::push_minimal(
                                topo,
                                inter,
                                dst_r,
                                &mut self.rng,
                                &mut self.scratch,
                            );
                            if self.scratch.len() <= paths::MAX_ROUTER_HOPS {
                                let s = score(&self.scratch, params.adaptive_bias_bytes);
                                if s < best_score {
                                    best_score = s;
                                    std::mem::swap(&mut self.best, &mut self.scratch);
                                }
                            }
                        }
                        out.extend_from_slice(&self.best);
                    }
                    _ => unreachable!("legacy computer had three policies"),
                }
            }
        }

        let t = topo();
        let params = NetworkParams::default();
        let occ = |c: ChannelId| (c.0 as u64 * 97) % 12_345;
        for routing in [Routing::Minimal, Routing::Adaptive, Routing::Valiant] {
            let mut legacy = Legacy {
                rng: Xoshiro256::seed_from(42),
                scratch: Vec::new(),
                best: Vec::new(),
            };
            let mut modern = mk(routing);
            for i in 0..300u32 {
                let s = NodeId(i % t.config().total_nodes());
                let d = NodeId((i * 31 + 5) % t.config().total_nodes());
                let mut ra = Vec::new();
                let mut rb = Vec::new();
                legacy.compute(routing, &t, &params, s, d, occ, &mut ra);
                modern.compute(&t, &params, s, d, occ, &mut rb);
                assert_eq!(ra, rb, "{} diverged from legacy", routing.label());
            }
        }
    }
}
