//! Intra-run parallelism: one network replica per dragonfly group under
//! conservative time-window PDES.
//!
//! ## Partitioning
//!
//! The dragonfly's only inter-group links are global channels, whose
//! minimum latency (global flight time plus the receiving router's
//! traversal) is the *lookahead* `L`. Simulated time is cut into fixed
//! windows of `L`; an event inside window `w` can only affect another
//! group at or after window `w + 1`, so every group-replica processes a
//! whole window without synchronizing mid-window. Each replica is an
//! ordinary serial [`Network`] in shard mode: it owns the channels whose
//! transmitting end sits in its group, exports packets crossing a global
//! link as [`WireRecord`]s, and imports its neighbors' records at window
//! starts.
//!
//! ## Determinism
//!
//! The unit of partitioning is the *group*, never the worker: `n`
//! workers only distribute the per-group replicas round-robin
//! (`group % n`), every replica processes every window, and imports are
//! sorted on `(t_arr, src_group, emit_seq)` before event-sequence
//! numbers are assigned. Results are therefore byte-identical at any
//! worker count — enforced by `tests/determinism.rs`. (The sharded
//! schedule is *not* bit-identical to the legacy serial loop: cross-group
//! credit reservation becomes landing queues and driver injections
//! quantize to window starts, the same modeling deviation a conservative
//! ROSS/CODES run accepts. The A/B test bounds the statistical gap.)
//!
//! ## Window protocol
//!
//! The coordinator ([`ShardedNetwork`]) drives lockstep windows: it
//! distributes driver injections, sends every worker a `Window` command,
//! and waits for one acknowledgement per worker. Cross-group records
//! travel through per-directed-edge [`Mailbox`]es, double-buffered by
//! window parity: window `w` *exports into* parity `(w + 1) % 2` and
//! *imports from* parity `w % 2`, so a replica still ingesting window
//! `w` never sees a neighbor's freshly exported window-`w` records.
//! After each window every replica publishes its horizon — the earliest
//! time it still has work, including the records it just exported — on a
//! [`ShardClock`]; the coordinator skips straight to the window holding
//! the global minimum. Exports from window `w` arrive strictly inside
//! window `w + 1`, so a skip never strands a mailbox record.

use crate::arena::SimArena;
use crate::audit::{AuditKind, AuditReport, AuditViolation};
use crate::metrics::NetworkMetrics;
use crate::net::{Delivery, Network, NetworkEvent};
use crate::packet::{MessageId, PacketId, Route};
use crate::params::NetworkParams;
use crate::routing::Routing;
use dfly_engine::shard::{min_horizon, Mailbox, ShardClock, Windows, IDLE};
use dfly_engine::{Bytes, Ns};
use dfly_obs::ObsReport;
use dfly_topology::{ChannelClass, NodeId, Topology};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A packet crossing a group boundary, serialized as plain data: enough
/// to re-materialize the packet and (on first contact) its message's
/// shadow in the destination replica.
#[derive(Debug, Clone)]
pub(crate) struct WireRecord {
    /// Arrival time at the far end of the global channel (transmit-done
    /// time plus the channel's flight + router traversal latency).
    pub(crate) t_arr: Ns,
    /// Exporting group (sort key component; also the conservation ledger
    /// index).
    pub(crate) src_group: u32,
    /// Per (exporter, destination-group) emission counter: disambiguates
    /// same-instant arrivals deterministically.
    pub(crate) emit_seq: u64,
    /// Run-global message id (see [`crate::packet::MessageState::gid`]).
    pub(crate) gid: u64,
    /// Packet payload bytes.
    pub(crate) size: u32,
    /// Route position of the global channel just crossed.
    pub(crate) hop: u8,
    /// The packet's full fixed route.
    pub(crate) route: Route,
    /// Message metadata, carried so any replica can materialize the
    /// message shadow without a broadcast.
    pub(crate) src: NodeId,
    pub(crate) dst: NodeId,
    pub(crate) bytes: Bytes,
    pub(crate) tag: u64,
    pub(crate) injected_at: Ns,
    pub(crate) total_packets: u64,
}

/// Per-replica shard state, owned by a [`Network`] in shard mode.
#[derive(Debug)]
pub(crate) struct ShardState {
    /// The group this replica simulates.
    pub(crate) group: u32,
    /// Channel -> owning group (the group of the transmitting end).
    pub(crate) owner: Vec<u32>,
    /// For global channels: the receiving end's group (`u32::MAX`
    /// otherwise).
    pub(crate) global_dst: Vec<u32>,
    /// Records exported this window, bucketed by destination group.
    pub(crate) outboxes: Vec<Vec<WireRecord>>,
    /// Per destination group: next emission sequence number.
    pub(crate) emit_seq: Vec<u64>,
    /// gid -> local message slot, for attributing further imports (and
    /// detour returns) of an already-seen message.
    pub(crate) remote: HashMap<u64, MessageId>,
    /// Per-channel queues of imports refused at ingress (no cross-shard
    /// credit is reserved; head-blocking FIFO drained on TxDone).
    pub(crate) landing: Vec<VecDeque<PacketId>>,
    /// Conservation ledger: (bytes, packets) exported to each group.
    pub(crate) exported_to: Vec<(u64, u64)>,
    /// Conservation ledger: (bytes, packets) imported from each group.
    pub(crate) imported_from: Vec<(u64, u64)>,
}

impl ShardState {
    pub(crate) fn new(
        group: u32,
        groups: usize,
        channels: usize,
        owner: Vec<u32>,
        global_dst: Vec<u32>,
    ) -> ShardState {
        ShardState {
            group,
            owner,
            global_dst,
            outboxes: vec![Vec::new(); groups],
            emit_seq: vec![0; groups],
            remote: HashMap::new(),
            landing: vec![VecDeque::new(); channels],
            exported_to: vec![(0, 0); groups],
            imported_from: vec![(0, 0); groups],
        }
    }
}

/// A driver injection buffered at the coordinator until the next window.
#[derive(Debug, Clone)]
struct InjectCmd {
    at: Ns,
    src: NodeId,
    dst: NodeId,
    bytes: Bytes,
    tag: u64,
    gid: u64,
}

/// State shared between the coordinator and the workers.
struct Shared {
    /// Per-group published horizons.
    clocks: Vec<ShardClock>,
    /// Parity-double-buffered edge mailboxes, indexed
    /// `parity * g * g + src * g + dst`.
    edges: Vec<Mailbox<WireRecord>>,
    /// Per-group driver injections for the upcoming window.
    inject: Vec<Mailbox<InjectCmd>>,
    /// Per-group deliveries of the window just run.
    delivered: Vec<Mailbox<Delivery>>,
    /// Per-group network-load gauges, published at window ends.
    queued_bytes: Vec<AtomicU64>,
    in_flight: Vec<AtomicU64>,
}

enum Cmd {
    Window { index: u64, end: Ns },
    Finish,
}

/// The worker thread: owns its replicas, processes one window per
/// command, returns the replicas at `Finish` (or when the coordinator
/// hangs up).
fn worker_loop(
    mut nets: Vec<(u32, Network)>,
    shared: Arc<Shared>,
    groups: usize,
    cmds: Receiver<Cmd>,
    done: Sender<()>,
) -> Vec<(u32, Network)> {
    let mut inj: Vec<InjectCmd> = Vec::new();
    let mut imports: Vec<WireRecord> = Vec::new();
    let mut dels: Vec<Delivery> = Vec::new();
    while let Ok(cmd) = cmds.recv() {
        let Cmd::Window { index, end } = cmd else {
            break;
        };
        let read_base = (index as usize & 1) * groups * groups;
        let write_base = ((index as usize + 1) & 1) * groups * groups;
        for (group, net) in nets.iter_mut() {
            let g = *group as usize;
            // 1. Driver injections buffered for this group.
            inj.clear();
            shared.inject[g].drain_into(&mut inj);
            for c in &inj {
                net.send_sharded(c.gid, c.at, c.src, c.dst, c.bytes, c.tag);
            }
            // 2. Cross-group arrivals exported by neighbors last window,
            //    in a worker-count-independent total order.
            imports.clear();
            for src in 0..groups {
                shared.edges[read_base + src * groups + g].drain_into(&mut imports);
            }
            imports.sort_by_key(|r| (r.t_arr, r.src_group, r.emit_seq));
            net.import_records(&imports);
            // 3. The window itself (end is exclusive).
            net.run_until(end - Ns(1));
            // 4. Publish exports into next window's parity.
            let mut min_export = IDLE;
            for dst in 0..groups {
                let outbox = net.take_outbox(dst);
                for r in outbox.iter() {
                    min_export = min_export.min(r.t_arr.as_nanos());
                }
                shared.edges[write_base + g * groups + dst].push_batch(outbox);
            }
            // 5. Hand deliveries to the coordinator.
            dels.clear();
            net.take_deliveries_into(&mut dels);
            shared.delivered[g].push_batch(&mut dels);
            // 6. Publish gauges and the horizon: the earliest instant
            //    this group still owes work, counting what it exported.
            shared.queued_bytes[g].store(net.total_queued_bytes(), Ordering::Release);
            shared.in_flight[g].store(net.packets_in_flight() as u64, Ordering::Release);
            let next = net
                .next_event_time()
                .map_or(IDLE, |t| t.as_nanos())
                .min(min_export);
            shared.clocks[g].publish(next);
        }
        if done.send(()).is_err() {
            break;
        }
    }
    nets
}

/// A parallel, sharded drop-in for [`Network`]'s driver-facing surface
/// (`send` / `poll` / `now` / `schedule_wakeup`): one replica per
/// dragonfly group on `workers` threads, lockstep conservative windows.
/// Consume with [`ShardedNetwork::finish`] to join the workers and merge
/// metrics, audit, and telemetry.
pub struct ShardedNetwork {
    topo: Arc<Topology>,
    params: NetworkParams,
    windows: Windows,
    groups: usize,
    shared: Arc<Shared>,
    workers: Vec<(Sender<Cmd>, JoinHandle<Vec<(u32, Network)>>)>,
    done_rx: Receiver<()>,
    /// Node -> group, for routing injections to their replica.
    node_group: Vec<u32>,
    /// Coordinator-visible simulated time: the timestamp of the last
    /// surfaced event (monotone; lags the replicas by up to one window).
    cursor: Ns,
    /// End of the last window run; nothing may be scheduled behind it.
    fence: Ns,
    next_window: u64,
    /// Minimum published horizon after the last window ([`IDLE`] before
    /// the first — injections drive the first window).
    horizon: u64,
    /// Events ready to hand to the driver, timestamped.
    surface: VecDeque<(Ns, NetworkEvent)>,
    /// Driver wakeups are coordinator-local: replicas never see them.
    wakeups: BinaryHeap<Reverse<u64>>,
    pending: Vec<InjectCmd>,
    next_gid: u64,
    inj_buckets: Vec<Vec<InjectCmd>>,
    del_scratch: Vec<Delivery>,
}

impl ShardedNetwork {
    /// Build a sharded network over `topo` on `workers` threads (clamped
    /// to the group count; the per-*group* partition makes results
    /// byte-identical for every value). `seed` derives each replica's
    /// routing-RNG stream as `seed + group`.
    pub fn new(
        topo: Arc<Topology>,
        params: NetworkParams,
        routing: Routing,
        seed: u64,
        workers: usize,
    ) -> ShardedNetwork {
        ShardedNetwork::with_arenas(topo, params, routing, seed, workers, &mut Vec::new())
    }

    /// Like [`ShardedNetwork::new`] but reusing per-group arena
    /// capacities from a previous run (see [`ShardParts::recycle`]).
    pub fn with_arenas(
        topo: Arc<Topology>,
        params: NetworkParams,
        routing: Routing,
        seed: u64,
        workers: usize,
        arenas: &mut Vec<SimArena>,
    ) -> ShardedNetwork {
        let groups = topo.config().groups as usize;
        assert!(groups >= 2, "sharding needs at least two groups");
        assert!(workers >= 1, "at least one worker thread required");
        let workers_n = workers.min(groups);
        let lookahead = topo.class_latency(ChannelClass::Global) + topo.config().router_latency;
        let windows = Windows::new(lookahead);
        if arenas.len() < groups {
            arenas.resize_with(groups, SimArena::new);
        }
        let node_group = (0..topo.config().total_nodes())
            .map(|n| topo.node_group(NodeId(n)).0)
            .collect();
        let shared = Arc::new(Shared {
            clocks: (0..groups).map(|_| ShardClock::new()).collect(),
            edges: (0..2 * groups * groups).map(|_| Mailbox::new()).collect(),
            inject: (0..groups).map(|_| Mailbox::new()).collect(),
            delivered: (0..groups).map(|_| Mailbox::new()).collect(),
            queued_bytes: (0..groups).map(|_| AtomicU64::new(0)).collect(),
            in_flight: (0..groups).map(|_| AtomicU64::new(0)).collect(),
        });
        let mut per_worker: Vec<Vec<(u32, Network)>> = (0..workers_n).map(|_| Vec::new()).collect();
        for g in 0..groups {
            let mut net = Network::with_arena(
                topo.clone(),
                params,
                routing,
                seed.wrapping_add(g as u64),
                &mut arenas[g],
            );
            net.enable_shard(g as u32);
            per_worker[g % workers_n].push((g as u32, net));
        }
        let (done_tx, done_rx) = channel();
        let workers = per_worker
            .into_iter()
            .map(|nets| {
                let (cmd_tx, cmd_rx) = channel();
                let shared = Arc::clone(&shared);
                let done = done_tx.clone();
                let handle =
                    std::thread::spawn(move || worker_loop(nets, shared, groups, cmd_rx, done));
                (cmd_tx, handle)
            })
            .collect();
        ShardedNetwork {
            params,
            windows,
            groups,
            shared,
            workers,
            done_rx,
            node_group,
            cursor: Ns::ZERO,
            fence: Ns::ZERO,
            next_window: 0,
            horizon: IDLE,
            surface: VecDeque::new(),
            wakeups: BinaryHeap::new(),
            pending: Vec::new(),
            next_gid: 1,
            inj_buckets: (0..groups).map(|_| Vec::new()).collect(),
            del_scratch: Vec::new(),
            topo,
        }
    }

    /// The topology the network runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Network parameters in use.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// The PDES window size (the global-link lookahead).
    pub fn lookahead(&self) -> Ns {
        self.windows.lookahead()
    }

    /// Coordinator-visible simulated time: the timestamp of the last
    /// event surfaced by [`ShardedNetwork::poll`].
    pub fn now(&self) -> Ns {
        self.cursor
    }

    /// Queue a message for injection. The returned id is synthetic (the
    /// run-global message id) — deliveries are matched by tag, as the
    /// driving layers already do.
    pub fn send(&mut self, at: Ns, src: NodeId, dst: NodeId, bytes: Bytes, tag: u64) -> MessageId {
        let total = self.topo.config().total_nodes();
        assert!(
            src.0 < total && dst.0 < total,
            "send endpoints out of range"
        );
        let gid = self.next_gid;
        self.next_gid += 1;
        self.pending.push(InjectCmd {
            at: at.max(self.cursor),
            src,
            dst,
            bytes,
            tag,
            gid,
        });
        MessageId(gid)
    }

    /// Request a [`NetworkEvent::Wakeup`] at absolute time `at`. Wakeups
    /// live at the coordinator and surface *before* the window containing
    /// them runs, so a driver reacting with an injection still lands it
    /// inside that window.
    pub fn schedule_wakeup(&mut self, at: Ns) {
        self.wakeups.push(Reverse(at.as_nanos()));
    }

    /// Advance the simulation until the next delivery or wakeup. Returns
    /// `None` once every replica is idle with nothing buffered anywhere.
    pub fn poll(&mut self) -> Option<NetworkEvent> {
        loop {
            if let Some((t, ev)) = self.surface.pop_front() {
                self.cursor = self.cursor.max(t);
                return Some(ev);
            }
            // The earliest pending work anywhere: buffered injections and
            // wakeups (both clamped to the fence — behind it, they run
            // "now"), and the replicas' published horizon.
            let fence = self.fence.as_nanos();
            let m_inject = self
                .pending
                .iter()
                .map(|c| c.at.as_nanos().max(fence))
                .min()
                .unwrap_or(IDLE);
            let m_wakeup = self.wakeups.peek().map_or(IDLE, |&Reverse(t)| t.max(fence));
            let m = m_inject.min(m_wakeup).min(self.horizon);
            if m == IDLE {
                return None;
            }
            let w = self.next_window.max(self.windows.index_of(Ns(m)));
            let end = self.windows.end(w);
            // Surface wakeups due before this window completes, so the
            // driver reacts before the window's events are committed.
            let mut surfaced = false;
            while let Some(&Reverse(t)) = self.wakeups.peek() {
                let t = t.max(fence);
                if t >= end.as_nanos() {
                    break;
                }
                self.wakeups.pop();
                self.surface.push_back((Ns(t), NetworkEvent::Wakeup));
                surfaced = true;
            }
            if surfaced {
                continue;
            }
            self.run_window(w, end);
        }
    }

    /// Run one lockstep window across all workers and collect its
    /// deliveries.
    fn run_window(&mut self, w: u64, end: Ns) {
        for c in self.pending.drain(..) {
            let g = self.node_group[c.src.index()] as usize;
            let mut c = c;
            c.at = c.at.max(self.fence);
            self.inj_buckets[g].push(c);
        }
        for g in 0..self.groups {
            self.shared.inject[g].push_batch(&mut self.inj_buckets[g]);
        }
        for (cmd_tx, _) in &self.workers {
            cmd_tx
                .send(Cmd::Window { index: w, end })
                .expect("PDES worker disappeared");
        }
        for _ in 0..self.workers.len() {
            self.done_rx.recv().expect("PDES worker panicked");
        }
        self.fence = end;
        self.next_window = w + 1;
        self.horizon = min_horizon(&self.shared.clocks);
        // Merge deliveries: per-group streams are already time-ordered;
        // the stable sort breaks cross-group ties in group order —
        // deterministic at any worker count.
        self.del_scratch.clear();
        for g in 0..self.groups {
            self.shared.delivered[g].drain_into(&mut self.del_scratch);
        }
        self.del_scratch.sort_by_key(|d| d.completed_at);
        for d in self.del_scratch.drain(..) {
            let t = d.completed_at;
            self.surface.push_back((t, NetworkEvent::Delivery(d)));
        }
    }

    /// Sum of the replicas' queued-bytes gauges (window-granular: updated
    /// at window ends, deterministic at any worker count).
    pub fn total_queued_bytes(&self) -> Bytes {
        self.shared
            .queued_bytes
            .iter()
            .map(|g| g.load(Ordering::Acquire))
            .sum()
    }

    /// Sum of the replicas' live-packet gauges (window-granular).
    pub fn packets_in_flight(&self) -> usize {
        self.shared
            .in_flight
            .iter()
            .map(|g| g.load(Ordering::Acquire))
            .sum::<u64>() as usize
    }

    /// Join the workers and merge the run's results. Also settles the
    /// cross-shard conservation ledger: per directed group pair, bytes
    /// and packets exported must equal bytes and packets imported plus
    /// whatever is still buffered in the edge mailboxes (a run may stop
    /// with traffic in flight).
    pub fn finish(mut self) -> ShardParts {
        for (cmd_tx, _) in &self.workers {
            let _ = cmd_tx.send(Cmd::Finish);
        }
        let mut slots: Vec<Option<Network>> = (0..self.groups).map(|_| None).collect();
        for (cmd_tx, handle) in self.workers.drain(..) {
            drop(cmd_tx);
            for (g, net) in handle.join().expect("PDES worker panicked") {
                slots[g as usize] = Some(net);
            }
        }
        let nets: Vec<Network> = slots
            .into_iter()
            .enumerate()
            .map(|(g, n)| n.unwrap_or_else(|| panic!("group {g} has no replica")))
            .collect();
        // Undelivered traffic still in the mailboxes counts toward the
        // importer side of the ledger.
        let mut in_edges = vec![(0u64, 0u64); self.groups * self.groups];
        let mut leftover = Vec::new();
        for parity in 0..2 {
            for src in 0..self.groups {
                for dst in 0..self.groups {
                    leftover.clear();
                    self.shared.edges[parity * self.groups * self.groups + src * self.groups + dst]
                        .drain_into(&mut leftover);
                    let e = &mut in_edges[src * self.groups + dst];
                    for r in &leftover {
                        e.0 += r.size as u64;
                        e.1 += 1;
                    }
                }
            }
        }
        let final_time = nets.iter().map(|n| n.now()).max().unwrap_or(Ns::ZERO);
        let mut edge_violations = Vec::new();
        for src in 0..self.groups {
            for dst in 0..self.groups {
                let exported = nets[src].shard_state().expect("shard mode").exported_to[dst];
                let imported = nets[dst].shard_state().expect("shard mode").imported_from[src];
                let buffered = in_edges[src * self.groups + dst];
                let arrived = (imported.0 + buffered.0, imported.1 + buffered.1);
                if exported != arrived {
                    edge_violations.push(AuditViolation {
                        kind: AuditKind::ByteConservation,
                        channel: None,
                        vc: None,
                        expected: exported.0,
                        actual: arrived.0,
                        at: final_time,
                        context: format!(
                            "cross-shard edge {src}->{dst}: exported {:?} != imported {:?} + buffered {:?}",
                            exported, imported, buffered
                        ),
                    });
                }
            }
        }
        debug_assert!(
            edge_violations.is_empty(),
            "cross-shard conservation broken: {edge_violations:?}"
        );
        ShardParts {
            topo: self.topo.clone(),
            nets,
            edge_violations,
            final_time,
        }
    }
}

/// The joined replicas of a finished sharded run, with merge views over
/// their metrics, audit ledgers, and telemetry.
pub struct ShardParts {
    topo: Arc<Topology>,
    nets: Vec<Network>,
    edge_violations: Vec<AuditViolation>,
    final_time: Ns,
}

impl ShardParts {
    /// The run-wide end of simulated time (max over replicas).
    pub fn final_time(&self) -> Ns {
        self.final_time
    }

    /// Total events processed across all replicas.
    pub fn events(&self) -> u64 {
        self.nets.iter().map(|n| n.events_processed()).sum()
    }

    /// Total packets delivered across all replicas.
    pub fn packets_delivered(&self) -> u64 {
        self.nets.iter().map(|n| n.packets_delivered()).sum()
    }

    /// Merged per-channel metrics: each channel's truth lives in the one
    /// replica owning it (packets traverse a channel only in the replica
    /// of its transmitting end).
    pub fn metrics(&self) -> NetworkMetrics {
        let owner = &self.nets[0].shard_state().expect("shard mode").owner;
        let snapshots = self
            .topo
            .channels()
            .map(|(id, _)| {
                self.nets[owner[id.index()] as usize].snapshot_channel(id, self.final_time)
            })
            .collect();
        NetworkMetrics::new(snapshots)
    }

    /// Merged audit report (None when auditing was off): per-replica
    /// sweeps plus the cross-shard edge-conservation findings.
    pub fn audit_report(&mut self) -> Option<AuditReport> {
        if !self.nets[0].audit_enabled() {
            return None;
        }
        let mut merged = AuditReport::default();
        for net in &mut self.nets {
            let r = net.audit_report().expect("audit enabled on every replica");
            merged.violations.extend(r.violations);
            merged.suppressed += r.suppressed;
            merged.events_audited += r.events_audited;
            merged.full_sweeps += r.full_sweeps;
        }
        merged
            .violations
            .extend(self.edge_violations.iter().cloned());
        Some(merged)
    }

    /// Merged telemetry report (None when telemetry was off). Every
    /// replica closes its sample series at the same run-wide end time, so
    /// the series merge index-aligned; profiles, histograms, and route
    /// counters are disjoint sums.
    pub fn obs_report(&mut self) -> Option<ObsReport> {
        let final_time = self.final_time;
        let mut merged: Option<ObsReport> = None;
        for net in &mut self.nets {
            let report = net.obs_report_closed_at(final_time)?;
            match merged.as_mut() {
                None => merged = Some(report),
                Some(m) => merge_obs(m, &report),
            }
        }
        merged
    }

    /// Approximate metric-structure bytes summed over every replica (see
    /// [`Network::metric_bytes_approx`]).
    pub fn metric_bytes_approx(&self) -> usize {
        self.nets.iter().map(Network::metric_bytes_approx).sum()
    }

    /// Donate every replica's buffer capacities back into the per-group
    /// arena pool for the next sharded run.
    pub fn recycle(self, arenas: &mut Vec<SimArena>) {
        if arenas.len() < self.nets.len() {
            arenas.resize_with(self.nets.len(), SimArena::new);
        }
        for (g, net) in self.nets.into_iter().enumerate() {
            net.recycle(&mut arenas[g]);
        }
    }
}

/// Field-wise merge of one replica's telemetry into the accumulator.
fn merge_obs(into: &mut ObsReport, from: &ObsReport) {
    for i in 0..into.profile.counts.len() {
        into.profile.counts[i] += from.profile.counts[i];
        into.profile.timed[i] += from.profile.timed[i];
        into.profile.wall_ns[i] += from.profile.wall_ns[i];
    }
    into.profile.total_wall_ns += from.profile.total_wall_ns;
    into.profile.queue_high_water = into
        .profile
        .queue_high_water
        .max(from.profile.queue_high_water);
    into.series.merge_from(&from.series);
    for i in 0..into.vc_occupancy.buckets.len() {
        into.vc_occupancy.buckets[i] += from.vc_occupancy.buckets[i];
    }
    into.vc_occupancy.readings += from.vc_occupancy.readings;
    into.route.minimal_taken += from.route.minimal_taken;
    into.route.nonminimal_taken += from.route.nonminimal_taken;
    for i in 0..into.route.margin_hist.len() {
        into.route.margin_hist[i] += from.route.margin_hist[i];
    }
    into.route.margin_sum += from.route.margin_sum;
    match (into.link_digest.as_mut(), from.link_digest.as_ref()) {
        // Replicas digest disjoint owned-channel sets; merged in fixed
        // group order, so the result is identical for any worker count.
        (Some(a), Some(b)) => a.merge_from(b),
        (None, None) => {}
        _ => panic!("replicas disagree on metrics mode"),
    }
    into.coarse_unavailable |= from.coarse_unavailable;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfly_engine::Xoshiro256;
    use dfly_topology::TopologyConfig;

    fn topo() -> Arc<Topology> {
        Arc::new(Topology::build(TopologyConfig::small_test()))
    }

    fn sharded(workers: usize, audit: bool, obs: bool) -> ShardedNetwork {
        let mut params = NetworkParams::default();
        params.audit = audit;
        params.obs = obs;
        ShardedNetwork::new(topo(), params, Routing::Adaptive, 42, workers)
    }

    fn drain(net: &mut ShardedNetwork) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Some(ev) = net.poll() {
            if let NetworkEvent::Delivery(d) = ev {
                out.push(d);
            }
        }
        out
    }

    #[test]
    fn cross_group_message_delivers_and_audits_clean() {
        let mut net = sharded(2, true, false);
        let last = NodeId(net.topology().config().total_nodes() - 1);
        net.send(Ns::ZERO, NodeId(0), last, 10_000, 7);
        let dels = drain(&mut net);
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].tag, 7);
        assert_eq!(dels[0].bytes, 10_000);
        assert!(dels[0].avg_hops >= 1.0, "crossed a group");
        let mut parts = net.finish();
        assert_eq!(parts.packets_delivered(), 3);
        let report = parts.audit_report().expect("audit on");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn random_traffic_identical_at_any_worker_count() {
        let mut runs: Vec<Vec<Delivery>> = Vec::new();
        for workers in [1usize, 2, 3, 8] {
            let mut net = sharded(workers, true, false);
            let nodes = net.topology().config().total_nodes() as u64;
            let mut rng = Xoshiro256::seed_from(99);
            for i in 0..200u64 {
                let s = NodeId(rng.next_below(nodes) as u32);
                let d = NodeId(rng.next_below(nodes) as u32);
                let bytes = rng.range_inclusive(1, 30_000);
                net.send(Ns(i * 37), s, d, bytes, i);
            }
            let dels = drain(&mut net);
            assert_eq!(dels.len(), 200);
            let mut parts = net.finish();
            assert!(parts.audit_report().expect("audit on").is_clean());
            runs.push(dels);
        }
        for r in &runs[1..] {
            assert_eq!(&runs[0], r, "worker count changed results");
        }
    }

    #[test]
    fn merged_metrics_conserve_traffic_and_obs_merges() {
        let mut net = sharded(3, false, true);
        let nodes = net.topology().config().total_nodes();
        for i in 0..nodes {
            net.send(
                Ns::ZERO,
                NodeId(i),
                NodeId((i + 17) % nodes),
                4096,
                i as u64,
            );
        }
        let dels = drain(&mut net);
        assert_eq!(dels.len(), nodes as usize);
        let mut parts = net.finish();
        let metrics = parts.metrics();
        let traffic: u64 = metrics.channels().map(|c| c.traffic_bytes).sum();
        assert!(traffic >= 2 * 4096 * nodes as u64, "traffic {traffic}");
        let events = parts.events();
        let obs = parts.obs_report().expect("obs on");
        assert_eq!(obs.profile.total_events(), events);
        assert!(obs.vc_occupancy.readings > 0);
    }

    #[test]
    fn wakeups_fire_in_order_with_deliveries_available() {
        let mut net = sharded(2, false, false);
        net.schedule_wakeup(Ns(100));
        net.schedule_wakeup(Ns(5_000));
        net.send(Ns::ZERO, NodeId(0), NodeId(1), 256, 1);
        let mut wakeups = 0;
        let mut deliveries = 0;
        let mut last = Ns::ZERO;
        while let Some(ev) = net.poll() {
            assert!(net.now() >= last, "cursor went backwards");
            last = net.now();
            match ev {
                NetworkEvent::Wakeup => wakeups += 1,
                NetworkEvent::Delivery(_) => deliveries += 1,
            }
        }
        assert_eq!((wakeups, deliveries), (2, 1));
        net.finish();
    }

    #[test]
    fn drained_network_polls_none_and_again() {
        let mut net = sharded(2, true, false);
        assert!(net.poll().is_none(), "fresh network is drained");
        net.send(Ns::ZERO, NodeId(3), NodeId(60), 1, 9);
        assert_eq!(drain(&mut net).len(), 1);
        assert!(net.poll().is_none());
        let mut parts = net.finish();
        assert!(parts.audit_report().expect("audit on").is_clean());
    }
}
