//! Crate-level behavioural tests of the network model: timing exactness,
//! fairness, back-pressure propagation, and metric accounting.

use dfly_engine::{Ns, Xoshiro256};
use dfly_network::{Network, NetworkParams, Routing};
use dfly_topology::{ChannelClass, NodeId, Topology, TopologyConfig};
use std::sync::Arc;

fn topo() -> Arc<Topology> {
    Arc::new(Topology::build(TopologyConfig::small_test()))
}

fn net(routing: Routing) -> Network {
    Network::new(topo(), NetworkParams::default(), routing, 4242)
}

/// Exact single-packet latency over a known 1-hop route: terminal-up +
/// row link + terminal-down, each serialization + propagation + router
/// latency at router entries.
#[test]
fn single_packet_latency_exact() {
    let t = topo();
    let mut n = Network::new(t.clone(), NetworkParams::default(), Routing::Minimal, 1);
    // Node 0 (router 0) -> first node of router 1 (same row, col 1).
    let dst = t
        .router_nodes(t.router_at(dfly_topology::GroupId(0), 0, 1))
        .next()
        .unwrap();
    n.send(Ns::ZERO, NodeId(0), dst, 4096, 0);
    let d = n.poll_delivery().unwrap();
    let cfg = t.config();
    let ser_t = cfg.terminal_bw.serialization_time(4096);
    let ser_l = cfg.local_bw.serialization_time(4096);
    let expected = (ser_t + cfg.terminal_latency + cfg.router_latency)
        + (ser_l + cfg.local_latency + cfg.router_latency)
        + (ser_t + cfg.terminal_latency);
    assert_eq!(d.latency(), expected);
    assert_eq!(d.avg_hops, 1.0);
}

/// Two messages from different sources to different destinations on
/// disjoint paths don't delay each other at all.
#[test]
fn disjoint_paths_no_interference() {
    let mut solo = net(Routing::Minimal);
    solo.send(Ns::ZERO, NodeId(0), NodeId(2), 100_000, 0);
    let solo_latency = solo.poll_delivery().unwrap().latency();

    let mut both = net(Routing::Minimal);
    both.send(Ns::ZERO, NodeId(0), NodeId(2), 100_000, 0);
    // Router 2 and 3's nodes: a disjoint intra-row pair.
    both.send(Ns::ZERO, NodeId(4), NodeId(6), 100_000, 1);
    let mut latencies = std::collections::HashMap::new();
    while let Some(d) = both.poll_delivery() {
        latencies.insert(d.tag, d.latency());
    }
    assert_eq!(latencies[&0], solo_latency);
}

/// Sharing one bottleneck link halves throughput: two messages from the
/// same source router over the same (slow) row link take ~2x as long as
/// one, even though their terminal links are disjoint.
#[test]
fn shared_link_serializes_fairly() {
    // Nodes 4 and 5 sit on router 2; nodes 0 and 1 on router 0 of the
    // same row. Both messages share only the row link 2 -> 0, which at
    // 5.25 GiB/s is the bottleneck (terminals run at 16 GiB/s).
    let mut solo = net(Routing::Minimal);
    solo.send(Ns::ZERO, NodeId(4), NodeId(0), 400_000, 0);
    let t_solo = solo.poll_delivery().unwrap().completed_at;

    let mut shared = net(Routing::Minimal);
    shared.send(Ns::ZERO, NodeId(4), NodeId(0), 400_000, 0);
    shared.send(Ns::ZERO, NodeId(5), NodeId(1), 400_000, 1);
    let mut last = Ns::ZERO;
    while let Some(d) = shared.poll_delivery() {
        last = last.max(d.completed_at);
    }
    let ratio = last.as_nanos() as f64 / t_solo.as_nanos() as f64;
    assert!(
        (1.7..2.3).contains(&ratio),
        "sharing the row link should ~double completion: ratio {ratio:.2}"
    );
}

/// Messages between the same pair are delivered in injection order
/// (packets of distinct messages share one FIFO path).
#[test]
fn same_pair_fifo_delivery() {
    let mut n = net(Routing::Minimal);
    for i in 0..20u64 {
        n.send(Ns(i), NodeId(0), NodeId(5), 10_000, i);
    }
    let mut seen = Vec::new();
    while let Some(d) = n.poll_delivery() {
        seen.push(d.tag);
    }
    assert_eq!(seen, (0..20).collect::<Vec<_>>());
}

/// Saturation time is measured, not merely flagged: a long ejection
/// backlog must accumulate a saturation time of the same order as the
/// backlog duration.
#[test]
fn saturation_time_magnitude() {
    let t = topo();
    let mut n = Network::new(t.clone(), NetworkParams::default(), Routing::Minimal, 2);
    // 32 senders, one destination node, big messages: the terminal-down
    // link is the bottleneck and everything upstream backs up.
    let volume = 200_000u64;
    let senders = 30;
    for (k, src) in (2..32u32).enumerate() {
        n.send(Ns::ZERO, NodeId(src * 2), NodeId(0), volume, k as u64);
    }
    n.run_to_idle();
    let drain_time = t
        .config()
        .terminal_bw
        .serialization_time(volume * senders as u64);
    let m = n.metrics();
    let total_sat: u64 = m.channels().map(|c| c.saturated_time.as_nanos()).sum();
    // The backlog lasts ~drain_time; with dozens of upstream channels
    // blocked, the total saturated time must be at least that long.
    assert!(
        total_sat as f64 > drain_time.as_nanos() as f64 * 0.5,
        "saturation {total_sat}ns vs drain {drain_time}"
    );
}

/// Traffic accounting: each channel's recorded traffic is a multiple of
/// nothing in particular, but the terminal-up traffic of a node equals
/// exactly the bytes it sent (header floor for zero-byte messages aside).
#[test]
fn terminal_traffic_matches_sent_bytes() {
    let t = topo();
    let mut n = Network::new(t.clone(), NetworkParams::default(), Routing::Adaptive, 3);
    let mut sent = 0u64;
    let mut rng = Xoshiro256::seed_from(77);
    for i in 0..40 {
        let bytes = rng.range_inclusive(1, 60_000);
        n.send(
            Ns(i * 10),
            NodeId(0),
            NodeId(32 + (i % 16) as u32),
            bytes,
            i,
        );
        sent += bytes;
    }
    n.run_to_idle();
    let m = n.metrics();
    let up = m
        .channels()
        .find(|c| c.id == t.terminal_up(NodeId(0)))
        .unwrap();
    assert_eq!(up.traffic_bytes, sent);
}

/// The global-channel population carries all inter-group traffic exactly
/// once under minimal routing.
#[test]
fn global_traffic_conservation_minimal() {
    let t = topo();
    let mut n = Network::new(t.clone(), NetworkParams::default(), Routing::Minimal, 4);
    let per_group = t.config().routers_per_group() * t.config().nodes_per_router;
    let mut inter_group_bytes = 0u64;
    for i in 0..60u64 {
        let src = NodeId((i % 16) as u32);
        let dst = NodeId(per_group + (i % per_group as u64) as u32); // group 1
        n.send(Ns(i * 5), src, dst, 30_000, i);
        inter_group_bytes += 30_000;
    }
    n.run_to_idle();
    let m = n.metrics();
    let global_total = m.total_traffic(ChannelClass::Global);
    // Minimal: exactly one global hop per packet; packet rounding can
    // only add the final short packet per message.
    assert!(global_total >= inter_group_bytes);
    assert!(global_total < inter_group_bytes + 60 * 4096);
}

/// Valiant routing crosses globals twice for inter-group traffic.
#[test]
fn global_traffic_doubles_under_valiant() {
    let t = topo();
    let run = |routing: Routing| {
        let mut n = Network::new(t.clone(), NetworkParams::default(), routing, 4);
        let per_group = t.config().routers_per_group() * t.config().nodes_per_router;
        for i in 0..60u64 {
            n.send(
                Ns(i * 5),
                NodeId((i % 16) as u32),
                NodeId(per_group + (i % 16) as u32),
                30_000,
                i,
            );
        }
        n.run_to_idle();
        n.metrics().total_traffic(ChannelClass::Global)
    };
    let min = run(Routing::Minimal);
    let val = run(Routing::Valiant);
    let ratio = val as f64 / min as f64;
    // Valiant's intermediate lies in a third group ~3/4 of the time
    // (two global hops), in src/dst's group otherwise: expect 1.5..2.0.
    assert!((1.3..2.1).contains(&ratio), "ratio {ratio:.2}");
}

/// Determinism holds across routing policies and parameter variations.
#[test]
fn determinism_over_parameter_grid() {
    for routing in [Routing::Minimal, Routing::Adaptive, Routing::Valiant] {
        for packet in [1024u32, 4096] {
            let run = || {
                let params = NetworkParams {
                    packet_size: packet,
                    ..NetworkParams::default()
                };
                let mut n = Network::new(topo(), params, routing, 99);
                let mut rng = Xoshiro256::seed_from(1);
                for i in 0..50u64 {
                    let s = NodeId(rng.next_below(64) as u32);
                    let d = NodeId(rng.next_below(64) as u32);
                    n.send(Ns(i * 7), s, d, 20_000, i);
                }
                let mut out = Vec::new();
                while let Some(d) = n.poll_delivery() {
                    out.push((d.tag, d.completed_at));
                }
                out
            };
            assert_eq!(run(), run(), "{routing:?}/{packet}");
        }
    }
}
