//! Wall-clock sources for event-loop profiling.
//!
//! [`ObsClock`] is the single timestamp source the telemetry layer uses
//! around event handlers. It comes in two flavors:
//!
//! * **precise** (default): `std::time::Instant` against a fixed epoch —
//!   nanosecond resolution, one `clock_gettime(CLOCK_MONOTONIC)` vDSO
//!   call per read.
//! * **coarse** (opt-in, Linux): `CLOCK_MONOTONIC_COARSE`, which reads
//!   the kernel's cached tick timestamp without a hardware counter
//!   access. Reads cost a few ns but only resolve to the timer tick
//!   (typically 1–4 ms), so it is only useful for *aggregate* timing
//!   over many sampled events, never for individual handler costs.
//!
//! On non-Linux targets the coarse flag silently falls back to the
//! precise source, so callers can set it unconditionally.

use std::time::Instant;

/// A monotonic nanosecond clock for profiling event handlers.
#[derive(Debug, Clone)]
pub struct ObsClock {
    coarse: bool,
    epoch: Instant,
}

impl ObsClock {
    /// A new clock; `coarse` requests the kernel's cached-tick source
    /// where available (Linux), otherwise the precise source is used.
    pub fn new(coarse: bool) -> ObsClock {
        ObsClock {
            coarse: coarse && sys::coarse_supported(),
            epoch: Instant::now(),
        }
    }

    /// Whether reads actually use the coarse source (false when the
    /// platform lacks one, even if it was requested).
    pub fn is_coarse(&self) -> bool {
        self.coarse
    }

    /// Monotonic nanoseconds since an arbitrary epoch. Only differences
    /// between two reads of the *same* clock are meaningful.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        if self.coarse {
            sys::coarse_now_ns()
        } else {
            self.epoch.elapsed().as_nanos() as u64
        }
    }
}

impl Default for ObsClock {
    fn default() -> Self {
        ObsClock::new(false)
    }
}

#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
mod sys {
    //! `CLOCK_MONOTONIC_COARSE` via a direct `clock_gettime` call. std
    //! already links libc, so no new dependency is involved; the struct
    //! layout matches 64-bit Linux `struct timespec`.

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    const CLOCK_MONOTONIC_COARSE: i32 = 6;

    extern "C" {
        fn clock_gettime(clock_id: i32, tp: *mut Timespec) -> i32;
    }

    pub(super) fn coarse_supported() -> bool {
        true
    }

    pub(super) fn coarse_now_ns() -> u64 {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a valid, writable timespec and the clock id is a
        // compile-time constant the kernel has supported since 2.6.32.
        let rc = unsafe { clock_gettime(CLOCK_MONOTONIC_COARSE, &mut ts) };
        debug_assert_eq!(rc, 0, "clock_gettime(CLOCK_MONOTONIC_COARSE) failed");
        (ts.tv_sec as u64)
            .wrapping_mul(1_000_000_000)
            .wrapping_add(ts.tv_nsec as u64)
    }
}

#[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
mod sys {
    pub(super) fn coarse_supported() -> bool {
        false
    }

    pub(super) fn coarse_now_ns() -> u64 {
        unreachable!("coarse clock reads are gated on coarse_supported()")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_clock_is_monotone_and_advances() {
        let c = ObsClock::new(false);
        assert!(!c.is_coarse());
        let a = c.now_ns();
        let mut spin = 0u64;
        while c.now_ns() == a && spin < 100_000_000 {
            spin += 1;
        }
        assert!(c.now_ns() >= a);
    }

    #[test]
    fn coarse_clock_reads_without_panicking() {
        let c = ObsClock::new(true);
        let a = c.now_ns();
        let b = c.now_ns();
        // Coarse reads may return the same tick; they must not go back.
        assert!(b >= a);
        if cfg!(all(target_os = "linux", target_pointer_width = "64")) {
            assert!(c.is_coarse());
            assert!(a > 0, "monotonic coarse time should be far from zero");
        }
    }
}
