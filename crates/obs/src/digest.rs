//! Per-link-class streaming digests — the bounded replacement for dense
//! per-channel metric vectors at scale.
//!
//! In `MetricsMode::Streaming`, the collector feeds every channel's
//! end-of-run counters (traffic bytes, credit-saturated time, busy time)
//! into a [`LinkDigest`] instead of materializing per-channel CDFs: one
//! seeded [`ReservoirCdf`] plus two exact-moment [`StreamSummary`]s per
//! channel class, so the figure-4/6-style distributions survive at
//! `O(classes * K)` memory no matter how many links the machine has.
//! Digests merge deterministically across PDES shards (each group
//! replica digests only the channels it owns; the drain merges in fixed
//! group order).

use crate::sampler::OBS_CLASSES;
use dfly_engine::{Ns, Xoshiro256};
use dfly_stats::{Cdf, ReservoirCdf, StreamSummary};

/// One channel class's digest: traffic distribution (reservoir + exact
/// moments) and saturated-time moments.
#[derive(Debug, Clone)]
pub struct ClassDigest {
    /// Reservoir sample of per-channel traffic, in megabytes.
    pub traffic_mb: ReservoirCdf,
    /// Exact moments + log-histogram of per-channel traffic, in bytes.
    pub traffic_bytes: StreamSummary,
    /// Exact moments + log-histogram of per-channel credit-saturated
    /// time, in milliseconds.
    pub saturated_ms: StreamSummary,
}

/// Streaming digest over all channel classes (indexed like
/// [`OBS_CLASSES`]).
#[derive(Debug, Clone)]
pub struct LinkDigest {
    reservoir_k: usize,
    classes: Vec<ClassDigest>,
}

impl LinkDigest {
    /// Empty digest with `reservoir_k`-sample reservoirs. Each class's
    /// reservoir gets its own tag stream split from `seed`, so class
    /// populations sample independently but reproducibly.
    pub fn new(reservoir_k: usize, seed: u64) -> LinkDigest {
        let mut master = Xoshiro256::seed_from(seed);
        let classes = (0..OBS_CLASSES.len())
            .map(|c| ClassDigest {
                traffic_mb: ReservoirCdf::new(reservoir_k, master.split(c as u64 + 1).next_u64()),
                traffic_bytes: StreamSummary::new(),
                saturated_ms: StreamSummary::new(),
            })
            .collect();
        LinkDigest {
            reservoir_k,
            classes,
        }
    }

    /// Reservoir capacity per class.
    pub fn reservoir_k(&self) -> usize {
        self.reservoir_k
    }

    /// Record one channel's end-of-run counters under its class index
    /// (dense class order, as in [`OBS_CLASSES`]).
    pub fn observe_channel(&mut self, class_idx: usize, traffic_bytes: u64, saturated: Ns) {
        let d = &mut self.classes[class_idx];
        d.traffic_mb.push(traffic_bytes as f64 / 1.0e6);
        d.traffic_bytes.record(traffic_bytes as f64);
        d.saturated_ms.record(saturated.as_nanos() as f64 / 1.0e6);
    }

    /// One class's digest.
    pub fn class(&self, class_idx: usize) -> &ClassDigest {
        &self.classes[class_idx]
    }

    /// Channels digested under a class.
    pub fn channels(&self, class_idx: usize) -> u64 {
        self.classes[class_idx].traffic_bytes.count()
    }

    /// The class's sampled traffic distribution as a [`Cdf`] (MB).
    pub fn traffic_mb_cdf(&self, class_idx: usize) -> Cdf {
        self.classes[class_idx].traffic_mb.to_cdf()
    }

    /// Merge another digest (same `reservoir_k`): reservoirs union
    /// bottom-k, summaries merge field-wise. Order-independent for the
    /// retained reservoir values; deterministic in any case because the
    /// shard drain merges in fixed group order.
    pub fn merge_from(&mut self, other: &LinkDigest) {
        assert_eq!(
            self.reservoir_k, other.reservoir_k,
            "merging digests with different reservoir capacities"
        );
        for (a, b) in self.classes.iter_mut().zip(other.classes.iter()) {
            a.traffic_mb.merge_from(&b.traffic_mb);
            a.traffic_bytes.merge_from(&b.traffic_bytes);
            a.saturated_ms.merge_from(&b.saturated_ms);
        }
    }

    /// Approximate heap footprint, in bytes — `O(classes * K)`, duration
    /// and link-count independent.
    pub fn approx_bytes(&self) -> usize {
        self.classes
            .iter()
            .map(|d| {
                d.traffic_mb.approx_bytes()
                    + d.traffic_bytes.approx_bytes()
                    + d.saturated_ms.approx_bytes()
            })
            .sum::<usize>()
            + std::mem::size_of::<LinkDigest>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_records_per_class() {
        let mut d = LinkDigest::new(16, 7);
        d.observe_channel(4, 2_000_000, Ns(3_000_000));
        d.observe_channel(4, 4_000_000, Ns(1_000_000));
        d.observe_channel(0, 1_000, Ns(0));
        assert_eq!(d.channels(4), 2);
        assert_eq!(d.channels(0), 1);
        assert_eq!(d.channels(2), 0);
        assert_eq!(d.class(4).traffic_bytes.sum(), 6_000_000.0);
        assert_eq!(d.class(4).saturated_ms.max(), Some(3.0));
        let cdf = d.traffic_mb_cdf(4);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.max(), Some(4.0));
    }

    #[test]
    fn digest_merge_matches_single_feed_counts() {
        let mut whole = LinkDigest::new(8, 11);
        let mut a = LinkDigest::new(8, 11);
        let mut b = LinkDigest::new(8, 11);
        for i in 0..100u64 {
            let (cls, traffic, sat) = ((i % 5) as usize, i * 1_000, Ns(i * 10));
            whole.observe_channel(cls, traffic, sat);
            if i < 50 {
                a.observe_channel(cls, traffic, sat);
            } else {
                b.observe_channel(cls, traffic, sat);
            }
        }
        a.merge_from(&b);
        for c in 0..5 {
            assert_eq!(a.channels(c), whole.channels(c));
            assert_eq!(
                a.class(c).traffic_bytes.min(),
                whole.class(c).traffic_bytes.min()
            );
            assert_eq!(
                a.class(c).traffic_bytes.max(),
                whole.class(c).traffic_bytes.max()
            );
        }
    }

    #[test]
    fn digest_is_seed_deterministic_and_bounded() {
        let feed = |seed: u64| {
            let mut d = LinkDigest::new(4, seed);
            for i in 0..10_000u64 {
                d.observe_channel((i % 5) as usize, i, Ns(i));
            }
            d
        };
        let (x, y) = (feed(3), feed(3));
        for c in 0..5 {
            assert_eq!(
                x.class(c).traffic_mb.values(),
                y.class(c).traffic_mb.values()
            );
            assert_eq!(x.class(c).traffic_mb.len(), 4, "reservoir capped");
        }
        assert!(x.approx_bytes() < 64 * 1024);
    }

    #[test]
    #[should_panic(expected = "different reservoir capacities")]
    fn digest_merge_rejects_k_mismatch() {
        let mut a = LinkDigest::new(4, 1);
        a.merge_from(&LinkDigest::new(8, 1));
    }
}
