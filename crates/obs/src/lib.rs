//! # dfly-obs
//!
//! Telemetry data model for the dragonfly simulator — the continuous
//! counter view that production congestion studies (Jha et al.'s
//! interconnect congestion study, Kang et al.'s Dragonfly+ interference
//! model) are built on, and that the paper's own figures *read*:
//! per-link-class utilization over time, credit-stall time, VC occupancy,
//! and adaptive-vs-minimal routing decisions.
//!
//! This crate holds the passive data structures and their sinks:
//!
//! * [`EventLoopProfile`] — exact per-event-type counts plus a
//!   stride-sampled timing subset (every Nth event per kind is measured,
//!   the rest only counted), event-queue depth high-water mark, and
//!   estimated wall shares / events per second extrapolated from the
//!   timed subset;
//! * [`ObsClock`] — the timestamp source for that sampling: a precise
//!   `Instant`-based monotonic clock, or Linux's `CLOCK_MONOTONIC_COARSE`
//!   when a few-ns read matters more than per-read resolution;
//! * [`SampleSeries`] / [`NetSample`] — the periodic in-simulation sample
//!   stream (per-class utilization, queued bytes, credit-stall time,
//!   UGAL decision deltas);
//! * [`OccupancyHistogram`] — VC buffer occupancy distribution across
//!   samples;
//! * [`RouteStats`] — UGAL decision counters (minimal vs non-minimal
//!   winners and the margin distribution between the two families);
//! * [`ObsReport`] — everything above bundled per run, with
//!   `results/obs_*.csv` sinks (via [`dfly_stats::CsvWriter`]) and an
//!   ASCII sparkline summary.
//!
//! The *hooks* that feed these structures live in `dfly-network` (the
//! collector walks channel state the same way the audit layer does) and
//! are opt-in via `NetworkParams::obs`: telemetry observes, it never
//! perturbs — obs-on and obs-off runs are bit-identical in every
//! simulation output at every stride, the obs-off hot path pays one
//! branch per hook (proved <2% by `bench/benches/obs_benches.rs`), and
//! the obs-on path does O(1/stride) timestamp reads (gated ≤1.25x by the
//! `event_rate` bench in CI).

#![warn(missing_docs)]

pub mod clock;
pub mod digest;
pub mod profile;
pub mod report;
pub mod sampler;

pub use clock::ObsClock;
pub use digest::{ClassDigest, LinkDigest};
pub use profile::{EventKind, EventLoopProfile};
pub use report::ObsReport;
pub use sampler::{NetSample, OccupancyHistogram, RouteStats, SampleSeries, OBS_CLASSES};

// Re-exported so `dfly-network` (which already depends on this crate)
// can reference the metrics knob and the bounded timeline without a new
// dependency edge.
pub use dfly_stats::streaming::{CoarseTimeline, MetricsMode};
