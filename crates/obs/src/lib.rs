//! # dfly-obs
//!
//! Telemetry data model for the dragonfly simulator — the continuous
//! counter view that production congestion studies (Jha et al.'s
//! interconnect congestion study, Kang et al.'s Dragonfly+ interference
//! model) are built on, and that the paper's own figures *read*:
//! per-link-class utilization over time, credit-stall time, VC occupancy,
//! and adaptive-vs-minimal routing decisions.
//!
//! This crate holds the passive data structures and their sinks:
//!
//! * [`EventLoopProfile`] — per-event-type counts and wall-clock time,
//!   event-queue depth high-water mark, events/sec;
//! * [`SampleSeries`] / [`NetSample`] — the periodic in-simulation sample
//!   stream (per-class utilization, queued bytes, credit-stall time,
//!   UGAL decision deltas);
//! * [`OccupancyHistogram`] — VC buffer occupancy distribution across
//!   samples;
//! * [`RouteStats`] — UGAL decision counters (minimal vs non-minimal
//!   winners and the margin distribution between the two families);
//! * [`ObsReport`] — everything above bundled per run, with
//!   `results/obs_*.csv` sinks (via [`dfly_stats::CsvWriter`]) and an
//!   ASCII sparkline summary.
//!
//! The *hooks* that feed these structures live in `dfly-network` (the
//! collector walks channel state the same way the audit layer does) and
//! are opt-in via `NetworkParams::obs`: telemetry observes, it never
//! perturbs — obs-on and obs-off runs are bit-identical in every
//! simulation output, and the obs-off hot path pays one branch per hook
//! (proved <2% by `bench/benches/obs_benches.rs`).

#![warn(missing_docs)]

pub mod profile;
pub mod report;
pub mod sampler;

pub use profile::{EventKind, EventLoopProfile};
pub use report::ObsReport;
pub use sampler::{NetSample, OccupancyHistogram, RouteStats, SampleSeries, OBS_CLASSES};
