//! Event-loop profiling: what the simulator spends its wall-clock on.
//!
//! The event loop dispatches four kinds of events; knowing their counts,
//! their wall-clock shares, and how deep the event queue gets is the
//! first question of every performance investigation ("is this run
//! arbitration-bound or arrival-bound?"). The profile is fed by the
//! network's `step()` when telemetry is on; wall-clock time is measured
//! with `std::time::Instant` around each handler, which is fine for an
//! opt-in diagnostic but is exactly why telemetry is off by default.

use std::time::Instant;

/// The event types of the packet engine's loop, as a dense index.
///
/// Mirrors `dfly-network`'s internal `NetEvent` discriminants; kept here
/// so the profile can be rendered without depending on the network crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A message's packets entered the source NIC queue.
    Inject,
    /// A channel finished serializing a packet.
    TxDone,
    /// A packet landed at its next buffer (or its destination).
    Arrive,
    /// A caller-requested wakeup fired.
    Wakeup,
}

impl EventKind {
    /// All kinds, in dense-index order.
    pub const ALL: [EventKind; 4] = [
        EventKind::Inject,
        EventKind::TxDone,
        EventKind::Arrive,
        EventKind::Wakeup,
    ];

    /// Dense index of this kind.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            EventKind::Inject => 0,
            EventKind::TxDone => 1,
            EventKind::Arrive => 2,
            EventKind::Wakeup => 3,
        }
    }

    /// Stable label for CSV and reports.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Inject => "inject",
            EventKind::TxDone => "tx_done",
            EventKind::Arrive => "arrive",
            EventKind::Wakeup => "wakeup",
        }
    }
}

/// Wall-clock profile of an event loop: per-kind counts and time, queue
/// depth high-water mark, and overall event throughput.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLoopProfile {
    /// Events handled, by [`EventKind::index`].
    pub counts: [u64; 4],
    /// Wall-clock nanoseconds spent in each kind's handler.
    pub wall_ns: [u64; 4],
    /// Deepest the event queue ever got (pending events).
    pub queue_high_water: usize,
    /// Wall-clock nanoseconds from profile start to the last event.
    pub total_wall_ns: u64,
}

impl EventLoopProfile {
    /// Fresh, empty profile.
    pub fn new() -> EventLoopProfile {
        EventLoopProfile::default()
    }

    /// Record one handled event: its kind, the `Instant` taken just
    /// before its handler ran, and the queue depth observed after it.
    #[inline]
    pub fn record(&mut self, kind: EventKind, started: Instant, queue_depth: usize) {
        let elapsed = started.elapsed().as_nanos() as u64;
        let i = kind.index();
        self.counts[i] += 1;
        self.wall_ns[i] += elapsed;
        self.total_wall_ns += elapsed;
        if queue_depth > self.queue_high_water {
            self.queue_high_water = queue_depth;
        }
    }

    /// Total events profiled.
    pub fn total_events(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Events handled per wall-clock second (0 if nothing was profiled).
    pub fn events_per_sec(&self) -> f64 {
        if self.total_wall_ns == 0 {
            return 0.0;
        }
        self.total_events() as f64 / (self.total_wall_ns as f64 / 1e9)
    }

    /// Wall-clock share of one event kind, as a fraction of the profiled
    /// total (0 if nothing was profiled).
    pub fn wall_share(&self, kind: EventKind) -> f64 {
        if self.total_wall_ns == 0 {
            return 0.0;
        }
        self.wall_ns[kind.index()] as f64 / self.total_wall_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_index_densely_and_label() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.label().is_empty());
        }
    }

    #[test]
    fn record_accumulates_counts_and_high_water() {
        let mut p = EventLoopProfile::new();
        let t = Instant::now();
        p.record(EventKind::Inject, t, 3);
        p.record(EventKind::Arrive, t, 10);
        p.record(EventKind::Arrive, t, 7);
        assert_eq!(p.counts[EventKind::Inject.index()], 1);
        assert_eq!(p.counts[EventKind::Arrive.index()], 2);
        assert_eq!(p.total_events(), 3);
        assert_eq!(p.queue_high_water, 10);
    }

    #[test]
    fn empty_profile_rates_are_zero() {
        let p = EventLoopProfile::new();
        assert_eq!(p.events_per_sec(), 0.0);
        assert_eq!(p.wall_share(EventKind::TxDone), 0.0);
    }

    #[test]
    fn wall_shares_sum_to_one_when_nonzero() {
        let mut p = EventLoopProfile::new();
        p.counts = [1, 1, 1, 1];
        p.wall_ns = [10, 20, 30, 40];
        p.total_wall_ns = 100;
        let sum: f64 = EventKind::ALL.iter().map(|&k| p.wall_share(k)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p.events_per_sec() > 0.0);
    }
}
