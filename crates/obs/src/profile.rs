//! Event-loop profiling: what the simulator spends its wall-clock on.
//!
//! The event loop dispatches four kinds of events; knowing their counts,
//! their wall-clock shares, and how deep the event queue gets is the
//! first question of every performance investigation ("is this run
//! arbitration-bound or arrival-bound?"). The profile is fed by the
//! network's `step()` when telemetry is on.
//!
//! Timing is **stride-sampled**: every event is counted (so counts stay
//! exact and cross-check against the engine's event total), but only
//! every Nth event per kind has its handler wall-clock measured. Wall
//! totals and shares are therefore *estimates* — per-kind mean of the
//! timed subset extrapolated over the full count — which converge on the
//! exhaustive numbers while costing O(1/N) timestamp reads. At stride 1
//! the estimates reduce exactly to exhaustive timing.

/// The event types of the packet engine's loop, as a dense index.
///
/// Mirrors `dfly-network`'s internal `NetEvent` discriminants; kept here
/// so the profile can be rendered without depending on the network crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A message's packets entered the source NIC queue.
    Inject,
    /// A channel finished serializing a packet.
    TxDone,
    /// A packet landed at its next buffer (or its destination).
    Arrive,
    /// A caller-requested wakeup fired.
    Wakeup,
}

impl EventKind {
    /// All kinds, in dense-index order.
    pub const ALL: [EventKind; 4] = [
        EventKind::Inject,
        EventKind::TxDone,
        EventKind::Arrive,
        EventKind::Wakeup,
    ];

    /// Dense index of this kind.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            EventKind::Inject => 0,
            EventKind::TxDone => 1,
            EventKind::Arrive => 2,
            EventKind::Wakeup => 3,
        }
    }

    /// Stable label for CSV and reports.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Inject => "inject",
            EventKind::TxDone => "tx_done",
            EventKind::Arrive => "arrive",
            EventKind::Wakeup => "wakeup",
        }
    }
}

/// Wall-clock profile of an event loop: exact per-kind counts, a timed
/// subsample of handler costs, queue depth high-water mark, and derived
/// throughput estimates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLoopProfile {
    /// Events handled, by [`EventKind::index`] — exact, every event.
    pub counts: [u64; 4],
    /// How many of each kind had their handler wall-clock measured.
    pub timed: [u64; 4],
    /// Wall-clock nanoseconds accumulated over the *timed* subset only.
    pub wall_ns: [u64; 4],
    /// Deepest the event queue ever got (pending events).
    pub queue_high_water: usize,
    /// Wall-clock nanoseconds over all timed events, all kinds.
    pub total_wall_ns: u64,
}

impl EventLoopProfile {
    /// Fresh, empty profile.
    pub fn new() -> EventLoopProfile {
        EventLoopProfile::default()
    }

    /// Record one handled event whose handler wall-clock was measured.
    #[inline]
    pub fn record_timed(&mut self, kind: EventKind, elapsed_ns: u64, queue_depth: usize) {
        let i = kind.index();
        self.counts[i] += 1;
        self.timed[i] += 1;
        self.wall_ns[i] += elapsed_ns;
        self.total_wall_ns += elapsed_ns;
        if queue_depth > self.queue_high_water {
            self.queue_high_water = queue_depth;
        }
    }

    /// Record one handled event that was counted but not timed (the
    /// stride skipped it).
    #[inline]
    pub fn record_counted(&mut self, kind: EventKind, queue_depth: usize) {
        self.counts[kind.index()] += 1;
        if queue_depth > self.queue_high_water {
            self.queue_high_water = queue_depth;
        }
    }

    /// Total events handled (timed or not).
    pub fn total_events(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total events whose handler cost was measured.
    pub fn timed_events(&self) -> u64 {
        self.timed.iter().sum()
    }

    /// Mean measured handler cost of one kind, in nanoseconds (0 if none
    /// of that kind were timed).
    pub fn mean_ns(&self, kind: EventKind) -> f64 {
        let i = kind.index();
        if self.timed[i] == 0 {
            return 0.0;
        }
        self.wall_ns[i] as f64 / self.timed[i] as f64
    }

    /// Estimated wall-clock spent in one kind's handlers over the whole
    /// run: timed mean extrapolated over the exact count. Equals the
    /// measured total exactly when every event was timed (stride 1).
    pub fn estimated_wall_ns(&self, kind: EventKind) -> u64 {
        (self.mean_ns(kind) * self.counts[kind.index()] as f64).round() as u64
    }

    /// Estimated wall-clock over all kinds (see
    /// [`EventLoopProfile::estimated_wall_ns`]).
    pub fn estimated_total_wall_ns(&self) -> u64 {
        EventKind::ALL
            .iter()
            .map(|&k| self.estimated_wall_ns(k))
            .sum()
    }

    /// Events handled per estimated wall-clock second (0 if nothing was
    /// timed).
    pub fn events_per_sec(&self) -> f64 {
        let est = self.estimated_total_wall_ns();
        if est == 0 {
            return 0.0;
        }
        self.total_events() as f64 / (est as f64 / 1e9)
    }

    /// Estimated wall-clock share of one event kind, as a fraction of the
    /// estimated total (0 if nothing was timed).
    pub fn wall_share(&self, kind: EventKind) -> f64 {
        let est = self.estimated_total_wall_ns();
        if est == 0 {
            return 0.0;
        }
        self.estimated_wall_ns(kind) as f64 / est as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_index_densely_and_label() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.label().is_empty());
        }
    }

    #[test]
    fn record_accumulates_counts_and_high_water() {
        let mut p = EventLoopProfile::new();
        p.record_timed(EventKind::Inject, 5, 3);
        p.record_counted(EventKind::Arrive, 10);
        p.record_timed(EventKind::Arrive, 7, 7);
        assert_eq!(p.counts[EventKind::Inject.index()], 1);
        assert_eq!(p.counts[EventKind::Arrive.index()], 2);
        assert_eq!(p.timed[EventKind::Arrive.index()], 1);
        assert_eq!(p.total_events(), 3);
        assert_eq!(p.timed_events(), 2);
        assert_eq!(p.queue_high_water, 10);
    }

    #[test]
    fn empty_profile_rates_are_zero() {
        let p = EventLoopProfile::new();
        assert_eq!(p.events_per_sec(), 0.0);
        assert_eq!(p.wall_share(EventKind::TxDone), 0.0);
        assert_eq!(p.mean_ns(EventKind::Inject), 0.0);
    }

    #[test]
    fn counted_only_events_produce_no_wall_estimate() {
        // Counts without any timed events must not fabricate wall time.
        let mut p = EventLoopProfile::new();
        for _ in 0..100 {
            p.record_counted(EventKind::TxDone, 1);
        }
        assert_eq!(p.total_events(), 100);
        assert_eq!(p.estimated_total_wall_ns(), 0);
        assert_eq!(p.events_per_sec(), 0.0);
    }

    #[test]
    fn wall_shares_sum_to_one_when_nonzero() {
        let mut p = EventLoopProfile::new();
        p.counts = [1, 1, 1, 1];
        p.timed = [1, 1, 1, 1];
        p.wall_ns = [10, 20, 30, 40];
        p.total_wall_ns = 100;
        let sum: f64 = EventKind::ALL.iter().map(|&k| p.wall_share(k)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p.events_per_sec() > 0.0);
    }

    #[test]
    fn stride_one_estimates_equal_exhaustive_totals() {
        let mut p = EventLoopProfile::new();
        for i in 0..50u64 {
            p.record_timed(EventKind::Arrive, 100 + i, 1);
        }
        assert_eq!(p.estimated_wall_ns(EventKind::Arrive), p.wall_ns[2]);
        assert_eq!(p.estimated_total_wall_ns(), p.total_wall_ns);
    }

    /// Satellite check: stride-sampled means must agree with exhaustive
    /// timing within tolerance on a deterministic synthetic cost model
    /// (handler costs drawn from a fixed LCG, timing every Nth event —
    /// exactly what `ObsCollector` does with real wall-clock reads).
    #[test]
    fn sampled_means_track_exhaustive_means_within_tolerance() {
        const STRIDE: u64 = 64;
        const EVENTS: u64 = 200_000;
        let mut exhaustive = EventLoopProfile::new();
        let mut sampled = EventLoopProfile::new();
        let mut lcg = 0x5EEDu64;
        for i in 0..EVENTS {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let kind = EventKind::ALL[(lcg >> 33) as usize % 4];
            // Per-kind base cost + bounded noise, like real handlers.
            let cost = 50 * (kind.index() as u64 + 1) + (lcg >> 40) % 32;
            exhaustive.record_timed(kind, cost, 1);
            if i % STRIDE == 0 {
                sampled.record_timed(kind, cost, 1);
            } else {
                sampled.record_counted(kind, 1);
            }
        }
        assert_eq!(sampled.total_events(), exhaustive.total_events());
        assert!(sampled.timed_events() <= EVENTS / STRIDE + 1);
        for kind in EventKind::ALL {
            let full = exhaustive.mean_ns(kind);
            let est = sampled.mean_ns(kind);
            let rel = (est - full).abs() / full;
            assert!(
                rel < 0.05,
                "{}: sampled mean {est:.1} vs exhaustive {full:.1} ({:.1}% off)",
                kind.label(),
                100.0 * rel
            );
            // Extrapolated totals agree to the same tolerance.
            let full_total = exhaustive.wall_ns[kind.index()] as f64;
            let est_total = sampled.estimated_wall_ns(kind) as f64;
            assert!((est_total - full_total).abs() / full_total < 0.05);
        }
    }
}
