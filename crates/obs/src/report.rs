//! The per-run telemetry bundle and its sinks.
//!
//! [`ObsReport`] is what a run hands back when telemetry was on: the
//! event-loop profile, the periodic sample series, the VC occupancy
//! histogram, and the UGAL decision counters. It knows how to write
//! itself as a family of `obs_*.csv` files and how to render a compact
//! ASCII summary (sparklines over the sample series) for terminal use.

use crate::digest::LinkDigest;
use crate::profile::{EventKind, EventLoopProfile};
use crate::sampler::{OccupancyHistogram, RouteStats, SampleSeries, OBS_CLASSES};
use dfly_stats::{sparkline, CsvWriter};
use std::io;
use std::path::{Path, PathBuf};

/// Everything telemetry gathered over one run.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Event-loop counts, wall-clock shares, queue high-water.
    pub profile: EventLoopProfile,
    /// Periodic per-class samples.
    pub series: SampleSeries,
    /// VC fill-fraction distribution across all sweeps.
    pub vc_occupancy: OccupancyHistogram,
    /// UGAL decision counters and margin distribution.
    pub route: RouteStats,
    /// Per-link-class streaming digests (`MetricsMode::Streaming` only;
    /// `None` in dense mode, where per-channel snapshots stay exact).
    pub link_digest: Option<LinkDigest>,
    /// The coarse profiling clock was requested but this platform has no
    /// coarse source, so the precise clock was used instead.
    pub coarse_unavailable: bool,
}

impl ObsReport {
    /// Write the report as four CSV files under `dir`, each named
    /// `obs_<what>_<tag>.csv`. Returns the paths written.
    pub fn write_csvs(&self, dir: &Path, tag: &str) -> io::Result<Vec<PathBuf>> {
        let mut written = Vec::new();

        let path = dir.join(format!("obs_profile_{tag}.csv"));
        let mut w = CsvWriter::create(
            &path,
            &[
                "event",
                "count",
                "timed",
                "mean_ns",
                "est_wall_ns",
                "wall_share",
            ],
        )?;
        for kind in EventKind::ALL {
            w.row(&[
                kind.label().to_string(),
                self.profile.counts[kind.index()].to_string(),
                self.profile.timed[kind.index()].to_string(),
                format!("{:.1}", self.profile.mean_ns(kind)),
                self.profile.estimated_wall_ns(kind).to_string(),
                format!("{:.4}", self.profile.wall_share(kind)),
            ])?;
        }
        w.row(&[
            "queue_high_water".to_string(),
            self.profile.queue_high_water.to_string(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ])?;
        w.row(&[
            "events_per_sec".to_string(),
            format!("{:.0}", self.profile.events_per_sec()),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ])?;
        w.finish()?;
        written.push(path);

        let path = dir.join(format!("obs_samples_{tag}.csv"));
        let mut header = vec!["t_ns".to_string()];
        for &(_, label) in &OBS_CLASSES {
            header.push(format!("util_{label}"));
        }
        for &(_, label) in &OBS_CLASSES {
            header.push(format!("queued_{label}"));
        }
        for &(_, label) in &OBS_CLASSES {
            header.push(format!("stall_ns_{label}"));
        }
        header.push("ugal_minimal".to_string());
        header.push("ugal_nonminimal".to_string());
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut w = CsvWriter::create(&path, &header_refs)?;
        for s in self.series.samples() {
            let mut row = vec![s.at.as_nanos().to_string()];
            row.extend(s.util.iter().map(|u| format!("{u:.4}")));
            row.extend(s.queued_bytes.iter().map(|q| q.to_string()));
            row.extend(s.stall_ns.iter().map(|n| n.to_string()));
            row.push(s.minimal_taken.to_string());
            row.push(s.nonminimal_taken.to_string());
            w.row(&row)?;
        }
        w.finish()?;
        written.push(path);

        let path = dir.join(format!("obs_vc_occupancy_{tag}.csv"));
        let mut w = CsvWriter::create(&path, &["fill_lo", "fill_hi", "count", "share"])?;
        for (i, &count) in self.vc_occupancy.buckets.iter().enumerate() {
            w.row(&[
                format!("{:.3}", i as f64 / 8.0),
                format!("{:.3}", (i + 1) as f64 / 8.0),
                count.to_string(),
                format!("{:.4}", self.vc_occupancy.share(i)),
            ])?;
        }
        w.finish()?;
        written.push(path);

        if let Some(digest) = &self.link_digest {
            let path = dir.join(format!("obs_link_digest_{tag}.csv"));
            let mut w = CsvWriter::create(
                &path,
                &[
                    "class",
                    "channels",
                    "traffic_mb_mean",
                    "traffic_mb_p50",
                    "traffic_mb_p90",
                    "traffic_mb_p99",
                    "traffic_mb_max",
                    "sat_ms_mean",
                    "sat_ms_p99",
                    "sat_ms_max",
                    "reservoir_len",
                ],
            )?;
            for (i, &(_, label)) in OBS_CLASSES.iter().enumerate() {
                let d = digest.class(i);
                let (p50, p90, p99) = if d.traffic_mb.is_empty() {
                    (0.0, 0.0, 0.0)
                } else {
                    let cdf = d.traffic_mb.to_cdf();
                    (cdf.quantile(0.5), cdf.quantile(0.9), cdf.quantile(0.99))
                };
                let sat_p99 = if d.saturated_ms.count() == 0 {
                    0.0
                } else {
                    d.saturated_ms.quantile(0.99)
                };
                w.row(&[
                    label.to_string(),
                    digest.channels(i).to_string(),
                    format!("{:.4}", d.traffic_bytes.mean() / 1.0e6),
                    format!("{p50:.4}"),
                    format!("{p90:.4}"),
                    format!("{p99:.4}"),
                    format!("{:.4}", d.traffic_mb.to_cdf().max().unwrap_or(0.0)),
                    format!("{:.4}", d.saturated_ms.mean()),
                    format!("{sat_p99:.4}"),
                    format!("{:.4}", d.saturated_ms.max().unwrap_or(0.0)),
                    d.traffic_mb.len().to_string(),
                ])?;
            }
            w.finish()?;
            written.push(path);
        }

        let path = dir.join(format!("obs_route_{tag}.csv"));
        let mut w = CsvWriter::create(&path, &["metric", "value"])?;
        w.row(&["minimal_taken", &self.route.minimal_taken.to_string()])?;
        w.row(&["nonminimal_taken", &self.route.nonminimal_taken.to_string()])?;
        w.row(&[
            "nonminimal_fraction".to_string(),
            format!("{:.4}", self.route.nonminimal_fraction()),
        ])?;
        w.row(&[
            "mean_margin".to_string(),
            format!("{:.1}", self.route.mean_margin()),
        ])?;
        for (i, &count) in self.route.margin_hist.iter().enumerate() {
            w.row(&[format!("margin_log2_{i}"), count.to_string()])?;
        }
        w.finish()?;
        written.push(path);

        Ok(written)
    }

    /// Compact terminal summary: sparklines over the sample series plus
    /// the headline counters.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        if self.coarse_unavailable {
            out.push_str(
                "warning: coarse profiling clock requested but unavailable on this platform; \
                 precise clock used\n",
            );
        }
        out.push_str(&format!(
            "event loop: {} events ({} timed), {:.0} events/s est, queue high-water {}\n",
            self.profile.total_events(),
            self.profile.timed_events(),
            self.profile.events_per_sec(),
            self.profile.queue_high_water,
        ));
        for kind in EventKind::ALL {
            out.push_str(&format!(
                "  {:8} {:>10}  {:>5.1}% wall est, {:.0} ns/event\n",
                kind.label(),
                self.profile.counts[kind.index()],
                100.0 * self.profile.wall_share(kind),
                self.profile.mean_ns(kind),
            ));
        }
        if !self.series.samples().is_empty() {
            out.push_str(&format!(
                "samples: {} at {} ns intervals{}\n",
                self.series.samples().len(),
                self.series.interval().as_nanos(),
                if self.series.dropped() > 0 {
                    format!(" ({} dropped past cap)", self.series.dropped())
                } else {
                    String::new()
                },
            ));
            for (i, &(_, label)) in OBS_CLASSES.iter().enumerate() {
                let series = self.series.util_series(i);
                let peak = series.iter().cloned().fold(0.0f64, f64::max);
                out.push_str(&format!(
                    "  util {:13} {} peak {:.2}\n",
                    label,
                    sparkline(&series),
                    peak,
                ));
            }
            out.push_str(&format!(
                "  backlog bytes     {}\n",
                sparkline(&self.series.backlog_series()),
            ));
        }
        out.push_str(&format!(
            "vc occupancy: {} readings, {:.1}% at >=half-full\n",
            self.vc_occupancy.readings,
            100.0 * self.vc_occupancy.high_fill_share(),
        ));
        if self.route.total() > 0 {
            out.push_str(&format!(
                "ugal: {} decisions, {:.1}% non-minimal, mean margin {:.0}\n",
                self.route.total(),
                100.0 * self.route.nonminimal_fraction(),
                self.route.mean_margin(),
            ));
        }
        if let Some(digest) = &self.link_digest {
            let channels: u64 = (0..OBS_CLASSES.len()).map(|i| digest.channels(i)).sum();
            out.push_str(&format!(
                "link digest: {} channels across {} classes, K={}, ~{} KiB retained\n",
                channels,
                OBS_CLASSES.len(),
                digest.reservoir_k(),
                digest.approx_bytes() / 1024,
            ));
        }
        out
    }

    /// Approximate heap bytes held by the report's metric structures —
    /// the number the scale/memory regression suite bounds. Counts the
    /// duration/scale-sensitive parts (sample series, digests); the
    /// fixed-size profile/histogram structs ride along as constants.
    pub fn approx_metric_bytes(&self) -> usize {
        self.series.approx_bytes()
            + self.link_digest.as_ref().map_or(0, |d| d.approx_bytes())
            + std::mem::size_of::<ObsReport>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::NetSample;
    use dfly_engine::Ns;

    fn sample_report() -> ObsReport {
        let mut profile = EventLoopProfile::new();
        profile.counts = [10, 20, 30, 1];
        profile.timed = [10, 20, 30, 1];
        profile.wall_ns = [100, 200, 300, 10];
        profile.total_wall_ns = 610;
        profile.queue_high_water = 42;

        let mut series = SampleSeries::new(Ns(1000));
        for i in 0..4u64 {
            let mut s = NetSample {
                at: Ns(i * 1000),
                ..NetSample::default()
            };
            s.util[4] = i as f64 / 4.0;
            s.queued_bytes[2] = i * 10;
            series.push(s);
        }

        let mut vc = OccupancyHistogram::new();
        vc.record(0.1);
        vc.record(0.9);

        let mut route = RouteStats::new();
        route.record(false, 100);
        route.record(true, 5000);

        ObsReport {
            profile,
            series,
            vc_occupancy: vc,
            route,
            link_digest: None,
            coarse_unavailable: false,
        }
    }

    #[test]
    fn writes_all_four_csvs() {
        let dir = std::env::temp_dir().join("dfly_obs_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let paths = sample_report().write_csvs(&dir, "unit").unwrap();
        assert_eq!(paths.len(), 4);
        for p in &paths {
            let text = std::fs::read_to_string(p).unwrap();
            assert!(text.lines().count() >= 2, "{p:?} has no data rows");
        }
        let samples = std::fs::read_to_string(dir.join("obs_samples_unit.csv")).unwrap();
        assert!(samples.starts_with("t_ns,util_terminal_up,"));
        assert_eq!(samples.lines().count(), 5, "header + 4 samples");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summary_mentions_all_sections() {
        let text = sample_report().render_summary();
        assert!(text.contains("event loop: 61 events"));
        assert!(text.contains("queue high-water 42"));
        assert!(text.contains("util global"));
        assert!(text.contains("vc occupancy: 2 readings"));
        assert!(text.contains("ugal: 2 decisions"));
        assert!(text.contains("50.0% non-minimal"));
    }

    #[test]
    fn empty_report_renders_without_panic() {
        let report = ObsReport {
            profile: EventLoopProfile::new(),
            series: SampleSeries::new(Ns(1)),
            vc_occupancy: OccupancyHistogram::new(),
            route: RouteStats::new(),
            link_digest: None,
            coarse_unavailable: false,
        };
        let text = report.render_summary();
        assert!(text.contains("event loop: 0 events"));
        assert!(!text.contains("ugal:"), "no decisions, no ugal line");
        assert!(!text.contains("warning:"), "no fallback, no warning line");
    }

    #[test]
    fn digest_report_writes_fifth_csv_and_summary_line() {
        let mut report = sample_report();
        let mut digest = crate::digest::LinkDigest::new(8, 42);
        for i in 0..20u64 {
            digest.observe_channel((i % 5) as usize, i * 500_000, Ns(i * 1_000_000));
        }
        report.link_digest = Some(digest);

        let text = report.render_summary();
        assert!(text.contains("link digest: 20 channels"), "{text}");
        assert!(report.approx_metric_bytes() > 0);

        let dir = std::env::temp_dir().join("dfly_obs_digest_test");
        let _ = std::fs::remove_dir_all(&dir);
        let paths = report.write_csvs(&dir, "unit").unwrap();
        assert_eq!(paths.len(), 5, "digest adds a fifth CSV");
        let digest_csv = std::fs::read_to_string(dir.join("obs_link_digest_unit.csv")).unwrap();
        assert!(digest_csv.starts_with("class,channels,traffic_mb_mean,"));
        assert_eq!(digest_csv.lines().count(), 6, "header + 5 classes");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summary_warns_when_coarse_clock_fell_back() {
        let mut report = sample_report();
        report.coarse_unavailable = true;
        let text = report.render_summary();
        assert!(
            text.starts_with("warning: coarse profiling clock requested but unavailable"),
            "missing fallback warning: {text}"
        );
    }
}
