//! Periodic in-simulation sample stream: the counter view of a run.
//!
//! Production congestion studies read switch counters on a fixed cadence;
//! this module is the simulator's equivalent. `dfly-network`'s collector
//! sweeps channel state every sampling interval and pushes one
//! [`NetSample`] per sweep into a [`SampleSeries`], plus per-VC occupancy
//! readings into an [`OccupancyHistogram`] and UGAL decisions into a
//! [`RouteStats`]. Everything here is passive arithmetic — no simulation
//! state is touched, which is what keeps telemetry bit-neutral.

use dfly_engine::Ns;
use dfly_topology::ChannelClass;

/// The five channel classes in sample order, with their stable labels.
///
/// The order matches `dfly-network`'s dense class index (terminal up/down,
/// local row/col, global) so collectors can index sample arrays directly.
pub const OBS_CLASSES: [(ChannelClass, &str); 5] = [
    (ChannelClass::TerminalUp, "terminal_up"),
    (ChannelClass::TerminalDown, "terminal_down"),
    (ChannelClass::LocalRow, "local_row"),
    (ChannelClass::LocalCol, "local_col"),
    (ChannelClass::Global, "global"),
];

/// One periodic sweep of the network, in simulation time.
///
/// Window quantities (`util`, `stall_ns`, and the routing deltas) cover
/// the interval since the previous sample; `queued_bytes` is the
/// instantaneous buffer occupancy at the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetSample {
    /// Simulation time of the sweep.
    pub at: Ns,
    /// Mean channel utilization per class over the window, clamped to
    /// `[0, 1]` (transmission time is credited at tx start, so a raw
    /// window quotient can transiently exceed 1).
    pub util: [f64; 5],
    /// Bytes sitting in VC buffers per class at the sweep.
    pub queued_bytes: [u64; 5],
    /// Credit-stall (saturated) nanoseconds accrued per class within the
    /// window, summed over the class's channels.
    pub stall_ns: [u64; 5],
    /// UGAL decisions within the window that kept the minimal route.
    pub minimal_taken: u64,
    /// UGAL decisions within the window that diverted non-minimally.
    pub nonminimal_taken: u64,
}

/// Partial aggregate of the base sweeps inside one retained window of a
/// bounded [`SampleSeries`] — the accumulator between flushes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct PendingWindow {
    at: Ns,
    util_sum: [f64; 5],
    queued_last: [u64; 5],
    stall_ns: [u64; 5],
    minimal: u64,
    nonminimal: u64,
    count: u64,
}

/// A bounded time series of [`NetSample`]s at a fixed interval.
///
/// Bounded because sampling is driven by simulation time: a pathological
/// interval on a long run must degrade rather than eat memory. Two
/// degradation modes exist:
///
/// * **dense** (the default, [`SampleSeries::new`]): keep every sweep up
///   to [`SampleSeries::MAX_SAMPLES`], then drop the tail and count the
///   drops. Byte-identical to the historical behaviour.
/// * **bounded** ([`SampleSeries::bounded`]): keep at most `cap` retained
///   samples by *coarsening* instead of dropping — each retained sample
///   aggregates `stride` consecutive base sweeps (mean utilization, last
///   instantaneous queue depth, summed window quantities); when the
///   series fills, adjacent samples fold pairwise and the stride doubles,
///   so resolution degrades geometrically while memory stays `O(cap)` and
///   no part of the run is ever unrepresented.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSeries {
    interval: Ns,
    samples: Vec<NetSample>,
    dropped: u64,
    /// `None` = dense mode; `Some(cap)` = bounded/coarsening mode.
    cap: Option<usize>,
    /// Base sweeps per retained sample (bounded mode; 1 when dense).
    stride: u64,
    /// Accumulator for the in-progress window (bounded mode only).
    pending: Option<PendingWindow>,
}

impl SampleSeries {
    /// Hard cap on retained samples (64 Ki sweeps ≈ 9 MiB).
    pub const MAX_SAMPLES: usize = 1 << 16;

    /// Empty series sampling every `interval`.
    pub fn new(interval: Ns) -> SampleSeries {
        SampleSeries::with_buffer(interval, Vec::new())
    }

    /// Empty series reusing `buffer`'s allocation — the arena path for
    /// sweeps that build one collector per grid cell. The buffer is
    /// cleared; its capacity is kept.
    pub fn with_buffer(interval: Ns, mut buffer: Vec<NetSample>) -> SampleSeries {
        assert!(interval > Ns::ZERO, "sampling interval must be positive");
        buffer.clear();
        SampleSeries {
            interval,
            samples: buffer,
            dropped: 0,
            cap: None,
            stride: 1,
            pending: None,
        }
    }

    /// Empty *bounded* series: at most `cap` retained samples (even,
    /// ≥ 4), coarsening by stride-doubling instead of dropping.
    pub fn bounded(interval: Ns, cap: usize) -> SampleSeries {
        SampleSeries::bounded_with_buffer(interval, cap, Vec::new())
    }

    /// [`SampleSeries::bounded`] over a recycled buffer.
    pub fn bounded_with_buffer(interval: Ns, cap: usize, buffer: Vec<NetSample>) -> SampleSeries {
        assert!(
            cap >= 4 && cap % 2 == 0,
            "bounded series cap must be even and >= 4 (got {cap})"
        );
        let mut s = SampleSeries::with_buffer(interval, buffer);
        s.cap = Some(cap);
        s
    }

    /// Take the sample storage back out (for arena recycling), leaving
    /// the series empty. The returned buffer still holds the samples; the
    /// next [`SampleSeries::with_buffer`] clears it.
    pub fn take_buffer(&mut self) -> Vec<NetSample> {
        self.dropped = 0;
        self.pending = None;
        self.stride = 1;
        std::mem::take(&mut self.samples)
    }

    /// The sampling interval.
    pub fn interval(&self) -> Ns {
        self.interval
    }

    /// Base sweeps aggregated per retained sample (1 unless a bounded
    /// series has coarsened).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// True for a coarsening (bounded) series.
    pub fn is_bounded(&self) -> bool {
        self.cap.is_some()
    }

    /// Append a sample. Dense mode: past [`SampleSeries::MAX_SAMPLES`]
    /// the sample is dropped and counted. Bounded mode: the sweep is
    /// aggregated into the current window; a full series folds pairwise
    /// and doubles its stride instead of dropping anything.
    pub fn push(&mut self, sample: NetSample) {
        let Some(cap) = self.cap else {
            if self.samples.len() >= Self::MAX_SAMPLES {
                self.dropped += 1;
            } else {
                self.samples.push(sample);
            }
            return;
        };
        let p = self.pending.get_or_insert_with(PendingWindow::default);
        p.at = sample.at;
        for c in 0..5 {
            p.util_sum[c] += sample.util[c];
            p.queued_last[c] = sample.queued_bytes[c];
            p.stall_ns[c] += sample.stall_ns[c];
        }
        p.minimal += sample.minimal_taken;
        p.nonminimal += sample.nonminimal_taken;
        p.count += 1;
        if p.count == self.stride {
            self.flush_pending();
            if self.samples.len() == cap {
                self.fold();
            }
        }
    }

    /// Turn the pending window into one retained sample (mean util over
    /// the window, last queue depth, summed window quantities).
    fn flush_pending(&mut self) {
        let Some(p) = self.pending.take() else {
            return;
        };
        let mut s = NetSample {
            at: p.at,
            queued_bytes: p.queued_last,
            stall_ns: p.stall_ns,
            minimal_taken: p.minimal,
            nonminimal_taken: p.nonminimal,
            ..NetSample::default()
        };
        for c in 0..5 {
            s.util[c] = p.util_sum[c] / p.count as f64;
        }
        self.samples.push(s);
    }

    /// Fold adjacent retained samples pairwise and double the stride.
    /// Every sample covers the same number of base sweeps at fold time
    /// (the fold fires right after a flush, so the pending window is
    /// empty), which keeps the pairwise mean an exact window mean.
    fn fold(&mut self) {
        debug_assert!(self.pending.is_none(), "fold with a partial window");
        let half = self.samples.len() / 2;
        for i in 0..half {
            let (a, b) = (self.samples[2 * i], self.samples[2 * i + 1]);
            let mut m = NetSample {
                at: b.at,
                queued_bytes: b.queued_bytes,
                ..NetSample::default()
            };
            for c in 0..5 {
                m.util[c] = (a.util[c] + b.util[c]) / 2.0;
                m.stall_ns[c] = a.stall_ns[c] + b.stall_ns[c];
            }
            m.minimal_taken = a.minimal_taken + b.minimal_taken;
            m.nonminimal_taken = a.nonminimal_taken + b.nonminimal_taken;
            self.samples[i] = m;
        }
        self.samples.truncate(half);
        self.stride *= 2;
    }

    /// Flush a partial final window (bounded mode, at run close) so the
    /// tail of the run is represented. No-op when dense or empty.
    pub fn finalize_tail(&mut self) {
        if self.cap.is_some() {
            self.flush_pending();
        }
    }

    /// The retained samples, in time order.
    pub fn samples(&self) -> &[NetSample] {
        &self.samples
    }

    /// Samples dropped after the cap was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Approximate heap footprint of the retained samples, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.samples.capacity() * std::mem::size_of::<NetSample>()
            + std::mem::size_of::<SampleSeries>()
    }

    /// Merge a partial series from another collector of the *same* run —
    /// the sharded-simulation path, where each group replica samples on
    /// the same interval grid and closes at the same run-wide end time.
    /// Window sums (stall, queued, routing deltas) add; mean utilization
    /// partials add too (each replica's class mean is computed over the
    /// whole machine's channel count) and re-clamp to `[0, 1]`.
    ///
    /// Panics if the grids disagree — that is a coordinator bug, not a
    /// data condition.
    pub fn merge_from(&mut self, other: &SampleSeries) {
        assert_eq!(
            self.interval, other.interval,
            "merging series with different sampling intervals"
        );
        assert_eq!(self.cap, other.cap, "merging series of different modes");
        assert_eq!(
            self.stride, other.stride,
            "merging series at different coarsening strides"
        );
        assert!(
            self.pending.is_none() && other.pending.is_none(),
            "merging bounded series with unflushed windows (finalize_tail first)"
        );
        assert_eq!(
            self.samples.len(),
            other.samples.len(),
            "merging series of different lengths"
        );
        for (a, b) in self.samples.iter_mut().zip(other.samples.iter()) {
            assert_eq!(a.at, b.at, "merging misaligned sample grids");
            for c in 0..a.util.len() {
                a.util[c] = (a.util[c] + b.util[c]).clamp(0.0, 1.0);
                a.queued_bytes[c] += b.queued_bytes[c];
                a.stall_ns[c] += b.stall_ns[c];
            }
            a.minimal_taken += b.minimal_taken;
            a.nonminimal_taken += b.nonminimal_taken;
        }
        self.dropped += other.dropped;
    }

    /// Utilization time series of one class (by [`OBS_CLASSES`] index).
    pub fn util_series(&self, class_idx: usize) -> Vec<f64> {
        self.samples.iter().map(|s| s.util[class_idx]).collect()
    }

    /// Total queued bytes (all classes) per sample — the backlog curve.
    pub fn backlog_series(&self) -> Vec<f64> {
        self.samples
            .iter()
            .map(|s| s.queued_bytes.iter().sum::<u64>() as f64)
            .collect()
    }
}

/// Histogram of VC buffer fill fractions across all sample sweeps.
///
/// Eight equal-width buckets over `[0, 1]`; fraction 1.0 lands in the
/// last bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OccupancyHistogram {
    /// Bucket counts; bucket `i` covers `[i/8, (i+1)/8)`.
    pub buckets: [u64; 8],
    /// Total readings recorded.
    pub readings: u64,
}

impl OccupancyHistogram {
    /// Fresh, empty histogram.
    pub fn new() -> OccupancyHistogram {
        OccupancyHistogram::default()
    }

    /// Record one VC fill fraction (clamped to `[0, 1]`).
    #[inline]
    pub fn record(&mut self, fill: f64) {
        let fill = fill.clamp(0.0, 1.0);
        let idx = ((fill * 8.0) as usize).min(7);
        self.buckets[idx] += 1;
        self.readings += 1;
    }

    /// Fraction of readings in bucket `idx` (0 if nothing recorded).
    pub fn share(&self, idx: usize) -> f64 {
        if self.readings == 0 {
            return 0.0;
        }
        self.buckets[idx] as f64 / self.readings as f64
    }

    /// Fraction of readings at or above half-full — the congestion tell.
    pub fn high_fill_share(&self) -> f64 {
        (4..8).map(|i| self.share(i)).sum()
    }
}

/// UGAL decision counters: which family won, and by how much.
///
/// The *margin* of a decision is the score gap between the winning
/// candidate and the best candidate of the losing family (in the UGAL
/// score unit, queued bytes × hops). Margins are binned by log2 so the
/// distribution spans the 32 KiB bias region without a giant table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteStats {
    /// Adaptive decisions that kept the minimal route.
    pub minimal_taken: u64,
    /// Adaptive decisions that diverted to a non-minimal route.
    pub nonminimal_taken: u64,
    /// Margin histogram: bucket `i` counts margins in
    /// `[2^i, 2^(i+1))` score units (bucket 0 also holds margin 0);
    /// the last bucket saturates.
    pub margin_hist: [u64; 24],
    /// Sum of all margins, for the mean.
    pub margin_sum: u64,
}

impl RouteStats {
    /// Fresh, zeroed counters.
    pub fn new() -> RouteStats {
        RouteStats::default()
    }

    /// Record one adaptive decision and its winning margin.
    #[inline]
    pub fn record(&mut self, took_nonminimal: bool, margin: u64) {
        if took_nonminimal {
            self.nonminimal_taken += 1;
        } else {
            self.minimal_taken += 1;
        }
        let bucket = if margin <= 1 {
            0
        } else {
            (63 - margin.leading_zeros() as usize).min(self.margin_hist.len() - 1)
        };
        self.margin_hist[bucket] += 1;
        self.margin_sum += margin;
    }

    /// Total adaptive decisions recorded.
    pub fn total(&self) -> u64 {
        self.minimal_taken + self.nonminimal_taken
    }

    /// Fraction of decisions that diverted non-minimally (0 if none).
    pub fn nonminimal_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.nonminimal_taken as f64 / total as f64
    }

    /// Mean decision margin in score units (0 if none).
    pub fn mean_margin(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.margin_sum as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_order_matches_dense_index() {
        // The labels are the CSV contract; the order is the collector's
        // indexing contract. Both are load-bearing.
        let labels: Vec<&str> = OBS_CLASSES.iter().map(|&(_, l)| l).collect();
        assert_eq!(
            labels,
            [
                "terminal_up",
                "terminal_down",
                "local_row",
                "local_col",
                "global"
            ]
        );
    }

    #[test]
    fn series_caps_and_counts_drops() {
        let mut s = SampleSeries::new(Ns(10));
        for i in 0..(SampleSeries::MAX_SAMPLES + 3) {
            s.push(NetSample {
                at: Ns(i as u64 * 10),
                ..NetSample::default()
            });
        }
        assert_eq!(s.samples().len(), SampleSeries::MAX_SAMPLES);
        assert_eq!(s.dropped(), 3);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = SampleSeries::new(Ns::ZERO);
    }

    #[test]
    fn recycled_buffer_keeps_capacity_and_drops_stale_samples() {
        let mut s = SampleSeries::new(Ns(10));
        for i in 0..100u64 {
            s.push(NetSample {
                at: Ns(i * 10),
                ..NetSample::default()
            });
        }
        let buf = s.take_buffer();
        assert!(s.samples().is_empty());
        let cap = buf.capacity();
        assert!(cap >= 100);
        let reused = SampleSeries::with_buffer(Ns(20), buf);
        assert!(reused.samples().is_empty(), "stale samples leaked through");
        assert_eq!(reused.samples.capacity(), cap);
        assert_eq!(reused.interval(), Ns(20));
    }

    #[test]
    fn series_extracts_util_and_backlog() {
        let mut s = SampleSeries::new(Ns(5));
        let mut a = NetSample::default();
        a.util[4] = 0.25;
        a.queued_bytes = [1, 2, 3, 4, 5];
        s.push(a);
        let mut b = NetSample::default();
        b.util[4] = 0.75;
        s.push(b);
        assert_eq!(s.util_series(4), vec![0.25, 0.75]);
        assert_eq!(s.backlog_series(), vec![15.0, 0.0]);
    }

    #[test]
    fn merge_sums_windows_and_clamps_util() {
        let mut a = SampleSeries::new(Ns(5));
        let mut b = SampleSeries::new(Ns(5));
        for t in 0..3u64 {
            let mut s = NetSample {
                at: Ns(t * 5),
                ..NetSample::default()
            };
            s.util[4] = 0.6;
            s.queued_bytes[2] = 10;
            s.stall_ns[4] = 7;
            s.minimal_taken = 2;
            a.push(s);
            s.nonminimal_taken = 1;
            b.push(s);
        }
        a.merge_from(&b);
        assert_eq!(a.samples().len(), 3);
        for s in a.samples() {
            assert_eq!(s.util[4], 1.0, "partial means clamp at 1");
            assert_eq!(s.queued_bytes[2], 20);
            assert_eq!(s.stall_ns[4], 14);
            assert_eq!(s.minimal_taken, 4);
            assert_eq!(s.nonminimal_taken, 1);
        }
        assert_eq!(a.dropped(), 0);
    }

    fn sweep(at: u64, util: f64, stall: u64) -> NetSample {
        let mut s = NetSample {
            at: Ns(at),
            ..NetSample::default()
        };
        s.util = [util; 5];
        s.queued_bytes = [at; 5];
        s.stall_ns = [stall; 5];
        s.minimal_taken = 1;
        s
    }

    #[test]
    fn bounded_series_coarsens_instead_of_dropping() {
        let mut s = SampleSeries::bounded(Ns(10), 4);
        for i in 0..3u64 {
            s.push(sweep(i * 10, 0.5, 3));
        }
        assert_eq!(s.samples().len(), 3);
        assert_eq!(s.stride(), 1);
        // The 4th sweep fills the series, which folds: 4 samples -> 2,
        // stride 2; the 5th opens a pending window (visible after
        // finalize).
        s.push(sweep(30, 0.5, 3));
        assert_eq!(s.samples().len(), 2);
        assert_eq!(s.stride(), 2);
        s.push(sweep(40, 1.0, 3));
        assert_eq!(s.samples().len(), 2, "partial window stays pending");
        let folded = s.samples()[0];
        assert_eq!(folded.at, Ns(10), "fold keeps the later timestamp");
        assert_eq!(folded.util[0], 0.5, "fold averages utilization");
        assert_eq!(folded.stall_ns[0], 6, "fold sums window stalls");
        assert_eq!(folded.minimal_taken, 2);
        assert_eq!(folded.queued_bytes[0], 10, "fold keeps later queue depth");
        s.finalize_tail();
        assert_eq!(s.samples().len(), 3);
        assert_eq!(s.samples()[2].util[0], 1.0, "partial tail window kept");
        assert_eq!(s.dropped(), 0, "bounded mode never drops");
    }

    #[test]
    fn bounded_series_never_exceeds_cap_and_preserves_window_sums() {
        let mut s = SampleSeries::bounded(Ns(1), 8);
        let mut total_stall = 0u64;
        for i in 0..10_000u64 {
            s.push(sweep(i, (i % 10) as f64 / 10.0, i % 5));
            total_stall += i % 5;
            assert!(s.samples().len() <= 8);
        }
        s.finalize_tail();
        assert!(s.samples().len() <= 8);
        let retained: u64 = s.samples().iter().map(|x| x.stall_ns[0]).sum();
        assert_eq!(retained, total_stall, "stall mass preserved by folds");
        let decisions: u64 = s.samples().iter().map(|x| x.minimal_taken).sum();
        assert_eq!(decisions, 10_000);
        assert!(s.stride() >= 1024);
        for x in s.samples() {
            assert!((0.0..=1.0).contains(&x.util[0]));
        }
    }

    #[test]
    fn bounded_series_merge_requires_matching_coarsening() {
        let mut a = SampleSeries::bounded(Ns(1), 4);
        let mut b = SampleSeries::bounded(Ns(1), 4);
        for i in 0..4u64 {
            a.push(sweep(i, 0.5, 1));
            b.push(sweep(i, 0.25, 2));
        }
        a.finalize_tail();
        b.finalize_tail();
        a.merge_from(&b);
        assert_eq!(a.samples().len(), 2, "both folded once at the cap");
        assert_eq!(a.stride(), 2);
        assert_eq!(a.samples()[0].util[0], 0.75, "partial means add");
        assert_eq!(a.samples()[0].stall_ns[0], 6, "folded stalls sum");
    }

    #[test]
    #[should_panic(expected = "different coarsening strides")]
    fn bounded_merge_rejects_stride_mismatch() {
        let mut a = SampleSeries::bounded(Ns(1), 4);
        let mut b = SampleSeries::bounded(Ns(1), 4);
        for i in 0..6u64 {
            a.push(sweep(i, 0.5, 1)); // folds once: stride 2
        }
        for i in 0..2u64 {
            b.push(sweep(i, 0.5, 1)); // stride 1
        }
        a.finalize_tail();
        b.finalize_tail();
        a.merge_from(&b);
    }

    #[test]
    #[should_panic(expected = "cap must be even")]
    fn bounded_rejects_odd_cap() {
        let _ = SampleSeries::bounded(Ns(1), 5);
    }

    #[test]
    fn bounded_buffer_recycling_resets_coarsening() {
        let mut s = SampleSeries::bounded(Ns(1), 4);
        for i in 0..9u64 {
            s.push(sweep(i, 0.5, 1));
        }
        assert!(s.stride() > 1);
        let buf = s.take_buffer();
        let reused = SampleSeries::bounded_with_buffer(Ns(2), 4, buf);
        assert_eq!(reused.stride(), 1);
        assert!(reused.samples().is_empty());
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn merge_rejects_misaligned_series() {
        let mut a = SampleSeries::new(Ns(5));
        let mut b = SampleSeries::new(Ns(5));
        b.push(NetSample::default());
        a.merge_from(&b);
    }

    #[test]
    fn occupancy_buckets_and_clamping() {
        let mut h = OccupancyHistogram::new();
        h.record(0.0);
        h.record(0.124); // bucket 0
        h.record(0.5); // bucket 4
        h.record(1.0); // clamps into bucket 7
        h.record(7.5); // out-of-range clamps to 1.0
        assert_eq!(h.readings, 5);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(h.buckets[7], 2);
        assert!((h.high_fill_share() - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn route_stats_counts_and_margins() {
        let mut r = RouteStats::new();
        r.record(false, 0); // bucket 0
        r.record(false, 1); // bucket 0
        r.record(true, 2); // bucket 1
        r.record(true, 40_000); // log2(40000) = 15 -> bucket 15
        assert_eq!(r.minimal_taken, 2);
        assert_eq!(r.nonminimal_taken, 2);
        assert_eq!(r.total(), 4);
        assert_eq!(r.margin_hist[0], 2);
        assert_eq!(r.margin_hist[1], 1);
        assert_eq!(r.margin_hist[15], 1);
        assert!((r.nonminimal_fraction() - 0.5).abs() < 1e-12);
        assert!((r.mean_margin() - 10_000.75).abs() < 1e-9);
    }

    #[test]
    fn route_stats_margin_saturates_last_bucket() {
        let mut r = RouteStats::new();
        r.record(true, u64::MAX);
        assert_eq!(r.margin_hist[23], 1);
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let r = RouteStats::new();
        assert_eq!(r.nonminimal_fraction(), 0.0);
        assert_eq!(r.mean_margin(), 0.0);
        let h = OccupancyHistogram::new();
        assert_eq!(h.share(3), 0.0);
        assert_eq!(h.high_fill_share(), 0.0);
    }
}
