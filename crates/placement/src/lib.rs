//! # dfly-placement
//!
//! The five job placement policies of the paper's Section III-B:
//!
//! * **Contiguous** — consecutive free nodes; minimum router count, maximal
//!   locality, highest local-link contention risk.
//! * **Random-cabinet** — a random selection of cabinets, contiguous within.
//! * **Random-chassis** — a random selection of chassis, contiguous within.
//! * **Random-router** — a random selection of routers, contiguous within
//!   (communication between nearby nodes stays on the router).
//! * **Random-node** — a fully random selection of nodes; spreads message
//!   load across the whole network at the cost of extra hops.
//!
//! [`NodePool`] tracks free nodes so a target application and a synthetic
//! background job can be co-allocated for the interference experiments.

#![warn(missing_docs)]

pub mod mapping;
pub mod policy;
pub mod pool;

pub use mapping::TaskMapping;
pub use policy::{AllocationError, PlacementPolicy};
pub use pool::NodePool;
