//! Task mapping: how a job's MPI ranks are arranged *within* its node
//! allocation.
//!
//! The paper's placement policies decide *which* nodes a job gets; the
//! paper's future work ("we plan to investigate task mapping") asks how
//! ranks should be ordered onto those nodes. For neighbor-heavy patterns
//! the mapping decides whether rank neighbors share a router (local
//! traffic) or sit across the machine (global traffic), independent of
//! the allocation shape.

use dfly_engine::Xoshiro256;
use dfly_topology::NodeId;

/// Rank -> node arrangement within an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskMapping {
    /// Rank `i` runs on the `i`-th allocated node (the allocation order of
    /// the placement policy — the default everywhere in the paper).
    Linear,
    /// Ranks are dealt round-robin across the allocation's routers:
    /// consecutive ranks land on *different* routers. The anti-locality
    /// mapping — spreads neighbor traffic off-router.
    RoundRobinRouters,
    /// Ranks are shuffled uniformly over the allocated nodes.
    Random,
}

impl TaskMapping {
    /// All mappings, for sweeps.
    pub const ALL: [TaskMapping; 3] = [
        TaskMapping::Linear,
        TaskMapping::RoundRobinRouters,
        TaskMapping::Random,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            TaskMapping::Linear => "linear",
            TaskMapping::RoundRobinRouters => "rr-router",
            TaskMapping::Random => "random",
        }
    }

    /// Arrange an allocation: returns the node for each rank.
    ///
    /// `nodes_per_router` is needed by [`TaskMapping::RoundRobinRouters`]
    /// to identify router boundaries (nodes `k*npr .. (k+1)*npr` share a
    /// router).
    pub fn arrange(
        self,
        allocation: &[NodeId],
        nodes_per_router: u32,
        rng: &mut Xoshiro256,
    ) -> Vec<NodeId> {
        match self {
            TaskMapping::Linear => allocation.to_vec(),
            TaskMapping::Random => {
                let mut out = allocation.to_vec();
                rng.shuffle(&mut out);
                out
            }
            TaskMapping::RoundRobinRouters => {
                // Bucket nodes by home router (preserving order), then
                // deal one node per router in rotation.
                let mut buckets: Vec<(u32, Vec<NodeId>)> = Vec::new();
                for &n in allocation {
                    let router = n.0 / nodes_per_router;
                    match buckets.iter_mut().find(|(r, _)| *r == router) {
                        Some((_, v)) => v.push(n),
                        None => buckets.push((router, vec![n])),
                    }
                }
                let mut out = Vec::with_capacity(allocation.len());
                let mut level = 0usize;
                while out.len() < allocation.len() {
                    for (_, bucket) in &buckets {
                        if let Some(&n) = bucket.get(level) {
                            out.push(n);
                        }
                    }
                    level += 1;
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn labels() {
        assert_eq!(TaskMapping::Linear.label(), "linear");
        assert_eq!(TaskMapping::RoundRobinRouters.label(), "rr-router");
        assert_eq!(TaskMapping::Random.label(), "random");
    }

    #[test]
    fn linear_is_identity() {
        let a = alloc(12);
        let mut rng = Xoshiro256::seed_from(1);
        assert_eq!(TaskMapping::Linear.arrange(&a, 4, &mut rng), a);
    }

    #[test]
    fn random_is_seeded_permutation() {
        let a = alloc(32);
        let mut r1 = Xoshiro256::seed_from(7);
        let mut r2 = Xoshiro256::seed_from(7);
        let m1 = TaskMapping::Random.arrange(&a, 4, &mut r1);
        let m2 = TaskMapping::Random.arrange(&a, 4, &mut r2);
        assert_eq!(m1, m2);
        assert_ne!(m1, a);
        let mut sorted = m1.clone();
        sorted.sort();
        assert_eq!(sorted, a);
    }

    #[test]
    fn round_robin_separates_consecutive_ranks() {
        // 12 nodes on 3 routers (4 each): consecutive ranks must land on
        // different routers.
        let a = alloc(12);
        let mut rng = Xoshiro256::seed_from(1);
        let m = TaskMapping::RoundRobinRouters.arrange(&a, 4, &mut rng);
        assert_eq!(m.len(), 12);
        for w in m.windows(2) {
            assert_ne!(w[0].0 / 4, w[1].0 / 4, "ranks {w:?} share a router");
        }
        // Still a permutation.
        let mut sorted = m.clone();
        sorted.sort();
        assert_eq!(sorted, a);
        // First deal takes node 0 of each router in order.
        assert_eq!(&m[..3], &[NodeId(0), NodeId(4), NodeId(8)]);
    }

    #[test]
    fn round_robin_handles_uneven_buckets() {
        // 4 nodes on router 0, 1 node on router 1.
        let a = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        let mut rng = Xoshiro256::seed_from(1);
        let m = TaskMapping::RoundRobinRouters.arrange(&a, 4, &mut rng);
        assert_eq!(m.len(), 5);
        let mut sorted = m.clone();
        sorted.sort();
        assert_eq!(sorted, a);
    }

    #[test]
    fn empty_allocation_ok() {
        let mut rng = Xoshiro256::seed_from(1);
        for m in TaskMapping::ALL {
            assert!(m.arrange(&[], 4, &mut rng).is_empty());
        }
    }
}
