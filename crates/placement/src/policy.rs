//! The five placement policies (paper Table I rows).

use crate::pool::NodePool;
use dfly_engine::Xoshiro256;
use dfly_topology::{CabinetId, ChassisId, NodeId, RouterId, Topology};
use std::fmt;

/// Allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocationError {
    /// The job asked for more nodes than are free.
    NotEnoughNodes {
        /// Nodes requested.
        requested: u32,
        /// Nodes free.
        available: u32,
    },
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::NotEnoughNodes {
                requested,
                available,
            } => write!(f, "requested {requested} nodes, only {available} free"),
        }
    }
}

impl std::error::Error for AllocationError {}

/// Job placement policy (paper Section III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Consecutive free nodes.
    Contiguous,
    /// Random cabinets, contiguous inside each cabinet.
    RandomCabinet,
    /// Random chassis, contiguous inside each chassis.
    RandomChassis,
    /// Random routers, contiguous inside each router.
    RandomRouter,
    /// Fully random nodes.
    RandomNode,
}

impl PlacementPolicy {
    /// All five policies, in the paper's Table I order.
    pub const ALL: [PlacementPolicy; 5] = [
        PlacementPolicy::Contiguous,
        PlacementPolicy::RandomCabinet,
        PlacementPolicy::RandomChassis,
        PlacementPolicy::RandomRouter,
        PlacementPolicy::RandomNode,
    ];

    /// The paper's nomenclature label (`cont`, `cab`, `chas`, `rotr`, `rand`).
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::Contiguous => "cont",
            PlacementPolicy::RandomCabinet => "cab",
            PlacementPolicy::RandomChassis => "chas",
            PlacementPolicy::RandomRouter => "rotr",
            PlacementPolicy::RandomNode => "rand",
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::Contiguous => "Contiguous",
            PlacementPolicy::RandomCabinet => "Random-cabinet",
            PlacementPolicy::RandomChassis => "Random-chassis",
            PlacementPolicy::RandomRouter => "Random-router",
            PlacementPolicy::RandomNode => "Random-node",
        }
    }

    /// Allocate `size` nodes from `pool` (which is updated). The
    /// allocation order is the rank -> node mapping: rank `i` runs on the
    /// `i`-th returned node, so container-based policies keep consecutive
    /// ranks physically close, exactly as the paper's policies do.
    pub fn allocate(
        self,
        topo: &Topology,
        pool: &mut NodePool,
        size: u32,
        rng: &mut Xoshiro256,
    ) -> Result<Vec<NodeId>, AllocationError> {
        if size > pool.free_count() {
            return Err(AllocationError::NotEnoughNodes {
                requested: size,
                available: pool.free_count(),
            });
        }
        let nodes = match self {
            PlacementPolicy::Contiguous => contiguous_runs(size, pool),
            PlacementPolicy::RandomCabinet => {
                let total = topo.total_cabinets();
                let mut order: Vec<CabinetId> = (0..total).map(CabinetId).collect();
                rng.shuffle(&mut order);
                take_from_containers(size, order.into_iter().map(|c| topo.cabinet_nodes(c)), pool)
            }
            PlacementPolicy::RandomChassis => {
                let total = topo.config().total_chassis();
                let mut order: Vec<ChassisId> = (0..total).map(ChassisId).collect();
                rng.shuffle(&mut order);
                take_from_containers(size, order.into_iter().map(|c| topo.chassis_nodes(c)), pool)
            }
            PlacementPolicy::RandomRouter => {
                let total = topo.config().total_routers();
                let mut order: Vec<RouterId> = (0..total).map(RouterId).collect();
                rng.shuffle(&mut order);
                take_from_containers(
                    size,
                    order
                        .into_iter()
                        .map(|r| topo.router_nodes(r).collect::<Vec<_>>()),
                    pool,
                )
            }
            PlacementPolicy::RandomNode => {
                let mut free = pool.free_nodes();
                rng.shuffle(&mut free);
                free.truncate(size as usize);
                free
            }
        };
        debug_assert_eq!(nodes.len(), size as usize);
        pool.take(&nodes);
        Ok(nodes)
    }
}

impl fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Allocate from the longest contiguous free runs first (ties broken by
/// lowest start, so a fresh machine yields nodes `0..size` exactly as
/// before). On a churned pool the free list is scattered holes; taking its
/// first `size` entries — the old behaviour — produced allocations that
/// were "contiguous" in name only. Preferring whole runs keeps the policy
/// meaning what the paper's `cont` row means even mid-service-stream.
fn contiguous_runs(size: u32, pool: &NodePool) -> Vec<NodeId> {
    let mut runs = pool.free_runs();
    runs.sort_by_key(|&(start, len)| (std::cmp::Reverse(len), start));
    let mut out = Vec::with_capacity(size as usize);
    for (start, len) in runs {
        let need = size as usize - out.len();
        out.extend((start.0..start.0 + len.min(need as u32)).map(NodeId));
        if out.len() == size as usize {
            break;
        }
    }
    out
}

/// Fill the allocation container by container (cabinet / chassis / router),
/// taking each container's free nodes in index order.
fn take_from_containers(
    size: u32,
    containers: impl Iterator<Item = Vec<NodeId>>,
    pool: &NodePool,
) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(size as usize);
    for container in containers {
        for node in container {
            if pool.is_free(node) {
                out.push(node);
                if out.len() == size as usize {
                    return out;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfly_topology::TopologyConfig;
    use std::collections::HashSet;

    fn topo() -> Topology {
        Topology::build(TopologyConfig::theta())
    }

    fn alloc(policy: PlacementPolicy, size: u32, seed: u64) -> (Topology, Vec<NodeId>) {
        let t = topo();
        let mut pool = NodePool::new(&t);
        let mut rng = Xoshiro256::seed_from(seed);
        let nodes = policy.allocate(&t, &mut pool, size, &mut rng).unwrap();
        (t, nodes)
    }

    #[test]
    fn labels_match_paper_nomenclature() {
        let labels: Vec<&str> = PlacementPolicy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["cont", "cab", "chas", "rotr", "rand"]);
    }

    #[test]
    fn all_policies_allocate_exact_distinct_nodes() {
        for policy in PlacementPolicy::ALL {
            let (_, nodes) = alloc(policy, 1000, 42);
            assert_eq!(nodes.len(), 1000, "{policy}");
            let set: HashSet<_> = nodes.iter().collect();
            assert_eq!(set.len(), 1000, "{policy} returned duplicates");
        }
    }

    #[test]
    fn contiguous_takes_lowest_indices() {
        let (_, nodes) = alloc(PlacementPolicy::Contiguous, 100, 1);
        let expected: Vec<NodeId> = (0..100).map(NodeId).collect();
        assert_eq!(nodes, expected);
    }

    #[test]
    fn contiguous_uses_minimum_router_count() {
        let (t, nodes) = alloc(PlacementPolicy::Contiguous, 1000, 1);
        let routers: HashSet<_> = nodes.iter().map(|&n| t.node_router(n)).collect();
        assert_eq!(routers.len(), 250); // 1000 nodes / 4 per router
    }

    #[test]
    fn contiguous_prefers_longest_run_on_fragmented_pool() {
        // 64-node machine with free runs [0..6) (len 6) and [26..58)
        // (len 32) — the churn pattern a service stream leaves behind.
        let t = Topology::build(TopologyConfig::small_test());
        let mut pool = NodePool::new(&t);
        let busy: Vec<NodeId> = (6..26).chain(58..64).map(NodeId).collect();
        pool.take(&busy);
        let mut rng = Xoshiro256::seed_from(1);
        let nodes = PlacementPolicy::Contiguous
            .allocate(&t, &mut pool, 20, &mut rng)
            .unwrap();
        // The old first-`size`-free-nodes behaviour would return
        // 0..6 + 26..40 (two fragments); the fix allocates one true run.
        let expected: Vec<NodeId> = (26..46).map(NodeId).collect();
        assert_eq!(nodes, expected);
    }

    #[test]
    fn contiguous_spills_to_next_longest_run_when_needed() {
        let t = Topology::build(TopologyConfig::small_test());
        let mut pool = NodePool::new(&t);
        let busy: Vec<NodeId> = (6..26).chain(58..64).map(NodeId).collect();
        pool.take(&busy);
        let mut rng = Xoshiro256::seed_from(1);
        let nodes = PlacementPolicy::Contiguous
            .allocate(&t, &mut pool, 36, &mut rng)
            .unwrap();
        // Whole 32-run first, then the head of the 6-run.
        let expected: Vec<NodeId> = (26..58).chain(0..4).map(NodeId).collect();
        assert_eq!(nodes, expected);
    }

    #[test]
    fn random_node_spreads_over_many_routers_and_groups() {
        let (t, nodes) = alloc(PlacementPolicy::RandomNode, 1000, 7);
        let routers: HashSet<_> = nodes.iter().map(|&n| t.node_router(n)).collect();
        let groups: HashSet<_> = nodes.iter().map(|&n| t.node_group(n)).collect();
        assert!(routers.len() > 600, "only {} routers", routers.len());
        assert_eq!(groups.len(), 9);
    }

    #[test]
    fn contiguous_concentrates_in_few_groups() {
        let (t, nodes) = alloc(PlacementPolicy::Contiguous, 1000, 7);
        let groups: HashSet<_> = nodes.iter().map(|&n| t.node_group(n)).collect();
        // 1000 nodes at 384/group => ceil(1000/384) = 3 groups.
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn random_router_fills_whole_routers() {
        let (t, nodes) = alloc(PlacementPolicy::RandomRouter, 1000, 3);
        let mut per_router = std::collections::HashMap::new();
        for &n in &nodes {
            *per_router.entry(t.node_router(n)).or_insert(0u32) += 1;
        }
        // All routers fully used except possibly the last partially-filled one.
        let partial = per_router.values().filter(|&&c| c < 4).count();
        assert!(partial <= 1, "{partial} partially used routers");
        assert_eq!(per_router.len(), 250);
    }

    #[test]
    fn random_chassis_fills_whole_chassis() {
        let (t, nodes) = alloc(PlacementPolicy::RandomChassis, 1000, 3);
        let mut per_chassis = std::collections::HashMap::new();
        for &n in &nodes {
            *per_chassis.entry(t.node_chassis(n)).or_insert(0u32) += 1;
        }
        let partial = per_chassis.values().filter(|&&c| c < 64).count();
        assert!(partial <= 1);
        // ceil(1000/64) = 16 chassis.
        assert_eq!(per_chassis.len(), 16);
    }

    #[test]
    fn random_cabinet_fills_whole_cabinets() {
        let (t, nodes) = alloc(PlacementPolicy::RandomCabinet, 1000, 3);
        let mut per_cab = std::collections::HashMap::new();
        for &n in &nodes {
            *per_cab.entry(t.node_cabinet(n)).or_insert(0u32) += 1;
        }
        let partial = per_cab.values().filter(|&&c| c < 192).count();
        assert!(partial <= 1);
        // ceil(1000/192) = 6 cabinets.
        assert_eq!(per_cab.len(), 6);
    }

    #[test]
    fn consecutive_ranks_close_under_container_policies() {
        // Under random-router, ranks i and i+1 mostly share a router.
        let (t, nodes) = alloc(PlacementPolicy::RandomRouter, 400, 9);
        let same_router = nodes
            .windows(2)
            .filter(|w| t.node_router(w[0]) == t.node_router(w[1]))
            .count();
        assert!(same_router * 4 >= nodes.len() * 2, "only {same_router}");
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let (_, a) = alloc(PlacementPolicy::RandomNode, 500, 11);
        let (_, b) = alloc(PlacementPolicy::RandomNode, 500, 11);
        let (_, c) = alloc(PlacementPolicy::RandomNode, 500, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn allocation_respects_existing_jobs() {
        let t = topo();
        let mut pool = NodePool::new(&t);
        let mut rng = Xoshiro256::seed_from(5);
        let job1 = PlacementPolicy::Contiguous
            .allocate(&t, &mut pool, 1000, &mut rng)
            .unwrap();
        let job2 = PlacementPolicy::RandomNode
            .allocate(&t, &mut pool, 2000, &mut rng)
            .unwrap();
        let s1: HashSet<_> = job1.iter().collect();
        assert!(job2.iter().all(|n| !s1.contains(n)));
        assert_eq!(pool.free_count(), 3456 - 3000);
    }

    #[test]
    fn over_allocation_fails_cleanly() {
        let t = topo();
        let mut pool = NodePool::new(&t);
        let mut rng = Xoshiro256::seed_from(5);
        let err = PlacementPolicy::RandomNode
            .allocate(&t, &mut pool, 4000, &mut rng)
            .unwrap_err();
        assert_eq!(
            err,
            AllocationError::NotEnoughNodes {
                requested: 4000,
                available: 3456
            }
        );
        assert_eq!(pool.free_count(), 3456); // pool untouched on failure
    }

    #[test]
    fn whole_machine_allocation_succeeds() {
        for policy in PlacementPolicy::ALL {
            let t = topo();
            let mut pool = NodePool::new(&t);
            let mut rng = Xoshiro256::seed_from(13);
            let nodes = policy.allocate(&t, &mut pool, 3456, &mut rng).unwrap();
            assert_eq!(nodes.len(), 3456);
            assert_eq!(pool.free_count(), 0);
        }
    }

    #[test]
    fn locality_ordering_cont_beats_rand() {
        // Average rank-pair group-distance: contiguous < random-node.
        let group_spread = |policy: PlacementPolicy| -> f64 {
            let (t, nodes) = alloc(policy, 1000, 21);
            let mut cross = 0u32;
            for w in nodes.windows(2) {
                if t.node_group(w[0]) != t.node_group(w[1]) {
                    cross += 1;
                }
            }
            cross as f64 / (nodes.len() - 1) as f64
        };
        let cont = group_spread(PlacementPolicy::Contiguous);
        let cab = group_spread(PlacementPolicy::RandomCabinet);
        let rand = group_spread(PlacementPolicy::RandomNode);
        assert!(cont <= cab);
        assert!(cab < rand);
    }
}
