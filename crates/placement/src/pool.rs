//! Free-node tracking for multi-job allocation.

use dfly_topology::{NodeId, Topology};

/// Tracks which compute nodes are free. Jobs allocate nodes through a
/// [`crate::PlacementPolicy`]; the interference experiments then give the
/// complement to the synthetic background job.
#[derive(Debug, Clone)]
pub struct NodePool {
    free: Vec<bool>,
    free_count: u32,
}

impl NodePool {
    /// A pool with every node of the machine free.
    pub fn new(topo: &Topology) -> NodePool {
        let n = topo.config().total_nodes() as usize;
        NodePool {
            free: vec![true; n],
            free_count: n as u32,
        }
    }

    /// Number of free nodes.
    pub fn free_count(&self) -> u32 {
        self.free_count
    }

    /// Total nodes (free + allocated).
    pub fn total(&self) -> usize {
        self.free.len()
    }

    /// Is this node free?
    pub fn is_free(&self, node: NodeId) -> bool {
        self.free[node.index()]
    }

    /// All free nodes in index order.
    pub fn free_nodes(&self) -> Vec<NodeId> {
        self.free
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Maximal runs of consecutively-indexed free nodes, in index order,
    /// as `(first node, length)` pairs. A fresh pool is one machine-wide
    /// run; after churn the runs are the holes jobs left behind.
    pub fn free_runs(&self) -> Vec<(NodeId, u32)> {
        let mut runs = Vec::new();
        let mut start: Option<usize> = None;
        for (i, &f) in self.free.iter().enumerate() {
            match (f, start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    runs.push((NodeId(s as u32), (i - s) as u32));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            runs.push((NodeId(s as u32), (self.free.len() - s) as u32));
        }
        runs
    }

    /// Mark `nodes` as allocated. Panics if any is already taken (a
    /// placement policy handing out a taken node is always a bug).
    pub fn take(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            assert!(self.free[n.index()], "node {n} already allocated");
            self.free[n.index()] = false;
            self.free_count -= 1;
        }
    }

    /// Return `nodes` to the pool.
    pub fn release(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            assert!(!self.free[n.index()], "node {n} was not allocated");
            self.free[n.index()] = true;
            self.free_count += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfly_topology::TopologyConfig;

    fn pool() -> NodePool {
        NodePool::new(&Topology::build(TopologyConfig::small_test()))
    }

    #[test]
    fn starts_all_free() {
        let p = pool();
        assert_eq!(p.free_count(), 64);
        assert_eq!(p.total(), 64);
        assert_eq!(p.free_nodes().len(), 64);
        assert!(p.is_free(NodeId(0)));
    }

    #[test]
    fn take_and_release_roundtrip() {
        let mut p = pool();
        let nodes = [NodeId(3), NodeId(7), NodeId(40)];
        p.take(&nodes);
        assert_eq!(p.free_count(), 61);
        assert!(!p.is_free(NodeId(7)));
        assert!(!p.free_nodes().contains(&NodeId(3)));
        p.release(&nodes);
        assert_eq!(p.free_count(), 64);
        assert!(p.is_free(NodeId(7)));
    }

    #[test]
    #[should_panic(expected = "already allocated")]
    fn double_take_panics() {
        let mut p = pool();
        p.take(&[NodeId(1)]);
        p.take(&[NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "was not allocated")]
    fn release_free_node_panics() {
        let mut p = pool();
        p.release(&[NodeId(1)]);
    }

    #[test]
    fn free_runs_reflect_fragmentation() {
        let mut p = pool();
        assert_eq!(p.free_runs(), vec![(NodeId(0), 64)]);
        // Carve two holes: [4..8) and [20..24).
        let hole: Vec<NodeId> = (4..8).chain(20..24).map(NodeId).collect();
        p.take(&hole);
        assert_eq!(
            p.free_runs(),
            vec![(NodeId(0), 4), (NodeId(8), 12), (NodeId(24), 40)]
        );
        // Runs shrink to nothing when everything is taken.
        p.release(&hole);
        p.take(&(0..64).map(NodeId).collect::<Vec<_>>());
        assert!(p.free_runs().is_empty());
    }

    #[test]
    fn free_nodes_sorted() {
        let mut p = pool();
        p.take(&[NodeId(0), NodeId(5)]);
        let free = p.free_nodes();
        let mut sorted = free.clone();
        sorted.sort();
        assert_eq!(free, sorted);
    }
}
