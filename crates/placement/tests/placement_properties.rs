//! Property tests for placement policies: exactness, disjointness, and
//! the locality ordering, including on fragmented machines (the state a
//! real scheduler actually allocates from).

use dfly_engine::Xoshiro256;
use dfly_placement::{NodePool, PlacementPolicy};
use dfly_topology::{NodeId, Topology, TopologyConfig};
use proptest::prelude::*;
use std::collections::HashSet;

fn topo() -> Topology {
    Topology::build(TopologyConfig::quick()) // 768 nodes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any policy, any job size, any seed: exact, distinct, free nodes.
    #[test]
    fn allocation_exact_distinct_free(
        seed in any::<u64>(),
        size in 1u32..768,
        policy_idx in 0usize..5,
    ) {
        let t = topo();
        let policy = PlacementPolicy::ALL[policy_idx];
        let mut pool = NodePool::new(&t);
        let mut rng = Xoshiro256::seed_from(seed);
        let nodes = policy.allocate(&t, &mut pool, size, &mut rng).unwrap();
        prop_assert_eq!(nodes.len(), size as usize);
        let set: HashSet<_> = nodes.iter().collect();
        prop_assert_eq!(set.len(), size as usize);
        prop_assert_eq!(pool.free_count(), 768 - size);
    }

    /// Allocating from a fragmented pool (an earlier random job took a
    /// random subset) still returns exactly the requested free nodes.
    #[test]
    fn allocation_from_fragmented_pool(
        seed in any::<u64>(),
        first in 1u32..400,
        second in 1u32..300,
        policy_idx in 0usize..5,
    ) {
        let t = topo();
        let mut pool = NodePool::new(&t);
        let mut rng = Xoshiro256::seed_from(seed);
        let job1 = PlacementPolicy::RandomNode
            .allocate(&t, &mut pool, first, &mut rng)
            .unwrap();
        let policy = PlacementPolicy::ALL[policy_idx];
        let job2 = policy.allocate(&t, &mut pool, second, &mut rng).unwrap();
        prop_assert_eq!(job2.len(), second as usize);
        let taken: HashSet<_> = job1.iter().collect();
        prop_assert!(job2.iter().all(|n| !taken.contains(n)));
    }

    /// Group-spread ordering holds for any seed: contiguous touches no
    /// more groups than random-chassis, which touches no more than
    /// random-node (for a job large enough to be meaningful).
    #[test]
    fn group_spread_ordering(seed in any::<u64>()) {
        let t = topo();
        let size = 256u32;
        let groups_of = |policy: PlacementPolicy| {
            let mut pool = NodePool::new(&t);
            let mut rng = Xoshiro256::seed_from(seed);
            let nodes = policy.allocate(&t, &mut pool, size, &mut rng).unwrap();
            nodes.iter().map(|&n| t.node_group(n)).collect::<HashSet<_>>().len()
        };
        let cont = groups_of(PlacementPolicy::Contiguous);
        let chas = groups_of(PlacementPolicy::RandomChassis);
        let rand = groups_of(PlacementPolicy::RandomNode);
        prop_assert!(cont <= chas);
        prop_assert!(chas <= rand + 1); // chassis can tie with rand on small jobs
        prop_assert_eq!(cont, 2); // 256 nodes at 128/group (quick machine)
    }

    /// Rank adjacency: under container policies, consecutive ranks share
    /// their container much more often than under random-node.
    #[test]
    fn container_policies_keep_neighbours_close(seed in any::<u64>()) {
        let t = topo();
        let size = 300u32;
        let same_router_fraction = |policy: PlacementPolicy| {
            let mut pool = NodePool::new(&t);
            let mut rng = Xoshiro256::seed_from(seed);
            let nodes = policy.allocate(&t, &mut pool, size, &mut rng).unwrap();
            let same = nodes
                .windows(2)
                .filter(|w| t.node_router(w[0]) == t.node_router(w[1]))
                .count();
            same as f64 / (size - 1) as f64
        };
        let rotr = same_router_fraction(PlacementPolicy::RandomRouter);
        let rand = same_router_fraction(PlacementPolicy::RandomNode);
        prop_assert!(rotr > 0.5, "random-router adjacency {rotr}");
        prop_assert!(rand < 0.2, "random-node adjacency {rand}");
    }
}

#[test]
fn exhausting_then_releasing_pool_roundtrips() {
    let t = topo();
    let mut pool = NodePool::new(&t);
    let mut rng = Xoshiro256::seed_from(5);
    let all = PlacementPolicy::Contiguous
        .allocate(&t, &mut pool, 768, &mut rng)
        .unwrap();
    assert_eq!(pool.free_count(), 0);
    assert!(PlacementPolicy::RandomNode
        .allocate(&t, &mut pool, 1, &mut rng)
        .is_err());
    pool.release(&all);
    assert_eq!(pool.free_count(), 768);
    let expected: Vec<NodeId> = (0..768).map(NodeId).collect();
    assert_eq!(all, expected);
}
