//! Property tests for placement policies: exactness, disjointness, and
//! the locality ordering, including on fragmented machines (the state a
//! real scheduler actually allocates from). Runs on the in-tree harness
//! (`dfly_engine::proptest`) — no external crates.

use dfly_engine::proptest::{check, Config};
use dfly_engine::Xoshiro256;
use dfly_placement::{NodePool, PlacementPolicy};
use dfly_topology::{NodeId, Topology, TopologyConfig};
use std::collections::HashSet;

fn topo() -> Topology {
    Topology::build(TopologyConfig::quick()) // 768 nodes
}

/// Any policy, any job size, any seed: exact, distinct, free nodes.
#[test]
fn allocation_exact_distinct_free() {
    let t = topo();
    check(
        "allocation_exact_distinct_free",
        &Config::with_cases(32),
        |rng| {
            (
                rng.next_u64(),
                rng.range_inclusive(1, 767) as u32,
                rng.index(PlacementPolicy::ALL.len()),
            )
        },
        |&(seed, size, policy_idx)| {
            let policy = PlacementPolicy::ALL[policy_idx];
            let mut pool = NodePool::new(&t);
            let mut rng = Xoshiro256::seed_from(seed);
            let nodes = policy
                .allocate(&t, &mut pool, size, &mut rng)
                .map_err(|e| format!("allocate failed: {e}"))?;
            if nodes.len() != size as usize {
                return Err(format!("{} nodes for size {size}", nodes.len()));
            }
            let set: HashSet<_> = nodes.iter().collect();
            if set.len() != size as usize {
                return Err("duplicate nodes in allocation".into());
            }
            if pool.free_count() != 768 - size {
                return Err(format!(
                    "free_count {} after taking {size}",
                    pool.free_count()
                ));
            }
            Ok(())
        },
    );
}

/// Allocating from a fragmented pool (an earlier random job took a
/// random subset) still returns exactly the requested free nodes.
#[test]
fn allocation_from_fragmented_pool() {
    let t = topo();
    check(
        "allocation_from_fragmented_pool",
        &Config::with_cases(32),
        |rng| {
            (
                rng.next_u64(),
                rng.range_inclusive(1, 399) as u32,
                rng.range_inclusive(1, 299) as u32,
                rng.index(PlacementPolicy::ALL.len()),
            )
        },
        |&(seed, first, second, policy_idx)| {
            let mut pool = NodePool::new(&t);
            let mut rng = Xoshiro256::seed_from(seed);
            let job1 = PlacementPolicy::RandomNode
                .allocate(&t, &mut pool, first, &mut rng)
                .map_err(|e| format!("job1: {e}"))?;
            let policy = PlacementPolicy::ALL[policy_idx];
            let job2 = policy
                .allocate(&t, &mut pool, second, &mut rng)
                .map_err(|e| format!("job2: {e}"))?;
            if job2.len() != second as usize {
                return Err(format!("job2 got {} of {second}", job2.len()));
            }
            let taken: HashSet<_> = job1.iter().collect();
            if job2.iter().any(|n| taken.contains(n)) {
                return Err("job2 reused job1's nodes".into());
            }
            Ok(())
        },
    );
}

/// Group-spread ordering holds for any seed: contiguous touches no
/// more groups than random-chassis, which touches no more than
/// random-node (for a job large enough to be meaningful).
#[test]
fn group_spread_ordering() {
    let t = topo();
    check(
        "group_spread_ordering",
        &Config::with_cases(32),
        |rng| rng.next_u64(),
        |&seed| {
            let size = 256u32;
            let groups_of = |policy: PlacementPolicy| {
                let mut pool = NodePool::new(&t);
                let mut rng = Xoshiro256::seed_from(seed);
                let nodes = policy.allocate(&t, &mut pool, size, &mut rng).unwrap();
                nodes
                    .iter()
                    .map(|&n| t.node_group(n))
                    .collect::<HashSet<_>>()
                    .len()
            };
            let cont = groups_of(PlacementPolicy::Contiguous);
            let chas = groups_of(PlacementPolicy::RandomChassis);
            let rand = groups_of(PlacementPolicy::RandomNode);
            if cont > chas {
                return Err(format!("contiguous spans {cont} > chassis {chas}"));
            }
            // Chassis can tie with rand on small jobs.
            if chas > rand + 1 {
                return Err(format!("chassis spans {chas} > random {rand} + 1"));
            }
            if cont != 2 {
                // 256 nodes at 128/group (quick machine).
                return Err(format!("contiguous spans {cont} groups, expected 2"));
            }
            Ok(())
        },
    );
}

/// Rank adjacency: under container policies, consecutive ranks share
/// their container much more often than under random-node.
#[test]
fn container_policies_keep_neighbours_close() {
    let t = topo();
    check(
        "container_policies_keep_neighbours_close",
        &Config::with_cases(32),
        |rng| rng.next_u64(),
        |&seed| {
            let size = 300u32;
            let same_router_fraction = |policy: PlacementPolicy| {
                let mut pool = NodePool::new(&t);
                let mut rng = Xoshiro256::seed_from(seed);
                let nodes = policy.allocate(&t, &mut pool, size, &mut rng).unwrap();
                let same = nodes
                    .windows(2)
                    .filter(|w| t.node_router(w[0]) == t.node_router(w[1]))
                    .count();
                same as f64 / (size - 1) as f64
            };
            let rotr = same_router_fraction(PlacementPolicy::RandomRouter);
            let rand = same_router_fraction(PlacementPolicy::RandomNode);
            if rotr <= 0.5 {
                return Err(format!("random-router adjacency {rotr}"));
            }
            if rand >= 0.2 {
                return Err(format!("random-node adjacency {rand}"));
            }
            Ok(())
        },
    );
}

#[test]
fn exhausting_then_releasing_pool_roundtrips() {
    let t = topo();
    let mut pool = NodePool::new(&t);
    let mut rng = Xoshiro256::seed_from(5);
    let all = PlacementPolicy::Contiguous
        .allocate(&t, &mut pool, 768, &mut rng)
        .unwrap();
    assert_eq!(pool.free_count(), 0);
    assert!(PlacementPolicy::RandomNode
        .allocate(&t, &mut pool, 1, &mut rng)
        .is_err());
    pool.release(&all);
    assert_eq!(pool.free_count(), 768);
    let expected: Vec<NodeId> = (0..768).map(NodeId).collect();
    assert_eq!(all, expected);
}
