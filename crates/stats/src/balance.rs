//! Load-imbalance measures: the Gini coefficient and a fixed-width
//! histogram. The trade-off study is fundamentally about how evenly
//! traffic spreads over channels; a single scalar imbalance measure makes
//! placements comparable at a glance.

/// Gini coefficient of a set of non-negative loads: 0 = perfectly
/// balanced, -> 1 = all load on one element. Returns 0 for fewer than two
/// samples or an all-zero population.
pub fn gini(values: &[f64]) -> f64 {
    assert!(
        values.iter().all(|&v| v >= 0.0 && !v.is_nan()),
        "gini requires non-negative, non-NaN values"
    );
    let n = values.len();
    if n < 2 {
        return 0.0;
    }
    let total: f64 = values.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    // G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n, with 1-based i.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

/// A fixed-width histogram over `[lo, hi)` with out-of-range values
/// clamped into the end bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// New histogram with `bins` equal-width buckets over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(hi > lo, "degenerate histogram range");
        assert!(bins >= 1, "need at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Add one sample (clamped into range).
    pub fn add(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN sample");
        let bins = self.counts.len();
        let frac = (value - self.lo) / (self.hi - self.lo);
        let idx = ((frac * bins as f64) as isize).clamp(0, bins as isize - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Add many samples.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.add(v);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `(lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_balanced_is_zero() {
        assert_eq!(gini(&[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn gini_concentrated_approaches_one() {
        let mut v = vec![0.0; 100];
        v[0] = 1000.0;
        let g = gini(&v);
        assert!(g > 0.95, "gini {g}");
    }

    #[test]
    fn gini_known_value() {
        // For {0, 1}: G = 0.5.
        let g = gini(&[0.0, 1.0]);
        assert!((g - 0.5).abs() < 1e-12, "gini {g}");
    }

    #[test]
    fn gini_edge_cases() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[7.0]), 0.0);
        assert_eq!(gini(&[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn gini_scale_invariant() {
        let a = [1.0, 2.0, 3.0, 10.0];
        let b: Vec<f64> = a.iter().map(|x| x * 1000.0).collect();
        assert!((gini(&a) - gini(&b)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn gini_rejects_negative() {
        let _ = gini(&[1.0, -1.0]);
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.5, 1.0, 2.5, 9.9, 3.0]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts(), &[2, 2, 0, 0, 1]);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(42.0);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn histogram_bad_range() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }
}
