//! Empirical cumulative distribution functions.
//!
//! Figures 4–6 and 8–10 of the paper plot "percentage of local/global
//! channels" (y) against traffic amount or saturated time (x): an empirical
//! CDF over the channel population. [`Cdf`] holds the sorted sample set and
//! produces exactly those series.

/// An empirical CDF over a set of samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from unsorted samples. NaN values are rejected with a panic
    /// (they would poison the ordering silently).
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Cdf {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(
            sorted.iter().all(|v| !v.is_nan()),
            "NaN sample in CDF input"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`, in [0, 1].
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Percentage of samples `<= x`, in [0, 100] (the paper's y-axis).
    pub fn percent_at_or_below(&self, x: f64) -> f64 {
        100.0 * self.fraction_at_or_below(x)
    }

    /// The value below which `fraction` of the samples fall (inverse CDF).
    /// `fraction` is clamped to [0, 1].
    pub fn quantile(&self, fraction: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        crate::summary::percentile_sorted(&self.sorted, fraction.clamp(0.0, 1.0) * 100.0)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The full `(x, percent)` step series: one point per sample, suitable
    /// for plotting the paper's channel-CDF figures. Lazy — no per-call
    /// allocation; `.collect()` when a `Vec` is needed.
    pub fn steps(&self) -> impl ExactSizeIterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &v)| (v, 100.0 * (i + 1) as f64 / n as f64))
    }

    /// A downsampled series of at most `k` points, evenly spaced in rank;
    /// always includes the final (max, 100%) point. Used to print readable
    /// tables for populations of tens of thousands of channels. Lazy — no
    /// per-call allocation.
    pub fn sampled_points(&self, k: usize) -> impl ExactSizeIterator<Item = (f64, f64)> + '_ {
        assert!(k >= 2, "need at least 2 points");
        let n = self.sorted.len();
        (0..n.min(k)).map(move |j| {
            let i = if n <= k { j } else { j * (n - 1) / (k - 1) };
            (self.sorted[i], 100.0 * (i + 1) as f64 / n as f64)
        })
    }

    /// Area-style mean of the samples.
    pub fn mean(&self) -> f64 {
        crate::summary::mean(&self.sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_fractions() {
        let c = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_at_or_below(0.5), 0.0);
        assert_eq!(c.fraction_at_or_below(1.0), 0.25);
        assert_eq!(c.fraction_at_or_below(2.5), 0.5);
        assert_eq!(c.fraction_at_or_below(4.0), 1.0);
        assert_eq!(c.percent_at_or_below(3.0), 75.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let c = Cdf::from_samples([3.0, 1.0, 2.0]);
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(3.0));
    }

    #[test]
    fn empty_cdf() {
        let c = Cdf::from_samples([]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_at_or_below(10.0), 0.0);
        assert_eq!(c.min(), None);
        assert_eq!(c.steps().len(), 0);
    }

    #[test]
    fn quantile_inverse_relationship() {
        let c = Cdf::from_samples((1..=100).map(|i| i as f64));
        let q = c.quantile(0.5);
        assert!((q - 50.5).abs() < 1.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 100.0);
    }

    #[test]
    fn steps_end_at_100_percent() {
        let c = Cdf::from_samples([5.0, 7.0, 9.0]);
        let s: Vec<_> = c.steps().collect();
        assert_eq!(s.len(), 3);
        assert_eq!(s[2], (9.0, 100.0));
        assert!((s[0].1 - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_points_downsamples() {
        let c = Cdf::from_samples((0..1000).map(|i| i as f64));
        let pts: Vec<_> = c.sampled_points(11).collect();
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[10].0, 999.0);
        assert_eq!(pts[10].1, 100.0);
        // x must be non-decreasing.
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn sampled_points_small_population_returns_all() {
        let c = Cdf::from_samples([1.0, 2.0]);
        assert_eq!(c.sampled_points(10).len(), 2);
    }

    /// Pin the lazy iterators against the frozen Vec-building reference
    /// they replaced (the pre-iterator implementations, inlined here).
    #[test]
    fn iterator_series_match_vec_reference() {
        fn steps_ref(sorted: &[f64]) -> Vec<(f64, f64)> {
            let n = sorted.len();
            sorted
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, 100.0 * (i + 1) as f64 / n as f64))
                .collect()
        }
        fn sampled_ref(sorted: &[f64], k: usize) -> Vec<(f64, f64)> {
            let n = sorted.len();
            if n == 0 {
                return Vec::new();
            }
            if n <= k {
                return steps_ref(sorted);
            }
            (0..k)
                .map(|j| {
                    let i = j * (n - 1) / (k - 1);
                    (sorted[i], 100.0 * (i + 1) as f64 / n as f64)
                })
                .collect()
        }
        for n in [0usize, 1, 2, 5, 99, 100, 101, 1000] {
            let data: Vec<f64> = (0..n).map(|i| (i * 7 % 113) as f64).collect();
            let c = Cdf::from_samples(data.iter().copied());
            let mut sorted = data.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(c.steps().collect::<Vec<_>>(), steps_ref(&sorted), "n={n}");
            for k in [2usize, 3, 11, 100] {
                assert_eq!(
                    c.sampled_points(k).collect::<Vec<_>>(),
                    sampled_ref(&sorted, k),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn duplicates_counted() {
        let c = Cdf::from_samples([2.0, 2.0, 2.0, 5.0]);
        assert_eq!(c.percent_at_or_below(2.0), 75.0);
        assert_eq!(c.percent_at_or_below(1.9), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Cdf::from_samples([1.0, f64::NAN]);
    }

    #[test]
    fn mean_matches_summary() {
        let c = Cdf::from_samples([1.0, 2.0, 3.0]);
        assert_eq!(c.mean(), 2.0);
    }
}
