//! Empirical cumulative distribution functions.
//!
//! Figures 4–6 and 8–10 of the paper plot "percentage of local/global
//! channels" (y) against traffic amount or saturated time (x): an empirical
//! CDF over the channel population. [`Cdf`] holds the sorted sample set and
//! produces exactly those series.

/// An empirical CDF over a set of samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from unsorted samples. NaN values are rejected with a panic
    /// (they would poison the ordering silently).
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Cdf {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(
            sorted.iter().all(|v| !v.is_nan()),
            "NaN sample in CDF input"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`, in [0, 1].
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Percentage of samples `<= x`, in [0, 100] (the paper's y-axis).
    pub fn percent_at_or_below(&self, x: f64) -> f64 {
        100.0 * self.fraction_at_or_below(x)
    }

    /// The value below which `fraction` of the samples fall (inverse CDF).
    /// `fraction` is clamped to [0, 1].
    pub fn quantile(&self, fraction: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        crate::summary::percentile_sorted(&self.sorted, fraction.clamp(0.0, 1.0) * 100.0)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The full `(x, percent)` step series: one point per sample, suitable
    /// for plotting the paper's channel-CDF figures.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 100.0 * (i + 1) as f64 / n as f64))
            .collect()
    }

    /// A downsampled series of at most `k` points, evenly spaced in rank;
    /// always includes the final (max, 100%) point. Used to print readable
    /// tables for populations of tens of thousands of channels.
    pub fn sampled_points(&self, k: usize) -> Vec<(f64, f64)> {
        assert!(k >= 2, "need at least 2 points");
        let n = self.sorted.len();
        if n == 0 {
            return Vec::new();
        }
        if n <= k {
            return self.steps();
        }
        let mut out = Vec::with_capacity(k);
        for j in 0..k {
            let i = j * (n - 1) / (k - 1);
            out.push((self.sorted[i], 100.0 * (i + 1) as f64 / n as f64));
        }
        out
    }

    /// Area-style mean of the samples.
    pub fn mean(&self) -> f64 {
        crate::summary::mean(&self.sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_fractions() {
        let c = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_at_or_below(0.5), 0.0);
        assert_eq!(c.fraction_at_or_below(1.0), 0.25);
        assert_eq!(c.fraction_at_or_below(2.5), 0.5);
        assert_eq!(c.fraction_at_or_below(4.0), 1.0);
        assert_eq!(c.percent_at_or_below(3.0), 75.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let c = Cdf::from_samples([3.0, 1.0, 2.0]);
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(3.0));
    }

    #[test]
    fn empty_cdf() {
        let c = Cdf::from_samples([]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_at_or_below(10.0), 0.0);
        assert_eq!(c.min(), None);
        assert!(c.steps().is_empty());
    }

    #[test]
    fn quantile_inverse_relationship() {
        let c = Cdf::from_samples((1..=100).map(|i| i as f64));
        let q = c.quantile(0.5);
        assert!((q - 50.5).abs() < 1.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 100.0);
    }

    #[test]
    fn steps_end_at_100_percent() {
        let c = Cdf::from_samples([5.0, 7.0, 9.0]);
        let s = c.steps();
        assert_eq!(s.len(), 3);
        assert_eq!(s[2], (9.0, 100.0));
        assert!((s[0].1 - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_points_downsamples() {
        let c = Cdf::from_samples((0..1000).map(|i| i as f64));
        let pts = c.sampled_points(11);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[10].0, 999.0);
        assert_eq!(pts[10].1, 100.0);
        // x must be non-decreasing.
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn sampled_points_small_population_returns_all() {
        let c = Cdf::from_samples([1.0, 2.0]);
        assert_eq!(c.sampled_points(10).len(), 2);
    }

    #[test]
    fn duplicates_counted() {
        let c = Cdf::from_samples([2.0, 2.0, 2.0, 5.0]);
        assert_eq!(c.percent_at_or_below(2.0), 75.0);
        assert_eq!(c.percent_at_or_below(1.9), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Cdf::from_samples([1.0, f64::NAN]);
    }

    #[test]
    fn mean_matches_summary() {
        let c = Cdf::from_samples([1.0, 2.0, 3.0]);
        assert_eq!(c.mean(), 2.0);
    }
}
