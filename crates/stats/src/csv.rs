//! Tiny CSV writer (no external dependency needed for our plain numeric
//! tables; fields containing commas/quotes are quoted per RFC 4180).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A buffered CSV writer.
pub struct CsvWriter<W: Write> {
    out: W,
    columns: usize,
}

impl CsvWriter<BufWriter<File>> {
    /// Create a CSV file (truncating), writing the header row immediately.
    /// Parent directories are created as needed.
    pub fn create<P: AsRef<Path>>(path: P, header: &[&str]) -> io::Result<Self> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = BufWriter::new(File::create(path)?);
        Self::from_writer(file, header)
    }
}

impl<W: Write> CsvWriter<W> {
    /// Wrap any writer, emitting the header row immediately.
    pub fn from_writer(mut out: W, header: &[&str]) -> io::Result<Self> {
        assert!(!header.is_empty(), "CSV needs at least one column");
        write_record(&mut out, header.iter().map(|s| s.to_string()))?;
        Ok(CsvWriter {
            out,
            columns: header.len(),
        })
    }

    /// Write one row of stringified fields. Panics on arity mismatch.
    pub fn row<S: ToString>(&mut self, fields: &[S]) -> io::Result<()> {
        assert_eq!(
            fields.len(),
            self.columns,
            "CSV row arity {} != header {}",
            fields.len(),
            self.columns
        );
        write_record(&mut self.out, fields.iter().map(|f| f.to_string()))
    }

    /// Flush and return the inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

fn write_record<W: Write>(out: &mut W, fields: impl Iterator<Item = String>) -> io::Result<()> {
    let mut first = true;
    for field in fields {
        if !first {
            out.write_all(b",")?;
        }
        first = false;
        if field.contains(',') || field.contains('"') || field.contains('\n') {
            let escaped = field.replace('"', "\"\"");
            write!(out, "\"{escaped}\"")?;
        } else {
            out.write_all(field.as_bytes())?;
        }
    }
    out.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(header: &[&str], rows: &[Vec<&str>]) -> String {
        let mut w = CsvWriter::from_writer(Vec::new(), header).unwrap();
        for r in rows {
            w.row(r).unwrap();
        }
        String::from_utf8(w.finish().unwrap()).unwrap()
    }

    #[test]
    fn plain_rows() {
        let s = render(&["a", "b"], &[vec!["1", "2"], vec!["3", "4"]]);
        assert_eq!(s, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn quoting_commas_and_quotes() {
        let s = render(&["x"], &[vec!["has,comma"], vec!["has\"quote"]]);
        assert_eq!(
            s,
            "x\nhas,comma\n".replace("has,comma", "\"has,comma\"") + "\"has\"\"quote\"\n"
        );
    }

    #[test]
    fn numeric_rows_via_to_string() {
        let mut w = CsvWriter::from_writer(Vec::new(), &["v", "w"]).unwrap();
        w.row(&[1.5f64, 2.0]).unwrap();
        let s = String::from_utf8(w.finish().unwrap()).unwrap();
        assert_eq!(s, "v,w\n1.5,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut w = CsvWriter::from_writer(Vec::new(), &["a", "b"]).unwrap();
        let _ = w.row(&["only"]);
    }

    #[test]
    fn create_writes_file() {
        let dir = std::env::temp_dir().join("dfly_stats_csv_test");
        let path = dir.join("sub").join("t.csv");
        let mut w = CsvWriter::create(&path, &["h"]).unwrap();
        w.row(&["1"]).unwrap();
        w.finish().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "h\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
