//! # dfly-stats
//!
//! Statistics and reporting utilities for the trade-off study. The paper
//! reports results as
//!
//! * **box plots** of per-rank communication time (min, quartiles, max) —
//!   [`BoxStats`];
//! * **CDFs over channels** ("percentage of local channels" vs traffic
//!   amount / saturated time, Figures 4–6, 8–10) — [`Cdf`];
//! * **relative series** (max communication time in percent of the
//!   `rand-adp` baseline, Figure 7) — [`relative_percent`];
//! * plain tables (Tables I and II).
//!
//! The crate also renders results as aligned ASCII tables, simple terminal
//! plots, and CSV files so each reproduction binary can both print the
//! paper's rows/series and leave machine-readable artifacts in `results/`.

#![warn(missing_docs)]

pub mod balance;
pub mod cdf;
pub mod csv;
pub mod plot;
pub mod streaming;
pub mod summary;
pub mod table;

pub use balance::{gini, Histogram};
pub use cdf::Cdf;
pub use csv::CsvWriter;
pub use plot::{render_boxplot_row, sparkline};
pub use streaming::{
    CoarseTimeline, MetricsMode, ReservoirCdf, StreamSummary, DEFAULT_RESERVOIR_K,
};
pub use summary::{mean, percentile, relative_percent, stddev, BoxStats};
pub use table::AsciiTable;
