//! Minimal terminal plotting: sparklines and box-plot rows.
//!
//! These exist so each reproduction binary can show the *shape* of a figure
//! directly in the terminal, next to the CSV it writes for real plotting.

use crate::summary::BoxStats;

const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render a sparkline of the values (empty string for no values).
/// Constant series render as a flat mid-height line.
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    values
        .iter()
        .map(|&v| {
            let idx = if span <= 0.0 {
                3
            } else {
                (((v - lo) / span) * 7.0).round() as usize
            };
            BARS[idx.min(7)]
        })
        .collect()
}

/// Render one horizontal box-plot row scaled into `width` characters over
/// the global `[lo, hi]` axis, so several rows can be compared visually:
///
/// ```text
///      |----[==M==]------|
/// ```
pub fn render_boxplot_row(stats: &BoxStats, lo: f64, hi: f64, width: usize) -> String {
    assert!(width >= 10, "width too small for a boxplot");
    assert!(hi > lo, "degenerate axis");
    let scale = |v: f64| -> usize {
        let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((width - 1) as f64 * frac).round() as usize
    };
    let mut row = vec![' '; width];
    let (imin, iq1, imed, iq3, imax) = (
        scale(stats.min),
        scale(stats.q1),
        scale(stats.median),
        scale(stats.q3),
        scale(stats.max),
    );
    for cell in row.iter_mut().take(iq1).skip(imin) {
        *cell = '-';
    }
    for cell in row.iter_mut().take(imax.max(iq3)).skip(iq3) {
        *cell = '-';
    }
    for cell in row.iter_mut().take(iq3 + 1).skip(iq1) {
        *cell = '=';
    }
    row[imin] = '|';
    row[imax] = '|';
    row[iq1] = '[';
    row[iq3] = ']';
    row[imed] = 'M';
    row.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[3], '█');
    }

    #[test]
    fn sparkline_constant_is_flat() {
        let s = sparkline(&[5.0, 5.0, 5.0]);
        let chars: Vec<char> = s.chars().collect();
        assert!(chars.iter().all(|&c| c == chars[0]));
    }

    #[test]
    fn sparkline_empty() {
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn boxplot_markers_present_and_ordered() {
        let stats = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 10.0]).unwrap();
        let row = render_boxplot_row(&stats, 0.0, 12.0, 60);
        assert_eq!(row.chars().count(), 60);
        let pos = |c: char| row.find(c).unwrap();
        assert!(pos('[') <= pos('M'));
        assert!(pos('M') <= pos(']'));
        assert!(row.contains('|'));
    }

    #[test]
    fn boxplot_clamps_out_of_axis_values() {
        let stats = BoxStats::from_samples(&[5.0, 6.0, 7.0]).unwrap();
        // Axis narrower than the data: must not panic.
        let row = render_boxplot_row(&stats, 5.5, 6.5, 20);
        assert_eq!(row.chars().count(), 20);
    }

    #[test]
    #[should_panic(expected = "degenerate axis")]
    fn boxplot_rejects_bad_axis() {
        let stats = BoxStats::from_samples(&[1.0]).unwrap();
        let _ = render_boxplot_row(&stats, 1.0, 1.0, 20);
    }
}
