//! Streaming, bounded replacements for the dense metric structures.
//!
//! The paper's machine stops at Theta (3,456 nodes); the canonic
//! `(p,a,h,g)` parameterization builds dragonflies with hundreds of
//! groups and 100k+ nodes, where dense per-link vectors and full-sample
//! CDFs make a run memory-bound before it is compute-bound. This module
//! holds the fixed-footprint equivalents, all deterministic and
//! mergeable across PDES shards:
//!
//! * [`ReservoirCdf`] — a seeded bottom-k reservoir sample of a value
//!   stream. Holds at most `K` values regardless of stream length; its
//!   quantiles converge to the dense CDF's with error `O(1/sqrt(K))`.
//!   Merging two reservoirs is exactly equivalent to feeding one
//!   reservoir both streams (keep-smallest-tag union), so shard merges
//!   commute and reorder freely.
//! * [`StreamSummary`] — count/sum/min/max moments plus a fixed-bin
//!   log-scale histogram for quantile estimates. Merging is field-wise;
//!   counts, extrema, and bins merge exactly, the sum to floating-point
//!   reassociation error.
//! * [`CoarseTimeline`] — a time-binned series that keeps a fixed bin
//!   *count* by geometrically doubling its bin *width* when the run
//!   outgrows it, instead of growing the bin vector. Folding preserves
//!   total byte mass exactly.
//! * [`MetricsMode`] — the knob the network/telemetry layers switch on:
//!   `Dense` (the historical structures, byte-identical to every
//!   existing golden) or `Streaming { reservoir_k }` (bounded memory,
//!   `O(links * K)` regardless of run duration).

use crate::cdf::Cdf;
use dfly_engine::{Ns, Xoshiro256};
use std::collections::BinaryHeap;

/// Default reservoir capacity for `--metrics streaming` without an
/// explicit `:K`. 1024 samples put ~3% worst-case standard error on
/// mid-range quantiles — tighter than the paper's figure resolution.
pub const DEFAULT_RESERVOIR_K: u32 = 1024;

/// How metric-heavy layers store their data: dense (exact, unbounded)
/// or streaming (bounded, sampled). Dense is the default and is
/// byte-identical to every release before this knob existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsMode {
    /// Full-resolution structures: per-sample CDFs, an uncoarsened
    /// sample series, dense timeline bins. Memory grows with run
    /// duration; fine through Theta scale.
    #[default]
    Dense,
    /// Bounded structures: reservoir-sampled CDFs, a geometrically
    /// coarsening sample series and timeline, per-link-class digests.
    /// Metric memory is `O(links * reservoir_k)` for any duration.
    Streaming {
        /// Reservoir capacity per sampled distribution.
        reservoir_k: u32,
    },
}

impl MetricsMode {
    /// True for any `Streaming` variant.
    pub fn is_streaming(&self) -> bool {
        matches!(self, MetricsMode::Streaming { .. })
    }

    /// The reservoir capacity, if streaming.
    pub fn reservoir_k(&self) -> Option<u32> {
        match *self {
            MetricsMode::Dense => None,
            MetricsMode::Streaming { reservoir_k } => Some(reservoir_k),
        }
    }

    /// Stable label: `dense` or `streaming:K`.
    pub fn label(&self) -> String {
        match *self {
            MetricsMode::Dense => "dense".to_string(),
            MetricsMode::Streaming { reservoir_k } => format!("streaming:{reservoir_k}"),
        }
    }

    /// Parse `dense`, `streaming`, or `streaming:K`.
    pub fn parse(s: &str) -> Result<MetricsMode, String> {
        match s {
            "dense" => Ok(MetricsMode::Dense),
            "streaming" => Ok(MetricsMode::Streaming {
                reservoir_k: DEFAULT_RESERVOIR_K,
            }),
            _ => {
                let k_str = s.strip_prefix("streaming:").ok_or_else(|| {
                    format!("metrics mode wants dense|streaming|streaming:K (got {s:?})")
                })?;
                let k: u32 = k_str
                    .parse()
                    .map_err(|_| format!("streaming reservoir size {k_str:?} is not an integer"))?;
                if k < 2 {
                    return Err(format!("streaming reservoir size must be >= 2 (got {k})"));
                }
                Ok(MetricsMode::Streaming { reservoir_k: k })
            }
        }
    }

    /// Validate the mode's parameters (mirrors `NetworkParams::validate`).
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            MetricsMode::Dense => Ok(()),
            MetricsMode::Streaming { reservoir_k } if reservoir_k >= 2 => Ok(()),
            MetricsMode::Streaming { reservoir_k } => Err(format!(
                "metrics reservoir_k must be >= 2 (got {reservoir_k})"
            )),
        }
    }
}

/// A seeded bottom-k reservoir sample over a stream of `f64` values.
///
/// Every pushed value draws a `u64` tag from the reservoir's own
/// [`Xoshiro256`] stream; the reservoir keeps the `K` values with the
/// smallest `(tag, value-bits)` keys. Because "keep the K smallest of a
/// multiset" is order-independent and associative, [`merge_from`] is
/// *exactly* the reservoir a single feed of both tag/value streams would
/// produce — the property the sharded drain relies on.
///
/// [`merge_from`]: ReservoirCdf::merge_from
#[derive(Debug, Clone)]
pub struct ReservoirCdf {
    k: usize,
    seen: u64,
    rng: Xoshiro256,
    /// Max-heap of `(tag, value_bits)`: the root is the first entry a
    /// smaller-tagged newcomer evicts.
    entries: BinaryHeap<(u64, u64)>,
}

impl ReservoirCdf {
    /// Empty reservoir holding at most `k` samples, tagging from `seed`.
    pub fn new(k: usize, seed: u64) -> ReservoirCdf {
        assert!(k >= 1, "reservoir capacity must be at least 1");
        ReservoirCdf {
            k,
            seen: 0,
            rng: Xoshiro256::seed_from(seed),
            entries: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Capacity `K`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Values currently retained (≤ `K`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total values offered to the reservoir (including merged streams).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Offer one value. NaN is rejected with a panic, matching [`Cdf`].
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN sample in reservoir input");
        let tag = self.rng.next_u64();
        self.seen += 1;
        self.insert_tagged(tag, value);
    }

    /// Offer every value of an iterator.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.push(v);
        }
    }

    fn insert_tagged(&mut self, tag: u64, value: f64) {
        let key = (tag, value.to_bits());
        if self.entries.len() < self.k {
            self.entries.push(key);
        } else if let Some(&root) = self.entries.peek() {
            if key < root {
                self.entries.pop();
                self.entries.push(key);
            }
        }
    }

    /// An empty reservoir that continues this one's tag stream — the
    /// "hand the RNG to the next shard" construction that makes
    /// `merge(prefix, suffix) == single_feed(whole)` exactly testable.
    pub fn continuation(&self) -> ReservoirCdf {
        ReservoirCdf {
            k: self.k,
            seen: 0,
            rng: self.rng.clone(),
            entries: BinaryHeap::with_capacity(self.k + 1),
        }
    }

    /// Merge another reservoir of the same capacity: keep the `K`
    /// smallest keys of the union; `seen` counts add. Deterministic and
    /// order-independent.
    pub fn merge_from(&mut self, other: &ReservoirCdf) {
        assert_eq!(
            self.k, other.k,
            "merging reservoirs of different capacities"
        );
        self.seen += other.seen;
        for &(tag, bits) in other.entries.iter() {
            let key = (tag, bits);
            if self.entries.len() < self.k {
                self.entries.push(key);
            } else if let Some(&root) = self.entries.peek() {
                if key < root {
                    self.entries.pop();
                    self.entries.push(key);
                }
            }
        }
    }

    /// The retained values, sorted ascending.
    pub fn values(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .entries
            .iter()
            .map(|&(_, bits)| f64::from_bits(bits))
            .collect();
        out.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in reservoir"));
        out
    }

    /// The retained sample as an empirical [`Cdf`].
    pub fn to_cdf(&self) -> Cdf {
        Cdf::from_samples(self.entries.iter().map(|&(_, bits)| f64::from_bits(bits)))
    }

    /// Estimated quantile (empty reservoir panics, matching [`Cdf`]).
    pub fn quantile(&self, fraction: f64) -> f64 {
        self.to_cdf().quantile(fraction)
    }

    /// Approximate heap footprint of the retained state, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(u64, u64)>()
            + std::mem::size_of::<ReservoirCdf>()
    }
}

/// Number of log-scale histogram bins in a [`StreamSummary`]:
/// `SUB_BINS` bins per factor of two over binary exponents
/// `MIN_EXP..MAX_EXP`, plus one underflow bin for values `<= 0` (or
/// below `2^MIN_EXP`).
const SUMMARY_BINS: usize = 1 + ((MAX_EXP - MIN_EXP) as usize) * SUB_BINS;
const MIN_EXP: i32 = -20; // ~1e-6: finer than any ms/MB metric here
const MAX_EXP: i32 = 60; // ~1e18: above any byte count a run produces
const SUB_BINS: usize = 4; // quarter-octave resolution

/// Mergeable moment/quantile summary of a value stream in O(1) memory.
///
/// Exact count, sum, min, and max, plus a fixed-bin quarter-octave
/// log2 histogram for quantile estimates. Quantiles carry the bin's
/// relative width as error: at 4 sub-bins per octave the estimate is
/// within `2^(1/8) - 1 ≈ 9%` of the dense value (plus interpolation
/// slack), clamped into `[min, max]`. Negative values clamp into the
/// underflow bin — the simulator's metrics (bytes, nanoseconds) are
/// non-negative.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    bins: Vec<u64>,
}

impl Default for StreamSummary {
    fn default() -> StreamSummary {
        StreamSummary::new()
    }
}

impl StreamSummary {
    /// Fresh, empty summary.
    pub fn new() -> StreamSummary {
        StreamSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            bins: vec![0; SUMMARY_BINS],
        }
    }

    fn bin_of(value: f64) -> usize {
        if value <= 0.0 {
            return 0;
        }
        let e = value.log2();
        if e < MIN_EXP as f64 {
            return 0;
        }
        let idx = ((e - MIN_EXP as f64) * SUB_BINS as f64) as usize;
        (1 + idx).min(SUMMARY_BINS - 1)
    }

    /// Lower edge of a histogram bin (the underflow bin's edge is 0).
    fn bin_lo(idx: usize) -> f64 {
        if idx == 0 {
            return 0.0;
        }
        2f64.powf(MIN_EXP as f64 + (idx - 1) as f64 / SUB_BINS as f64)
    }

    /// Record one value. NaN panics.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN sample in summary input");
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.bins[Self::bin_of(value)] += 1;
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded value (None if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (None if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }

    /// Estimated quantile via the log histogram: find the bin holding
    /// the target rank and interpolate geometrically inside it. Within
    /// ~9% relative of the dense quantile (see type docs); exact for
    /// the extremes (`fraction` 0 → min, 1 → max). Panics when empty.
    pub fn quantile(&self, fraction: f64) -> f64 {
        assert!(self.count > 0, "quantile of empty summary");
        let f = fraction.clamp(0.0, 1.0);
        if f <= 0.0 {
            return self.min;
        }
        if f >= 1.0 {
            return self.max;
        }
        let target = (f * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            cum += c;
            if cum >= target {
                let lo = Self::bin_lo(i);
                let hi = if i + 1 < SUMMARY_BINS {
                    Self::bin_lo(i + 1)
                } else {
                    self.max
                };
                // Geometric midpoint of the bin, clamped into the
                // observed range.
                let mid = if lo > 0.0 && hi > lo {
                    (lo * hi).sqrt()
                } else {
                    (lo + hi) / 2.0
                };
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another summary: counts, extrema, and bins merge exactly;
    /// the sum merges to floating-point reassociation error.
    pub fn merge_from(&mut self, other: &StreamSummary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
    }

    /// Approximate heap footprint, in bytes. Constant by construction.
    pub fn approx_bytes(&self) -> usize {
        self.bins.capacity() * std::mem::size_of::<u64>() + std::mem::size_of::<StreamSummary>()
    }
}

/// A time-binned byte series with a *fixed* bin count: when an event
/// lands past the last bin, the bin width doubles and adjacent bins fold
/// pairwise (sums, so total mass is preserved exactly) until the event
/// fits. The dense [`TrafficTimeline`]'s growth axis — bins per duration
/// — becomes a resolution axis instead.
///
/// Lanes are parallel series sharing one width (the per-class split in
/// the network layer); folding coarsens every lane together so they stay
/// aligned.
///
/// [`TrafficTimeline`]: https://docs.rs — see `dfly-network::metrics`
#[derive(Debug, Clone, PartialEq)]
pub struct CoarseTimeline {
    bin_width: Ns,
    max_bins: usize,
    lanes: Vec<Vec<u64>>,
}

impl CoarseTimeline {
    /// Empty timeline: `lanes` parallel series, starting at `bin_width`,
    /// never exceeding `max_bins` bins (a power of two ≥ 2) per lane.
    pub fn new(bin_width: Ns, lanes: usize, max_bins: usize) -> CoarseTimeline {
        assert!(bin_width > Ns::ZERO, "bin width must be positive");
        assert!(
            max_bins.is_power_of_two() && max_bins >= 2,
            "max_bins must be a power of two >= 2 (got {max_bins})"
        );
        assert!(lanes >= 1, "need at least one lane");
        CoarseTimeline {
            bin_width,
            max_bins,
            lanes: vec![Vec::new(); lanes],
        }
    }

    /// Current bin width (grows geometrically as the run outlives the
    /// initial resolution).
    pub fn bin_width(&self) -> Ns {
        self.bin_width
    }

    /// The fixed bin-count cap.
    pub fn max_bins(&self) -> usize {
        self.max_bins
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Record `bytes` on `lane` at time `at`, coarsening first if `at`
    /// falls past the last bin.
    pub fn record(&mut self, lane: usize, at: Ns, bytes: u64) {
        let mut idx = (at.as_nanos() / self.bin_width.as_nanos()) as usize;
        while idx >= self.max_bins {
            self.coarsen();
            idx = (at.as_nanos() / self.bin_width.as_nanos()) as usize;
        }
        let series = &mut self.lanes[lane];
        if series.len() <= idx {
            series.resize(idx + 1, 0);
        }
        series[idx] += bytes;
    }

    /// Double the bin width, folding adjacent bins pairwise in every
    /// lane. Total mass per lane is invariant.
    fn coarsen(&mut self) {
        for lane in &mut self.lanes {
            let folded = lane.len().div_ceil(2);
            for i in 0..folded {
                let a = lane[2 * i];
                let b = lane.get(2 * i + 1).copied().unwrap_or(0);
                lane[i] = a + b;
            }
            lane.truncate(folded);
        }
        self.bin_width = Ns(self.bin_width.as_nanos() * 2);
    }

    /// One lane's bins at the current width (missing tail bins are 0).
    pub fn series(&self, lane: usize) -> &[u64] {
        &self.lanes[lane]
    }

    /// Total mass recorded on a lane — invariant under coarsening.
    pub fn total(&self, lane: usize) -> u64 {
        self.lanes[lane].iter().sum()
    }

    /// Merge another timeline of the same shape: the finer side folds to
    /// the coarser width, then bins add. Mass-preserving, deterministic,
    /// order-independent.
    pub fn merge_from(&mut self, other: &CoarseTimeline) {
        assert_eq!(self.lanes.len(), other.lanes.len(), "lane count mismatch");
        assert_eq!(self.max_bins, other.max_bins, "max_bins mismatch");
        let (a, b) = (self.bin_width.as_nanos(), other.bin_width.as_nanos());
        let (big, small) = (a.max(b), a.min(b));
        assert!(
            big % small == 0 && (big / small).is_power_of_two(),
            "widths {a} and {b} do not share a base"
        );
        while self.bin_width.as_nanos() < other.bin_width.as_nanos() {
            self.coarsen();
        }
        let ratio = (self.bin_width.as_nanos() / other.bin_width.as_nanos()) as usize;
        for (mine, theirs) in self.lanes.iter_mut().zip(other.lanes.iter()) {
            let folded = theirs.len().div_ceil(ratio);
            if mine.len() < folded {
                mine.resize(folded, 0);
            }
            for (i, chunk) in theirs.chunks(ratio).enumerate() {
                mine[i] += chunk.iter().sum::<u64>();
            }
        }
    }

    /// Approximate heap footprint, in bytes. Bounded by
    /// `lanes * max_bins * 8` regardless of duration.
    pub fn approx_bytes(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.capacity() * std::mem::size_of::<u64>())
            .sum::<usize>()
            + std::mem::size_of::<CoarseTimeline>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_and_labels() {
        assert_eq!(MetricsMode::parse("dense"), Ok(MetricsMode::Dense));
        assert_eq!(
            MetricsMode::parse("streaming"),
            Ok(MetricsMode::Streaming {
                reservoir_k: DEFAULT_RESERVOIR_K
            })
        );
        assert_eq!(
            MetricsMode::parse("streaming:256"),
            Ok(MetricsMode::Streaming { reservoir_k: 256 })
        );
        assert!(MetricsMode::parse("streaming:1").is_err());
        assert!(MetricsMode::parse("sparse").is_err());
        assert!(MetricsMode::parse("streaming:x").is_err());
        assert_eq!(MetricsMode::Dense.label(), "dense");
        assert_eq!(
            MetricsMode::Streaming { reservoir_k: 64 }.label(),
            "streaming:64"
        );
        assert_eq!(MetricsMode::default(), MetricsMode::Dense);
        assert!(MetricsMode::Streaming { reservoir_k: 1 }
            .validate()
            .is_err());
        MetricsMode::Dense.validate().unwrap();
    }

    #[test]
    fn reservoir_keeps_everything_below_capacity() {
        let mut r = ReservoirCdf::new(16, 7);
        r.extend((0..10).map(|i| i as f64));
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 10);
        assert_eq!(r.values(), (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn reservoir_caps_at_k() {
        let mut r = ReservoirCdf::new(32, 99);
        r.extend((0..10_000).map(|i| i as f64));
        assert_eq!(r.len(), 32);
        assert_eq!(r.seen(), 10_000);
        assert!(r.approx_bytes() < 2048);
    }

    #[test]
    fn reservoir_is_seed_deterministic() {
        let feed = |seed| {
            let mut r = ReservoirCdf::new(8, seed);
            r.extend((0..1000).map(|i| (i * 17 % 1000) as f64));
            r.values()
        };
        assert_eq!(feed(1), feed(1));
        assert_ne!(feed(1), feed(2), "different seeds sample differently");
    }

    #[test]
    fn reservoir_merge_equals_single_stream() {
        let stream: Vec<f64> = (0..500).map(|i| (i * 13 % 500) as f64).collect();
        for cut in [0, 1, 250, 499, 500] {
            let mut single = ReservoirCdf::new(24, 42);
            single.extend(stream.iter().copied());

            let mut left = ReservoirCdf::new(24, 42);
            left.extend(stream[..cut].iter().copied());
            let mut right = left.continuation();
            right.extend(stream[cut..].iter().copied());
            left.merge_from(&right);

            assert_eq!(left.seen(), single.seen());
            assert_eq!(left.values(), single.values(), "cut at {cut}");

            // And the mirror merge retains the same multiset.
            let mut l2 = ReservoirCdf::new(24, 42);
            l2.extend(stream[..cut].iter().copied());
            let mut r2 = l2.continuation();
            r2.extend(stream[cut..].iter().copied());
            r2.merge_from(&l2);
            assert_eq!(r2.values(), single.values(), "merge commutes at {cut}");
        }
    }

    #[test]
    fn reservoir_quantiles_track_dense() {
        // Uniform 0..10_000: reservoir quantiles within a few percent.
        let mut r = ReservoirCdf::new(512, 0xC0FFEE);
        let dense: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        r.extend(dense.iter().copied());
        let cdf = Cdf::from_samples(dense.iter().copied());
        for q in [0.1, 0.5, 0.9] {
            let d = cdf.quantile(q);
            let s = r.quantile(q);
            assert!(
                (d - s).abs() / 10_000.0 < 0.06,
                "q{q}: dense {d} vs reservoir {s}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn reservoir_rejects_nan() {
        ReservoirCdf::new(4, 1).push(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "different capacities")]
    fn reservoir_merge_rejects_capacity_mismatch() {
        let mut a = ReservoirCdf::new(4, 1);
        a.merge_from(&ReservoirCdf::new(8, 1));
    }

    #[test]
    fn summary_moments_exact() {
        let mut s = StreamSummary::new();
        for v in [4.0, 1.0, 9.0, 0.0, 16.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 30.0);
        assert_eq!(s.min(), Some(0.0));
        assert_eq!(s.max(), Some(16.0));
        assert_eq!(s.mean(), 6.0);
    }

    #[test]
    fn summary_quantile_within_bin_tolerance() {
        let mut s = StreamSummary::new();
        let dense: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        for &v in &dense {
            s.record(v);
        }
        let cdf = Cdf::from_samples(dense.iter().copied());
        for q in [0.25, 0.5, 0.75, 0.99] {
            let d = cdf.quantile(q);
            let est = s.quantile(q);
            // Quarter-octave bins: within 2^(1/8)-1 ≈ 9.05% relative,
            // plus a hair of interpolation slack.
            assert!(
                (est - d).abs() / d < 0.095,
                "q{q}: dense {d} vs summary {est}"
            );
        }
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 10_000.0);
    }

    #[test]
    fn summary_merge_equals_single_feed() {
        let stream: Vec<f64> = (0..1000).map(|i| (i % 97) as f64 * 1.5).collect();
        let mut single = StreamSummary::new();
        for &v in &stream {
            single.record(v);
        }
        let mut a = StreamSummary::new();
        let mut b = StreamSummary::new();
        for &v in &stream[..400] {
            a.record(v);
        }
        for &v in &stream[400..] {
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), single.count());
        assert_eq!(a.min(), single.min());
        assert_eq!(a.max(), single.max());
        assert_eq!(a.bins, single.bins, "histogram merge is exact");
        assert!((a.sum() - single.sum()).abs() <= 1e-9 * single.sum().abs().max(1.0));
    }

    #[test]
    fn summary_footprint_is_constant() {
        let mut s = StreamSummary::new();
        let before = s.approx_bytes();
        for i in 0..100_000 {
            s.record(i as f64);
        }
        assert_eq!(s.approx_bytes(), before);
    }

    #[test]
    #[should_panic(expected = "empty summary")]
    fn summary_quantile_empty_panics() {
        StreamSummary::new().quantile(0.5);
    }

    #[test]
    fn timeline_records_and_coarsens() {
        let mut t = CoarseTimeline::new(Ns(100), 2, 4);
        t.record(0, Ns(0), 10);
        t.record(0, Ns(150), 5);
        t.record(0, Ns(399), 1);
        assert_eq!(t.bin_width(), Ns(100));
        assert_eq!(t.series(0), &[10, 5, 0, 1]);
        // Bin index 4 forces one doubling: 100 -> 200 ns bins.
        t.record(0, Ns(420), 7);
        assert_eq!(t.bin_width(), Ns(200));
        assert_eq!(t.series(0), &[15, 1, 7]);
        assert_eq!(t.total(0), 23);
        // A far-future event coarsens repeatedly but never grows bins.
        t.record(1, Ns(1_000_000), 3);
        assert!(t.series(1).len() <= 4);
        assert!(t.series(0).len() <= 4);
        assert_eq!(t.total(0), 23, "mass preserved across coarsening");
        assert_eq!(t.total(1), 3);
    }

    #[test]
    fn timeline_mass_preserved_under_heavy_coarsening() {
        let mut t = CoarseTimeline::new(Ns(1), 1, 8);
        let mut mass = 0u64;
        for i in 0..10_000u64 {
            t.record(0, Ns(i * i), i % 7);
            mass += i % 7;
        }
        assert_eq!(t.total(0), mass);
        assert_eq!(t.series(0).len().max(1) <= 8, true);
        assert!(t.approx_bytes() < 1024);
    }

    #[test]
    fn timeline_extreme_timestamp_is_bounded() {
        let mut t = CoarseTimeline::new(Ns(1), 1, 4);
        t.record(0, Ns(5), 2);
        t.record(0, Ns(u64::MAX), 7);
        assert!(t.series(0).len() <= 4);
        assert_eq!(t.total(0), 9);
    }

    #[test]
    fn timeline_merge_aligns_widths_and_preserves_mass() {
        let mut fine = CoarseTimeline::new(Ns(10), 1, 8);
        for i in 0..8u64 {
            fine.record(0, Ns(i * 10), 1);
        }
        let mut coarse = CoarseTimeline::new(Ns(10), 1, 8);
        coarse.record(0, Ns(300), 5); // forces widths 10 -> 40
        assert_eq!(coarse.bin_width(), Ns(40));

        let mut merged = fine.clone();
        merged.merge_from(&coarse);
        assert_eq!(merged.bin_width(), Ns(40));
        assert_eq!(merged.total(0), 13);

        // Mirror order gives the same bins.
        let mut mirror = coarse.clone();
        mirror.merge_from(&fine);
        assert_eq!(mirror, merged);
    }

    #[test]
    #[should_panic(expected = "max_bins must be a power of two")]
    fn timeline_rejects_odd_cap() {
        let _ = CoarseTimeline::new(Ns(1), 1, 3);
    }
}
