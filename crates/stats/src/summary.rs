//! Five-number summaries and scalar statistics.

/// The five-number summary behind each box in the paper's box plots,
/// plus mean and sample count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Smallest sample.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of samples.
    pub n: usize,
}

impl BoxStats {
    /// Compute from unsorted samples. Returns `None` for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Option<BoxStats> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        Some(BoxStats {
            min: sorted[0],
            q1: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            q3: percentile_sorted(&sorted, 75.0),
            max: sorted[sorted.len() - 1],
            mean: mean(samples),
            n: samples.len(),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Full range (max - min) — the paper's "performance variation" proxy.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }

    /// Range as a percentage of the median: the run-to-run variability
    /// measure quoted in the paper's introduction ("frequently 15% or
    /// greater and up to 100%").
    pub fn variability_percent(&self) -> f64 {
        if self.median == 0.0 {
            0.0
        } else {
            100.0 * self.range() / self.median
        }
    }
}

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Population standard deviation (0.0 for fewer than 2 samples).
pub fn stddev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    (samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / samples.len() as f64).sqrt()
}

/// Linear-interpolation percentile of *unsorted* data, `p` in [0, 100].
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of empty slice");
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    percentile_sorted(&sorted, p)
}

/// Linear-interpolation percentile of already-sorted data.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// `value` expressed as a percentage of `baseline` (Figure 7's y-axis:
/// "max communication time relative to rand-adp"). Panics on a zero
/// baseline — a zero-time baseline run is always a harness bug.
pub fn relative_percent(value: f64, baseline: f64) -> f64 {
    assert!(baseline != 0.0, "relative_percent: zero baseline");
    100.0 * value / baseline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_of_known_data() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.n, 5);
        assert_eq!(s.iqr(), 2.0);
        assert_eq!(s.range(), 4.0);
    }

    #[test]
    fn box_stats_empty_is_none() {
        assert!(BoxStats::from_samples(&[]).is_none());
    }

    #[test]
    fn box_stats_single_sample() {
        let s = BoxStats::from_samples(&[7.5]).unwrap();
        assert_eq!(s.min, 7.5);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.max, 7.5);
        assert_eq!(s.variability_percent(), 0.0);
    }

    #[test]
    fn box_stats_unsorted_input() {
        let a = BoxStats::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        let b = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn variability_percent_matches_definition() {
        let s = BoxStats::from_samples(&[10.0, 12.0, 14.0]).unwrap();
        // range 4, median 12 -> 33.3%
        assert!((s.variability_percent() - 100.0 * 4.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        let sd = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&data, 0.0), 10.0);
        assert_eq!(percentile(&data, 100.0), 40.0);
        assert_eq!(percentile(&data, 50.0), 25.0);
        // 25th percentile of 4 points: rank 0.75 -> 10 + 0.75*10 = 17.5
        assert!((percentile(&data, 25.0) - 17.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let data = [1.0, 2.0];
        assert_eq!(percentile(&data, -5.0), 1.0);
        assert_eq!(percentile(&data, 150.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn relative_percent_basics() {
        assert_eq!(relative_percent(150.0, 100.0), 150.0);
        assert_eq!(relative_percent(94.0, 100.0), 94.0);
    }

    #[test]
    #[should_panic(expected = "zero baseline")]
    fn relative_percent_zero_baseline_panics() {
        relative_percent(1.0, 0.0);
    }

    #[test]
    fn percentile_monotone_property() {
        // percentile must be monotone in p for arbitrary data.
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut prev = f64::NEG_INFINITY;
        for p in 0..=100 {
            let v = percentile(&data, p as f64);
            assert!(v >= prev);
            prev = v;
        }
    }
}
